"""Legacy setuptools shim — all metadata lives in ``pyproject.toml``.

Kept because PEP 660 editable installs (``pip install -e .``) need the
``wheel`` package, which offline containers may lack; there,
``python setup.py develop`` (or plain ``PYTHONPATH=src``) still works.
"""

from setuptools import setup

setup()
