"""Legacy setuptools shim — all metadata lives in ``pyproject.toml``.

Kept because PEP 660 editable installs (``pip install -e .``) need the
``wheel`` package, which offline containers may lack; there,
``python setup.py develop`` (or plain ``PYTHONPATH=src``) still works.

The one thing that *must* live here is the optional native kernel
extension (``repro.anf._ckernel._impl``).  It is marked ``optional`` so a
missing or broken C compiler downgrades the build to a warning: the wheel
installs without the extension and :mod:`repro.anf.cnative` falls back to
the numpy kernels at import time.  Build it in a source checkout with::

    python setup.py build_ext --inplace
"""

import sys

from setuptools import Extension, setup

_ckernel = Extension(
    "repro.anf._ckernel._impl",
    sources=["src/repro/anf/_ckernel/ckernelmodule.c"],
    extra_compile_args=[] if sys.platform == "win32" else ["-O3"],
    optional=True,
)

setup(ext_modules=[_ckernel])
