"""Setuptools shim (kept so editable installs work in offline environments
that lack the ``wheel`` package required by PEP 660 editable wheels)."""

from setuptools import setup

setup()
