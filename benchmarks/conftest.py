"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one row of the paper's Table 1 (or one figure)
and asserts the qualitative "shape" claims — who wins and in which metric —
while pytest-benchmark records the runtime of the Progressive Decomposition
flow itself.  Widths are kept at the "quick" settings so the whole harness
runs in a few minutes; the full-width table is produced by
``python -m examples.reproduce_table1`` (see EXPERIMENTS.md).
"""

import pytest

from repro.synth import default_library


@pytest.fixture(scope="session")
def library():
    return default_library()
