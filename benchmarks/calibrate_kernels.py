#!/usr/bin/env python
"""Calibrate the kernel-chunking tunables on the comparator slab.

Sweeps ``REPRO_KERNEL_CHUNK_MIN_ROWS`` x ``REPRO_KERNEL_THREADS`` over the
hot whole-slab primitives (the fused radix split, the plain split, the
parity sweep and the two-pointer merge), measured on the real comparator
term slab — the same 2^width-ish-row memory the basis pass chews — under
both chunk-serial cores: the numpy kernels (what the ``threaded`` backend
runs) and the compiled C kernels (what ``native`` runs, when built).

Prints a per-grid-point table, derives the fastest configuration per core,
and optionally writes the whole sweep as JSON::

    PYTHONPATH=src python benchmarks/calibrate_kernels.py --width 14 \
        --out benchmarks/calibration.json

The committed defaults (``CHUNK_MIN_ROWS = 2^16``, threads auto) should be
re-derived from this sweep on the machine that records the baselines; the
recommendation block names the winning grid point explicitly so the choice
is data, not folklore.  On a single-core box the sweep degenerates to
measuring the chunking overhead itself — expect "1 thread, chunking off"
to win there, and re-run on multi-core hardware before changing defaults.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Callable, Dict, List

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, os.path.abspath(_SRC))

from repro.anf import cnative, nativekernel, sortkernel  # noqa: E402
from repro.benchcircuits import comparator_spec  # noqa: E402

SCHEMA = "repro-kernel-calibration-v1"

#: A fresh tag bit above the 40-bit term universe, as the basis pass plants.
TAG = 1 << 50


def build_slab(width: int):
    """The packed term slab of the comparator's densest output."""
    spec = comparator_spec(width)
    best = None
    for expr in spec.outputs.values():
        matrix = expr.term_matrix(build=True)
        if matrix is not None and (best is None or matrix.count > best.count):
            best = matrix
    if best is None:
        raise SystemExit("comparator outputs did not pack — cannot calibrate")
    return best.words


def _group_mask(words, bits: int) -> int:
    """The ``bits`` lowest support variables — a realistic findGroup mask."""
    support = sortkernel.support_fold(words)
    mask = 0
    for _ in range(bits):
        if not support:
            break
        low = support & -support
        mask |= low
        support ^= low
    return mask


def kernel_jobs(words) -> Dict[str, Callable[[], object]]:
    """The timed primitives, closed over the slab (dispatch via nativekernel
    so the active ``CHUNK_MIN_ROWS``/thread settings decide the chunking)."""
    mask = _group_mask(words, 4)
    half = len(words) // 2
    left, right = words[:half], words[half:]
    return {
        "split_build": lambda: nativekernel.split_build_by_group([(TAG, words)], mask),
        "split_runs": lambda: nativekernel.split_runs_by_group(words, mask),
        "parity_merge": lambda: nativekernel.parity_merge([left, right]),
        "xor_merge": lambda: nativekernel.xor_merge(left, right),
    }


def run_grid(words, threads_list: List[int], chunks_list: List[int],
             repeats: int) -> List[Dict[str, object]]:
    cores = [("numpy", sortkernel)]
    if cnative.available():
        cores.append(("cnative", cnative))
    else:
        print("note: C extension not built — sweeping the numpy core only")
    jobs = kernel_jobs(words)
    grid: List[Dict[str, object]] = []
    saved_env = os.environ.get(nativekernel.THREADS_ENV)
    saved_chunk = nativekernel.CHUNK_MIN_ROWS
    try:
        for core_name, core in cores:
            nativekernel.set_serial(core)
            for threads in threads_list:
                os.environ[nativekernel.THREADS_ENV] = str(threads)
                for chunk in chunks_list:
                    nativekernel.CHUNK_MIN_ROWS = chunk
                    for kernel, job in jobs.items():
                        best = min(
                            _timed(job) for _ in range(max(1, repeats))
                        )
                        grid.append({
                            "core": core_name,
                            "kernel": kernel,
                            "threads": threads,
                            "chunk_min_rows": chunk,
                            "seconds": round(best, 5),
                        })
    finally:
        nativekernel.set_serial(None)
        nativekernel.CHUNK_MIN_ROWS = saved_chunk
        if saved_env is None:
            os.environ.pop(nativekernel.THREADS_ENV, None)
        else:
            os.environ[nativekernel.THREADS_ENV] = saved_env
    return grid


def _timed(job) -> float:
    start = time.perf_counter()
    job()
    return time.perf_counter() - start


def summarise(grid: List[Dict[str, object]]) -> Dict[str, object]:
    """Per core, the (threads, chunk) point minimising total kernel time."""
    totals: Dict[tuple, float] = {}
    for point in grid:
        key = (point["core"], point["threads"], point["chunk_min_rows"])
        totals[key] = totals.get(key, 0.0) + point["seconds"]
    recommendation: Dict[str, object] = {}
    for core in {point["core"] for point in grid}:
        core_points = {k: v for k, v in totals.items() if k[0] == core}
        (best_core, threads, chunk), seconds = min(
            core_points.items(), key=lambda kv: kv[1]
        )
        recommendation[core] = {
            "threads": threads,
            "chunk_min_rows": chunk,
            "total_seconds": round(seconds, 5),
        }
    return recommendation


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--width", type=int, default=14,
                        help="comparator width to build the slab from "
                             "(default 14; 15 is the 14.3M-row stress slab)")
    parser.add_argument("--threads", type=int, nargs="*", default=None,
                        help="worker counts to sweep (default: 1 2 4 and the "
                             "CPU count, deduplicated)")
    parser.add_argument("--chunks", type=int, nargs="*", default=None,
                        help="CHUNK_MIN_ROWS values to sweep "
                             "(default: 2^14..2^18)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repeats per grid point (best is recorded)")
    parser.add_argument("--out", help="write the sweep to this JSON file")
    args = parser.parse_args(argv)

    if not sortkernel.available():
        raise SystemExit("numpy unavailable — nothing to calibrate")
    cpu = os.cpu_count() or 1
    threads_list = args.threads or sorted({1, 2, 4, cpu})
    chunks_list = args.chunks or [1 << b for b in range(14, 19)]

    print(f"building the comparator-{args.width} slab ...", flush=True)
    words = build_slab(args.width)
    print(f"slab: {len(words)} rows ({len(words) * 8 / 1e6:.1f} MB), "
          f"cpu_count={cpu}\n")

    grid = run_grid(words, threads_list, chunks_list, args.repeats)

    print(f"{'core':8s} {'kernel':14s} {'threads':>7s} {'chunk':>8s} "
          f"{'seconds':>9s}")
    for point in grid:
        print(f"{point['core']:8s} {point['kernel']:14s} "
              f"{point['threads']:>7d} {point['chunk_min_rows']:>8d} "
              f"{point['seconds']:>9.5f}")

    recommendation = summarise(grid)
    print("\nfastest configuration per core (sum over kernels):")
    for core, best in sorted(recommendation.items()):
        print(f"  {core:8s} threads={best['threads']} "
              f"chunk_min_rows={best['chunk_min_rows']} "
              f"({best['total_seconds']:.5f}s)")
    if cpu == 1:
        print("  (single-core machine: this only measures chunking overhead; "
              "re-run on multi-core hardware before changing defaults)")

    record = {
        "schema": SCHEMA,
        "width": args.width,
        "rows": len(words),
        "cpu_count": cpu,
        "python": platform.python_version(),
        "repeats": args.repeats,
        "grid": grid,
        "recommendation": recommendation,
    }
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
