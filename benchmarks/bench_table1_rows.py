"""Benchmarks regenerating every row of Table 1 (E1-E7 in DESIGN.md).

Each benchmark times the Progressive Decomposition flow on one benchmark
circuit and asserts the row's qualitative shape (the relative area/delay
ordering the paper reports).  Reduced widths keep the harness fast; the
full-width regeneration lives in ``examples/reproduce_table1.py``.
"""

from repro.eval import (
    row_adder,
    row_comparator,
    row_counter,
    row_lod,
    row_lzd,
    row_majority,
    row_three_input_adder,
)


def test_e1_lzd_row(benchmark, library):
    """E1 / Table 1 "16-bit LZD/LOD": PD beats the flat SOP on delay and area."""
    row = benchmark(row_lzd, 16, library)
    unopt, pd = row.unoptimised(), row.progressive()
    assert pd.delay < unopt.delay
    assert pd.area < unopt.area
    assert pd.decomposition.verify()


def test_e2_lod_row(benchmark, library):
    """E2 / Table 1 "32-bit LOD": PD improves both delay and area."""
    row = benchmark(row_lod, 32, library)
    unopt, pd = row.unoptimised(), row.progressive()
    assert pd.delay < unopt.delay
    assert pd.area < unopt.area


def test_e3_majority_row(benchmark, library):
    """E3 / Table 1 "15-bit Majority": PD finds the hidden counters."""
    row = benchmark(row_majority, 15, library)
    pd = row.progressive()
    assert pd.decomposition is not None
    # The hidden-counter discovery: first-level blocks are counter outputs of
    # 4-bit groups (at most 3 blocks per group after identity reduction).
    level1 = pd.decomposition.blocks_at_level(1)
    assert 1 <= len(level1) <= 3
    assert pd.delay <= row.unoptimised().delay * 1.05


def test_e4_counter_row(benchmark, library):
    """E4 / Table 1 "16-bit Counter": chain < PD < TGA ordering on delay."""
    row = benchmark(row_counter, 16, library)
    unopt, pd, tga = row.unoptimised(), row.progressive(), row.variant("TGA")
    assert pd.delay < unopt.delay           # PD beats the behavioural chain
    assert tga.delay <= pd.delay            # the manual compressor tree stays ahead


def test_e5_adder_row(benchmark, library):
    """E5 / Table 1 "16-bit Adder": PD is comparable to RCA / DesignWare."""
    row = benchmark(row_adder, 16, library, 8)
    unopt, pd = row.unoptimised(), row.progressive()
    assert pd.decomposition.verify()
    # The paper's point: no dramatic change for the two-operand adder.
    assert pd.delay <= unopt.delay * 1.25


def test_e6_comparator_row(benchmark, library):
    """E6 / Table 1 "15-bit Comparator": PD beats the MSB-first chain."""
    row = benchmark(row_comparator, 10, library)
    unopt, pd = row.unoptimised(), row.progressive()
    assert pd.delay < unopt.delay
    assert row.speedup() > 1.1


def test_e7_three_input_adder_row(benchmark, library):
    """E7 / Table 1 "12-bit Three-Input Adder": PD ≈ CSA+adder ≪ flat description."""
    row = benchmark(row_three_input_adder, 6, library)
    unopt, pd = row.unoptimised(), row.progressive()
    csa = row.variant("CSA")
    assert pd.delay < unopt.delay
    assert pd.area < unopt.area
    assert pd.delay <= csa.delay * 1.6      # within reach of the manual CSA design
