#!/usr/bin/env python
"""Machine-readable benchmark harness for the Progressive Decomposition flow.

Runs the Table-1-row benchmark circuits end to end (decompose -> structure ->
synthesise), records per-circuit wall-clock and decomposition quality metrics,
and writes a ``BENCH_*.json`` file that later runs can be compared against::

    PYTHONPATH=src python benchmarks/run_bench.py --out benchmarks/BENCH_hotpaths.json
    PYTHONPATH=src python benchmarks/run_bench.py --compare benchmarks/BENCH_baseline.json

Two width settings are provided (see ``benchmarks/README.md``):

* ``--quick`` (default): intermediate widths where the runtime is dominated by
  the decomposition engine itself rather than fixed per-call overheads; the
  whole sweep finishes in well under two minutes even on the seed code.
* ``--full``: the paper's own Table 1 widths (the widths ``build_table1``
  uses when ``quick=False``), which were impractical to iterate on before the
  word-parallel kernel landed.

``--compare BASELINE.json`` re-checks two things and exits non-zero on either
failure: a wall-clock regression of more than ``--tolerance`` (default 20%)
on any circuit or on the total, and any change in the decomposition results
(literal counts, block/level structure, or a failed ``Decomposition.verify``)
— the fast paths must be observationally identical, not just fast.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Callable, Dict

# Allow running as a plain script without PYTHONPATH=src.
_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, os.path.abspath(_SRC))

from repro.benchcircuits import (  # noqa: E402
    adder_spec,
    comparator_spec,
    counter_spec,
    lod_spec,
    lzd_spec,
    majority_spec,
    three_input_adder_spec,
)
from repro.core.structure import decomposition_to_netlist  # noqa: E402
from repro.engine import BatchJob, BatchOrchestrator  # noqa: E402
from repro.engine.profiling import collecting_pass_timings, rounded  # noqa: E402
from repro.eval.flows import run_progressive_flow  # noqa: E402
from repro.synth import default_library, synthesize_netlist  # noqa: E402

SCHEMA = "repro-bench-v1"

# circuit name -> (spec builder, quick width, full width).  The full widths
# match ``repro.eval.table1.build_table1(quick=False)`` (the adder's width is
# the Progressive Decomposition width, the structural variants are untimed).
CIRCUITS: Dict[str, tuple[Callable, int, int]] = {
    "lzd": (lzd_spec, 14, 16),
    "lod": (lod_spec, 28, 32),
    "majority": (majority_spec, 13, 15),
    "counter": (counter_spec, 14, 16),
    "adder": (adder_spec, 11, 12),
    "comparator": (comparator_spec, 12, 15),
    "three_input_adder": (three_input_adder_spec, 6, 6),
}


def bench_circuit(
    name: str, width: int, repeats: int, library, profile: bool = False
) -> Dict[str, object]:
    """Time the progressive flow on one circuit and collect its result metrics."""
    builder = CIRCUITS[name][0]
    spec = builder(width)
    best = float("inf")
    result = None
    best_profile: Dict[str, Dict[str, float]] | None = None
    for _ in range(max(1, repeats)):
        timings: Dict[str, Dict[str, float]] = {}
        start = time.perf_counter()
        if profile:
            with collecting_pass_timings(timings):
                result = run_progressive_flow(
                    spec.outputs, spec.input_words, library=library
                )
        else:
            result = run_progressive_flow(spec.outputs, spec.input_words, library=library)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
            best_profile = timings
    decomposition = result.decomposition
    entry: Dict[str, object] = {"width": width, "seconds": round(best, 4)}
    entry.update(_decomposition_metrics(decomposition))
    entry["area"] = round(result.area, 1)
    entry["delay"] = round(result.delay, 3)
    if profile and best_profile is not None:
        # Verification is not part of the timed flow; report it as its own
        # profile row (next to the passes) rather than inside the total.
        engine_seconds = sum(item["seconds"] for item in best_profile.values())
        best_profile["structure+synthesis"] = {
            "seconds": max(0.0, best - engine_seconds),
            "calls": 1,
        }
        best_profile["verify (untimed)"] = {
            "seconds": entry["verify_seconds"],
            "calls": 1,
        }
        entry["profile"] = rounded(best_profile)
    return entry


def print_profile(name: str, entry: Dict[str, object]) -> None:
    """Render one circuit's per-pass breakdown as a table."""
    breakdown = entry.get("profile")
    if not breakdown:
        return
    total = entry["seconds"] or 1.0
    print(f"\n  profile: {name} (width {entry['width']}, best of the timed runs)")
    print(f"    {'stage':24s} {'seconds':>9s} {'calls':>6s} {'share':>7s}")
    for stage, item in sorted(
        breakdown.items(), key=lambda kv: kv[1]["seconds"], reverse=True
    ):
        share = item["seconds"] / total
        print(
            f"    {stage:24s} {item['seconds']:>9.4f} {item['calls']:>6d} {share:>6.1%}"
        )


def _decomposition_metrics(decomposition) -> Dict[str, object]:
    start = time.perf_counter()
    verified = decomposition.verify()
    verify_seconds = time.perf_counter() - start
    return {
        "verify": verified,
        "verify_seconds": round(verify_seconds, 4),
        "blocks": len(decomposition.blocks),
        "levels": decomposition.num_levels,
        "block_literals": decomposition.total_block_literals(),
        "output_literals": sum(
            expr.literal_count for expr in decomposition.outputs.values()
        ),
    }


def bench_orchestrated(
    selected, widths: Dict[str, int], jobs: int | None, cache_dir: str | None, library
) -> Dict[str, object]:
    """Run the sweep's decompositions through the batch orchestrator.

    Per-circuit ``seconds`` is the worker-side engine time (near zero on a
    warm cache); synthesis runs in the parent so area/delay stay in the
    record.  Orchestrated timings are NOT comparable to the sequential
    baselines — use this mode for result validation and cached sweeps, and
    the default sequential mode for performance tracking.
    """
    orchestrator = BatchOrchestrator(cache_dir, jobs)
    batch = [
        BatchJob(name, CIRCUITS[name][0], (widths[name],)) for name in selected
    ]
    batch_results = orchestrator.run(batch)
    results: Dict[str, object] = {}
    for name in selected:
        outcome = batch_results[name]
        decomposition = outcome.decomposition
        # Match run_progressive_flow's structuring objective so the recorded
        # area/delay agree with the sequential mode on identical decompositions.
        netlist = decomposition_to_netlist(
            decomposition, library=library, objective="balanced"
        )
        synthesis = synthesize_netlist(netlist, library)
        entry: Dict[str, object] = {
            "width": widths[name],
            "seconds": round(outcome.seconds, 4),
            "cache_hit": outcome.cache_hit,
        }
        entry.update(_decomposition_metrics(decomposition))
        entry["area"] = round(synthesis.area, 1)
        entry["delay"] = round(synthesis.delay, 3)
        results[name] = entry
    return results


RESULT_KEYS = ("width", "blocks", "levels", "block_literals", "output_literals")


def compare(current: Dict[str, object], baseline: Dict[str, object], tolerance: float) -> int:
    """Compare a fresh run against a recorded baseline; return the exit code."""
    failures = []
    base_circuits = baseline.get("circuits", {})
    cur_circuits = current["circuits"]
    for name, cur in cur_circuits.items():
        base = base_circuits.get(name)
        if base is None:
            print(f"  {name:20s} (not in baseline, skipped)")
            continue
        for key in RESULT_KEYS:
            if cur.get(key) != base.get(key):
                failures.append(
                    f"{name}: {key} changed {base.get(key)} -> {cur.get(key)}"
                )
        if not cur["verify"]:
            failures.append(f"{name}: Decomposition.verify() failed")
        ratio = cur["seconds"] / base["seconds"] if base["seconds"] else 1.0
        status = "ok"
        if ratio > 1.0 + tolerance:
            failures.append(
                f"{name}: {ratio:.2f}x slower ({base['seconds']}s -> {cur['seconds']}s)"
            )
            status = "REGRESSION"
        speedup = 1.0 / ratio if ratio else float("inf")
        print(
            f"  {name:20s} {base['seconds']:>8.3f}s -> {cur['seconds']:>8.3f}s "
            f"({speedup:5.2f}x) {status}"
        )
    base_total = baseline.get("total_seconds")
    if base_total:
        ratio = current["total_seconds"] / base_total
        print(
            f"  {'TOTAL':20s} {base_total:>8.3f}s -> {current['total_seconds']:>8.3f}s "
            f"({1.0 / ratio:5.2f}x)"
        )
        if ratio > 1.0 + tolerance:
            failures.append(f"total: {ratio:.2f}x slower")
    if failures:
        print("\nFAILURES:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nno regressions, decomposition results identical")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", help="write the results to this JSON file")
    parser.add_argument("--compare", metavar="BASELINE.json",
                        help="compare against a recorded baseline run")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional slowdown before --compare fails")
    parser.add_argument("--full", action="store_true",
                        help="use the paper's Table 1 widths instead of the quick ones")
    parser.add_argument("--rows", nargs="*", choices=sorted(CIRCUITS),
                        help="benchmark only these circuits")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per circuit (best is recorded; "
                             "default 3; sequential mode only)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="run the decompositions through the batch orchestrator "
                             "with N worker processes (timings then reflect the "
                             "orchestrated engine, not the sequential flow)")
    parser.add_argument("--cache", metavar="DIR", default=None,
                        help="on-disk decomposition cache directory "
                             "(enables the orchestrated mode)")
    parser.add_argument("--profile", action="store_true",
                        help="collect a per-pass timing breakdown per circuit "
                             "(table on stdout + a 'profile' section in the "
                             "JSON record; sequential mode only)")
    args = parser.parse_args(argv)

    library = default_library()
    selected = args.rows if args.rows else list(CIRCUITS)
    mode = "full" if args.full else "quick"
    orchestrated = args.jobs is not None or args.cache is not None
    widths = {
        name: (CIRCUITS[name][2] if args.full else CIRCUITS[name][1])
        for name in selected
    }
    if orchestrated:
        if args.repeats is not None:
            print("note: --repeats is ignored in the orchestrated mode "
                  "(each decomposition runs once per worker)")
        if args.profile:
            print("note: --profile is ignored in the orchestrated mode "
                  "(pass timings live in the worker processes)")
        repeats = 1
        results = bench_orchestrated(selected, widths, args.jobs, args.cache, library)
        mode += "-orchestrated"
    else:
        repeats = args.repeats if args.repeats is not None else 3
        results = {
            name: bench_circuit(name, widths[name], repeats, library,
                                profile=args.profile)
            for name in selected
        }
    total = 0.0
    for name in selected:
        entry = results[name]
        total += entry["seconds"]
        cached = " (cached)" if entry.get("cache_hit") else ""
        print(
            f"{name:20s} width={entry['width']:<3d} {entry['seconds']:>9.3f}s  "
            f"blocks={entry['blocks']:<3d} literals={entry['block_literals']:<4d} "
            f"verify={entry['verify']}/{entry['verify_seconds']:.3f}s{cached}",
            flush=True,
        )
        print_profile(name, entry)

    record = {
        "schema": SCHEMA,
        "mode": mode,
        "repeats": repeats,
        "python": platform.python_version(),
        "circuits": results,
        "total_seconds": round(total, 4),
    }
    print(f"{'TOTAL':20s}           {total:>9.3f}s")

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")

    if args.compare:
        with open(args.compare) as handle:
            baseline = json.load(handle)
        base_mode = baseline.get("mode", "quick")
        if base_mode != mode:
            reason = (
                "orchestrated timings (fork + cache + worker) are not comparable "
                "to sequential ones"
                if ("orchestrated" in mode) != ("orchestrated" in base_mode)
                else "the two runs use different circuit widths"
            )
            print(
                f"\ncannot compare a {mode!r} run against a {base_mode!r} baseline: "
                f"{reason} — record a baseline in the same mode."
            )
            return 2
        print(f"\ncomparing against {args.compare} (tolerance {args.tolerance:.0%}):")
        return compare(record, baseline, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
