#!/usr/bin/env python
"""Load generator for the decomposition service (`repro.service`).

Replays thousands of mixed decomposition/synthesis job requests against a
live server and reports the *operating point* — client-observed p50/p99
latency, throughput, cache hit rate and dedup rate at a given concurrency —
alongside the per-circuit cold numbers `run_bench.py` tracks::

    python benchmarks/run_loadgen.py --requests 2000 --concurrency 16 \
        --out benchmarks/BENCH_service.json

By default the harness launches its own server subprocess (fresh temporary
cache, `--workers` fork-pool processes) and shuts it down gracefully at the
end; point `--server URL` at an already-running instance instead to load-test
a deployment.

Two phases run:

* **mixed replay** — `--requests` jobs sampled (seeded) from a fixed menu of
  quick-width specs, issued by `--concurrency` client threads, each blocking
  on ``POST /jobs?wait=1``.  The first occurrence of each distinct spec
  computes; repeats hit the on-disk store or attach to an in-flight twin.
* **thundering herd** — `--herd` *identical* submissions of a spec that is
  deliberately not in the mixed menu, fired concurrently while the job is
  held in flight (`--herd-delay-ms`).  The demonstration the service exists
  for: the /metrics computation counter must advance by exactly **1**, with
  the remaining N-1 submissions served as in-flight dedup hits.  The run
  exits non-zero if it does not.

The client is hardened: every request has a per-request timeout and a
bounded transport-level retry budget, and the summary separates transport
failures (never got a response) from job failures (a terminal ``failed``
state) via an overall ``error_rate``.

`--chaos` reruns both phases with the fault-injection harness armed in the
server (``REPRO_FAULT_SPEC`` with cross-process trigger counters, see
`docs/RELIABILITY.md`): workers are SIGKILLed on a deterministic cadence
during the mixed replay, the herd's worker is killed exactly once
mid-flight, and an occasional cache write is torn.  The gates flip from
"nothing fails" to "everything *recovers*": every submission reaches a
terminal state, the herd still collapses to one computation served by the
crash retry, and the recovery counters (worker deaths, retries) actually
moved.  The committed record is `benchmarks/BENCH_chaos.json`;
``--compare`` checks a fresh chaos run against its invariants.

The `--out` record (committed as `benchmarks/BENCH_service.json`, chaos
variant as `benchmarks/BENCH_chaos.json`) stores both phases plus the final
/metrics scrape.  Latency baselines from a loaded box are noisy by nature —
the committed record documents the operating point; the hard gates are the
dedup and recovery invariants, not the milliseconds.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import statistics
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

# Allow running as a plain script without PYTHONPATH=src.
_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, os.path.abspath(_SRC))

SCHEMA = "repro-service-loadgen-v1"
CHAOS_SCHEMA = "repro-service-chaos-v1"

#: The default chaos plan (see repro.faults for the grammar).  Cross-process
#: counters (REPRO_FAULT_STATE) make every trigger global:
#: * kill a worker on every 23rd non-herd job — steady crash pressure
#:   through the mixed replay;
#: * kill the worker running the herd spec exactly once — the deterministic
#:   "dedup subscribers survive a mid-flight worker death" scenario;
#: * tear every 5th cache record write — readers must quarantine the torn
#:   record and recompute, never serve it.
CHAOS_FAULT_SPEC = (
    "worker.job[!lzd-9]:kill%23;"
    "worker.job[lzd-9]:kill@1;"
    "cache.store.payload:truncate%5"
)

#: The mixed-replay menu: (weight, spec).  Small quick widths — the point is
#: traffic shape (dedup + cache behaviour under concurrency), not cold
#: decomposition times, which run_bench.py already tracks.
SPEC_MENU = [
    (8, {"circuit": "majority", "width": 7}),
    (8, {"circuit": "counter", "width": 8}),
    (6, {"circuit": "lzd", "width": 8}),
    (6, {"circuit": "lod", "width": 10}),
    (5, {"circuit": "adder", "width": 6}),
    (5, {"circuit": "comparator", "width": 8}),
    (4, {"circuit": "three_input_adder", "width": 4}),
    (3, {"kind": "synthesize", "circuit": "majority", "width": 7}),
    (3, {"kind": "synthesize", "circuit": "counter", "width": 8}),
    (2, {"kind": "synthesize", "circuit": "adder", "width": 6, "objective": "delay"}),
    (2, {"circuit": "majority", "width": 9}),
    (2, {"circuit": "counter", "width": 10}),
]

#: The herd spec is deliberately absent from the menu so the herd phase is
#: always a cold digest: exactly one computation, N-1 in-flight dedup hits.
HERD_SPEC = {"circuit": "lzd", "width": 9}


def http_json(url: str, data: bytes | None = None, method: str | None = None,
              timeout: float = 120.0):
    request = urllib.request.Request(
        url, data=data, method=method or ("POST" if data is not None else "GET")
    )
    if data is not None:
        request.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def http_json_retry(url: str, data: bytes | None = None, *,
                    timeout: float = 120.0, retries: int = 2,
                    backoff: float = 0.2):
    """Hardened client call: per-request timeout + bounded transport retry.

    Retries cover *transport* faults only (refused/reset connections, socket
    timeouts, torn responses) — an HTTP response, even a 5xx or a job in a
    terminal ``failed`` state, is a result, not a retry trigger.  Returns
    ``(body, error, attempts)`` where exactly one of body/error is set.
    """
    error = None
    attempts = 0
    for attempt in range(retries + 1):
        attempts = attempt + 1
        try:
            return http_json(url, data, timeout=timeout), None, attempts
        except urllib.error.HTTPError as exc:
            return None, f"HTTP {exc.code}", attempts
        except (urllib.error.URLError, OSError, ValueError) as exc:
            error = f"{type(exc).__name__}: {exc}"
            if attempt < retries:
                time.sleep(backoff * (2 ** attempt))
    return None, error, attempts


def percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(fraction * len(sorted_values))))
    return sorted_values[rank]


def latency_stats(latencies):
    window = sorted(latencies)
    return {
        "count": len(window),
        "p50_ms": round(percentile(window, 0.50) * 1000, 2),
        "p99_ms": round(percentile(window, 0.99) * 1000, 2),
        "mean_ms": round(statistics.fmean(window) * 1000, 2) if window else 0.0,
        "max_ms": round(window[-1] * 1000, 2) if window else 0.0,
    }


def run_phase(base_url: str, payloads, concurrency: int,
              request_timeout: float = 300.0, client_retries: int = 2):
    """Issue every payload with ``concurrency`` blocking client threads.

    Returns a dict separating the ways a submission can end: ``done``,
    ``failed`` (terminal structured failure — quarantine, timeout, crash),
    and ``transport_failures`` (no usable response at all, after retries).
    """
    latencies = []
    done = 0
    job_failures = 0
    transport_failures = 0
    client_retries_used = 0

    def one(payload: bytes):
        start = time.perf_counter()
        body, error, attempts = http_json_retry(
            f"{base_url}/jobs?wait=1&timeout={request_timeout:g}", payload,
            timeout=request_timeout, retries=client_retries,
        )
        state = body.get("state") if isinstance(body, dict) else None
        return time.perf_counter() - start, state, error, attempts - 1

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        for elapsed, state, error, extra_attempts in pool.map(one, payloads):
            latencies.append(elapsed)
            client_retries_used += extra_attempts
            if state == "done":
                done += 1
            elif state == "failed":
                job_failures += 1
            else:
                transport_failures += 1
    wall = time.perf_counter() - start
    total = len(payloads)
    return {
        "latencies": latencies,
        "done": done,
        "job_failures": job_failures,
        "transport_failures": transport_failures,
        "client_retries": client_retries_used,
        "error_rate": round((job_failures + transport_failures) / total, 4) if total else 0.0,
        "wall": wall,
    }


def start_server(workers: int, cache_dir: str, tmp_dir: str,
                 extra_env: dict | None = None, extra_args: list | None = None):
    """Launch a server subprocess; returns (process, base_url)."""
    port_file = os.path.join(tmp_dir, "service.port")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--port", "0",
         "--port-file", port_file, "--cache-dir", cache_dir,
         "--workers", str(workers), *(extra_args or [])],
        env={**os.environ,
             "PYTHONPATH": _SRC + os.pathsep + os.environ.get("PYTHONPATH", ""),
             **(extra_env or {})},
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.time() + 60
    while not os.path.exists(port_file):
        if process.poll() is not None:
            raise RuntimeError(f"server exited early:\n{process.stdout.read()}")
        if time.time() > deadline:
            process.kill()
            raise RuntimeError("server did not report a port within 60 s")
        time.sleep(0.05)
    with open(port_file) as handle:
        port = int(handle.read().strip())
    return process, f"http://127.0.0.1:{port}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=2000,
                        help="mixed-replay request count (default 2000)")
    parser.add_argument("--concurrency", type=int, default=16,
                        help="client threads (default 16)")
    parser.add_argument("--herd", type=int, default=32,
                        help="identical concurrent submissions in the herd phase")
    parser.add_argument("--herd-delay-ms", type=int, default=400,
                        help="in-flight hold time for the herd job (default 400)")
    parser.add_argument("--workers", type=int, default=None,
                        help="server worker processes (default: CPU count)")
    parser.add_argument("--server", metavar="URL", default=None,
                        help="load an already-running server instead of "
                             "launching one (skips shutdown)")
    parser.add_argument("--seed", type=int, default=7,
                        help="workload sampling seed (default 7)")
    parser.add_argument("--out", metavar="OUT.json",
                        help="write the loadgen record to this file")
    parser.add_argument("--chaos", action="store_true",
                        help="arm REPRO_FAULT_SPEC in the server: kill workers "
                             "on a deterministic cadence and tear cache writes; "
                             "gate on recovery instead of a clean run")
    parser.add_argument("--fault-spec", default=CHAOS_FAULT_SPEC, metavar="SPEC",
                        help="override the chaos fault plan (implies --chaos "
                             "semantics only when --chaos is set)")
    parser.add_argument("--compare", metavar="BASELINE.json", default=None,
                        help="check this run's invariants against a committed "
                             "record (herd dedup; with --chaos also recovery)")
    parser.add_argument("--request-timeout", type=float, default=300.0,
                        help="per-request client timeout in seconds (default 300)")
    parser.add_argument("--client-retries", type=int, default=2,
                        help="transport-level retries per request (default 2)")
    args = parser.parse_args(argv)

    if args.chaos and args.server:
        parser.error("--chaos launches its own server; it cannot target --server "
                     "(the fault environment must be set before the server starts)")

    rng = random.Random(args.seed)
    weighted = [spec for weight, spec in SPEC_MENU for _ in range(weight)]
    payloads = [
        json.dumps(rng.choice(weighted), sort_keys=True).encode("utf-8")
        for _ in range(args.requests)
    ]
    herd_payload = json.dumps(
        {**HERD_SPEC, "delay_ms": args.herd_delay_ms}, sort_keys=True
    ).encode("utf-8")

    process = None
    tmp_context = tempfile.TemporaryDirectory(prefix="repro-loadgen-")
    try:
        if args.server:
            base_url = args.server.rstrip("/")
        else:
            workers = args.workers if args.workers is not None else (os.cpu_count() or 1)
            cache_dir = os.path.join(tmp_context.name, "cache")
            extra_env = None
            extra_args = None
            if args.chaos:
                fault_state = os.path.join(tmp_context.name, "fault-state")
                os.makedirs(fault_state, exist_ok=True)
                extra_env = {
                    "REPRO_FAULT_SPEC": args.fault_spec,
                    "REPRO_FAULT_STATE": fault_state,
                }
                # A deeper retry budget: a kill breaks the whole pool, so
                # collateral attempts are lost alongside the targeted one.
                extra_args = ["--max-retries", "4"]
                print(f"chaos plan: {args.fault_spec}")
            process, base_url = start_server(
                workers, cache_dir, tmp_context.name,
                extra_env=extra_env, extra_args=extra_args,
            )

        health = http_json(f"{base_url}/healthz")
        print(f"server {base_url}: {health['status']}, workers={health['workers']}")

        # ---------------- phase 1: mixed replay ----------------
        print(f"replaying {args.requests} mixed requests "
              f"({len(SPEC_MENU)} distinct specs, concurrency {args.concurrency}) ...")
        outcome = run_phase(base_url, payloads, args.concurrency,
                            args.request_timeout, args.client_retries)
        mixed_metrics = http_json(f"{base_url}/metrics")
        failures = outcome["job_failures"] + outcome["transport_failures"]
        mixed = {
            "requests": args.requests,
            "concurrency": args.concurrency,
            "distinct_specs": len(SPEC_MENU),
            "failures": failures,
            "job_failures": outcome["job_failures"],
            "transport_failures": outcome["transport_failures"],
            "client_retries": outcome["client_retries"],
            "error_rate": outcome["error_rate"],
            "wall_seconds": round(outcome["wall"], 3),
            "throughput_rps": round(args.requests / outcome["wall"], 1)
                              if outcome["wall"] else 0.0,
            "latency": latency_stats(outcome["latencies"]),
        }
        print(f"  {mixed['throughput_rps']} req/s, "
              f"p50 {mixed['latency']['p50_ms']} ms, "
              f"p99 {mixed['latency']['p99_ms']} ms, "
              f"cache hit rate {mixed_metrics['cache']['hit_rate']:.1%}, "
              f"dedup rate {mixed_metrics['dedup']['rate']:.1%}, "
              f"error rate {mixed['error_rate']:.2%} "
              f"({outcome['job_failures']} job / "
              f"{outcome['transport_failures']} transport)")

        # ---------------- phase 2: thundering herd ----------------
        before = http_json(f"{base_url}/metrics")
        print(f"thundering herd: {args.herd} identical concurrent submissions "
              f"(held in flight {args.herd_delay_ms} ms) ...")
        herd_outcome = run_phase(base_url, [herd_payload] * args.herd, args.herd,
                                 args.request_timeout, args.client_retries)
        after = http_json(f"{base_url}/metrics")
        computations = after["cache"]["misses"] - before["cache"]["misses"]
        dedup_hits = after["dedup"]["inflight_hits"] - before["dedup"]["inflight_hits"]
        herd_deaths = (after["reliability"]["worker_deaths"]
                       - before["reliability"]["worker_deaths"])
        herd_failures = herd_outcome["job_failures"] + herd_outcome["transport_failures"]
        herd = {
            "submissions": args.herd,
            "delay_ms": args.herd_delay_ms,
            "computations": computations,
            "dedup_inflight_hits": dedup_hits,
            "worker_deaths": herd_deaths,
            "failures": herd_failures,
            "wall_seconds": round(herd_outcome["wall"], 3),
            "latency": latency_stats(herd_outcome["latencies"]),
        }
        # The dedup invariant: one computation serves the whole herd.  Under
        # chaos the herd's worker is killed exactly once mid-flight, so the
        # same invariant passing *plus* a recorded death proves the retry
        # served every subscriber.
        herd_ok = computations == 1 and dedup_hits == args.herd - 1 and herd_failures == 0
        if args.chaos:
            herd_ok = herd_ok and herd_deaths >= 1
        print(f"  {args.herd} submissions -> {computations} computation(s), "
              f"{dedup_hits} in-flight dedup hits, "
              f"{herd_deaths} worker death(s): "
              f"{'OK' if herd_ok else 'DEDUP FAILURE'}")

        record = {
            "schema": CHAOS_SCHEMA if args.chaos else SCHEMA,
            "python": platform.python_version(),
            "seed": args.seed,
            "server_workers": health["workers"],
            "mixed": mixed,
            "herd": herd,
            "metrics": after,
        }
        if args.chaos:
            record["chaos"] = {
                "fault_spec": args.fault_spec,
                "worker_deaths": after["reliability"]["worker_deaths"],
                "retries": after["reliability"]["retries"],
                "timeouts": after["reliability"]["timeouts"],
                "quarantined_jobs": after["reliability"]["quarantined_jobs"],
                "corrupt_records": after["cache"].get("corrupt_records", 0),
            }
        if args.out:
            with open(args.out, "w") as handle:
                json.dump(record, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote {args.out}")

        if not args.server:
            http_json(f"{base_url}/shutdown", b"", method="POST")
            process.wait(timeout=120)
            process = None

        return evaluate_gates(args, record, after)
    finally:
        if process is not None:
            process.kill()
        tmp_context.cleanup()


def evaluate_gates(args, record, metrics) -> int:
    """Exit-code policy: clean runs gate on zero failures, chaos runs gate
    on recovery (every job terminal, herd served through the crash)."""
    mixed, herd = record["mixed"], record["herd"]
    failed = []
    if mixed["transport_failures"]:
        failed.append(f"{mixed['transport_failures']} mixed requests got no response")
    if not args.chaos and mixed["job_failures"]:
        failed.append(f"{mixed['job_failures']} mixed jobs failed")
    if args.chaos:
        # "No lost jobs": every submission reached a terminal state and the
        # server's books balance — nothing stuck in flight, nothing dropped.
        jobs = metrics["jobs"]
        if jobs["submitted"] != jobs["completed"] + jobs["failed"]:
            failed.append(
                f"lost jobs: submitted {jobs['submitted']} != "
                f"completed {jobs['completed']} + failed {jobs['failed']}"
            )
        if metrics["queue"]["depth"] != 0:
            failed.append(f"queue depth {metrics['queue']['depth']} after drain")
        if metrics["reliability"]["worker_deaths"] < 1:
            failed.append("chaos run recorded no worker deaths — harness inert?")
    if not (herd["computations"] == 1
            and herd["dedup_inflight_hits"] == herd["submissions"] - 1
            and herd["failures"] == 0
            and (not args.chaos or herd["worker_deaths"] >= 1)):
        failed.append("thundering herd did not collapse to one computation"
                      + (" surviving a worker death" if args.chaos else ""))
    if args.compare:
        with open(args.compare) as handle:
            baseline = json.load(handle)
        if baseline.get("schema") != record["schema"]:
            failed.append(
                f"baseline schema {baseline.get('schema')!r} != {record['schema']!r}"
            )
        base_herd = baseline.get("herd", {})
        if base_herd.get("computations") != herd["computations"]:
            failed.append(
                f"herd computations {herd['computations']} != baseline "
                f"{base_herd.get('computations')}"
            )
    for message in failed:
        print(f"FAILURE: {message}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
