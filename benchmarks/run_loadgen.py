#!/usr/bin/env python
"""Load generator for the decomposition service (`repro.service`).

Replays thousands of mixed decomposition/synthesis job requests against a
live server and reports the *operating point* — client-observed p50/p99
latency, throughput, cache hit rate and dedup rate at a given concurrency —
alongside the per-circuit cold numbers `run_bench.py` tracks::

    python benchmarks/run_loadgen.py --requests 2000 --concurrency 16 \
        --out benchmarks/BENCH_service.json

By default the harness launches its own server subprocess (fresh temporary
cache, `--workers` fork-pool processes) and shuts it down gracefully at the
end; point `--server URL` at an already-running instance instead to load-test
a deployment.

Two phases run:

* **mixed replay** — `--requests` jobs sampled (seeded) from a fixed menu of
  quick-width specs, issued by `--concurrency` client threads, each blocking
  on ``POST /jobs?wait=1``.  The first occurrence of each distinct spec
  computes; repeats hit the on-disk store or attach to an in-flight twin.
* **thundering herd** — `--herd` *identical* submissions of a spec that is
  deliberately not in the mixed menu, fired concurrently while the job is
  held in flight (`--herd-delay-ms`).  The demonstration the service exists
  for: the /metrics computation counter must advance by exactly **1**, with
  the remaining N-1 submissions served as in-flight dedup hits.  The run
  exits non-zero if it does not.

The client is hardened: every request has a per-request timeout and a
bounded transport-level retry budget, and the summary separates transport
failures (never got a response) from job failures (a terminal ``failed``
state) via an overall ``error_rate``.

`--chaos` reruns both phases with the fault-injection harness armed in the
server (``REPRO_FAULT_SPEC`` with cross-process trigger counters, see
`docs/RELIABILITY.md`): workers are SIGKILLed on a deterministic cadence
during the mixed replay, the herd's worker is killed exactly once
mid-flight, and an occasional cache write is torn.  The gates flip from
"nothing fails" to "everything *recovers*": every submission reaches a
terminal state, the herd still collapses to one computation served by the
crash retry, and the recovery counters (worker deaths, retries) actually
moved.  The committed record is `benchmarks/BENCH_chaos.json`;
``--compare`` checks a fresh chaos run against its invariants.

`--overload` runs the admission-control scenario instead of the two
phases: the launched server gets a deliberately tiny ``REPRO_ADMISSION_*``
operating point, two "hog" threads push expensive comparator+delay jobs
while light clients pace cheap ones, and one worker is killed mid-storm.
The gates prove *shed-don't-collapse* (see the overload contract in
`docs/RELIABILITY.md`): the hog is throttled with 429s that always carry
``Retry-After`` yet still completes jobs, every admitted job finishes with
the books balanced, the light clients see zero shed and a p99 within
budget (default 3x the unloaded ``BENCH_service.json`` p99, override with
``--light-p99-budget-ms``), and brownout engages, degrades at least one
job, and clears.  The committed record is `benchmarks/BENCH_overload.json`.

The `--out` record (committed as `benchmarks/BENCH_service.json`, chaos
variant as `benchmarks/BENCH_chaos.json`, overload variant as
`benchmarks/BENCH_overload.json`) stores the run's phases plus the final
/metrics scrape.  Latency baselines from a loaded box are noisy by nature —
the committed record documents the operating point; the hard gates are the
dedup, recovery and overload invariants, not the milliseconds.
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import platform
import random
import statistics
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

# Allow running as a plain script without PYTHONPATH=src.
_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, os.path.abspath(_SRC))

SCHEMA = "repro-service-loadgen-v1"
CHAOS_SCHEMA = "repro-service-chaos-v1"
OVERLOAD_SCHEMA = "repro-service-overload-v1"

#: The default chaos plan (see repro.faults for the grammar).  Cross-process
#: counters (REPRO_FAULT_STATE) make every trigger global:
#: * kill a worker on every 23rd non-herd job — steady crash pressure
#:   through the mixed replay;
#: * kill the worker running the herd spec exactly once — the deterministic
#:   "dedup subscribers survive a mid-flight worker death" scenario;
#: * tear every 5th cache record write — readers must quarantine the torn
#:   record and recompute, never serve it.
CHAOS_FAULT_SPEC = (
    "worker.job[!lzd-9]:kill%23;"
    "worker.job[lzd-9]:kill@1;"
    "cache.store.payload:truncate%5"
)

#: The mixed-replay menu: (weight, spec).  Small quick widths — the point is
#: traffic shape (dedup + cache behaviour under concurrency), not cold
#: decomposition times, which run_bench.py already tracks.
SPEC_MENU = [
    (8, {"circuit": "majority", "width": 7}),
    (8, {"circuit": "counter", "width": 8}),
    (6, {"circuit": "lzd", "width": 8}),
    (6, {"circuit": "lod", "width": 10}),
    (5, {"circuit": "adder", "width": 6}),
    (5, {"circuit": "comparator", "width": 8}),
    (4, {"circuit": "three_input_adder", "width": 4}),
    (3, {"kind": "synthesize", "circuit": "majority", "width": 7}),
    (3, {"kind": "synthesize", "circuit": "counter", "width": 8}),
    (2, {"kind": "synthesize", "circuit": "adder", "width": 6, "objective": "delay"}),
    (2, {"circuit": "majority", "width": 9}),
    (2, {"circuit": "counter", "width": 10}),
]

#: The herd spec is deliberately absent from the menu so the herd phase is
#: always a cold digest: exactly one computation, N-1 in-flight dedup hits.
HERD_SPEC = {"circuit": "lzd", "width": 9}

#: The overload scenario's admission operating point, armed in the server's
#: environment (see docs/TUNABLES.md).  Deliberately tiny so a handful of
#: clients can push the server through its whole envelope — quota
#: throttling, watermark shedding, brownout — in a few seconds: a heavy
#: job (~1.2 s of held worker ≈ 1200+ cost units) nearly fills the queue
#: watermark by itself and costs three seconds of bucket refill.
OVERLOAD_ADMISSION_ENV = {
    "REPRO_ADMISSION_RATE": "400",
    "REPRO_ADMISSION_BURST": "1600",
    "REPRO_ADMISSION_MAX_QUEUE_COST": "2400",
    "REPRO_ADMISSION_MAX_QUEUE_DEPTH": "64",
    "REPRO_ADMISSION_CHEAP_COST": "60",
    "REPRO_ADMISSION_BROWNOUT_HIGH": "0.5",
    "REPRO_ADMISSION_BROWNOUT_LOW": "0.2",
    "REPRO_ADMISSION_BROWNOUT_HOLD": "0.4",
}

#: Fault plan for the overload scenario: SIGKILL the worker running the
#: heavy client's spec exactly once (cross-process counter, so "once" is
#: global).  Supervision must retry it and the books must still balance —
#: this is what makes the whole overload run a deterministic
#: REPRO_FAULT_SPEC replay rather than a load test that merely happened
#: to pass.
OVERLOAD_FAULT_SPEC = "worker.job[comparator-12]:kill@1"

#: What the light clients loop on: small, cacheable, all far below the
#: overload scenario's cheap-cost threshold once warmed.  The verify
#: variant exists to witness brownout degradation (the server strips
#: ``verify`` while degraded and marks the job ``degraded``).
OVERLOAD_LIGHT_SPECS = [
    {"circuit": "majority", "width": 7},
    {"circuit": "counter", "width": 8},
    {"circuit": "lod", "width": 10},
    {"circuit": "lzd", "width": 8},
    {"circuit": "counter", "width": 8, "verify": True},
]

#: The heavy client's spec family; each submission adds a distinct
#: ``delay_ms`` so digests never collide (no dedup escape hatch) and each
#: job holds a worker for ~1.2 s — "a handful of comparator-class specs".
OVERLOAD_HEAVY_SPEC = {"circuit": "comparator", "width": 12}


def http_json(url: str, data: bytes | None = None, method: str | None = None,
              timeout: float = 120.0, headers: dict | None = None):
    request = urllib.request.Request(
        url, data=data, method=method or ("POST" if data is not None else "GET")
    )
    if data is not None:
        request.add_header("Content-Type", "application/json")
    for name, value in (headers or {}).items():
        request.add_header(name, value)
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def _retry_after_seconds(exc: urllib.error.HTTPError) -> float:
    """The server's Retry-After advice (the body's float beats the
    integer-truncated header), else a conservative 0.5 s."""
    try:
        body = json.loads(exc.read())
        value = body.get("error", {}).get("retry_after_seconds")
        if isinstance(value, (int, float)) and value >= 0:
            return float(value)
    except (ValueError, OSError):
        pass
    try:
        return max(0.0, float(exc.headers.get("Retry-After", "")))
    except (TypeError, ValueError):
        return 0.5


def http_json_retry(url: str, data: bytes | None = None, *,
                    timeout: float = 120.0, retries: int = 2,
                    backoff: float = 0.2, headers: dict | None = None,
                    shed_retries: int = 0, max_retry_after: float = 10.0):
    """Hardened client call: per-request timeout + bounded transport retry.

    Retries cover *transport* faults only (refused/reset connections, socket
    timeouts, torn responses) — an HTTP response, even a 5xx or a job in a
    terminal ``failed`` state, is a result, not a retry trigger.  The one
    exception is HTTP 429 (admission shed/throttle): it is counted
    separately, and with a ``shed_retries`` budget the client honours the
    server's ``Retry-After`` before resubmitting.  Returns
    ``(body, error, attempts, sheds)`` where exactly one of body/error is
    set and ``sheds`` counts every 429 encountered (a terminal 429 reports
    ``error == "HTTP 429"``).
    """
    error = None
    attempts = 0
    sheds = 0
    transport_attempts = 0
    sheds_remaining = shed_retries
    while True:
        attempts += 1
        try:
            return http_json(url, data, timeout=timeout, headers=headers), \
                None, attempts, sheds
        except urllib.error.HTTPError as exc:
            if exc.code == 429:
                sheds += 1
                if sheds_remaining > 0:
                    # A shed retry honours Retry-After and does not consume
                    # the transport budget — being told "later" is service,
                    # not failure.
                    sheds_remaining -= 1
                    time.sleep(min(max_retry_after, _retry_after_seconds(exc)))
                    continue
            return None, f"HTTP {exc.code}", attempts, sheds
        except (urllib.error.URLError, OSError, ValueError) as exc:
            error = f"{type(exc).__name__}: {exc}"
            transport_attempts += 1
            if transport_attempts > retries:
                return None, error, attempts, sheds
            time.sleep(backoff * (2 ** (transport_attempts - 1)))


def percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(fraction * len(sorted_values))))
    return sorted_values[rank]


def latency_stats(latencies):
    window = sorted(latencies)
    return {
        "count": len(window),
        "p50_ms": round(percentile(window, 0.50) * 1000, 2),
        "p99_ms": round(percentile(window, 0.99) * 1000, 2),
        "mean_ms": round(statistics.fmean(window) * 1000, 2) if window else 0.0,
        "max_ms": round(window[-1] * 1000, 2) if window else 0.0,
    }


def run_phase(base_url: str, payloads, concurrency: int,
              request_timeout: float = 300.0, client_retries: int = 2):
    """Issue every payload with ``concurrency`` blocking client threads.

    Returns a dict separating the ways a submission can end: ``done``,
    ``failed`` (terminal structured failure — quarantine, timeout, crash),
    ``shed`` (terminal HTTP 429 from admission control — backpressure, not
    breakage), and ``transport_failures`` (no usable response at all,
    after retries).
    """
    latencies = []
    done = 0
    job_failures = 0
    shed = 0
    shed_responses = 0
    transport_failures = 0
    client_retries_used = 0

    def one(payload: bytes):
        start = time.perf_counter()
        body, error, attempts, sheds = http_json_retry(
            f"{base_url}/jobs?wait=1&timeout={request_timeout:g}", payload,
            timeout=request_timeout, retries=client_retries,
        )
        state = body.get("state") if isinstance(body, dict) else None
        return time.perf_counter() - start, state, error, attempts - 1, sheds

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        for elapsed, state, error, extra_attempts, sheds in pool.map(one, payloads):
            latencies.append(elapsed)
            client_retries_used += extra_attempts
            shed_responses += sheds
            if state == "done":
                done += 1
            elif state == "failed":
                job_failures += 1
            elif error == "HTTP 429":
                shed += 1
            else:
                transport_failures += 1
    wall = time.perf_counter() - start
    total = len(payloads)
    return {
        "latencies": latencies,
        "done": done,
        "job_failures": job_failures,
        "shed": shed,
        "shed_responses": shed_responses,
        "shed_rate": round(shed / total, 4) if total else 0.0,
        "transport_failures": transport_failures,
        "client_retries": client_retries_used,
        "error_rate": round((job_failures + transport_failures) / total, 4) if total else 0.0,
        "wall": wall,
    }


def run_overload(args) -> int:
    """The heavy-vs-light admission scenario (``--overload``).

    One heavy client ("hog", several submission threads sharing one quota
    identity) tries to keep comparator-12 jobs that each hold a worker for
    ~1.2 s flowing through a server armed with a deliberately tiny
    admission operating point; N light clients keep looping cheap cached
    specs under their own identities.  The worker running the hog's spec
    is SIGKILLed exactly once (deterministic fault replay).  The gates are
    the shed-don't-collapse contract:

    * the hog is throttled/shed with 429 + ``Retry-After`` (and still gets
      *some* work done — paced, not starved);
    * the light clients see zero failures and zero sheds, with p99 within
      budget (default 3x the unloaded ``BENCH_service.json`` p99);
    * every admitted job completes (books balance, nothing lost, the
      killed attempt included);
    * brownout engages during the burst, degrades at least one verify job,
      and clears afterwards.
    """
    tmp_context = tempfile.TemporaryDirectory(prefix="repro-overload-")
    process = None
    try:
        workers = args.workers if args.workers is not None else 2
        cache_dir = os.path.join(tmp_context.name, "cache")
        extra_env = dict(OVERLOAD_ADMISSION_ENV)
        if args.fault_spec:
            fault_state = os.path.join(tmp_context.name, "fault-state")
            os.makedirs(fault_state, exist_ok=True)
            extra_env["REPRO_FAULT_SPEC"] = args.fault_spec
            extra_env["REPRO_FAULT_STATE"] = fault_state
        # The kill breaks the whole pool (collateral light attempts die
        # with it), so give supervision headroom beyond the default.
        process, base_url = start_server(
            workers, cache_dir, tmp_context.name,
            extra_env=extra_env, extra_args=["--max-retries", "4"],
        )
        health = http_json(f"{base_url}/healthz")
        knobs = ", ".join(f"{k.split('REPRO_ADMISSION_')[-1]}={v}"
                          for k, v in OVERLOAD_ADMISSION_ENV.items())
        print(f"server {base_url}: workers={health['workers']}, "
              f"admission [{knobs}]")
        if args.fault_spec:
            print(f"fault plan: {args.fault_spec}")

        # Warm the light menu so every light request is a disk hit (cheap
        # by construction); the warmup identity gets its own bucket.
        for spec in OVERLOAD_LIGHT_SPECS:
            body, error, _, _ = http_json_retry(
                f"{base_url}/jobs?wait=1&timeout=120",
                json.dumps(spec, sort_keys=True).encode("utf-8"),
                timeout=120, headers={"X-Repro-Client": "warmup"},
            )
            if error or not (isinstance(body, dict) and body.get("state") == "done"):
                raise RuntimeError(f"warmup failed for {spec}: {error or body}")

        duration = args.overload_duration
        print(f"overload burst: 1 heavy client x{args.overload_heavy_threads} "
              f"threads (comparator-12 held {args.overload_heavy_delay_ms} ms) "
              f"vs {args.overload_lights} light clients, {duration:g}s ...")
        deadline = time.perf_counter() + duration
        lock = threading.Lock()
        heavy = {"admitted": 0, "completed": 0, "failed": 0,
                 "throttled_429": 0, "retry_after_missing": 0,
                 "transport_failures": 0, "latencies": []}
        light = {"done": 0, "failed": 0, "shed": 0, "degraded": 0,
                 "transport_failures": 0, "latencies": []}
        heavy_seq = itertools.count()
        brownout_states = set()
        peak = {"pressure": 0.0}

        def heavy_loop():
            while time.perf_counter() < deadline:
                # A distinct delay_ms per submission keeps digests unique:
                # no dedup escape hatch for the hog.
                delay = args.overload_heavy_delay_ms + next(heavy_seq)
                payload = json.dumps(
                    {**OVERLOAD_HEAVY_SPEC, "delay_ms": delay}, sort_keys=True
                ).encode("utf-8")
                start = time.perf_counter()
                try:
                    body = http_json(
                        f"{base_url}/jobs?wait=1&timeout=90", payload,
                        timeout=120, headers={"X-Repro-Client": "hog"},
                    )
                    with lock:
                        heavy["admitted"] += 1
                        heavy["latencies"].append(time.perf_counter() - start)
                        if isinstance(body, dict) and body.get("state") == "done":
                            heavy["completed"] += 1
                        else:
                            heavy["failed"] += 1
                except urllib.error.HTTPError as exc:
                    if exc.code == 429:
                        wait = _retry_after_seconds(exc)
                        with lock:
                            heavy["throttled_429"] += 1
                            if not exc.headers.get("Retry-After"):
                                heavy["retry_after_missing"] += 1
                        time.sleep(min(wait, max(
                            0.05, deadline - time.perf_counter())))
                    else:
                        with lock:
                            heavy["transport_failures"] += 1
                except (urllib.error.URLError, OSError, ValueError):
                    with lock:
                        heavy["transport_failures"] += 1

        def light_loop(index: int):
            client = f"light-{index}"
            i = index  # stagger the menus so clients do not move in lockstep
            while time.perf_counter() < deadline:
                spec = OVERLOAD_LIGHT_SPECS[i % len(OVERLOAD_LIGHT_SPECS)]
                i += 1
                start = time.perf_counter()
                body, error, _, sheds = http_json_retry(
                    f"{base_url}/jobs?wait=1&timeout=60",
                    json.dumps(spec, sort_keys=True).encode("utf-8"),
                    timeout=90, retries=1, headers={"X-Repro-Client": client},
                )
                elapsed = time.perf_counter() - start
                state = body.get("state") if isinstance(body, dict) else None
                with lock:
                    light["latencies"].append(elapsed)
                    light["shed"] += sheds
                    if state == "done":
                        light["done"] += 1
                        if isinstance(body, dict) and body.get("degraded"):
                            light["degraded"] += 1
                    elif state == "failed":
                        light["failed"] += 1
                    elif error != "HTTP 429":
                        light["transport_failures"] += 1
                time.sleep(0.01)

        def monitor_loop():
            # Scrapes double as brownout clock ticks on the server; they
            # also record which states the burst actually visited.
            while time.perf_counter() < deadline:
                try:
                    snapshot = http_json(f"{base_url}/metrics", timeout=10)
                    admission = snapshot.get("admission", {})
                    brownout_states.add(
                        admission.get("brownout", {}).get("state"))
                    peak["pressure"] = max(
                        peak["pressure"], admission.get("pressure", 0.0))
                except (urllib.error.URLError, OSError, ValueError):
                    pass
                time.sleep(0.1)

        threads = (
            [threading.Thread(target=heavy_loop)
             for _ in range(args.overload_heavy_threads)]
            + [threading.Thread(target=light_loop, args=(i,))
               for i in range(args.overload_lights)]
            + [threading.Thread(target=monitor_loop)]
        )
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # Recovery: hysteresis must bring brownout back to normal and the
        # queue books to zero once the burst stops (metrics scrapes drive
        # the hold timers).
        recovered = False
        recovery_deadline = time.time() + 30
        final_metrics = http_json(f"{base_url}/metrics")
        while time.time() < recovery_deadline:
            final_metrics = http_json(f"{base_url}/metrics")
            admission = final_metrics["admission"]
            if (admission["brownout"]["state"] == "normal"
                    and admission["queue_depth"] == 0
                    and final_metrics["queue"]["depth"] == 0):
                recovered = True
                break
            time.sleep(0.2)

        budget_ms = args.light_p99_budget_ms
        if budget_ms is None:
            budget_ms = 3.0 * _unloaded_p99_ms()
        admission = final_metrics["admission"]
        jobs = final_metrics["jobs"]
        record = {
            "schema": OVERLOAD_SCHEMA,
            "python": platform.python_version(),
            "server_workers": health["workers"],
            "admission_env": OVERLOAD_ADMISSION_ENV,
            "fault_spec": args.fault_spec,
            "duration_seconds": duration,
            "heavy": {
                "client": "hog",
                "threads": args.overload_heavy_threads,
                "delay_ms": args.overload_heavy_delay_ms,
                "admitted": heavy["admitted"],
                "completed": heavy["completed"],
                "failed": heavy["failed"],
                "throttled_429": heavy["throttled_429"],
                "retry_after_missing": heavy["retry_after_missing"],
                "transport_failures": heavy["transport_failures"],
                "latency": latency_stats(heavy["latencies"]),
            },
            "light": {
                "clients": args.overload_lights,
                "done": light["done"],
                "failed": light["failed"],
                "shed": light["shed"],
                "degraded": light["degraded"],
                "transport_failures": light["transport_failures"],
                "latency": latency_stats(light["latencies"]),
                "p99_budget_ms": round(budget_ms, 2),
            },
            "brownout": {
                "engaged": admission["brownout"]["engaged"],
                "cleared": admission["brownout"]["cleared"],
                "states_seen": sorted(s for s in brownout_states if s),
                "peak_pressure": round(peak["pressure"], 4),
                "recovered": recovered,
            },
            "metrics": final_metrics,
        }
        light_p99 = record["light"]["latency"]["p99_ms"]
        record["invariants"] = {
            "heavy_throttled": heavy["throttled_429"] >= 1,
            "heavy_not_starved": heavy["completed"] >= 1,
            "retry_after_always_present": heavy["retry_after_missing"] == 0,
            "light_untouched": (light["failed"] == 0 and light["shed"] == 0
                                and light["transport_failures"] == 0),
            "light_p99_within_budget": light_p99 <= budget_ms,
            "zero_lost_admitted": (
                jobs["submitted"] == jobs["completed"] + jobs["failed"]
                and jobs["failed"] == 0
                and final_metrics["queue"]["depth"] == 0
            ),
            "brownout_engaged_and_cleared": (
                admission["brownout"]["engaged"] >= 1
                and admission["brownout"]["cleared"] >= 1
                and recovered
            ),
            "brownout_degraded_a_job": admission["degraded_jobs"] >= 1,
            "worker_death_replayed": (
                not args.fault_spec
                or final_metrics["reliability"]["worker_deaths"] >= 1
            ),
        }

        print(f"  heavy: {heavy['admitted']} admitted "
              f"({heavy['completed']} done, {heavy['failed']} failed), "
              f"{heavy['throttled_429']} x 429, "
              f"p99 {record['heavy']['latency']['p99_ms']} ms")
        print(f"  light: {light['done']} done, {light['failed']} failed, "
              f"{light['shed']} shed, {light['degraded']} degraded, "
              f"p99 {light_p99} ms (budget {budget_ms:.0f} ms)")
        print(f"  admission: {admission['admitted']} admitted / "
              f"{admission['throttled']} throttled / {admission['shed']} shed, "
              f"brownout engaged {admission['brownout']['engaged']}x "
              f"cleared {admission['brownout']['cleared']}x "
              f"(peak pressure {peak['pressure']:.2f}), "
              f"worker deaths {final_metrics['reliability']['worker_deaths']}")

        if args.out:
            with open(args.out, "w") as handle:
                json.dump(record, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote {args.out}")

        http_json(f"{base_url}/shutdown", b"", method="POST")
        process.wait(timeout=120)
        process = None
        return evaluate_overload_gates(args, record)
    finally:
        if process is not None:
            process.kill()
        tmp_context.cleanup()


def _unloaded_p99_ms(default: float = 75.0) -> float:
    """The unloaded mixed-replay p99 from the committed service baseline
    (the anchor of the light-client latency gate)."""
    baseline_path = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "BENCH_service.json")
    try:
        with open(baseline_path) as handle:
            return float(json.load(handle)["mixed"]["latency"]["p99_ms"])
    except (OSError, ValueError, KeyError):
        return default


def evaluate_overload_gates(args, record) -> int:
    """Exit-code policy for --overload: every shed-don't-collapse invariant
    must hold; --compare additionally requires every invariant that held
    in the committed baseline to hold in this run."""
    failed = [
        f"invariant {name} violated"
        for name, ok in record["invariants"].items() if not ok
    ]
    if args.compare:
        with open(args.compare) as handle:
            baseline = json.load(handle)
        if baseline.get("schema") != record["schema"]:
            failed.append(
                f"baseline schema {baseline.get('schema')!r} != {record['schema']!r}")
        for name, held in baseline.get("invariants", {}).items():
            if held and not record["invariants"].get(name, False):
                failed.append(f"baseline invariant {name} regressed")
    for message in failed:
        print(f"FAILURE: {message}")
    if not failed:
        print("overload invariants: OK")
    return 1 if failed else 0


def start_server(workers: int, cache_dir: str, tmp_dir: str,
                 extra_env: dict | None = None, extra_args: list | None = None):
    """Launch a server subprocess; returns (process, base_url)."""
    port_file = os.path.join(tmp_dir, "service.port")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--port", "0",
         "--port-file", port_file, "--cache-dir", cache_dir,
         "--workers", str(workers), *(extra_args or [])],
        env={**os.environ,
             "PYTHONPATH": _SRC + os.pathsep + os.environ.get("PYTHONPATH", ""),
             **(extra_env or {})},
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.time() + 60
    while not os.path.exists(port_file):
        if process.poll() is not None:
            raise RuntimeError(f"server exited early:\n{process.stdout.read()}")
        if time.time() > deadline:
            process.kill()
            raise RuntimeError("server did not report a port within 60 s")
        time.sleep(0.05)
    with open(port_file) as handle:
        port = int(handle.read().strip())
    return process, f"http://127.0.0.1:{port}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=2000,
                        help="mixed-replay request count (default 2000)")
    parser.add_argument("--concurrency", type=int, default=16,
                        help="client threads (default 16)")
    parser.add_argument("--herd", type=int, default=32,
                        help="identical concurrent submissions in the herd phase")
    parser.add_argument("--herd-delay-ms", type=int, default=400,
                        help="in-flight hold time for the herd job (default 400)")
    parser.add_argument("--workers", type=int, default=None,
                        help="server worker processes (default: CPU count)")
    parser.add_argument("--server", metavar="URL", default=None,
                        help="load an already-running server instead of "
                             "launching one (skips shutdown)")
    parser.add_argument("--seed", type=int, default=7,
                        help="workload sampling seed (default 7)")
    parser.add_argument("--out", metavar="OUT.json",
                        help="write the loadgen record to this file")
    parser.add_argument("--chaos", action="store_true",
                        help="arm REPRO_FAULT_SPEC in the server: kill workers "
                             "on a deterministic cadence and tear cache writes; "
                             "gate on recovery instead of a clean run")
    parser.add_argument("--fault-spec", default=None, metavar="SPEC",
                        help="override the fault plan (default: the chaos plan "
                             "with --chaos, the single heavy-worker kill with "
                             "--overload)")
    parser.add_argument("--overload", action="store_true",
                        help="run the heavy-vs-light admission scenario instead "
                             "of the mixed/herd phases: a tiny admission "
                             "operating point is armed in the server, one heavy "
                             "client tries to hog it while light clients keep "
                             "submitting; gates on shed-don't-collapse")
    parser.add_argument("--overload-duration", type=float, default=8.0,
                        help="overload burst length in seconds (default 8)")
    parser.add_argument("--overload-lights", type=int, default=3,
                        help="light client threads, each its own quota identity "
                             "(default 3)")
    parser.add_argument("--overload-heavy-threads", type=int, default=2,
                        help="submission threads of the single heavy client "
                             "(default 2)")
    parser.add_argument("--overload-heavy-delay-ms", type=int, default=1200,
                        help="worker hold time of each heavy job (default 1200)")
    parser.add_argument("--light-p99-budget-ms", type=float, default=None,
                        help="light-client p99 gate in ms (default: 3x the "
                             "unloaded p99 recorded in BENCH_service.json)")
    parser.add_argument("--compare", metavar="BASELINE.json", default=None,
                        help="check this run's invariants against a committed "
                             "record (herd dedup; with --chaos also recovery)")
    parser.add_argument("--request-timeout", type=float, default=300.0,
                        help="per-request client timeout in seconds (default 300)")
    parser.add_argument("--client-retries", type=int, default=2,
                        help="transport-level retries per request (default 2)")
    args = parser.parse_args(argv)

    if args.chaos and args.server:
        parser.error("--chaos launches its own server; it cannot target --server "
                     "(the fault environment must be set before the server starts)")
    if args.overload and args.server:
        parser.error("--overload launches its own server; it cannot target "
                     "--server (the admission environment must be set before "
                     "the server starts)")
    if args.overload and args.chaos:
        parser.error("--overload and --chaos are separate scenarios with "
                     "separate committed baselines; run them individually")
    if args.fault_spec is None:
        args.fault_spec = OVERLOAD_FAULT_SPEC if args.overload else CHAOS_FAULT_SPEC
    if args.overload:
        return run_overload(args)

    rng = random.Random(args.seed)
    weighted = [spec for weight, spec in SPEC_MENU for _ in range(weight)]
    payloads = [
        json.dumps(rng.choice(weighted), sort_keys=True).encode("utf-8")
        for _ in range(args.requests)
    ]
    herd_payload = json.dumps(
        {**HERD_SPEC, "delay_ms": args.herd_delay_ms}, sort_keys=True
    ).encode("utf-8")

    process = None
    tmp_context = tempfile.TemporaryDirectory(prefix="repro-loadgen-")
    try:
        if args.server:
            base_url = args.server.rstrip("/")
        else:
            workers = args.workers if args.workers is not None else (os.cpu_count() or 1)
            cache_dir = os.path.join(tmp_context.name, "cache")
            extra_env = None
            extra_args = None
            if args.chaos:
                fault_state = os.path.join(tmp_context.name, "fault-state")
                os.makedirs(fault_state, exist_ok=True)
                extra_env = {
                    "REPRO_FAULT_SPEC": args.fault_spec,
                    "REPRO_FAULT_STATE": fault_state,
                }
                # A deeper retry budget: a kill breaks the whole pool, so
                # collateral attempts are lost alongside the targeted one.
                extra_args = ["--max-retries", "4"]
                print(f"chaos plan: {args.fault_spec}")
            process, base_url = start_server(
                workers, cache_dir, tmp_context.name,
                extra_env=extra_env, extra_args=extra_args,
            )

        health = http_json(f"{base_url}/healthz")
        print(f"server {base_url}: {health['status']}, workers={health['workers']}")

        # ---------------- phase 1: mixed replay ----------------
        print(f"replaying {args.requests} mixed requests "
              f"({len(SPEC_MENU)} distinct specs, concurrency {args.concurrency}) ...")
        outcome = run_phase(base_url, payloads, args.concurrency,
                            args.request_timeout, args.client_retries)
        mixed_metrics = http_json(f"{base_url}/metrics")
        failures = outcome["job_failures"] + outcome["transport_failures"]
        mixed = {
            "requests": args.requests,
            "concurrency": args.concurrency,
            "distinct_specs": len(SPEC_MENU),
            "failures": failures,
            "job_failures": outcome["job_failures"],
            "shed": outcome["shed"],
            "shed_rate": outcome["shed_rate"],
            "transport_failures": outcome["transport_failures"],
            "client_retries": outcome["client_retries"],
            "error_rate": outcome["error_rate"],
            "wall_seconds": round(outcome["wall"], 3),
            "throughput_rps": round(args.requests / outcome["wall"], 1)
                              if outcome["wall"] else 0.0,
            "latency": latency_stats(outcome["latencies"]),
        }
        print(f"  {mixed['throughput_rps']} req/s, "
              f"p50 {mixed['latency']['p50_ms']} ms, "
              f"p99 {mixed['latency']['p99_ms']} ms, "
              f"cache hit rate {mixed_metrics['cache']['hit_rate']:.1%}, "
              f"dedup rate {mixed_metrics['dedup']['rate']:.1%}, "
              f"error rate {mixed['error_rate']:.2%} "
              f"({outcome['job_failures']} job / "
              f"{outcome['transport_failures']} transport), "
              f"shed rate {mixed['shed_rate']:.2%}")

        # ---------------- phase 2: thundering herd ----------------
        before = http_json(f"{base_url}/metrics")
        print(f"thundering herd: {args.herd} identical concurrent submissions "
              f"(held in flight {args.herd_delay_ms} ms) ...")
        herd_outcome = run_phase(base_url, [herd_payload] * args.herd, args.herd,
                                 args.request_timeout, args.client_retries)
        after = http_json(f"{base_url}/metrics")
        computations = after["cache"]["misses"] - before["cache"]["misses"]
        dedup_hits = after["dedup"]["inflight_hits"] - before["dedup"]["inflight_hits"]
        herd_deaths = (after["reliability"]["worker_deaths"]
                       - before["reliability"]["worker_deaths"])
        herd_failures = herd_outcome["job_failures"] + herd_outcome["transport_failures"]
        herd = {
            "submissions": args.herd,
            "delay_ms": args.herd_delay_ms,
            "computations": computations,
            "dedup_inflight_hits": dedup_hits,
            "worker_deaths": herd_deaths,
            "failures": herd_failures,
            "wall_seconds": round(herd_outcome["wall"], 3),
            "latency": latency_stats(herd_outcome["latencies"]),
        }
        # The dedup invariant: one computation serves the whole herd.  Under
        # chaos the herd's worker is killed exactly once mid-flight, so the
        # same invariant passing *plus* a recorded death proves the retry
        # served every subscriber.
        herd_ok = computations == 1 and dedup_hits == args.herd - 1 and herd_failures == 0
        if args.chaos:
            herd_ok = herd_ok and herd_deaths >= 1
        print(f"  {args.herd} submissions -> {computations} computation(s), "
              f"{dedup_hits} in-flight dedup hits, "
              f"{herd_deaths} worker death(s): "
              f"{'OK' if herd_ok else 'DEDUP FAILURE'}")

        record = {
            "schema": CHAOS_SCHEMA if args.chaos else SCHEMA,
            "python": platform.python_version(),
            "seed": args.seed,
            "server_workers": health["workers"],
            "mixed": mixed,
            "herd": herd,
            "metrics": after,
        }
        if args.chaos:
            record["chaos"] = {
                "fault_spec": args.fault_spec,
                "worker_deaths": after["reliability"]["worker_deaths"],
                "retries": after["reliability"]["retries"],
                "timeouts": after["reliability"]["timeouts"],
                "quarantined_jobs": after["reliability"]["quarantined_jobs"],
                "corrupt_records": after["cache"].get("corrupt_records", 0),
            }
        if args.out:
            with open(args.out, "w") as handle:
                json.dump(record, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote {args.out}")

        if not args.server:
            http_json(f"{base_url}/shutdown", b"", method="POST")
            process.wait(timeout=120)
            process = None

        return evaluate_gates(args, record, after)
    finally:
        if process is not None:
            process.kill()
        tmp_context.cleanup()


def evaluate_gates(args, record, metrics) -> int:
    """Exit-code policy: clean runs gate on zero failures, chaos runs gate
    on recovery (every job terminal, herd served through the crash)."""
    mixed, herd = record["mixed"], record["herd"]
    failed = []
    if mixed["transport_failures"]:
        failed.append(f"{mixed['transport_failures']} mixed requests got no response")
    if not args.chaos and mixed["job_failures"]:
        failed.append(f"{mixed['job_failures']} mixed jobs failed")
    if mixed.get("shed"):
        # The default admission operating point is generous by design; a
        # 429 during the deterministic replay means the defaults regressed.
        failed.append(f"{mixed['shed']} mixed requests shed (HTTP 429) under "
                      "the default admission operating point")
    if args.chaos:
        # "No lost jobs": every submission reached a terminal state and the
        # server's books balance — nothing stuck in flight, nothing dropped.
        jobs = metrics["jobs"]
        if jobs["submitted"] != jobs["completed"] + jobs["failed"]:
            failed.append(
                f"lost jobs: submitted {jobs['submitted']} != "
                f"completed {jobs['completed']} + failed {jobs['failed']}"
            )
        if metrics["queue"]["depth"] != 0:
            failed.append(f"queue depth {metrics['queue']['depth']} after drain")
        if metrics["reliability"]["worker_deaths"] < 1:
            failed.append("chaos run recorded no worker deaths — harness inert?")
    if not (herd["computations"] == 1
            and herd["dedup_inflight_hits"] == herd["submissions"] - 1
            and herd["failures"] == 0
            and (not args.chaos or herd["worker_deaths"] >= 1)):
        failed.append("thundering herd did not collapse to one computation"
                      + (" surviving a worker death" if args.chaos else ""))
    if args.compare:
        with open(args.compare) as handle:
            baseline = json.load(handle)
        if baseline.get("schema") != record["schema"]:
            failed.append(
                f"baseline schema {baseline.get('schema')!r} != {record['schema']!r}"
            )
        base_herd = baseline.get("herd", {})
        if base_herd.get("computations") != herd["computations"]:
            failed.append(
                f"herd computations {herd['computations']} != baseline "
                f"{base_herd.get('computations')}"
            )
    for message in failed:
        print(f"FAILURE: {message}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
