#!/usr/bin/env python
"""Load generator for the decomposition service (`repro.service`).

Replays thousands of mixed decomposition/synthesis job requests against a
live server and reports the *operating point* — client-observed p50/p99
latency, throughput, cache hit rate and dedup rate at a given concurrency —
alongside the per-circuit cold numbers `run_bench.py` tracks::

    python benchmarks/run_loadgen.py --requests 2000 --concurrency 16 \
        --out benchmarks/BENCH_service.json

By default the harness launches its own server subprocess (fresh temporary
cache, `--workers` fork-pool processes) and shuts it down gracefully at the
end; point `--server URL` at an already-running instance instead to load-test
a deployment.

Two phases run:

* **mixed replay** — `--requests` jobs sampled (seeded) from a fixed menu of
  quick-width specs, issued by `--concurrency` client threads, each blocking
  on ``POST /jobs?wait=1``.  The first occurrence of each distinct spec
  computes; repeats hit the on-disk store or attach to an in-flight twin.
* **thundering herd** — `--herd` *identical* submissions of a spec that is
  deliberately not in the mixed menu, fired concurrently while the job is
  held in flight (`--herd-delay-ms`).  The demonstration the service exists
  for: the /metrics computation counter must advance by exactly **1**, with
  the remaining N-1 submissions served as in-flight dedup hits.  The run
  exits non-zero if it does not.

The `--out` record (committed as `benchmarks/BENCH_service.json`) stores both
phases plus the final /metrics scrape.  Latency baselines from a loaded box
are noisy by nature — the committed record documents the operating point; the
hard gate is the dedup invariant, not the milliseconds.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import statistics
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

# Allow running as a plain script without PYTHONPATH=src.
_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, os.path.abspath(_SRC))

SCHEMA = "repro-service-loadgen-v1"

#: The mixed-replay menu: (weight, spec).  Small quick widths — the point is
#: traffic shape (dedup + cache behaviour under concurrency), not cold
#: decomposition times, which run_bench.py already tracks.
SPEC_MENU = [
    (8, {"circuit": "majority", "width": 7}),
    (8, {"circuit": "counter", "width": 8}),
    (6, {"circuit": "lzd", "width": 8}),
    (6, {"circuit": "lod", "width": 10}),
    (5, {"circuit": "adder", "width": 6}),
    (5, {"circuit": "comparator", "width": 8}),
    (4, {"circuit": "three_input_adder", "width": 4}),
    (3, {"kind": "synthesize", "circuit": "majority", "width": 7}),
    (3, {"kind": "synthesize", "circuit": "counter", "width": 8}),
    (2, {"kind": "synthesize", "circuit": "adder", "width": 6, "objective": "delay"}),
    (2, {"circuit": "majority", "width": 9}),
    (2, {"circuit": "counter", "width": 10}),
]

#: The herd spec is deliberately absent from the menu so the herd phase is
#: always a cold digest: exactly one computation, N-1 in-flight dedup hits.
HERD_SPEC = {"circuit": "lzd", "width": 9}


def http_json(url: str, data: bytes | None = None, method: str | None = None,
              timeout: float = 120.0):
    request = urllib.request.Request(
        url, data=data, method=method or ("POST" if data is not None else "GET")
    )
    if data is not None:
        request.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(fraction * len(sorted_values))))
    return sorted_values[rank]


def latency_stats(latencies):
    window = sorted(latencies)
    return {
        "count": len(window),
        "p50_ms": round(percentile(window, 0.50) * 1000, 2),
        "p99_ms": round(percentile(window, 0.99) * 1000, 2),
        "mean_ms": round(statistics.fmean(window) * 1000, 2) if window else 0.0,
        "max_ms": round(window[-1] * 1000, 2) if window else 0.0,
    }


def run_phase(base_url: str, payloads, concurrency: int):
    """Issue every payload with ``concurrency`` blocking client threads."""
    latencies = []
    failures = 0

    def one(payload: bytes):
        start = time.perf_counter()
        try:
            body = http_json(f"{base_url}/jobs?wait=1&timeout=300", payload)
            ok = body.get("state") == "done"
        except (urllib.error.URLError, OSError, ValueError):
            ok = False
        return time.perf_counter() - start, ok

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        for elapsed, ok in pool.map(one, payloads):
            latencies.append(elapsed)
            if not ok:
                failures += 1
    wall = time.perf_counter() - start
    return latencies, failures, wall


def start_server(workers: int, cache_dir: str, tmp_dir: str):
    """Launch a server subprocess; returns (process, base_url)."""
    port_file = os.path.join(tmp_dir, "service.port")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--port", "0",
         "--port-file", port_file, "--cache-dir", cache_dir,
         "--workers", str(workers)],
        env={**os.environ, "PYTHONPATH": _SRC + os.pathsep + os.environ.get("PYTHONPATH", "")},
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.time() + 60
    while not os.path.exists(port_file):
        if process.poll() is not None:
            raise RuntimeError(f"server exited early:\n{process.stdout.read()}")
        if time.time() > deadline:
            process.kill()
            raise RuntimeError("server did not report a port within 60 s")
        time.sleep(0.05)
    with open(port_file) as handle:
        port = int(handle.read().strip())
    return process, f"http://127.0.0.1:{port}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=2000,
                        help="mixed-replay request count (default 2000)")
    parser.add_argument("--concurrency", type=int, default=16,
                        help="client threads (default 16)")
    parser.add_argument("--herd", type=int, default=32,
                        help="identical concurrent submissions in the herd phase")
    parser.add_argument("--herd-delay-ms", type=int, default=400,
                        help="in-flight hold time for the herd job (default 400)")
    parser.add_argument("--workers", type=int, default=None,
                        help="server worker processes (default: CPU count)")
    parser.add_argument("--server", metavar="URL", default=None,
                        help="load an already-running server instead of "
                             "launching one (skips shutdown)")
    parser.add_argument("--seed", type=int, default=7,
                        help="workload sampling seed (default 7)")
    parser.add_argument("--out", metavar="OUT.json",
                        help="write the loadgen record to this file")
    args = parser.parse_args(argv)

    rng = random.Random(args.seed)
    weighted = [spec for weight, spec in SPEC_MENU for _ in range(weight)]
    payloads = [
        json.dumps(rng.choice(weighted), sort_keys=True).encode("utf-8")
        for _ in range(args.requests)
    ]
    herd_payload = json.dumps(
        {**HERD_SPEC, "delay_ms": args.herd_delay_ms}, sort_keys=True
    ).encode("utf-8")

    process = None
    tmp_context = tempfile.TemporaryDirectory(prefix="repro-loadgen-")
    try:
        if args.server:
            base_url = args.server.rstrip("/")
        else:
            workers = args.workers if args.workers is not None else (os.cpu_count() or 1)
            cache_dir = os.path.join(tmp_context.name, "cache")
            process, base_url = start_server(workers, cache_dir, tmp_context.name)

        health = http_json(f"{base_url}/healthz")
        print(f"server {base_url}: {health['status']}, workers={health['workers']}")

        # ---------------- phase 1: mixed replay ----------------
        print(f"replaying {args.requests} mixed requests "
              f"({len(SPEC_MENU)} distinct specs, concurrency {args.concurrency}) ...")
        latencies, failures, wall = run_phase(base_url, payloads, args.concurrency)
        mixed_metrics = http_json(f"{base_url}/metrics")
        mixed = {
            "requests": args.requests,
            "concurrency": args.concurrency,
            "distinct_specs": len(SPEC_MENU),
            "failures": failures,
            "wall_seconds": round(wall, 3),
            "throughput_rps": round(args.requests / wall, 1) if wall else 0.0,
            "latency": latency_stats(latencies),
        }
        print(f"  {mixed['throughput_rps']} req/s, "
              f"p50 {mixed['latency']['p50_ms']} ms, "
              f"p99 {mixed['latency']['p99_ms']} ms, "
              f"cache hit rate {mixed_metrics['cache']['hit_rate']:.1%}, "
              f"dedup rate {mixed_metrics['dedup']['rate']:.1%}, "
              f"failures {failures}")

        # ---------------- phase 2: thundering herd ----------------
        before = http_json(f"{base_url}/metrics")
        print(f"thundering herd: {args.herd} identical concurrent submissions "
              f"(held in flight {args.herd_delay_ms} ms) ...")
        herd_latencies, herd_failures, herd_wall = run_phase(
            base_url, [herd_payload] * args.herd, args.herd
        )
        after = http_json(f"{base_url}/metrics")
        computations = after["cache"]["misses"] - before["cache"]["misses"]
        dedup_hits = after["dedup"]["inflight_hits"] - before["dedup"]["inflight_hits"]
        herd = {
            "submissions": args.herd,
            "delay_ms": args.herd_delay_ms,
            "computations": computations,
            "dedup_inflight_hits": dedup_hits,
            "failures": herd_failures,
            "wall_seconds": round(herd_wall, 3),
            "latency": latency_stats(herd_latencies),
        }
        herd_ok = computations == 1 and dedup_hits == args.herd - 1 and herd_failures == 0
        print(f"  {args.herd} submissions -> {computations} computation(s), "
              f"{dedup_hits} in-flight dedup hits: "
              f"{'OK' if herd_ok else 'DEDUP FAILURE'}")

        record = {
            "schema": SCHEMA,
            "python": platform.python_version(),
            "seed": args.seed,
            "server_workers": health["workers"],
            "mixed": mixed,
            "herd": herd,
            "metrics": after,
        }
        if args.out:
            with open(args.out, "w") as handle:
                json.dump(record, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote {args.out}")

        if not args.server:
            http_json(f"{base_url}/shutdown", b"", method="POST")
            process.wait(timeout=120)
            process = None

        if failures:
            print(f"FAILURE: {failures} mixed requests did not complete")
            return 1
        if not herd_ok:
            print("FAILURE: thundering herd did not deduplicate to one computation")
            return 1
        return 0
    finally:
        if process is not None:
            process.kill()
        tmp_context.cleanup()


if __name__ == "__main__":
    sys.exit(main())
