"""Benchmarks regenerating the paper's figures (F1/F2, F3/F4, F6 in DESIGN.md)."""

from repro.eval import figure1_vs_figure2, figure4_online_hierarchy, figure6_majority7_trace


def test_f1_f2_lzd_structure(benchmark):
    """Figures 1 vs 2: the hierarchical LZD has far lower fan-in/interconnect."""
    result = benchmark(figure1_vs_figure2, 16)
    assert result.oklobdzija.max_fanin < result.flat.max_fanin
    assert result.progressive.max_fanin < result.flat.max_fanin
    assert result.progressive.max_fanin <= 6
    assert result.decomposition.verify()


def test_f3_f4_online_hierarchy(benchmark):
    """Figures 3/4: the online-algorithm hierarchy has logarithmic depth."""
    result = benchmark(figure4_online_hierarchy, 16, 1)
    assert result.hierarchical_depth < result.serial_depth
    assert result.hierarchical_delay < result.serial_delay


def test_f6_majority7_trace(benchmark):
    """Figure 6: PD discovers the 4:3 and 3:2 counters inside the 7-bit majority."""
    result = benchmark(figure6_majority7_trace)
    assert len(result.counter_blocks_level1) == 3
    assert any("= 0" in text or "*" in text for text in result.identities)
    assert result.decomposition.num_levels >= 3
