"""Ablation benchmarks for the design choices called out in DESIGN.md.

The paper's algorithm has four optimisation ingredients on top of the plain
pair-merging basis extraction: null-space (Boolean) merging, GF(2) linear
dependence minimisation, local size reduction, and identity-based basis
reduction.  With the pass-pipeline engine each ablation is literally a
pipeline with the corresponding pass left out — assembled here from the pass
objects, not plumbed through option flags — and these benchmarks measure
what each ingredient buys on the circuits where the paper says it matters.
"""

from repro.benchcircuits import majority_spec
from repro.core import decomposition_to_netlist
from repro.engine import (
    BasisExtractionPass,
    GroupingPass,
    IdentityAnalysisPass,
    LinearDependencePass,
    NullspaceMergePass,
    Pipeline,
    RewritePass,
    SizeReductionPass,
)
from repro.synth import synthesize_netlist


def full_pipeline(k: int = 4) -> Pipeline:
    """The paper's full configuration as an explicit pass list."""
    return Pipeline([
        GroupingPass(k),
        BasisExtractionPass(),
        NullspaceMergePass(),
        LinearDependencePass(),
        SizeReductionPass(),
        IdentityAnalysisPass(),
        RewritePass(),
    ])


def pipeline_without(excluded: type, k: int = 4) -> Pipeline:
    """The full pipeline minus one pass class — one ablation."""
    return Pipeline([p for p in full_pipeline(k).passes if not isinstance(p, excluded)])


def _pd_area_delay(spec, pipeline, library):
    decomposition = pipeline.run(spec.outputs, input_words=spec.input_words)
    assert decomposition.verify()
    netlist = decomposition_to_netlist(decomposition, library=library, objective="balanced")
    result = synthesize_netlist(netlist, library)
    return decomposition, result


def test_ablation_identities_enable_counter_discovery(benchmark, library):
    """Without the identity pass the majority basis keeps the redundant e3 block."""
    spec = majority_spec(15)
    decomposition, _ = benchmark(_pd_area_delay, spec, full_pipeline(), library)
    baseline, _ = _pd_area_delay(spec, pipeline_without(IdentityAnalysisPass), library)
    with_level1 = len(decomposition.blocks_at_level(1))
    without_level1 = len(baseline.blocks_at_level(1))
    # With identities the first 4-bit group needs only the 4:3 counter outputs
    # (e1, e2, e4); without them the redundant e3 block is also built.
    assert with_level1 <= 3
    assert with_level1 < without_level1
    identity_texts = [
        identity.description
        for record in decomposition.iterations
        for identity in record.identities_found
    ]
    assert any("t1_0*t1_1" in text for text in identity_texts)


def test_ablation_size_reduction_stays_correct_and_bounded(benchmark, library):
    """Size reduction is a greedy local heuristic: it must stay exact and must
    not blow the hierarchy up (the paper applies it unconditionally)."""
    spec = majority_spec(9)
    decomposition, with_result = benchmark(
        _pd_area_delay, spec, full_pipeline(), library
    )
    baseline, without_result = _pd_area_delay(
        spec, pipeline_without(SizeReductionPass), library
    )
    assert decomposition.verify() and baseline.verify()
    assert decomposition.total_block_literals() <= baseline.total_block_literals() * 1.5
    assert with_result.delay <= without_result.delay * 1.5


def test_ablation_group_size(benchmark, library):
    """k = 4 (the paper's choice) versus k = 2: bigger groups give fewer levels."""
    spec = majority_spec(9)
    decomposition_k4, _ = benchmark(_pd_area_delay, spec, full_pipeline(k=4), library)
    decomposition_k2, _ = _pd_area_delay(spec, full_pipeline(k=2), library)
    assert decomposition_k4.num_levels <= decomposition_k2.num_levels
