"""Ablation benchmarks for the design choices called out in DESIGN.md.

The paper's algorithm has four optimisation ingredients on top of the plain
pair-merging basis extraction: null-space (Boolean) merging, GF(2) linear
dependence minimisation, local size reduction, and identity-based basis
reduction.  These benchmarks measure what each ingredient buys on the
circuits where the paper says it matters.
"""

import pytest

from repro.benchcircuits import majority_spec
from repro.core import DecompositionOptions, decomposition_to_netlist, progressive_decomposition
from repro.synth import synthesize_netlist


def _pd_area_delay(spec, options, library):
    decomposition = progressive_decomposition(spec.outputs, options, input_words=spec.input_words)
    assert decomposition.verify()
    netlist = decomposition_to_netlist(decomposition, library=library, objective="balanced")
    result = synthesize_netlist(netlist, library)
    return decomposition, result


def test_ablation_identities_enable_counter_discovery(benchmark, library):
    """Without identity reduction the majority basis keeps the redundant e3 block."""
    spec = majority_spec(15)
    decomposition, _ = benchmark(
        _pd_area_delay, spec, DecompositionOptions(use_identities=True), library
    )
    baseline, _ = _pd_area_delay(spec, DecompositionOptions(use_identities=False), library)
    with_level1 = len(decomposition.blocks_at_level(1))
    without_level1 = len(baseline.blocks_at_level(1))
    # With identities the first 4-bit group needs only the 4:3 counter outputs
    # (e1, e2, e4); without them the redundant e3 block is also built.
    assert with_level1 <= 3
    assert with_level1 < without_level1
    identity_texts = [
        identity.description
        for record in decomposition.iterations
        for identity in record.identities_found
    ]
    assert any("t1_0*t1_1" in text for text in identity_texts)


def test_ablation_size_reduction_stays_correct_and_bounded(benchmark, library):
    """Size reduction is a greedy local heuristic: it must stay exact and must
    not blow the hierarchy up (the paper applies it unconditionally)."""
    spec = majority_spec(9)
    decomposition, with_result = benchmark(
        _pd_area_delay, spec, DecompositionOptions(use_size_reduction=True), library
    )
    baseline, without_result = _pd_area_delay(
        spec, DecompositionOptions(use_size_reduction=False), library
    )
    assert decomposition.verify() and baseline.verify()
    assert decomposition.total_block_literals() <= baseline.total_block_literals() * 1.5
    assert with_result.delay <= without_result.delay * 1.5


def test_ablation_group_size(benchmark, library):
    """k = 4 (the paper's choice) versus k = 2: bigger groups give fewer levels."""
    spec = majority_spec(9)
    decomposition_k4, _ = benchmark(_pd_area_delay, spec, DecompositionOptions(k=4), library)
    decomposition_k2, _ = _pd_area_delay(spec, DecompositionOptions(k=2), library)
    assert decomposition_k4.num_levels <= decomposition_k2.num_levels
