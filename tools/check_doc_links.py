#!/usr/bin/env python
"""Check that relative links and path references in the repo's markdown resolve.

Scans every tracked ``*.md`` file for:

* inline markdown links ``[text](target)`` whose target is a relative path
  (external URLs and pure ``#fragment`` anchors are skipped), and
* backticked repo paths like ```docs/SERVICE.md`` or ``benchmarks/run_loadgen.py``
  (two path components or more and a known source/doc suffix — the style the
  docs use to name files),

and fails if any referenced file or directory does not exist.  This is the
CI guard against documentation drift: renaming a module or a doc without
updating its references turns the build red instead of rotting quietly.

Exit status: 0 when every reference resolves, 1 otherwise (offenders listed).
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from pathlib import Path

#: Inline markdown links: [text](target).  Titles ("...") are stripped later.
MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Backticked repo paths: at least one '/', a known suffix, no spaces/globs.
TICKED_PATH = re.compile(
    r"`([A-Za-z0-9_.][A-Za-z0-9_./-]*/[A-Za-z0-9_.-]+"
    r"\.(?:py|md|json|c|yml|toml|txt))`"
)

#: Backticked references that are examples, not commitments.
TICKED_IGNORE_PREFIXES = ("/", "~", "http:", "https:")

#: The docs name in-package files by package-relative shorthand
#: (`engine/batch.py` for `src/repro/engine/batch.py`); resolve through
#: these roots, in order, before declaring a reference broken.
PATH_ROOTS = ("", "src", "src/repro")


def tracked_markdown(root: Path) -> list[Path]:
    try:
        out = subprocess.run(
            ["git", "ls-files", "*.md"],
            cwd=root, capture_output=True, text=True, check=True,
        ).stdout
        files = [root / line for line in out.splitlines() if line]
        if files:
            return files
    except (OSError, subprocess.CalledProcessError):
        pass
    return sorted(p for p in root.rglob("*.md") if ".git" not in p.parts)


def strip_code_blocks(text: str) -> tuple[str, str]:
    """Split into (prose, fenced-code) so each gets the right checks.

    Links are only checked in prose (code blocks show command output);
    backticked paths only occur in prose by construction.
    """
    prose: list[str] = []
    code: list[str] = []
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        (code if in_fence else prose).append(line)
    return "\n".join(prose), "\n".join(code)


def check_file(md: Path, root: Path) -> list[str]:
    prose, _code = strip_code_blocks(md.read_text(encoding="utf-8"))
    errors: list[str] = []

    for match in MD_LINK.finditer(prose):
        target = match.group(1).split("#", 1)[0]
        if not target or "://" in target or target.startswith(("mailto:", "#")):
            continue
        # Badge/action links of the form ../../actions/... leave the repo.
        resolved = (md.parent / target).resolve()
        try:
            resolved.relative_to(root)
        except ValueError:
            continue
        if not resolved.exists():
            errors.append(f"{md.relative_to(root)}: broken link -> {target}")

    for match in TICKED_PATH.finditer(prose):
        target = match.group(1)
        if target.startswith(TICKED_IGNORE_PREFIXES):
            continue
        if not any((root / base / target).exists() for base in PATH_ROOTS):
            errors.append(f"{md.relative_to(root)}: missing path -> `{target}`")

    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: this script's grandparent)")
    args = parser.parse_args(argv)
    root = Path(args.root).resolve() if args.root else Path(__file__).resolve().parent.parent

    errors: list[str] = []
    files = tracked_markdown(root)
    for md in files:
        errors.extend(check_file(md, root))

    if errors:
        print(f"{len(errors)} broken documentation reference(s):")
        for error in errors:
            print(f"  {error}")
        return 1
    print(f"checked {len(files)} markdown files: all references resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
