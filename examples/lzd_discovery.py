"""Rediscovering Oklobdzija's LZD architecture (paper Figures 1 and 2).

Feeds the flat leading-zero-detector specification to Progressive
Decomposition and compares the resulting hierarchy with the flat SOP
description and the manual hierarchical design.

Run with::

    python examples/lzd_discovery.py [width]
"""

import sys

from repro.benchcircuits import lzd_spec, lzd_sop, oklobdzija_lzd_netlist
from repro.circuit import sop_to_netlist, structure_stats
from repro.core import decomposition_to_netlist, hierarchy_stats, progressive_decomposition
from repro.eval import run_baseline_flow, run_progressive_flow, run_structural_flow


def main(width: int = 16) -> None:
    spec = lzd_spec(width)
    print(f"{width}-bit LZD: Reed-Muller size = "
          f"{sum(e.num_terms for e in spec.outputs.values())} monomials")

    # Progressive Decomposition rediscovers the 4-bit-block hierarchy.
    decomposition = progressive_decomposition(spec.outputs, input_words=spec.input_words)
    assert decomposition.verify()
    stats = hierarchy_stats(decomposition)
    print("\n=== discovered hierarchy ===")
    print(f"{stats.num_blocks} blocks over {stats.num_levels} levels; "
          f"largest block spans {stats.max_block_support} variables")
    for block in decomposition.blocks_at_level(1):
        print(f"  level-1 block {block.name} over group {{{', '.join(block.group)}}}")

    # Structural comparison (Figures 1 vs 2).
    flat = sop_to_netlist(lzd_sop(spec), inputs=spec.inputs, name="lzd_flat")
    manual = oklobdzija_lzd_netlist(width)
    pd_netlist = decomposition_to_netlist(decomposition, name="lzd_pd")
    print("\n=== interconnect statistics (Fig. 1 vs Fig. 2) ===")
    for netlist in (flat, manual, pd_netlist):
        s = structure_stats(netlist)
        print(f"  {s.name:<16} connections={s.num_connections:<4} max_fanin={s.max_fanin:<3} "
              f"depth={s.depth}")

    # Area / delay comparison (Table 1 row 1).
    print("\n=== synthesis comparison ===")
    for flow in (
        run_baseline_flow(spec.outputs, "Unoptimised (SOP)"),
        run_progressive_flow(spec.outputs, spec.input_words, "Progressive Decomposition"),
        run_structural_flow(manual, "Oklobdzija (manual)"),
    ):
        print(f"  {flow.label:<28} area={flow.area:8.1f} um2   delay={flow.delay:.3f} ns")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 16)
