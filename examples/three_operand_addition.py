"""Three-operand addition: Progressive Decomposition versus the alternatives
(paper Table 1, "12-bit Three-Input Adder").

The flat description of ``A + B + C`` defeats algebraic restructuring, while
Progressive Decomposition recovers a carry-save-like organisation close to
the manual CSA + adder design.

Run with::

    python examples/three_operand_addition.py [width]
"""

import sys

from repro.benchcircuits import cascaded_rca_netlist, csa_adder_netlist, three_input_adder_spec
from repro.eval import run_baseline_flow, run_progressive_flow, run_structural_flow


def main(width: int = 8) -> None:
    spec = three_input_adder_spec(width)
    total_terms = sum(e.num_terms for e in spec.outputs.values())
    print(f"{width}-bit three-input adder: {total_terms} Reed-Muller monomials over "
          f"{3 * width} inputs")

    flows = [
        run_baseline_flow(spec.outputs, "Unoptimised (A + B + C)"),
        run_structural_flow(cascaded_rca_netlist(width), "RCA(RCA(A, B), C)"),
        run_progressive_flow(spec.outputs, spec.input_words, "Progressive Decomposition"),
        run_structural_flow(csa_adder_netlist(width), "CSA + Adder"),
    ]
    print(f"\n{'implementation':<28} {'area (um2)':>12} {'delay (ns)':>12}")
    for flow in flows:
        print(f"{flow.label:<28} {flow.area:>12.1f} {flow.delay:>12.3f}")

    progressive = flows[2]
    assert progressive.decomposition is not None
    print("\nfirst-level blocks produced by Progressive Decomposition "
          "(generate/propagate-style leader expressions):")
    for block in progressive.decomposition.blocks_at_level(1):
        print(f"  {block.name} = {block.definition.to_str()}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
