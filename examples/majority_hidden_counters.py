"""The 15-bit majority function: Progressive Decomposition finds the hidden
parallel counters (paper section 6 and Figure 6).

Run with::

    python examples/majority_hidden_counters.py [width]
"""

import sys

from repro.benchcircuits import majority_spec
from repro.core import hierarchy_stats, progressive_decomposition
from repro.eval import run_baseline_flow, run_progressive_flow


def main(width: int = 15) -> None:
    spec = majority_spec(width)
    expr = spec.outputs["maj"]
    print(f"{width}-input majority: {expr.num_terms} Reed-Muller monomials of degree {expr.degree}")

    decomposition = progressive_decomposition(spec.outputs, input_words=spec.input_words)
    assert decomposition.verify()
    stats = hierarchy_stats(decomposition)
    print(f"\ndiscovered hierarchy: {stats.num_blocks} blocks over {stats.num_levels} levels")
    print("\nfirst-level blocks (the hidden 4-bit counter outputs):")
    for block in decomposition.blocks_at_level(1):
        print(f"  {block.name} = {block.definition.to_str()}")
    print("\nidentities the algorithm found along the way:")
    for record in decomposition.iterations[:3]:
        for identity in record.identities_found:
            print(f"  {identity.description}")

    print("\nsynthesis comparison (counting then comparing beats the flat description):")
    baseline = run_baseline_flow(spec.outputs, "Unoptimised (SOP)")
    progressive = run_progressive_flow(spec.outputs, spec.input_words, "Progressive Decomposition")
    for flow in (baseline, progressive):
        print(f"  {flow.label:<28} area={flow.area:8.1f} um2   delay={flow.delay:.3f} ns")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 15)
