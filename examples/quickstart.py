"""Quickstart: decompose a small arithmetic circuit and synthesise it.

Run with::

    python examples/quickstart.py
"""

from repro.anf import Context, parse
from repro.core import decomposition_to_netlist, progressive_decomposition
from repro.circuit import check_netlist_against_anf
from repro.synth import synthesize_netlist


def main() -> None:
    # 1. Describe the circuit as Boolean expressions (any description works —
    #    the engine converts it to the canonical Reed-Muller form).
    ctx = Context()
    spec = {
        # The majority and the parity of five inputs — two outputs that share
        # hidden counter structure.
        "majority": parse(ctx, "a*b ^ a*c ^ a*d ^ a*e ^ b*c ^ b*d ^ b*e ^ c*d ^ c*e ^ d*e"
                               " ^ a*b*c*d ^ a*b*c*e ^ a*b*d*e ^ a*c*d*e ^ b*c*d*e"),
        "parity": parse(ctx, "a ^ b ^ c ^ d ^ e"),
    }

    # 2. Run Progressive Decomposition (k = 4, the paper's setting).
    decomposition = progressive_decomposition(spec, input_words=[["a", "b", "c", "d", "e"]])
    print("=== hierarchy ===")
    print(decomposition.describe())
    print()
    print("=== per-iteration trace (Fig. 6 style) ===")
    print(decomposition.trace())
    print()
    assert decomposition.verify(), "the hierarchy must reproduce the specification exactly"

    # 3. Emit the hierarchy as a netlist and synthesise it onto the 0.13 µm-class
    #    library (our Design Compiler substitute).
    netlist = decomposition_to_netlist(decomposition)
    assert check_netlist_against_anf(netlist, spec).equivalent
    result = synthesize_netlist(netlist)
    print("=== synthesis result ===")
    print(result.summary())
    print("critical path:", result.timing.path_description())


if __name__ == "__main__":
    main()
