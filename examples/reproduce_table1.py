"""Regenerate the paper's Table 1 end to end.

Run with::

    python examples/reproduce_table1.py                   # full widths (a few minutes)
    python examples/reproduce_table1.py --quick           # reduced widths (< 1 minute)
    python examples/reproduce_table1.py --batch           # decompositions in parallel
    python examples/reproduce_table1.py --batch --cache .pd-cache
                                                          # ... and cached on disk

``--batch`` routes the Progressive Decomposition runs through the engine's
batch orchestrator (one worker process per row); with ``--cache DIR`` both
the decomposition results *and* the per-variant synthesis metrics persist
(the latter under ``DIR/synth``), so re-running the table skips the engine
and the synthesiser entirely.  The measured numbers (and the paper's
reference values) are also recorded in EXPERIMENTS.md.
"""

import argparse

from repro.eval import build_table1, build_table1_batch, format_table1


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced widths (< 1 minute)")
    parser.add_argument("--batch", action="store_true",
                        help="run the decompositions through the batch orchestrator")
    parser.add_argument("--cache", metavar="DIR", default=None,
                        help="on-disk decomposition cache directory (implies --batch)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (implies --batch; default: one per row)")
    args = parser.parse_args(argv)

    if args.batch or args.cache is not None or args.jobs is not None:
        rows = build_table1_batch(
            quick=args.quick, cache_dir=args.cache, processes=args.jobs
        )
    else:
        rows = build_table1(quick=args.quick)
    print(format_table1(rows))
    print("qualitative shape checks:")
    for row in rows:
        pd = row.progressive()
        unopt = row.unoptimised()
        direction = "faster" if pd.delay < unopt.delay else "not faster"
        print(f"  {row.circuit:<32} PD is {direction} than the unoptimised description "
              f"({pd.delay:.3f} ns vs {unopt.delay:.3f} ns)")


if __name__ == "__main__":
    main()
