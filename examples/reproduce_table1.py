"""Regenerate the paper's Table 1 end to end.

Run with::

    python examples/reproduce_table1.py           # full widths (a few minutes)
    python examples/reproduce_table1.py --quick   # reduced widths (< 1 minute)

The measured numbers (and the paper's reference values) are also recorded in
EXPERIMENTS.md.
"""

import sys

from repro.eval import build_table1, format_table1


def main(quick: bool = False) -> None:
    rows = build_table1(quick=quick)
    print(format_table1(rows))
    print("qualitative shape checks:")
    for row in rows:
        pd = row.progressive()
        unopt = row.unoptimised()
        direction = "faster" if pd.delay < unopt.delay else "not faster"
        print(f"  {row.circuit:<32} PD is {direction} than the unoptimised description "
              f"({pd.delay:.3f} ns vs {unopt.delay:.3f} ns)")


if __name__ == "__main__":
    main(quick="--quick" in sys.argv[1:])
