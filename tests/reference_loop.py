"""The seed's monolithic Fig. 5 loop, kept verbatim as an executable spec.

The pass-pipeline engine (``repro.engine``) replaced this loop; the parity
property tests in ``test_engine_parity.py`` run both on the same inputs and
assert bit-identical results — blocks, outputs, and the full per-iteration
trace.  Apart from the imports and the function name, this file is the seed
implementation unchanged; do not "improve" it.
"""

from typing import Dict, List, Mapping, Optional, Sequence

from repro.anf.expression import Anf
from repro.core.basis import extract_basis
from repro.core.decompose import Block, Decomposition, DecompositionOptions, IterationRecord
from repro.core.grouping import find_group, support_of_outputs
from repro.core.identities import (
    Identity,
    IdentityAnalysis,
    find_identities,
    reduce_basis_using_identities,
)
from repro.core.optimize import (
    improve_basis_by_size_reduction,
    minimize_basis_by_linear_dependence,
)
from repro.core.rewrite import rewrite_identities, rewrite_outputs

def _total_literals(outputs: Mapping[str, Anf]) -> int:
    return sum(expr.literal_count for expr in outputs.values())


def _is_terminal(expr: Anf) -> bool:
    """Outputs are terminal once they depend on at most one variable."""
    mask = expr.support_mask
    return mask == 0 or (mask & (mask - 1)) == 0


def reference_decomposition(
    outputs: Mapping[str, Anf],
    options: DecompositionOptions | None = None,
    input_words: Sequence[Sequence[str]] | None = None,
) -> Decomposition:
    """Run Progressive Decomposition on a multi-output specification.

    ``input_words`` lists the primary-input buses (LSB first) so that
    ``findGroup`` can pick the least-significant available bits of each
    integer operand, as the paper prescribes; by default all primary inputs
    are treated as a single word in declaration order.
    """
    if not outputs:
        raise ValueError("progressive_decomposition needs at least one output")
    options = options or DecompositionOptions()
    first_expr = next(iter(outputs.values()))
    ctx = first_expr.ctx
    for expr in outputs.values():
        ctx.require_same(expr.ctx)

    original = dict(outputs)
    current: Dict[str, Anf] = dict(outputs)
    primary_inputs = support_of_outputs(current, ctx)
    if input_words is None:
        input_words = [list(primary_inputs)]

    blocks: List[Block] = []
    iterations: List[IterationRecord] = []
    identities: List[Anf] = []
    level = 0
    forced_full_group = False

    while not all(_is_terminal(expr) for expr in current.values()):
        if level >= options.max_iterations:
            raise RuntimeError(
                f"progressive decomposition did not converge in {options.max_iterations} iterations"
            )
        level += 1
        active = {port: expr for port, expr in current.items() if not _is_terminal(expr)}
        size_before = _total_literals(current)

        if forced_full_group:
            group = support_of_outputs(active, ctx)
        else:
            group = find_group(active, options.k, ctx, primary_inputs, input_words, identities)
        if not group:
            group = support_of_outputs(active, ctx)

        extraction = extract_basis(
            active, group, identities if options.use_identities else (), ctx,
            use_nullspaces=options.use_nullspaces,
        )
        pair_list = extraction.pair_list
        if options.use_linear_dependence:
            pair_list = minimize_basis_by_linear_dependence(pair_list)
        if options.use_size_reduction:
            pair_list = improve_basis_by_size_reduction(pair_list)
        extraction.pair_list = pair_list

        basis_definitions = pair_list.firsts()

        # Propose names: existing literals keep their own name, real blocks get
        # fresh names at this level.
        proposed_names: List[str] = []
        fresh_index = 0
        for definition in basis_definitions:
            if definition.is_literal:
                proposed_names.append(definition.literal_name)
            else:
                proposed_names.append(f"{options.block_prefix}{level}_{fresh_index}")
                fresh_index += 1

        # Identities among the prospective blocks.
        identities_found: List[Identity] = []
        analysis: Optional[IdentityAnalysis] = None
        if options.use_identities and basis_definitions:
            identities_found = find_identities(
                proposed_names, basis_definitions, ctx, options.identity_products
            )
            analysis = reduce_basis_using_identities(
                proposed_names, basis_definitions, identities_found, ctx
            )
        removed: Dict[str, Anf] = dict(analysis.replacements) if analysis else {}

        # Build the substitution for every pair and create the real blocks.
        substitutions: List[Anf] = []
        block_names: List[str] = []
        new_blocks: List[Block] = []
        for name, definition in zip(proposed_names, basis_definitions):
            if definition.is_literal:
                substitutions.append(definition)
                block_names.append(name)
                continue
            if name in removed:
                substitutions.append(removed[name])
                block_names.append(name)
                continue
            ctx.add_var(name)
            new_blocks.append(Block(name, level, definition, list(group)))
            substitutions.append(Anf.var(ctx, name))
            block_names.append(name)

        rewritten = rewrite_outputs(extraction, substitutions, ctx)
        next_outputs = dict(current)
        next_outputs.update(rewritten)

        # Carry identities forward: drop those mentioning the consumed group,
        # add the product identities over the surviving new blocks.
        identities = rewrite_identities(identities, group, ctx)
        if analysis is not None:
            surviving = {block.name for block in new_blocks} | set(primary_inputs)
            for identity in analysis.identities:
                if identity.kind != "product":
                    continue
                if set(identity.expr.support) <= surviving:
                    identities.append(identity.expr)

        size_after = _total_literals(next_outputs)
        iterations.append(
            IterationRecord(
                index=level,
                group=list(group),
                basis_definitions=basis_definitions,
                block_names=block_names,
                substitutions=substitutions,
                identities_found=identities_found,
                removed_blocks=removed,
                size_before=size_before,
                size_after=size_after,
            )
        )

        made_progress = bool(new_blocks) or any(
            next_outputs[port] != current[port] for port in current
        )
        blocks.extend(new_blocks)
        current = next_outputs

        if not made_progress:
            if forced_full_group:
                raise RuntimeError("progressive decomposition stalled even with a full group")
            forced_full_group = True
        else:
            forced_full_group = False

    return Decomposition(
        ctx=ctx,
        original=original,
        outputs=current,
        blocks=blocks,
        iterations=iterations,
        options=options,
        primary_inputs=primary_inputs,
    )
