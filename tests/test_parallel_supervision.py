"""Worker-supervision tests for the two process-pool layers.

The scenario under test is always the same: a pool worker dies hard
(SIGKILL — an OOM kill or segfault, not an exception) while a map is in
flight.  Before supervision, ``multiprocessing.Pool`` respawned the worker
but never completed its lost task, so ``shard_map`` hung forever;
``map_parallel`` raised an opaque pool error.  Both layers now detect the
death and re-run the map serially in-process with a ``RuntimeWarning`` —
and because every mapped function is pure, the fallback results are
bit-identical to the healthy parallel path.
"""

import os
import signal

import pytest

from repro import parallel
from repro.engine.batch import map_parallel
from repro.parallel import (
    _close_shard_pool,
    in_pool_worker,
    mark_pool_worker,
    shard_map,
    shard_workers,
)

KILL_ITEM = 13


def _square(item):
    return item * item


def _square_or_die(item):
    """Square the item — but SIGKILL the process on ``KILL_ITEM`` if this is
    a pool worker.  In the serial fallback (main process) it is pure."""
    if item == KILL_ITEM and in_pool_worker():
        os.kill(os.getpid(), signal.SIGKILL)
    return item * item


@pytest.fixture(autouse=True)
def _fresh_pool(monkeypatch):
    monkeypatch.delenv(parallel.SHARD_ENV, raising=False)
    _close_shard_pool()
    yield
    _close_shard_pool()


class TestPoolWorkerFlag:
    def test_main_process_is_not_a_pool_worker(self):
        assert in_pool_worker() is False

    def test_mark_pool_worker_sets_flag(self, monkeypatch):
        monkeypatch.setattr(parallel, "_pool_worker", False)
        mark_pool_worker()
        assert in_pool_worker() is True
        monkeypatch.setattr(parallel, "_pool_worker", False)

    def test_shard_workers_disabled_inside_pool_worker(self, monkeypatch):
        monkeypatch.setenv(parallel.SHARD_ENV, "4")
        assert shard_workers() == 4
        monkeypatch.setattr(parallel, "_pool_worker", True)
        assert shard_workers() is None


class TestShardMapSupervision:
    def test_healthy_map_matches_serial(self, monkeypatch):
        monkeypatch.setenv(parallel.SHARD_ENV, "2")
        items = list(range(20))
        assert shard_map(_square, items) == [i * i for i in items]

    def test_worker_death_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv(parallel.SHARD_ENV, "2")
        items = list(range(20))
        with pytest.warns(RuntimeWarning, match="pass-shard worker died"):
            results = shard_map(_square_or_die, items)
        assert results == [i * i for i in items]
        # The broken pool was torn down; the next call builds a fresh one
        # and works normally.
        assert shard_map(_square, items) == [i * i for i in items]


class TestMapParallelSupervision:
    def test_healthy_map_matches_serial(self):
        items = list(range(8))
        assert map_parallel(_square, items, processes=2) == [i * i for i in items]

    def test_worker_death_falls_back_to_serial(self):
        items = list(range(20))
        with pytest.warns(RuntimeWarning, match="batch worker died"):
            results = map_parallel(_square_or_die, items, processes=2)
        assert results == [i * i for i in items]

    def test_inside_pool_worker_stays_serial(self, monkeypatch):
        monkeypatch.setattr(parallel, "_pool_worker", True)
        items = list(range(4))
        assert map_parallel(_square, items, processes=4) == [i * i for i in items]
