"""Tests for SOP cubes, truth tables and the expression parser."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.anf import Anf, Context, Cube, ParseError, Sop, TruthTable, anf_to_sop, build_from_function, parse


class TestParser:
    def test_precedence(self):
        ctx = Context()
        assert parse(ctx, "a ^ b & c") == parse(ctx, "a ^ (b & c)")
        assert parse(ctx, "a | b ^ c") == parse(ctx, "a | (b ^ c)")
        assert parse(ctx, "~a & b") == parse(ctx, "(~a) & b")

    def test_alternative_symbols(self):
        ctx = Context()
        assert parse(ctx, "a*b + c") == parse(ctx, "(a & b) | c")
        assert parse(ctx, "!a") == parse(ctx, "~a")

    def test_constants(self):
        ctx = Context()
        assert parse(ctx, "1 ^ a") == ~Anf.var(ctx, "a")
        assert parse(ctx, "0 | a") == Anf.var(ctx, "a")

    def test_errors(self):
        ctx = Context()
        with pytest.raises(ParseError):
            parse(ctx, "a ^")
        with pytest.raises(ParseError):
            parse(ctx, "(a ^ b")
        with pytest.raises(ParseError):
            parse(ctx, "a $ b")
        with pytest.raises(ParseError):
            parse(ctx, "a b")


class TestSop:
    def test_cube_semantics(self):
        ctx = Context(["a", "b", "c"])
        cube = Cube(ctx.mask_of(["a"]), ctx.mask_of(["b"]))
        assert cube.num_literals == 2
        assert cube.contains_point(ctx.mask_of(["a"]))
        assert not cube.contains_point(ctx.mask_of(["a", "b"]))
        assert cube.render(ctx) == "a*~b"

    def test_cube_conflict_rejected(self):
        with pytest.raises(ValueError):
            Cube(0b1, 0b1)

    def test_cube_covers(self):
        ctx = Context(["a", "b"])
        broad = Cube(ctx.mask_of(["a"]), 0)
        narrow = Cube(ctx.mask_of(["a", "b"]), 0)
        assert broad.covers(narrow)
        assert not narrow.covers(broad)

    def test_sop_to_anf_matches_evaluation(self):
        ctx = Context(["a", "b", "c"])
        sop = Sop.from_literal_names(ctx, [(("a",), ("b",)), (("b", "c"), ())])
        expr = sop.to_anf()
        for point in range(8):
            env = {"a": point & 1, "b": (point >> 1) & 1, "c": (point >> 2) & 1}
            assert expr.evaluate(env) == sop.evaluate(env)

    def test_anf_to_sop_roundtrip(self):
        ctx = Context()
        expr = parse(ctx, "a*b ^ c ^ a*c")
        sop = anf_to_sop(expr)
        assert sop.to_anf() == expr

    def test_empty_sop_is_zero(self):
        ctx = Context(["a"])
        assert Sop(ctx).to_anf().is_zero
        assert Sop(ctx).render() == "0"


class TestTruthTable:
    def test_from_function_and_anf_roundtrip(self):
        ctx = Context()
        names = ["x0", "x1", "x2"]
        table = TruthTable.from_function(ctx, names, lambda bits: bits[0] ^ (bits[1] & bits[2]))
        expr = table.to_anf()
        assert expr == parse(ctx, "x0 ^ x1*x2")
        back = TruthTable.from_anf(expr, names)
        assert back == table

    def test_build_from_function(self):
        ctx = Context()
        expr = build_from_function(ctx, ["p", "q"], lambda bits: bits[0] or bits[1])
        assert expr == parse(ctx, "p | q")

    def test_count_ones_and_evaluate(self):
        ctx = Context()
        names = ["a", "b"]
        table = TruthTable.from_function(ctx, names, lambda bits: bits[0] and bits[1])
        assert table.count_ones() == 1
        assert table.evaluate({"a": 1, "b": 1}) == 1
        assert table.evaluate({"a": 1, "b": 0}) == 0

    def test_shape_validation(self):
        ctx = Context()
        with pytest.raises(ValueError):
            TruthTable(ctx, ["a"], [0, 1, 0])

    @given(st.integers(min_value=0, max_value=2 ** 16 - 1))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_random_function(self, bits):
        ctx = Context()
        names = [f"v{i}" for i in range(4)]
        values = [(bits >> i) & 1 for i in range(16)]
        table = TruthTable(ctx, names, values)
        expr = table.to_anf()
        assert TruthTable.from_anf(expr, names) == table
