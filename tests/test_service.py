"""Service front-end tests: dedup, lifecycle, validation, graceful shutdown.

The server runs in-process on a background thread (``ServiceThread``) with
``workers=0`` — one in-process worker thread, no fork — which makes the
execution order deterministic: the computation counter in ``/metrics`` is
exact, so "N identical concurrent submissions → one pipeline execution" is
an assertion, not a probability.  One test exercises the fork-pool path
(``workers=1``) end to end as well.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.engine import CacheTelemetry, DecompositionCache, run_job
from repro.benchcircuits import majority_spec
from repro.service import ServiceThread, SpecError, parse_job_spec
from repro.service.jobs import MAX_WIDTH


def http_json(url, data=None, method=None, timeout=60.0):
    request = urllib.request.Request(
        url, data=data, method=method or ("POST" if data is not None else "GET")
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def post_spec(base_url, spec, wait=True, timeout=60.0):
    suffix = "?wait=1" if wait else ""
    return http_json(
        f"{base_url}/jobs{suffix}",
        json.dumps(spec).encode("utf-8"),
        timeout=timeout,
    )


@pytest.fixture()
def service(tmp_path):
    with ServiceThread(cache_dir=str(tmp_path / "store"), workers=0) as handle:
        yield handle


# ----------------------------------------------------------------------
# Spec parsing (no server needed)
# ----------------------------------------------------------------------
class TestSpecParsing:
    def test_minimal_spec_defaults(self):
        spec = parse_job_spec({"circuit": "majority", "width": 5})
        assert spec.kind == "decompose"
        assert spec.objective == "balanced"
        assert spec.options.k == 4
        assert spec.delay_ms == 0

    def test_digest_separates_distinct_jobs(self):
        base = parse_job_spec({"circuit": "majority", "width": 5})
        assert base.digest() == parse_job_spec({"circuit": "majority", "width": 5}).digest()
        for other in (
            {"circuit": "majority", "width": 7},
            {"circuit": "counter", "width": 5},
            {"kind": "synthesize", "circuit": "majority", "width": 5},
            {"circuit": "majority", "width": 5, "options": {"k": 3}},
            {"circuit": "majority", "width": 5, "verify": True},
            {"circuit": "majority", "width": 5, "delay_ms": 10},
        ):
            assert parse_job_spec(other).digest() != base.digest()

    @pytest.mark.parametrize("bad, field", [
        ({"circuit": "nope", "width": 5}, "circuit"),
        ({"width": 5}, "circuit"),
        ({"circuit": "majority"}, "width"),
        ({"circuit": "majority", "width": 0}, "width"),
        ({"circuit": "majority", "width": MAX_WIDTH + 1}, "width"),
        ({"circuit": "majority", "width": True}, "width"),
        ({"circuit": "majority", "width": 5, "kind": "transmogrify"}, "kind"),
        ({"circuit": "majority", "width": 5, "objective": "vibes"}, "objective"),
        ({"circuit": "majority", "width": 5, "options": {"nope": 1}}, "options"),
        ({"circuit": "majority", "width": 5, "options": {"k": "four"}}, "options"),
        ({"circuit": "majority", "width": 5, "options": {"use_identities": 1}}, "options"),
        ({"circuit": "majority", "width": 5, "delay_ms": -1}, "delay_ms"),
        ({"circuit": "majority", "width": 5, "frobnicate": True}, "frobnicate"),
    ])
    def test_rejections_carry_field(self, bad, field):
        with pytest.raises(SpecError) as excinfo:
            parse_job_spec(bad)
        assert excinfo.value.detail["field"] == field

    def test_non_object_spec_rejected(self):
        with pytest.raises(SpecError):
            parse_job_spec([1, 2, 3])


# ----------------------------------------------------------------------
# HTTP lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_submit_poll_and_metrics(self, service):
        base = service.base_url
        status, health = http_json(f"{base}/healthz")
        assert status == 200 and health["status"] == "ok"

        status, body = post_spec(base, {"circuit": "majority", "width": 5}, wait=False)
        assert status == 202
        assert body["state"] in ("queued", "running")
        job_id = body["id"]

        status, done = http_json(f"{base}/jobs/{job_id}?wait=1")
        assert status == 200 and done["state"] == "done"
        result = done["result"]
        assert result["blocks"] >= 1 and result["levels"] >= 1
        assert result["decomposition_cached"] is False

        # Same spec again: served from the on-disk store, not recomputed.
        status, warm = post_spec(base, {"circuit": "majority", "width": 5})
        assert warm["state"] == "done"
        assert warm["result"]["decomposition_cached"] is True

        status, metrics = http_json(f"{base}/metrics")
        assert metrics["jobs"]["submitted"] == 2
        assert metrics["jobs"]["completed"] == 2
        assert metrics["cache"]["misses"] == 1
        assert metrics["cache"]["hits"] == 1
        assert metrics["latency_seconds"]["count"] == 2
        assert metrics["latency_seconds"]["p99"] >= metrics["latency_seconds"]["p50"]

    def test_synthesize_job_reports_area_delay(self, service):
        status, body = post_spec(
            service.base_url,
            {"kind": "synthesize", "circuit": "adder", "width": 4},
        )
        assert body["state"] == "done"
        result = body["result"]
        assert result["area"] > 0 and result["delay"] > 0 and result["cells"] > 0
        # Synthesis metrics cache under <store>/synth: resubmitting is warm.
        status, again = post_spec(
            service.base_url,
            {"kind": "synthesize", "circuit": "adder", "width": 4},
        )
        assert again["result"]["synthesis_cached"] is True
        assert again["result"]["area"] == result["area"]

    def test_verify_flag(self, service):
        status, body = post_spec(
            service.base_url, {"circuit": "counter", "width": 5, "verify": True}
        )
        assert body["result"]["verified"] is True

    def test_events_stream_ends_terminal(self, service):
        status, body = post_spec(
            service.base_url, {"circuit": "majority", "width": 5, "delay_ms": 200},
            wait=False,
        )
        with urllib.request.urlopen(
            f"{service.base_url}/jobs/{body['id']}/events", timeout=60
        ) as stream:
            lines = [json.loads(line) for line in stream.read().splitlines() if line]
        assert lines[-1]["state"] == "done"

    def test_job_listing(self, service):
        post_spec(service.base_url, {"circuit": "majority", "width": 5})
        status, listing = http_json(f"{service.base_url}/jobs")
        assert status == 200
        assert listing["count"] == len(listing["jobs"]) >= 1


# ----------------------------------------------------------------------
# Validation over HTTP
# ----------------------------------------------------------------------
class TestValidation:
    def test_malformed_json_is_structured_400(self, service):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            http_json(f"{service.base_url}/jobs", b"{definitely not json")
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert "not valid JSON" in body["error"]["message"]

    def test_bad_spec_is_structured_400(self, service):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            http_json(
                f"{service.base_url}/jobs",
                json.dumps({"circuit": "majority", "width": 99}).encode(),
            )
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert body["error"]["field"] == "width"
        _, metrics = http_json(f"{service.base_url}/metrics")
        assert metrics["jobs"]["rejected"] == 1

    def test_unknown_job_and_route_are_404(self, service):
        for path in ("/jobs/ffffffffffffffff", "/nope"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                http_json(service.base_url + path)
            assert excinfo.value.code == 404


# ----------------------------------------------------------------------
# In-flight deduplication
# ----------------------------------------------------------------------
class TestDedup:
    HERD = 8

    def test_identical_concurrent_specs_compute_once(self, service):
        spec = {"circuit": "counter", "width": 6, "delay_ms": 400}
        with ThreadPoolExecutor(self.HERD) as pool:
            results = list(pool.map(
                lambda _: post_spec(service.base_url, spec, timeout=120),
                range(self.HERD),
            ))
        assert all(body["state"] == "done" for _, body in results)
        deduplicated = [body for _, body in results if body["deduplicated"]]
        assert len(deduplicated) == self.HERD - 1
        primary_ids = {body.get("primary_id") for body in deduplicated}
        assert len(primary_ids) == 1

        _, metrics = http_json(f"{service.base_url}/metrics")
        # The assertion of the whole PR: one pipeline execution.
        assert metrics["cache"]["misses"] == 1
        assert metrics["dedup"]["inflight_hits"] == self.HERD - 1
        assert metrics["jobs"]["completed"] == self.HERD

    def test_distinct_specs_run_independently(self, service):
        specs = [
            {"circuit": "majority", "width": 5, "delay_ms": 200},
            {"circuit": "majority", "width": 6, "delay_ms": 200},
            {"circuit": "counter", "width": 5, "delay_ms": 200},
        ]
        with ThreadPoolExecutor(len(specs)) as pool:
            results = list(pool.map(
                lambda s: post_spec(service.base_url, s, timeout=120), specs
            ))
        assert all(body["state"] == "done" for _, body in results)
        assert not any(body["deduplicated"] for _, body in results)
        _, metrics = http_json(f"{service.base_url}/metrics")
        assert metrics["cache"]["misses"] == len(specs)
        assert metrics["dedup"]["inflight_hits"] == 0

    def test_dedup_on_fork_pool(self, tmp_path):
        """The same invariant through the multiprocessing pool path."""
        with ServiceThread(cache_dir=str(tmp_path / "store"), workers=1) as handle:
            spec = {"circuit": "majority", "width": 6, "delay_ms": 400}
            with ThreadPoolExecutor(4) as pool:
                results = list(pool.map(
                    lambda _: post_spec(handle.base_url, spec, timeout=120),
                    range(4),
                ))
            assert all(body["state"] == "done" for _, body in results)
            _, metrics = http_json(f"{handle.base_url}/metrics")
            assert metrics["cache"]["misses"] == 1
            assert metrics["dedup"]["inflight_hits"] == 3


# ----------------------------------------------------------------------
# Graceful shutdown
# ----------------------------------------------------------------------
class TestShutdown:
    def test_drains_inflight_and_refuses_new_jobs(self, tmp_path):
        handle = ServiceThread(cache_dir=str(tmp_path / "store"), workers=0)
        base = handle.base_url
        try:
            spec = {"circuit": "counter", "width": 6, "delay_ms": 800}
            with ThreadPoolExecutor(2) as pool:
                inflight = pool.submit(post_spec, base, spec, True, 120)
                # Let the submission land before asking for shutdown.
                for _ in range(200):
                    _, health = http_json(f"{base}/healthz")
                    if health["inflight"]:
                        break
                    time.sleep(0.01)
                status, body = http_json(f"{base}/shutdown", b"", method="POST")
                assert status == 202 and body["status"] == "draining"
                # New submissions are refused while draining...
                with pytest.raises((urllib.error.HTTPError, urllib.error.URLError)) as excinfo:
                    post_spec(base, {"circuit": "majority", "width": 5})
                if isinstance(excinfo.value, urllib.error.HTTPError):
                    assert excinfo.value.code == 503
                # ...but the in-flight job still completes with its result.
                status, finished = inflight.result(timeout=120)
                assert finished["state"] == "done"
                assert finished["result"]["blocks"] >= 1
        finally:
            handle.stop()
        assert not handle._thread.is_alive()


# ----------------------------------------------------------------------
# Engine-layer job API + cache telemetry (the seams the service rides on)
# ----------------------------------------------------------------------
class TestEngineJobApi:
    def test_run_job_round_trips_through_cache(self, tmp_path):
        cold = run_job(majority_spec, (5,), cache_dir=str(tmp_path))
        warm = run_job(majority_spec, (5,), cache_dir=str(tmp_path))
        assert cold.cache_hit is False and warm.cache_hit is True
        assert warm.record == cold.record
        assert warm.content_key == cold.content_key
        assert warm.job_key == cold.job_key is not None

    def test_cache_telemetry_counts_lookups_and_stores(self, tmp_path):
        telemetry = CacheTelemetry()
        cache = DecompositionCache(tmp_path, telemetry=telemetry)
        assert cache.load("missing") is None
        outcome = run_job(majority_spec, (5,), cache_dir=str(tmp_path))
        assert cache.load_raw(outcome.content_key) is not None
        assert telemetry.misses == 1 and telemetry.hits == 1
        cache.store_raw("extra", outcome.record)
        assert telemetry.stores == 1
        snap = telemetry.snapshot()
        assert snap["hit_rate"] == 0.5 and snap["stores"] == 1
