"""Tests for the online-algorithm construction and the evaluation harness."""

import random

import pytest

from repro.benchcircuits import majority_spec
from repro.circuit import check_netlists_equivalent
from repro.eval import (
    PAPER_TABLE1,
    build_table1,
    figure4_online_hierarchy,
    figure6_majority7_trace,
    format_table1,
    row_lzd,
    run_baseline_flow,
    run_progressive_flow,
    run_structural_flow,
)
from repro.online import (
    online_adder_spec,
    online_comparator_spec,
    online_to_hierarchy_netlist,
    online_to_serial_netlist,
)

RNG = random.Random(7)


class TestOnline:
    @pytest.mark.parametrize("spec_builder", [online_adder_spec, online_comparator_spec])
    def test_serial_and_hierarchical_equivalent(self, spec_builder):
        spec = spec_builder(1)
        serial = online_to_serial_netlist(spec, 6)
        hierarchical = online_to_hierarchy_netlist(spec, 6)
        assert check_netlists_equivalent(serial, hierarchical).equivalent

    def test_hierarchy_is_shallower(self):
        spec = online_adder_spec(1)
        serial = online_to_serial_netlist(spec, 16)
        hierarchical = online_to_hierarchy_netlist(spec, 16)
        assert hierarchical.depth() < serial.depth()

    def test_online_adder_matches_carry(self):
        spec = online_adder_spec(1)
        netlist = online_to_hierarchy_netlist(spec, 8)
        for _ in range(60):
            x, y = RNG.randrange(256), RNG.randrange(256)
            env = {}
            for i in range(8):
                env[f"x{i}_0"] = (x >> i) & 1
                env[f"x{i}_1"] = (y >> i) & 1
            assert netlist.evaluate_outputs(env)["out"] == ((x + y) >> 8) & 1


class TestFlows:
    def test_baseline_and_progressive_flows_agree_on_function(self):
        spec = majority_spec(7)
        baseline = run_baseline_flow(spec.outputs, "baseline")
        progressive = run_progressive_flow(spec.outputs, spec.input_words, "pd")
        assert baseline.area > 0 and progressive.area > 0
        assert baseline.delay > 0 and progressive.delay > 0
        assert progressive.decomposition is not None
        assert progressive.decomposition.verify()
        assert check_netlists_equivalent(
            baseline.synthesis.mapped.netlist, progressive.synthesis.mapped.netlist
        ).equivalent

    def test_structural_flow(self):
        from repro.benchcircuits import ripple_carry_adder_netlist

        flow = run_structural_flow(ripple_carry_adder_netlist(4), "rca4")
        assert flow.kind == "manual"
        assert flow.synthesis.num_cells > 0
        assert "area_um2" in flow.summary()


class TestSynthesisCache:
    @staticmethod
    def _metrics(flow):
        return (
            round(flow.area, 6),
            round(flow.delay, 6),
            flow.synthesis.num_cells,
            flow.synthesis.depth,
        )

    def test_progressive_flow_warm_hit(self, tmp_path):
        from repro.engine import SynthesisCache

        cache = SynthesisCache(tmp_path)
        spec = majority_spec(7)
        cold = run_progressive_flow(
            spec.outputs, spec.input_words, "pd", synthesis_cache=cache
        )
        assert "synthesis_cached" not in cold.notes
        assert len(cache) == 1
        warm = run_progressive_flow(
            spec.outputs, spec.input_words, "pd", synthesis_cache=cache
        )
        assert warm.notes.get("synthesis_cached") is True
        assert self._metrics(warm) == self._metrics(cold)
        assert warm.summary()["area_um2"] == cold.summary()["area_um2"]

    def test_baseline_and_structural_flows_warm_hit(self, tmp_path):
        from repro.benchcircuits import ripple_carry_adder_netlist
        from repro.engine import SynthesisCache

        cache = SynthesisCache(tmp_path)
        spec = majority_spec(7)
        cold = run_baseline_flow(spec.outputs, "base", synthesis_cache=cache)
        warm = run_baseline_flow(spec.outputs, "base", synthesis_cache=cache)
        assert warm.notes.get("synthesis_cached") is True
        assert self._metrics(warm) == self._metrics(cold)
        netlist = ripple_carry_adder_netlist(4)
        cold = run_structural_flow(netlist, "rca4", synthesis_cache=cache)
        warm = run_structural_flow(netlist, "rca4", synthesis_cache=cache)
        assert warm.notes.get("synthesis_cached") is True
        assert self._metrics(warm) == self._metrics(cold)

    def test_parameters_key_separate_records(self, tmp_path):
        from repro.engine import SynthesisCache

        cache = SynthesisCache(tmp_path)
        spec = majority_spec(7)
        run_progressive_flow(
            spec.outputs, spec.input_words, "pd", synthesis_cache=cache
        )
        run_progressive_flow(
            spec.outputs, spec.input_words, "pd", objective="delay",
            synthesis_cache=cache,
        )
        assert len(cache) == 2

    @pytest.mark.parametrize(
        "corruption",
        [
            "{not json",
            '{"schema": "repro-synthesis-v1", "area": null, '
            '"delay": 1, "cells": 1, "depth": 1}',
            '{"schema": "repro-synthesis-v1", "area": "3.0", '
            '"delay": 1, "cells": 1, "depth": 1}',
        ],
        ids=["invalid-json", "null-metric", "string-metric"],
    )
    def test_corrupt_record_is_a_miss(self, tmp_path, corruption):
        from repro.engine import SynthesisCache

        cache = SynthesisCache(tmp_path)
        spec = majority_spec(7)
        run_baseline_flow(spec.outputs, "base", synthesis_cache=cache)
        (record_path,) = tmp_path.glob("*.json")
        record_path.write_text(corruption)
        redone = run_baseline_flow(spec.outputs, "base", synthesis_cache=cache)
        assert "synthesis_cached" not in redone.notes
        assert redone.synthesis.num_cells > 0

    def test_build_table1_threads_the_cache(self, tmp_path):
        from repro.engine import SynthesisCache

        cache = SynthesisCache(tmp_path)
        cold = build_table1(quick=True, rows=["majority"], synthesis_cache=cache)
        warm = build_table1(quick=True, rows=["majority"], synthesis_cache=cache)
        for cold_row, warm_row in zip(cold, warm):
            for cold_variant, warm_variant in zip(cold_row.variants, warm_row.variants):
                assert warm_variant.notes.get("synthesis_cached") is True
                assert self._metrics(warm_variant) == self._metrics(cold_variant)


class TestTable1:
    def test_paper_reference_values_present(self):
        assert len(PAPER_TABLE1) == 7
        assert PAPER_TABLE1["16-bit Adder"]["DesignWare"].area_um2 == pytest.approx(1375.5)

    def test_row_lzd_shape(self, bench_synthesis_cache):
        # Width 16 (the paper's width): at small widths the baseline's local
        # factoring is already near-optimal and the architectural win vanishes.
        row = row_lzd(16, synthesis_cache=bench_synthesis_cache)
        assert row.unoptimised().kind == "unoptimised"
        assert row.progressive().kind == "progressive"
        # The headline claim of the paper: PD improves the critical path.
        assert row.progressive().delay < row.unoptimised().delay
        assert row.speedup() > 1.0
        text = format_table1([row])
        assert "Progressive Decomposition" in text
        assert "paper area" in text

    def test_build_table1_quick_subset(self, bench_synthesis_cache):
        # Routed through the session synthesis cache (conftest) so repeated
        # builds of the same quick rows in one run skip re-synthesis.
        rows = build_table1(
            quick=True, rows=["majority", "comparator"],
            synthesis_cache=bench_synthesis_cache,
        )
        assert len(rows) == 2
        for row in rows:
            assert row.variants
            assert row.progressive().decomposition is not None


class TestFigures:
    def test_figure1_vs_figure2_interconnect(self):
        from repro.eval import figure1_vs_figure2

        result = figure1_vs_figure2(8)
        # The hierarchical designs have strictly lower maximum fan-in than the
        # flat SOP description — the paper's central structural observation.
        assert result.oklobdzija.max_fanin < result.flat.max_fanin
        assert result.progressive.max_fanin < result.flat.max_fanin
        assert result.decomposition.verify()

    def test_figure4_online(self):
        result = figure4_online_hierarchy(8, 1)
        assert result.hierarchical_depth < result.serial_depth
        assert result.hierarchical_delay < result.serial_delay

    def test_figure6_trace(self):
        result = figure6_majority7_trace()
        assert len(result.counter_blocks_level1) == 3
        assert any("t1_0*t1_1" in identity for identity in result.identities)
        assert "iteration 1" in result.trace
