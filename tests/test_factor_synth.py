"""Tests for algebraic factorisation and the synthesis substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.anf import Anf, Context, parse
from repro.circuit import Netlist, check_netlist_against_anf, gates
from repro.factor import (
    best_kernel,
    common_cube,
    divide_by_cube,
    factor,
    is_cube_free,
    kernels,
    make_cube_free,
    weak_divide,
)
from repro.synth import (
    EmitContext,
    Library,
    StructuringError,
    available_strategies,
    build_netlist_from_expressions,
    default_library,
    emit_with_strategy,
    minimize_anf_to_sop,
    quine_mccluskey,
    synthesize_expressions,
    synthesize_netlist,
    technology_map,
)

VARS = ["a", "b", "c", "d", "e"]

anf_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=4), max_size=4).map(frozenset),
    min_size=1,
    max_size=10,
)


def build(ctx, subsets):
    terms = []
    for subset in subsets:
        mask = 0
        for i in subset:
            mask |= 1 << i
        terms.append(mask)
    return Anf(ctx, terms)


class TestDivision:
    def test_common_cube_and_cube_free(self):
        ctx = Context()
        expr = parse(ctx, "a*b*c ^ a*b*d")
        assert common_cube(expr) == ctx.mask_of(["a", "b"])
        cube, core = make_cube_free(expr)
        assert cube == ctx.mask_of(["a", "b"])
        assert core == parse(ctx, "c ^ d")
        assert is_cube_free(core)

    def test_divide_by_cube_identity(self):
        ctx = Context()
        expr = parse(ctx, "a*b ^ a*c ^ d")
        quotient, remainder = divide_by_cube(expr, ctx.mask_of(["a"]))
        assert quotient == parse(ctx, "b ^ c")
        assert remainder == parse(ctx, "d")
        assert (Anf.monomial(ctx, ["a"]) & quotient) ^ remainder == expr

    def test_weak_divide_identity(self):
        ctx = Context()
        expr = parse(ctx, "a*c ^ a*d ^ b*c ^ b*d ^ e")
        divisor = parse(ctx, "a ^ b")
        quotient, remainder = weak_divide(expr, divisor)
        assert quotient == parse(ctx, "c ^ d")
        assert (quotient & divisor) ^ remainder == expr

    def test_weak_divide_by_zero(self):
        ctx = Context()
        with pytest.raises(ZeroDivisionError):
            weak_divide(parse(ctx, "a"), Anf.zero(ctx))

    @given(anf_strategy, anf_strategy)
    @settings(max_examples=40, deadline=None)
    def test_weak_divide_always_exact(self, left_subsets, right_subsets):
        ctx = Context(VARS)
        expr = build(ctx, left_subsets)
        divisor = build(ctx, right_subsets)
        if divisor.is_zero:
            return
        quotient, remainder = weak_divide(expr, divisor)
        assert (quotient & divisor) ^ remainder == expr


class TestKernelsAndFactor:
    def test_kernels_are_cube_free(self):
        ctx = Context()
        expr = parse(ctx, "a*c ^ a*d ^ b*c ^ b*d ^ a*e")
        for kernel in kernels(expr):
            assert is_cube_free(kernel.expr)
            assert kernel.expr.num_terms >= 2

    def test_best_kernel_value(self):
        ctx = Context()
        expr = parse(ctx, "a*c ^ a*d ^ b*c ^ b*d")
        kernel = best_kernel(expr)
        assert kernel is not None
        assert kernel.expr.num_terms == 2

    def test_factor_roundtrip_examples(self):
        ctx = Context()
        for text in ["a*b ^ a*c", "a*c ^ a*d ^ b*c ^ b*d ^ e", "a ^ b*c ^ b*d", "a*b*c"]:
            expr = parse(ctx, text)
            tree = factor(expr)
            assert tree.to_anf(ctx) == expr
            assert tree.literal_count <= expr.literal_count

    @given(anf_strategy)
    @settings(max_examples=50, deadline=None)
    def test_factor_roundtrip_random(self, subsets):
        ctx = Context(VARS)
        expr = build(ctx, subsets)
        tree = factor(expr)
        assert tree.to_anf(ctx) == expr


class TestTwoLevel:
    def test_quine_mccluskey_simple(self):
        # f = a'b + ab = b (two minterms merge into one implicant)
        implicants = quine_mccluskey(2, [2, 3])
        assert len(implicants) == 1
        assert implicants[0].num_literals == 1

    def test_minimize_anf_to_sop_equivalence(self):
        ctx = Context()
        expr = parse(ctx, "a*b ^ a*c ^ b*c")  # majority of 3
        sop = minimize_anf_to_sop(expr)
        assert sop.to_anf() == expr
        assert sop.num_cubes == 3

    @given(st.integers(min_value=0, max_value=2 ** 16 - 1))
    @settings(max_examples=40, deadline=None)
    def test_quine_mccluskey_covers_exactly(self, table):
        num_vars = 4
        minterms = [m for m in range(16) if table >> m & 1]
        implicants = quine_mccluskey(num_vars, minterms)
        covered = set()
        for implicant in implicants:
            for m in range(16):
                if implicant.covers(m):
                    covered.add(m)
        assert covered == set(minterms)


class TestStructuringAndMapping:
    def test_each_strategy_preserves_function(self):
        ctx = Context()
        expr = parse(ctx, "a*b ^ c*d ^ a*d ^ 1")
        for strategy in available_strategies(expr):
            netlist = Netlist(strategy)
            netlist.add_inputs(list(expr.support))
            emit = EmitContext(netlist, {name: name for name in expr.support})
            net = emit_with_strategy(emit, expr, strategy)
            netlist.set_output("f", net)
            assert check_netlist_against_anf(netlist, {"f": expr}).equivalent, strategy

    def test_sop_strategy_rejects_wide_support(self):
        ctx = Context()
        names = ctx.bus("x", 12)
        expr = Anf.from_monomial_names(ctx, [[n] for n in names])
        netlist = Netlist()
        netlist.add_inputs(names)
        emit = EmitContext(netlist, {name: name for name in names})
        with pytest.raises(StructuringError):
            emit_with_strategy(emit, expr, "sop")

    def test_unknown_strategy(self):
        ctx = Context()
        expr = parse(ctx, "a ^ b")
        netlist = Netlist()
        netlist.add_inputs(["a", "b"])
        emit = EmitContext(netlist, {"a": "a", "b": "b"})
        with pytest.raises(StructuringError):
            emit_with_strategy(emit, expr, "nonsense")

    def test_build_netlist_multi_output(self):
        ctx = Context()
        spec = {"f": parse(ctx, "a*b ^ c"), "g": parse(ctx, "a ^ b ^ c"), "h": Anf.one(ctx)}
        netlist = build_netlist_from_expressions(spec, strategy="auto")
        assert check_netlist_against_anf(netlist, spec).equivalent

    def test_technology_map_preserves_function_and_assigns_cells(self):
        ctx = Context()
        spec = {"f": parse(ctx, "a*b*c*d ^ e"), "g": parse(ctx, "~(a | b | c)")}
        netlist = build_netlist_from_expressions(spec, strategy="anf")
        mapped = technology_map(netlist)
        assert check_netlist_against_anf(mapped.netlist, spec).equivalent
        assert mapped.area > 0
        assert mapped.num_cells == len(mapped.netlist.gates)
        assert sum(mapped.cell_histogram().values()) == mapped.num_cells

    def test_wide_gates_decomposed(self):
        netlist = Netlist()
        names = [f"x{i}" for i in range(9)]
        netlist.add_inputs(names)
        netlist.set_output("f", netlist.add_gate(gates.AND, names))
        mapped = technology_map(netlist)
        max_arity = max(len(g.inputs) for g in mapped.netlist.gates)
        assert max_arity <= 4
        ctx = Context(names)
        expr = Anf.one(ctx)
        for name in names:
            expr = expr & Anf.var(ctx, name)
        assert check_netlist_against_anf(mapped.netlist, {"f": expr}).equivalent

    def test_timing_monotone_in_depth(self):
        ctx = Context()
        shallow = synthesize_expressions({"f": parse(ctx, "a ^ b")}, strategy="anf")
        deep = synthesize_expressions({"f": parse(ctx, "a ^ b ^ c ^ d ^ e ^ f ^ g ^ h")}, strategy="anf")
        assert deep.delay > shallow.delay
        assert deep.area > shallow.area

    def test_timing_report_path(self):
        ctx = Context()
        result = synthesize_expressions({"f": parse(ctx, "a*b ^ c")}, strategy="anf")
        report = result.timing
        assert report.critical_output == "f"
        assert report.critical_path
        assert report.delay == pytest.approx(report.critical_path[-1].arrival)

    def test_library_lookup(self):
        library = default_library()
        assert library.cell_for(gates.NOT, 1) is not None
        assert library.cell_for(gates.XOR, 2) is not None
        assert library.cell("FAX1_C").delay < library.cell("FAX1_S").delay
        with pytest.raises(KeyError):
            library.cell("MISSING")

    def test_custom_library_rejects_unmappable(self):
        tiny = Library("tiny", [])
        netlist = Netlist()
        netlist.add_inputs(["a", "b"])
        netlist.set_output("f", netlist.add_gate(gates.AND, ["a", "b"]))
        from repro.synth import MappingError

        with pytest.raises(MappingError):
            technology_map(netlist, tiny)

    def test_synthesize_netlist_summary(self):
        netlist = Netlist("rca2")
        netlist.add_inputs(["a0", "a1", "b0", "b1"])
        s0 = netlist.add_gate(gates.HA_SUM, ["a0", "b0"])
        c0 = netlist.add_gate(gates.HA_CARRY, ["a0", "b0"])
        s1 = netlist.add_gate(gates.FA_SUM, ["a1", "b1", c0])
        netlist.set_output("s0", s0)
        netlist.set_output("s1", s1)
        result = synthesize_netlist(netlist)
        summary = result.summary()
        assert summary["cells"] == 3
        assert summary["area_um2"] > 0
        assert summary["delay_ns"] > 0
