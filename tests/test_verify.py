"""Parity suite for the DAG-structured verification engine.

``Decomposition.verify()`` (the DAG engine) must return exactly the verdict
of ``Decomposition.verify(method="flatten")`` (the whole-spec re-expansion
kept as the reference) — on valid decompositions, on deliberately corrupted
ones, under both term backends, and with pass sharding on or off.  The
level-substitution kernel itself is checked against ``Anf.substitute`` on
arbitrary inputs, and the per-iteration rewrite gate (``REPRO_VERIFY_STEPS``)
must accept every engine-produced step and reject a sabotaged one.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.anf import Anf, Context
from repro.anf.backend import using_backend
from repro.core import (
    DecompositionOptions,
    VerificationError,
    check_rewrite_invariant,
    progressive_decomposition,
    semantically_equal,
    substitute_bits,
    verify_decomposition,
    verify_ports,
)
from repro.core.decompose import Block
from repro.engine import (
    BasisExtractionPass,
    GroupingPass,
    Pipeline,
    RewritePass,
)

BACKENDS = ("set", "packed")
SHARD_MODES = (None, "2")


def _decompose(outputs_terms, num_vars=6, options=None):
    ctx = Context([f"v{i}" for i in range(num_vars)])
    outputs = {
        f"o{i}": Anf(ctx, terms) for i, terms in enumerate(outputs_terms)
    }
    return progressive_decomposition(outputs, options or DecompositionOptions())


terms_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=(1 << 6) - 1), unique=True, max_size=14),
    min_size=1,
    max_size=2,
)


class TestSubstituteBits:
    @given(
        terms=st.lists(st.integers(min_value=0, max_value=(1 << 8) - 1),
                       unique=True, max_size=30),
        replaced=st.dictionaries(
            st.integers(min_value=0, max_value=7),
            st.lists(st.integers(min_value=0, max_value=(1 << 8) - 1),
                     unique=True, max_size=5),
            max_size=4,
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_anf_substitute(self, terms, replaced):
        ctx = Context([f"v{i}" for i in range(8)])
        expr = Anf(ctx, terms)
        name_mapping = {f"v{i}": Anf(ctx, rep) for i, rep in replaced.items()}
        bit_mapping = {1 << i: Anf(ctx, rep) for i, rep in replaced.items()}
        expected = expr.substitute(name_mapping)
        actual = substitute_bits(expr, bit_mapping, ctx)
        assert actual.terms == expected.terms

    def test_empty_mapping_is_identity(self):
        ctx = Context(["a", "b"])
        expr = Anf(ctx, [1, 2, 3])
        assert substitute_bits(expr, {}, ctx) is expr

    def test_semantically_equal_matches_eq(self):
        ctx = Context(["a", "b", "c"])
        left = Anf(ctx, [1, 6])
        assert semantically_equal(left, Anf(ctx, [6, 1]))
        assert not semantically_equal(left, Anf(ctx, [1, 2]))
        assert not semantically_equal(left, Anf(ctx, [1]))


class TestVerdictParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("shard", SHARD_MODES, ids=["serial", "sharded"])
    @given(outputs_terms=terms_strategy)
    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_valid_decompositions_verify_on_both_engines(
        self, monkeypatch, backend, shard, outputs_terms
    ):
        if shard is None:
            monkeypatch.delenv("REPRO_SHARD_PASSES", raising=False)
        else:
            monkeypatch.setenv("REPRO_SHARD_PASSES", shard)
        with using_backend(backend):
            try:
                decomposition = _decompose(outputs_terms)
            except RuntimeError:
                return  # degenerate spec stalled; nothing to verify
            assert decomposition.verify() is True
            assert decomposition.verify(method="flatten") is True
            assert verify_decomposition(decomposition) is True
            assert all(verify_ports(decomposition).values())

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(
        outputs_terms=terms_strategy,
        block_choice=st.integers(min_value=0, max_value=10 ** 6),
        flip=st.integers(min_value=0, max_value=(1 << 6) - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_corrupted_definitions_fail_on_both_engines(
        self, backend, outputs_terms, block_choice, flip
    ):
        with using_backend(backend):
            try:
                decomposition = _decompose(outputs_terms)
            except RuntimeError:
                return
            if not decomposition.blocks:
                return
            block = decomposition.blocks[block_choice % len(decomposition.blocks)]
            block.definition = block.definition ^ Anf(decomposition.ctx, [flip])
            # The corruption may or may not survive to the outputs (a change
            # can cancel through a nonlinear composition); what must hold is
            # that both engines reach the *same* verdict.  The deterministic
            # tests below pin must-fail corruptions.
            assert decomposition.verify() == decomposition.verify(method="flatten")

    def test_corrupted_block_definition_must_fail(self):
        """A hand-built hierarchy where the corruption provably reaches the
        output: both engines must reject it."""
        ctx = Context(["a", "b"])
        a, b = Anf.var(ctx, "a"), Anf.var(ctx, "b")
        decomposition = _decompose([[1, 2, 3]])  # shell, rebuilt below
        decomposition.ctx = ctx
        decomposition.primary_inputs = ["a", "b"]
        decomposition.blocks = [Block("t", 1, a & b)]
        decomposition.original = {"f": (a & b) ^ a}
        decomposition.outputs = {"f": Anf.var(ctx, "t") ^ a}
        assert decomposition.verify() is True
        decomposition.blocks[0].definition = (a & b) ^ Anf.one(ctx)
        assert decomposition.verify() is False
        assert decomposition.verify(method="flatten") is False

    def test_corrupted_output_fails_identically(self):
        decomposition = _decompose([[1, 2, 3], [5, 6]])
        port = next(iter(decomposition.outputs))
        decomposition.outputs[port] = decomposition.outputs[port] ^ Anf.one(
            decomposition.ctx
        )
        assert decomposition.verify() is False
        assert decomposition.verify(method="flatten") is False
        verdicts = verify_ports(decomposition)
        assert verdicts[port] is False

    def test_missing_block_fails_identically(self):
        decomposition = _decompose([[1, 2, 3, 7], [5, 6]])
        if not decomposition.blocks:
            pytest.skip("decomposition produced no blocks")
        # Replace the whole list (a supported mutation) minus one block: the
        # dangling variable is then treated as free by both engines.
        removed_name = decomposition.blocks[-1].name
        referenced = any(
            expr.depends_on(removed_name) for expr in decomposition.outputs.values()
        ) or any(
            block.definition.depends_on(removed_name)
            for block in decomposition.blocks[:-1]
        )
        decomposition.blocks = decomposition.blocks[:-1]
        dag = decomposition.verify()
        flatten = decomposition.verify(method="flatten")
        assert dag == flatten
        if referenced:
            assert dag is False

    def test_non_levelled_hierarchy_falls_back_to_flatten(self):
        """A same-level (acyclic) reference defeats the levelled sweep; the
        engine must defer to the flatten reference, not loop or misreport."""
        ctx = Context(["a", "b"])
        a, b = Anf.var(ctx, "a"), Anf.var(ctx, "b")
        t0 = Anf.var(ctx, "t0")
        t1 = Anf.var(ctx, "t1")
        decomposition = _decompose([[1, 2, 3]])  # throwaway, rebuilt below
        decomposition.ctx = ctx
        decomposition.primary_inputs = ["a", "b"]
        decomposition.blocks = [
            Block("t0", 1, t1 ^ a),   # t0 defined via its level-1 sibling
            Block("t1", 1, a & b),
        ]
        decomposition.original = {"f": (a & b) ^ a}
        decomposition.outputs = {"f": t0}
        assert decomposition.verify() is True
        assert decomposition.verify(method="flatten") is True

    def test_flatten_and_dag_agree_on_swapped_definitions(self):
        decomposition = _decompose([[1, 2, 3, 6], [5, 6, 7]])
        blocks = decomposition.blocks
        if len(blocks) < 2 or blocks[0].definition == blocks[1].definition:
            pytest.skip("not enough distinct blocks to swap")
        blocks[0].definition, blocks[1].definition = (
            blocks[1].definition,
            blocks[0].definition,
        )
        decomposition.blocks = list(blocks)  # new list: supported mutation
        assert decomposition.verify() == decomposition.verify(method="flatten")


class TestRewriteGate:
    def test_gated_pipeline_accepts_engine_steps(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_STEPS", "1")
        decomposition = _decompose([[1, 2, 3, 6, 9], [5, 6]])
        assert decomposition.verify()

    def test_env_switch_controls_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY_STEPS", raising=False)
        assert RewritePass().verify_steps is False
        monkeypatch.setenv("REPRO_VERIFY_STEPS", "1")
        assert RewritePass().verify_steps is True
        monkeypatch.setenv("REPRO_VERIFY_STEPS", "off")
        assert RewritePass().verify_steps is False
        assert RewritePass(verify_steps=True).verify_steps is True

    def test_gate_rejects_sabotaged_rewrite(self):
        class SabotagedRewrite(RewritePass):
            """Flips a monomial in one rewritten output before the gate."""

            def run(self, state):
                from repro.core.rewrite import rewrite_outputs as real

                def sabotaged(extraction, substitutions, ctx):
                    outputs = real(extraction, substitutions, ctx)
                    port = next(iter(outputs))
                    outputs[port] = outputs[port] ^ Anf.one(ctx)
                    return outputs

                import repro.engine.passes as passes_module

                original = passes_module.rewrite_outputs
                passes_module.rewrite_outputs = sabotaged
                try:
                    super().run(state)
                finally:
                    passes_module.rewrite_outputs = original

        ctx = Context([f"v{i}" for i in range(6)])
        outputs = {"f": Anf(ctx, [1, 2, 4, 7, 11, 33])}
        pipeline = Pipeline(
            [GroupingPass(4), BasisExtractionPass(), SabotagedRewrite(verify_steps=True)]
        )
        with pytest.raises(VerificationError):
            pipeline.run(outputs)

    def test_check_rewrite_invariant_reports_port(self):
        ctx = Context(["a", "b"])
        a, b = Anf.var(ctx, "a"), Anf.var(ctx, "b")
        block = Block("t", 1, a & b)
        t = Anf.var(ctx, "t")
        active = {"f": (a & b) ^ b}
        good = {"f": t ^ b}
        bad = {"f": t ^ a}
        assert check_rewrite_invariant(active, good, [block], ctx) is None
        assert check_rewrite_invariant(active, bad, [block], ctx) == "f"


class TestBlockMapStaleness:
    def test_append_only_updates_are_seen(self):
        decomposition = _decompose([[1, 2, 3]])
        ctx = decomposition.ctx
        assert not decomposition._is_block("fresh")
        ctx.add_var("fresh")
        decomposition.blocks.append(Block("fresh", 99, Anf(ctx, [1])))
        assert decomposition._is_block("fresh")
        assert decomposition.block_by_name("fresh").level == 99

    def test_list_replacement_rebuilds_the_index(self):
        decomposition = _decompose([[1, 2, 3, 6]])
        if not decomposition.blocks:
            pytest.skip("no blocks")
        name = decomposition.blocks[0].name
        assert decomposition._is_block(name)
        decomposition.blocks = [b for b in decomposition.blocks if b.name != name]
        assert not decomposition._is_block(name)

    def test_in_place_mutation_fails_loudly(self):
        decomposition = _decompose([[1, 2, 3, 6]])
        if not decomposition.blocks:
            pytest.skip("no blocks")
        decomposition.block_by_name(decomposition.blocks[0].name)  # build index
        renamed = Block("rogue", 1, decomposition.blocks[0].definition)
        decomposition.blocks[0] = renamed  # same list, same length: unsupported
        with pytest.raises(AssertionError):
            decomposition.block_by_name("rogue")
