"""Parity property tests: the pass-pipeline engine vs the seed loop.

``reference_loop.reference_decomposition`` is the seed's monolithic Fig. 5
loop kept verbatim; every test here runs it next to the pipeline engine on
independently built (but identically declared) contexts and asserts the
results are bit-identical — outputs, blocks, and the complete per-iteration
trace — across every ``DecompositionOptions`` ablation.

Every ablation runs under both term backends: the reference loop always runs
on the ``set`` backend (the seed representation), while the engine runs on
the backend under test, so the packed term-matrix kernels are held to the
same bit-identical standard as the pipeline itself.
"""

import pytest
from hypothesis import given, settings, strategies as st

from reference_loop import reference_decomposition

from repro.anf import Anf, Context, majority, variables
from repro.anf.backend import using_backend
from repro.core import DecompositionOptions, progressive_decomposition
from repro.engine import (
    BasisExtractionPass,
    GroupingPass,
    IdentityAnalysisPass,
    LinearDependencePass,
    NullspaceMergePass,
    Pipeline,
    RewritePass,
    SizeReductionPass,
)

ABLATIONS = [
    DecompositionOptions(),
    DecompositionOptions(use_nullspaces=False),
    DecompositionOptions(use_identities=False),
    DecompositionOptions(use_size_reduction=False),
    DecompositionOptions(use_linear_dependence=False),
    DecompositionOptions(
        use_nullspaces=False, use_identities=False,
        use_size_reduction=False, use_linear_dependence=False,
    ),
    DecompositionOptions(k=3),
    DecompositionOptions(k=5, identity_products=2),
]


def assert_bit_identical(expected, actual):
    """Field-by-field comparison of two decompositions built in twin contexts.

    The contexts are distinct objects but declare the same variables in the
    same order, so monomial bitmasks are directly comparable.
    """
    assert expected.ctx.names == actual.ctx.names
    assert expected.primary_inputs == actual.primary_inputs
    assert set(expected.outputs) == set(actual.outputs)
    for port in expected.outputs:
        assert expected.outputs[port].terms == actual.outputs[port].terms, port
    assert len(expected.blocks) == len(actual.blocks)
    for left, right in zip(expected.blocks, actual.blocks):
        assert (left.name, left.level, left.group) == (right.name, right.level, right.group)
        assert left.definition.terms == right.definition.terms, left.name
    assert len(expected.iterations) == len(actual.iterations)
    for left, right in zip(expected.iterations, actual.iterations):
        assert left.index == right.index
        assert left.group == right.group
        assert left.block_names == right.block_names
        assert [e.terms for e in left.basis_definitions] == [
            e.terms for e in right.basis_definitions
        ]
        assert [e.terms for e in left.substitutions] == [
            e.terms for e in right.substitutions
        ]
        assert [
            (identity.kind, identity.description, identity.expr.terms)
            for identity in left.identities_found
        ] == [
            (identity.kind, identity.description, identity.expr.terms)
            for identity in right.identities_found
        ]
        assert {
            name: expr.terms for name, expr in left.removed_blocks.items()
        } == {name: expr.terms for name, expr in right.removed_blocks.items()}
        assert (left.size_before, left.size_after) == (right.size_before, right.size_after)


def _twin_majority(width):
    """The same majority spec built twice in independent contexts."""
    specs = []
    for _ in range(2):
        ctx = Context()
        bits = ctx.bus("a", width)
        specs.append(({"maj": majority(variables(ctx, bits), ctx)}, [bits]))
    return specs


def _twin_adder(width):
    from repro.benchcircuits import adder_spec

    specs = []
    for _ in range(2):
        spec = adder_spec(width)
        specs.append((spec.outputs, spec.input_words))
    return specs


BACKENDS = ("set", "packed", "threaded", "native")


class TestAblationParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("options", ABLATIONS, ids=lambda o: repr(o))
    def test_majority7_parity(self, options, backend):
        (ref_outputs, ref_words), (new_outputs, new_words) = _twin_majority(7)
        with using_backend("set"):
            expected = reference_decomposition(ref_outputs, options, input_words=ref_words)
        with using_backend(backend):
            actual = progressive_decomposition(new_outputs, options, input_words=new_words)
        assert_bit_identical(expected, actual)
        assert actual.verify()

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("options", ABLATIONS[:4], ids=lambda o: repr(o))
    def test_multi_output_adder_parity(self, options, backend):
        (ref_outputs, ref_words), (new_outputs, new_words) = _twin_adder(4)
        with using_backend("set"):
            expected = reference_decomposition(ref_outputs, options, input_words=ref_words)
        with using_backend(backend):
            actual = progressive_decomposition(new_outputs, options, input_words=new_words)
        assert_bit_identical(expected, actual)


class TestRandomisedParity:
    @given(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=5), max_size=4).map(frozenset),
            min_size=1, max_size=10,
        ),
        st.lists(
            st.lists(st.integers(min_value=0, max_value=5), max_size=3).map(frozenset),
            min_size=0, max_size=6,
        ),
        st.sampled_from(ABLATIONS),
        st.sampled_from(BACKENDS),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_specs_parity(self, subsets_f, subsets_g, options, backend):
        results = []
        for _ in range(2):
            ctx = Context(["v0", "v1", "v2", "v3", "v4", "v5"])

            def build(subsets):
                terms = []
                for subset in subsets:
                    mask = 0
                    for i in subset:
                        mask |= 1 << i
                    terms.append(mask)
                return Anf(ctx, terms)

            outputs = {"f": build(subsets_f)}
            if subsets_g:
                outputs["g"] = build(subsets_g)
            results.append((ctx, outputs))
        (_, ref_outputs), (_, new_outputs) = results
        # Some degenerate (spec, ablation) combinations legitimately stall
        # (e.g. every optimisation disabled); parity then means both
        # implementations fail identically.
        try:
            with using_backend("set"):
                expected = reference_decomposition(ref_outputs, options)
        except RuntimeError as reference_error:
            with using_backend(backend):
                with pytest.raises(RuntimeError) as caught:
                    progressive_decomposition(new_outputs, options)
                assert str(caught.value) == str(reference_error)
            return
        with using_backend(backend):
            actual = progressive_decomposition(new_outputs, options)
        assert_bit_identical(expected, actual)
        assert actual.verify()


class TestPipelineAssembly:
    def test_from_options_matches_hand_assembly(self):
        pipeline = Pipeline.from_options(DecompositionOptions())
        assert [type(p) for p in pipeline.passes] == [
            GroupingPass,
            BasisExtractionPass,
            NullspaceMergePass,
            LinearDependencePass,
            SizeReductionPass,
            IdentityAnalysisPass,
            RewritePass,
        ]

    def test_flags_become_pass_presence(self):
        pipeline = Pipeline.from_options(
            DecompositionOptions(use_nullspaces=False, use_size_reduction=False)
        )
        types = {type(p) for p in pipeline.passes}
        assert NullspaceMergePass not in types
        assert SizeReductionPass not in types
        assert LinearDependencePass in types

    def test_to_options_round_trips(self):
        for options in ABLATIONS:
            assert Pipeline.from_options(options).to_options() == options

    def test_config_key_distinguishes_configurations(self):
        keys = {Pipeline.from_options(options).config_key() for options in ABLATIONS}
        assert len(keys) == len(ABLATIONS)
        # ... and is stable for equal configurations.
        assert (
            Pipeline.from_options(DecompositionOptions()).config_key()
            == Pipeline.from_options(DecompositionOptions()).config_key()
        )

    def test_pipeline_requires_core_passes(self):
        with pytest.raises(ValueError):
            Pipeline([GroupingPass(), BasisExtractionPass()])
        with pytest.raises(ValueError):
            Pipeline([GroupingPass(), RewritePass(), BasisExtractionPass()])

    def test_pipeline_rejects_mismatched_block_prefixes(self):
        with pytest.raises(ValueError):
            Pipeline([
                GroupingPass(),
                BasisExtractionPass(),
                IdentityAnalysisPass(block_prefix="t"),
                RewritePass(block_prefix="u"),
            ])

    def test_subclassed_passes_are_recognised(self):
        class TweakedGrouping(GroupingPass):
            pass

        pipeline = Pipeline([TweakedGrouping(3), BasisExtractionPass(), RewritePass()])
        options = pipeline.to_options()
        assert options.k == 3
        assert not options.use_identities

    def test_hand_assembled_ablation_runs(self):
        ctx = Context()
        bits = ctx.bus("a", 7)
        spec = {"maj": majority(variables(ctx, bits), ctx)}
        pipeline = Pipeline([
            GroupingPass(4),
            BasisExtractionPass(),
            LinearDependencePass(),
            RewritePass(),
        ])
        decomposition = pipeline.run(spec, input_words=[bits])
        assert decomposition.verify()
        assert decomposition.options == pipeline.to_options()
