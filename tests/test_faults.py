"""Unit tests for the deterministic fault-injection harness (repro.faults)."""

import os

import pytest

from repro import faults
from repro.faults import FaultSpecError, InjectedFault, parse_spec


@pytest.fixture(autouse=True)
def _clean_fault_env(monkeypatch):
    monkeypatch.delenv(faults.ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


def arm(monkeypatch, spec: str) -> None:
    monkeypatch.setenv(faults.ENV, spec)
    faults.reset()


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
def test_parse_minimal_clause_defaults_to_fire_once():
    (clause,) = parse_spec("cache.load:exc")
    assert clause.site == "cache.load"
    assert clause.action == "exc"
    assert clause.arg is None
    assert clause.filter is None
    assert (clause.mode, clause.n) == ("first", 1)


def test_parse_triggers():
    at, every, first = parse_spec("a:exc@3;b:exc%7;c:exc x4".replace(" ", ""))
    assert (at.mode, at.n) == ("at", 3)
    assert (every.mode, every.n) == ("every", 7)
    assert (first.mode, first.n) == ("first", 4)


def test_parse_action_arg_and_trigger_coexist():
    (clause,) = parse_spec("cache.store:sleep:0.25@2")
    assert clause.action == "sleep"
    assert clause.arg == "0.25"
    assert (clause.mode, clause.n) == ("at", 2)


def test_parse_exc_action_x_is_not_a_trigger():
    # 'exc' contains an 'x'; a bare action must not lose letters to the
    # trigger scanner.
    (clause,) = parse_spec("site:exc")
    assert clause.action == "exc"
    assert (clause.mode, clause.n) == ("first", 1)


def test_parse_filters_and_negation():
    positive, negative = parse_spec("worker.job[lzd-9]:kill@1;worker.job[!lzd-9]:kill%7")
    assert positive.filter == "lzd-9" and not positive.negate
    assert negative.filter == "lzd-9" and negative.negate
    assert positive.matches("worker.job", "lzd-9")
    assert not positive.matches("worker.job", "csa-12")
    assert negative.matches("worker.job", "csa-12")
    assert not negative.matches("worker.job", "lzd-9")
    assert not positive.matches("cache.load", "lzd-9")


@pytest.mark.parametrize(
    "bad",
    [
        "siteonly",
        "site:nosuchaction",
        ":exc",
        "site[unterminated:exc",
        "site[]:exc",
        "site:exc@0",
    ],
)
def test_parse_rejects_malformed_clauses(bad):
    with pytest.raises(FaultSpecError):
        parse_spec(bad)


def test_parse_skips_empty_clauses():
    assert parse_spec("") == []
    assert len(parse_spec("a:exc; ;b:err")) == 2


# ----------------------------------------------------------------------
# Trigger semantics
# ----------------------------------------------------------------------
def test_hit_unarmed_is_inert(monkeypatch):
    faults.hit("cache.load")  # no env set: must not raise
    assert faults.mutate("cache.store.payload", b"data") == b"data"
    assert faults.should_skip("cache.store.rename") is False


def test_exc_fires_once_by_default(monkeypatch):
    arm(monkeypatch, "cache.load:exc")
    with pytest.raises(InjectedFault):
        faults.hit("cache.load")
    faults.hit("cache.load")  # second hit: trigger exhausted


def test_at_trigger_fires_on_exact_hit(monkeypatch):
    arm(monkeypatch, "cache.load:exc@3")
    faults.hit("cache.load")
    faults.hit("cache.load")
    with pytest.raises(InjectedFault):
        faults.hit("cache.load")
    faults.hit("cache.load")


def test_every_trigger_fires_periodically(monkeypatch):
    arm(monkeypatch, "cache.load:exc%2")
    fired = 0
    for _ in range(6):
        try:
            faults.hit("cache.load")
        except InjectedFault:
            fired += 1
    assert fired == 3


def test_err_action_raises_oserror(monkeypatch):
    arm(monkeypatch, "cache.store:err")
    with pytest.raises(OSError):
        faults.hit("cache.store")


def test_filter_only_counts_matching_tags(monkeypatch):
    arm(monkeypatch, "worker.job[lzd-9]:exc@1")
    faults.hit("worker.job", tag="csa-12")  # does not consume the trigger
    with pytest.raises(InjectedFault):
        faults.hit("worker.job", tag="lzd-9")


# ----------------------------------------------------------------------
# Data sites
# ----------------------------------------------------------------------
def test_mutate_truncate_default_keeps_half(monkeypatch):
    arm(monkeypatch, "cache.store.payload:truncate")
    assert faults.mutate("cache.store.payload", b"0123456789") == b"01234"


def test_mutate_truncate_explicit_length(monkeypatch):
    arm(monkeypatch, "cache.store.payload:truncate:3")
    assert faults.mutate("cache.store.payload", b"0123456789") == b"012"


def test_mutate_corrupt_damages_tail_preserves_length(monkeypatch):
    arm(monkeypatch, "cache.store.payload:corrupt")
    original = b'{"schema": 3, "payload": "aaaaaaaaaaaaaaaaaaaa"}'
    mutated = faults.mutate("cache.store.payload", original)
    assert len(mutated) == len(original)
    assert mutated != original
    assert mutated[: len(original) - 16] == original[: len(original) - 16]


def test_should_skip_fires_and_exhausts(monkeypatch):
    arm(monkeypatch, "cache.store.rename:skip")
    assert faults.should_skip("cache.store.rename") is True
    assert faults.should_skip("cache.store.rename") is False


def test_snapshot_reports_hit_counts(monkeypatch):
    arm(monkeypatch, "cache.load:exc@5")
    faults.hit("cache.load")
    faults.hit("cache.load")
    assert faults.snapshot() == [("cache.load", "exc", 2)]


def test_plan_cache_rebuilds_when_env_changes(monkeypatch):
    arm(monkeypatch, "cache.load:exc@1")
    with pytest.raises(InjectedFault):
        faults.hit("cache.load")
    monkeypatch.setenv(faults.ENV, "cache.load:exc@1 ".strip() + ";cache.store:err@1")
    # New spec string -> fresh counters: the @1 trigger is re-armed.
    with pytest.raises(InjectedFault):
        faults.hit("cache.load")
    with pytest.raises(OSError):
        faults.hit("cache.store")


def test_kill_action_terminates_process(monkeypatch):
    # Exercised in a child so the suite survives the SIGKILL.
    import subprocess
    import sys

    code = (
        "import os\n"
        "os.environ['REPRO_FAULT_SPEC'] = 'worker.job:kill@1'\n"
        "from repro import faults\n"
        "faults.hit('worker.job')\n"
        "print('unreachable')\n"
    )
    env = dict(os.environ, PYTHONPATH="src")
    proc = subprocess.run(
        [sys.executable, "-c", code], cwd=os.path.dirname(os.path.dirname(__file__)),
        env=env, capture_output=True, text=True, timeout=30,
    )
    assert proc.returncode == -9
    assert "unreachable" not in proc.stdout
