"""Tests for the builder helpers and the symbolic bit-vector (Word) layer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.anf import (
    Anf,
    Context,
    Word,
    carry_save_reduce,
    elementary_symmetric,
    equivalent,
    full_adder,
    half_adder,
    implies,
    majority,
    mux,
    parity,
    popcount_word,
    threshold,
    variables,
)


def assignment_from_int(names, value):
    return {name: (value >> i) & 1 for i, name in enumerate(names)}


class TestBuilders:
    def test_threshold_matches_popcount(self):
        ctx = Context()
        names = ctx.bus("x", 5)
        bits = variables(ctx, names)
        for k in range(0, 7):
            expr = threshold(bits, k, ctx)
            for value in range(32):
                expected = 1 if bin(value).count("1") >= k else 0
                assert expr.evaluate(assignment_from_int(names, value)) == expected

    def test_majority_odd(self):
        ctx = Context()
        names = ctx.bus("x", 7)
        expr = majority(variables(ctx, names), ctx)
        for value in (0, 0b1111111, 0b1010101, 0b0000111, 0b0001111):
            expected = 1 if bin(value).count("1") >= 4 else 0
            assert expr.evaluate(assignment_from_int(names, value)) == expected

    def test_majority7_anf_is_all_4_subsets(self):
        """The paper's section 5.5 example: MAJ7 = XOR of all degree-4 products."""
        ctx = Context()
        names = ctx.bus("a", 7)
        expr = majority(variables(ctx, names), ctx)
        assert expr.num_terms == 35
        assert all(bin(mask).count("1") == 4 for mask in expr.terms)

    def test_elementary_symmetric(self):
        ctx = Context()
        names = ctx.bus("x", 4)
        bits = variables(ctx, names)
        e2 = elementary_symmetric(bits, 2, ctx)
        assert e2.num_terms == 6
        assert elementary_symmetric(bits, 0, ctx).is_one
        assert elementary_symmetric(bits, 5, ctx).is_zero

    def test_parity_mux_implies_equivalent(self):
        ctx = Context()
        a, b, s = Anf.var(ctx, "a"), Anf.var(ctx, "b"), Anf.var(ctx, "s")
        for va in (0, 1):
            for vb in (0, 1):
                for vs in (0, 1):
                    env = {"a": va, "b": vb, "s": vs}
                    assert mux(s, a, b).evaluate(env) == (va if vs else vb)
                    assert implies(a, b).evaluate(env) == (0 if (va and not vb) else 1)
                    assert equivalent(a, b).evaluate(env) == (1 if va == vb else 0)
        assert parity([a, b], ctx).evaluate({"a": 1, "b": 1}) == 0

    def test_adders(self):
        ctx = Context()
        a, b, c = Anf.var(ctx, "a"), Anf.var(ctx, "b"), Anf.var(ctx, "c")
        s, carry = full_adder(a, b, c)
        for value in range(8):
            env = {"a": value & 1, "b": (value >> 1) & 1, "c": (value >> 2) & 1}
            total = env["a"] + env["b"] + env["c"]
            assert s.evaluate(env) == total & 1
            assert carry.evaluate(env) == total >> 1
        hs, hc = half_adder(a, b)
        assert hs == a ^ b
        assert hc == a & b


class TestWord:
    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=40, deadline=None)
    def test_add_matches_integers(self, x, y):
        ctx = Context()
        a = Word.inputs(ctx, "a", 8)
        b = Word.inputs(ctx, "b", 8)
        total = a.add(b)
        env = {}
        env.update(assignment_from_int([f"a{i}" for i in range(8)], x))
        env.update(assignment_from_int([f"b{i}" for i in range(8)], y))
        assert total.evaluate(env) == x + y

    @given(st.integers(0, 127), st.integers(0, 127))
    @settings(max_examples=40, deadline=None)
    def test_sub_and_compare_match_integers(self, x, y):
        ctx = Context()
        a = Word.inputs(ctx, "a", 7)
        b = Word.inputs(ctx, "b", 7)
        difference, borrow = a.sub(b)
        gt = a.greater_than(b)
        lt = a.less_than(b)
        eq = a.equals(b)
        env = {}
        env.update(assignment_from_int([f"a{i}" for i in range(7)], x))
        env.update(assignment_from_int([f"b{i}" for i in range(7)], y))
        assert borrow.evaluate(env) == (1 if x < y else 0)
        assert difference.evaluate(env) == ((x - y) % 128)
        assert gt.evaluate(env) == (1 if x > y else 0)
        assert lt.evaluate(env) == (1 if x < y else 0)
        assert eq.evaluate(env) == (1 if x == y else 0)

    def test_constant_and_extend(self):
        ctx = Context()
        word = Word.constant(ctx, 5, 4)
        assert word.evaluate({}) == 5
        assert word.zero_extend(8).width == 8
        assert word.zero_extend(8).evaluate({}) == 5
        assert word.truncate(2).evaluate({}) == 1
        with pytest.raises(ValueError):
            word.zero_extend(2)

    def test_select_and_shift(self):
        ctx = Context()
        cond = Anf.var(ctx, "c")
        a = Word.constant(ctx, 3, 4)
        b = Word.constant(ctx, 12, 4)
        selected = a.select(cond, b)
        assert selected.evaluate({"c": 1}) == 3
        assert selected.evaluate({"c": 0}) == 12
        assert a.shifted_left(2).evaluate({}) == 12

    @given(st.integers(0, 2 ** 10 - 1))
    @settings(max_examples=30, deadline=None)
    def test_popcount_word(self, value):
        ctx = Context()
        names = ctx.bus("x", 10)
        word = popcount_word(ctx, variables(ctx, names))
        assert word.evaluate(assignment_from_int(names, value)) == bin(value).count("1")

    @given(st.integers(0, 63), st.integers(0, 63), st.integers(0, 63))
    @settings(max_examples=30, deadline=None)
    def test_carry_save_reduce(self, x, y, z):
        ctx = Context()
        a = Word.inputs(ctx, "a", 6)
        b = Word.inputs(ctx, "b", 6)
        c = Word.inputs(ctx, "c", 6)
        sum_word, carry_word = carry_save_reduce(ctx, [a, b, c])
        env = {}
        env.update(assignment_from_int([f"a{i}" for i in range(6)], x))
        env.update(assignment_from_int([f"b{i}" for i in range(6)], y))
        env.update(assignment_from_int([f"c{i}" for i in range(6)], z))
        assert sum_word.evaluate(env) + carry_word.evaluate(env) == x + y + z

    def test_word_bit_out_of_range_is_zero(self):
        ctx = Context()
        word = Word.inputs(ctx, "a", 3)
        assert word.bit(10).is_zero
