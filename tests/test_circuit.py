"""Tests for the gate-level netlist substrate."""

import pytest

from repro.anf import Context, parse
from repro.circuit import (
    GateError,
    Netlist,
    anf_to_netlist,
    check_anf_specs_equal,
    check_netlist_against_anf,
    check_netlist_anf_exact,
    check_netlists_equivalent,
    gates,
    netlist_to_anf,
    sop_to_netlist,
    structure_stats,
    to_dot,
)
from repro.anf.sop import Sop


def small_netlist():
    netlist = Netlist("demo")
    netlist.add_inputs(["a", "b", "c"])
    ab = netlist.add_gate(gates.AND, ["a", "b"])
    out = netlist.add_gate(gates.XOR, [ab, "c"])
    netlist.set_output("f", out)
    return netlist


class TestNetlist:
    def test_simulation(self):
        netlist = small_netlist()
        assert netlist.evaluate_outputs({"a": 1, "b": 1, "c": 0}) == {"f": 1}
        assert netlist.evaluate_outputs({"a": 1, "b": 0, "c": 0}) == {"f": 0}
        assert netlist.evaluate_outputs({"a": 1, "b": 1, "c": 1}) == {"f": 0}

    def test_gate_validation(self):
        netlist = Netlist()
        netlist.add_input("a")
        with pytest.raises(GateError):
            netlist.add_gate(gates.NOT, ["a", "a"])
        with pytest.raises(GateError):
            netlist.add_gate("FOO", ["a"])
        with pytest.raises(GateError):
            netlist.add_gate(gates.MUX, ["a"])

    def test_duplicate_driver_rejected(self):
        netlist = Netlist()
        netlist.add_input("a")
        net = netlist.add_gate(gates.NOT, ["a"])
        with pytest.raises(GateError):
            netlist.add_gate(gates.BUF, ["a"], net)
        with pytest.raises(GateError):
            netlist.add_gate(gates.BUF, ["a"], "a")

    def test_topological_order_and_depth(self):
        netlist = small_netlist()
        order = [gate.op for gate in netlist.topological_gates()]
        assert order.index(gates.AND) < order.index(gates.XOR)
        assert netlist.depth() == 2

    def test_missing_input_value(self):
        netlist = small_netlist()
        with pytest.raises(GateError):
            netlist.simulate({"a": 1, "b": 0})

    def test_fanout_counts(self):
        netlist = Netlist()
        netlist.add_input("a")
        x = netlist.add_gate(gates.NOT, ["a"])
        netlist.add_gate(gates.AND, [x, "a"])
        netlist.add_gate(gates.OR, [x, "a"])
        counts = netlist.fanout_counts()
        assert counts[x] == 2
        assert counts["a"] == 3

    def test_cone_extraction(self):
        netlist = Netlist()
        netlist.add_inputs(["a", "b", "c"])
        x = netlist.add_gate(gates.AND, ["a", "b"])
        y = netlist.add_gate(gates.OR, ["b", "c"])
        netlist.set_output("x", x)
        netlist.set_output("y", y)
        cone = netlist.cone_of([x])
        assert cone.num_gates == 1
        assert set(cone.inputs) == {"a", "b"}

    def test_copy_and_validate(self):
        netlist = small_netlist()
        clone = netlist.copy("clone")
        clone.validate()
        assert clone.num_gates == netlist.num_gates
        assert clone.outputs == netlist.outputs

    def test_constants_and_histogram(self):
        netlist = Netlist()
        netlist.add_input("a")
        one = netlist.constant(1)
        out = netlist.add_gate(gates.AND, ["a", one])
        netlist.set_output("f", out)
        assert netlist.evaluate_outputs({"a": 1}) == {"f": 1}
        histogram = netlist.op_histogram()
        assert histogram[gates.CONST1] == 1

    def test_cycle_detection(self):
        netlist = Netlist()
        netlist.add_input("a")
        # Manually create a cycle by driving a gate from a net defined later.
        first = netlist.add_gate(gates.AND, ["a", "loop"])
        netlist.add_gate(gates.BUF, [first], "loop")
        with pytest.raises(GateError):
            netlist.topological_gates()


class TestConversions:
    def test_anf_to_netlist_and_back(self):
        ctx = Context()
        spec = {"f": parse(ctx, "a*b ^ c"), "g": parse(ctx, "a ^ 1")}
        netlist = anf_to_netlist(spec)
        assert check_netlist_against_anf(netlist, spec).equivalent
        flattened = netlist_to_anf(netlist, ctx)
        assert flattened["f"] == spec["f"]
        assert flattened["g"] == spec["g"]

    def test_sop_to_netlist(self):
        ctx = Context(["a", "b", "c"])
        sop = Sop.from_literal_names(ctx, [(("a",), ("b",)), (("b", "c"), ())])
        netlist = sop_to_netlist({"f": sop})
        expr = sop.to_anf()
        assert check_netlist_against_anf(netlist, {"f": expr}).equivalent

    def test_netlist_to_anf_all_gate_types(self):
        netlist = Netlist()
        netlist.add_inputs(["a", "b", "c"])
        nets = {
            "and": netlist.add_gate(gates.AND, ["a", "b"]),
            "nand": netlist.add_gate(gates.NAND, ["a", "b"]),
            "or": netlist.add_gate(gates.OR, ["a", "b"]),
            "nor": netlist.add_gate(gates.NOR, ["a", "b"]),
            "xor": netlist.add_gate(gates.XOR, ["a", "b"]),
            "xnor": netlist.add_gate(gates.XNOR, ["a", "b"]),
            "not": netlist.add_gate(gates.NOT, ["a"]),
            "mux": netlist.add_gate(gates.MUX, ["a", "b", "c"]),
            "fa_sum": netlist.add_gate(gates.FA_SUM, ["a", "b", "c"]),
            "fa_carry": netlist.add_gate(gates.FA_CARRY, ["a", "b", "c"]),
            "ha_sum": netlist.add_gate(gates.HA_SUM, ["a", "b"]),
            "ha_carry": netlist.add_gate(gates.HA_CARRY, ["a", "b"]),
        }
        for port, net in nets.items():
            netlist.set_output(port, net)
        ctx = Context(netlist.inputs)
        exprs = netlist_to_anf(netlist, ctx)
        spec = {
            "and": parse(ctx, "a & b"),
            "nand": parse(ctx, "~(a & b)"),
            "or": parse(ctx, "a | b"),
            "nor": parse(ctx, "~(a | b)"),
            "xor": parse(ctx, "a ^ b"),
            "xnor": parse(ctx, "~(a ^ b)"),
            "not": parse(ctx, "~a"),
            "mux": parse(ctx, "a&b ^ ~a&c"),
            "fa_sum": parse(ctx, "a ^ b ^ c"),
            "fa_carry": parse(ctx, "a*b ^ a*c ^ b*c"),
            "ha_sum": parse(ctx, "a ^ b"),
            "ha_carry": parse(ctx, "a & b"),
        }
        assert check_anf_specs_equal(exprs, spec).equivalent

    def test_exact_flatten_check(self):
        ctx = Context()
        spec = {"f": parse(ctx, "a*b ^ c")}
        netlist = anf_to_netlist(spec)
        assert check_netlist_anf_exact(netlist, spec, ctx).equivalent


class TestEquivalence:
    def test_mismatch_reports_counterexample(self):
        ctx = Context()
        spec = {"f": parse(ctx, "a & b")}
        netlist = Netlist()
        netlist.add_inputs(["a", "b"])
        netlist.set_output("f", netlist.add_gate(gates.OR, ["a", "b"]))
        result = check_netlist_against_anf(netlist, spec)
        assert not result.equivalent
        assert result.counterexample is not None
        assert result.mismatched_output == "f"

    def test_netlists_equivalent(self):
        ctx = Context()
        spec = {"f": parse(ctx, "a ^ b ^ c")}
        left = anf_to_netlist(spec)
        right = Netlist()
        right.add_inputs(["a", "b", "c"])
        partial = right.add_gate(gates.XOR, ["a", "b"])
        right.set_output("f", right.add_gate(gates.XOR, [partial, "c"]))
        assert check_netlists_equivalent(left, right).equivalent

    def test_port_mismatch(self):
        ctx = Context()
        left = anf_to_netlist({"f": parse(ctx, "a")})
        right = anf_to_netlist({"g": parse(ctx, "a")})
        assert not check_netlists_equivalent(left, right).equivalent


class TestStatsAndDot:
    def test_structure_stats(self):
        netlist = small_netlist()
        stats = structure_stats(netlist)
        assert stats.num_gates == 2
        assert stats.num_connections == 4
        assert stats.max_fanin == 2
        assert stats.depth == 2
        assert stats.max_output_cone_inputs == 3
        assert "AND" in stats.op_histogram

    def test_dot_export(self):
        netlist = small_netlist()
        text = to_dot(netlist)
        assert text.startswith("digraph")
        assert "AND" in text and "XOR" in text
        assert '"out:f"' in text
