"""Property tests for the threaded chunked-kernel layer.

Every chunked primitive in :mod:`repro.anf.nativekernel` must be
bit-identical to its serial twin in :mod:`repro.anf.sortkernel` — at any
thread count, with chunk boundaries forced through small inputs, and on the
degenerate masks (empty, all-bits).  The backend-level tests check that
activating the ``threaded`` backend installs the chunking module behind the
module-level kernel seam (so *every* caller runs chunked), that terms too
wide to pack still fall back to the set path, and that a full engine run is
bit-identical to the ``packed`` backend.
"""

from array import array

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.anf import Anf, Context
from repro.anf import cnative, nativekernel, sortkernel
from repro.anf.backend import get_backend, using_backend

terms_strategy = st.lists(
    st.integers(min_value=0, max_value=(1 << 40) - 1), unique=True, max_size=120
)
mask_strategy = st.integers(min_value=0, max_value=(1 << 40) - 1)


def _slab(terms):
    return array(sortkernel.WORD_CODE, sorted(terms))


@pytest.fixture(params=["numpy", "cnative"])
def forced_chunks(request, monkeypatch):
    """Force chunk boundaries through even tiny inputs: 4 workers, 4-row
    chunks, every kernel down the vectorised path — once with the numpy
    serial core and once with the compiled C core, so every chunked
    primitive is checked against both floors."""
    if not sortkernel.available():
        pytest.skip("numpy unavailable")
    if request.param == "cnative":
        if not cnative.available():
            pytest.skip("C extension not built")
        monkeypatch.setattr(nativekernel, "_serial", cnative)
    monkeypatch.setenv(nativekernel.THREADS_ENV, "4")
    monkeypatch.setattr(nativekernel, "CHUNK_MIN_ROWS", 4)
    monkeypatch.setattr(sortkernel, "KERNEL_MIN_ROWS", 0)
    return 4


class TestThreadCount:
    def test_auto_and_zero_mean_cpu_count(self, monkeypatch):
        import os

        for value in ("", "auto", "0", "AUTO"):
            monkeypatch.setenv(nativekernel.THREADS_ENV, value)
            assert nativekernel.thread_count() == (os.cpu_count() or 1)
        monkeypatch.delenv(nativekernel.THREADS_ENV)
        assert nativekernel.thread_count() == (os.cpu_count() or 1)

    def test_explicit_and_malformed_values(self, monkeypatch):
        import os

        monkeypatch.setenv(nativekernel.THREADS_ENV, "3")
        assert nativekernel.thread_count() == 3
        monkeypatch.setenv(nativekernel.THREADS_ENV, "-2")
        with pytest.warns(RuntimeWarning, match="out of range"):
            assert nativekernel.thread_count() == (os.cpu_count() or 1)
        monkeypatch.setenv(nativekernel.THREADS_ENV, "many")
        with pytest.warns(RuntimeWarning, match="malformed"):
            assert nativekernel.thread_count() == (os.cpu_count() or 1)

    def test_env_int_warns_on_bad_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_TUNABLE", "not-a-number")
        with pytest.warns(RuntimeWarning, match="malformed"):
            assert sortkernel._env_int("REPRO_TEST_TUNABLE", 1024) == 1024
        monkeypatch.setenv("REPRO_TEST_TUNABLE", "-5")
        with pytest.warns(RuntimeWarning, match="below the minimum"):
            assert sortkernel._env_int("REPRO_TEST_TUNABLE", 1024, minimum=1) == 1
        # In-range and empty values stay silent.
        monkeypatch.setenv("REPRO_TEST_TUNABLE", "17")
        assert sortkernel._env_int("REPRO_TEST_TUNABLE", 1024) == 17
        monkeypatch.setenv("REPRO_TEST_TUNABLE", "")
        assert sortkernel._env_int("REPRO_TEST_TUNABLE", 1024) == 1024

    def test_single_thread_stays_serial(self, monkeypatch):
        """One worker (or a sub-threshold input) must bypass the pool."""
        monkeypatch.setenv(nativekernel.THREADS_ENV, "1")
        assert not nativekernel._chunkable(10**9)
        monkeypatch.setenv(nativekernel.THREADS_ENV, "4")
        assert not nativekernel._chunkable(2 * nativekernel.CHUNK_MIN_ROWS - 1)


class TestChunkedKernelParity:
    """Chunked vs serial, bit for bit, with forced chunk boundaries."""

    @given(terms=terms_strategy, group_mask=mask_strategy)
    @settings(max_examples=50, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_split_runs_by_group(self, forced_chunks, terms, group_mask):
        slab = _slab(terms)
        serial = sortkernel._split_runs_serial(slab, group_mask)
        chunked = nativekernel.split_runs_by_group(slab, group_mask)
        assert list(chunked[1]) == sorted(serial[1])
        assert [(p, list(r)) for p, r in chunked[0]] == [
            (p, list(r)) for p, r in sorted(serial[0])
        ]

    @given(groups=st.lists(terms_strategy, min_size=1, max_size=3),
           group_mask=mask_strategy)
    @settings(max_examples=40, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_split_build_by_group(self, forced_chunks, groups, group_mask):
        slabs = [(1 << (50 + i), _slab(g)) for i, g in enumerate(groups)]
        serial = sortkernel._split_build_serial(slabs, group_mask)
        chunked = nativekernel.split_build_by_group(slabs, group_mask)
        assert list(chunked[1]) == list(serial[1])
        assert [(p, list(r)) for p, r in chunked[0]] == [
            (p, list(r)) for p, r in serial[0]
        ]

    @given(terms=terms_strategy)
    @settings(max_examples=20, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_degenerate_masks(self, forced_chunks, terms):
        slab = _slab(terms)
        runs, remainder = nativekernel.split_runs_by_group(slab, 0)
        assert runs == [] and list(remainder) == list(slab)
        all_bits = (1 << 64) - 1
        runs, remainder = nativekernel.split_runs_by_group(slab, all_bits)
        assert sorted(p for p, _ in runs) == sorted(t for t in terms if t)
        assert list(remainder) == ([0] if 0 in terms else [])

    @given(left=terms_strategy, right=terms_strategy)
    @settings(max_examples=40, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_xor_merge(self, forced_chunks, left, right):
        merged = nativekernel.xor_merge(_slab(left), _slab(right))
        assert list(merged) == list(
            sortkernel._xor_merge_serial(_slab(left), _slab(right))
        )
        assert list(merged) == sorted(set(left) ^ set(right))

    @given(slabs=st.lists(st.lists(st.integers(min_value=0, max_value=255), max_size=20), max_size=8))
    @settings(max_examples=40, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_parity_merge(self, forced_chunks, slabs):
        arrays = [array(sortkernel.WORD_CODE, s) for s in slabs]
        assert list(nativekernel.parity_merge(arrays)) == list(
            sortkernel._parity_merge_serial(arrays)
        )

    @given(large=terms_strategy,
           small=st.lists(st.integers(min_value=0, max_value=(1 << 20) - 1),
                          unique=True, min_size=1, max_size=6))
    @settings(max_examples=40, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_product_rows(self, forced_chunks, large, small):
        assert list(nativekernel.product_rows(_slab(large), small)) == list(
            sortkernel._product_rows_serial(_slab(large), small)
        )

    @given(terms=terms_strategy, bit=st.sampled_from([1, 1 << 7, 1 << 39]))
    @settings(max_examples=30, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_scatter_tag(self, forced_chunks, terms, bit):
        assert list(nativekernel.scatter_tag(_slab(terms), bit)) == list(
            sortkernel._scatter_tag_serial(_slab(terms), bit)
        )

    @given(left=terms_strategy, right=terms_strategy)
    @settings(max_examples=30, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_shared_literal_count(self, forced_chunks, left, right):
        assert nativekernel.shared_literal_count(
            _slab(left), _slab(right)
        ) == sortkernel._shared_literal_count_serial(_slab(left), _slab(right))

    @given(terms=terms_strategy)
    @settings(max_examples=30, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_popcount_rows(self, forced_chunks, terms):
        assert nativekernel.popcount_rows(_slab(terms)) == sum(
            t.bit_count() for t in terms
        )

    def test_one_vs_many_threads(self, monkeypatch):
        """The same call at 1, 2 and 8 workers returns the same bytes."""
        if not sortkernel.available():
            pytest.skip("numpy unavailable")
        monkeypatch.setattr(nativekernel, "CHUNK_MIN_ROWS", 8)
        monkeypatch.setattr(sortkernel, "KERNEL_MIN_ROWS", 0)
        slab = _slab(range(1, 1000))
        results = []
        for workers in ("1", "2", "8"):
            monkeypatch.setenv(nativekernel.THREADS_ENV, workers)
            runs, remainder = nativekernel.split_runs_by_group(slab, 0b1011)
            results.append(([(p, list(r)) for p, r in runs], list(remainder)))
        assert results[0] == results[1] == results[2]

    def test_chunk_boundary_exactly_at_threshold(self, monkeypatch):
        """Inputs at exactly ``2 * CHUNK_MIN_ROWS`` take the chunked path."""
        if not sortkernel.available():
            pytest.skip("numpy unavailable")
        monkeypatch.setenv(nativekernel.THREADS_ENV, "4")
        monkeypatch.setattr(nativekernel, "CHUNK_MIN_ROWS", 16)
        monkeypatch.setattr(sortkernel, "KERNEL_MIN_ROWS", 0)
        assert nativekernel._chunkable(32)
        slab = _slab(range(1, 33))
        serial = sortkernel._split_runs_serial(slab, 0b11)
        chunked = nativekernel.split_runs_by_group(slab, 0b11)
        assert [(p, list(r)) for p, r in chunked[0]] == [
            (p, list(r)) for p, r in serial[0]
        ]
        assert list(chunked[1]) == list(serial[1])


class TestThreadedBackend:
    def test_activation_installs_the_kernel_hook(self):
        previous = get_backend().name
        with using_backend("threaded"):
            assert sortkernel._parallel is nativekernel
            assert nativekernel._serial is sortkernel
            assert get_backend().name == "threaded"
        expected = {"threaded": nativekernel, "native": cnative}.get(previous)
        assert sortkernel._parallel is expected

    def test_native_activation_installs_both_hooks(self):
        previous = get_backend().name
        with using_backend("native"):
            assert sortkernel._parallel is cnative
            assert nativekernel._serial is cnative
            assert get_backend().name == "native"
        if previous not in ("threaded", "native"):
            assert sortkernel._parallel is None
            assert nativekernel._serial is sortkernel

    def test_wide_terms_fall_back_to_set_path(self):
        ctx = Context([f"w{i}" for i in range(70)])
        wide = Anf(ctx, [1 << 69, (1 << 68) | (1 << 2), 5])
        with using_backend("threaded"):
            buckets, remainder = get_backend().split_by_group(wide, 0b100)
        assert sorted(buckets) == [0b100]
        assert set(buckets[0b100].terms) == {1 << 68, 1}
        assert set(remainder.terms) == {1 << 69}

    def test_engine_parity_with_forced_chunking(self, monkeypatch):
        """A full decomposition under the threaded backend (chunking forced
        through tiny inputs) is bit-identical to the packed backend."""
        if not sortkernel.available():
            pytest.skip("numpy unavailable")
        from repro.anf import majority, variables
        from repro.core import DecompositionOptions, progressive_decomposition
        from repro.anf.expression import xor_accumulate

        monkeypatch.setenv(nativekernel.THREADS_ENV, "4")
        monkeypatch.setattr(nativekernel, "CHUNK_MIN_ROWS", 4)
        results = {}
        for backend in ("packed", "threaded", "native"):
            ctx = Context()
            bits = variables(ctx, [f"x{i}" for i in range(9)])
            outputs = {"maj": majority(bits, ctx), "parity": xor_accumulate(bits, ctx)}
            with using_backend(backend):
                d = progressive_decomposition(
                    outputs, DecompositionOptions(),
                    input_words=[[f"x{i}" for i in range(9)]],
                )
            assert d.verify()
            results[backend] = (
                [(b.name, sorted(b.definition.terms)) for b in d.blocks],
                {p: sorted(e.terms) for p, e in d.outputs.items()},
                [record.group for record in d.iterations],
            )
        assert results["packed"] == results["threaded"] == results["native"]
