"""Tests for the GF(2) linear algebra package."""

from hypothesis import given, settings, strategies as st

from repro.anf import Anf, Context, parse
from repro.gf2 import (
    GF2Matrix,
    XorSpan,
    are_linearly_independent,
    expression_in_span,
    expressions_rank,
    find_expression_dependency,
    find_linear_dependency,
    solve_xor_combination,
    span_rank,
)


class TestMatrix:
    def test_rank_and_rref(self):
        matrix = GF2Matrix.from_lists([[1, 0, 1], [0, 1, 1], [1, 1, 0]])
        assert matrix.rank() == 2

    def test_identity_rank(self):
        matrix = GF2Matrix.from_lists([[1, 0], [0, 1]])
        assert matrix.rank() == 2

    def test_nullspace(self):
        # Columns: c0 ^ c2 = 0 and c1 ^ c3 = 0 in this matrix.
        matrix = GF2Matrix.from_lists([[1, 0, 1, 0], [0, 1, 0, 1]])
        basis = matrix.nullspace_basis()
        assert len(basis) == 2
        for combo in basis:
            assert matrix.multiply_vector(combo) == 0

    def test_transpose_roundtrip(self):
        rows = [[1, 1, 0], [0, 1, 1]]
        matrix = GF2Matrix.from_lists(rows)
        assert matrix.transpose().transpose().to_lists() == rows

    def test_solve_xor_combination(self):
        targets = [0b011, 0b101, 0b110]
        combo = solve_xor_combination(targets, 0b110, 3)
        assert combo is not None
        folded = 0
        for i in range(len(targets)):
            if combo >> i & 1:
                folded ^= targets[i]
        assert folded == 0b110
        assert solve_xor_combination([0b001, 0b010], 0b100) is None


class TestXorSpan:
    def test_add_and_contains(self):
        span = XorSpan()
        assert span.add(0b01)
        assert span.add(0b10)
        assert not span.add(0b11)  # dependent
        assert span.dimension == 2
        assert span.contains(0b11)
        assert not span.contains(0b100)

    def test_combination_for(self):
        span = XorSpan([0b011, 0b101])
        combo = span.combination_for(0b110)
        assert combo is not None
        folded = 0
        for i, vector in enumerate([0b011, 0b101]):
            if combo >> i & 1:
                folded ^= vector
        assert folded == 0b110

    def test_find_linear_dependency(self):
        assert find_linear_dependency([0b01, 0b10, 0b11]) == (2, 0b11)
        assert find_linear_dependency([0b01, 0b10]) is None
        index, combo = find_linear_dependency([0b01, 0])
        assert index == 1 and combo == 0

    def test_are_linearly_independent(self):
        assert are_linearly_independent([1, 2, 4])
        assert not are_linearly_independent([1, 2, 3])

    def test_span_rank(self):
        assert span_rank([1, 2, 3, 4]) == 3

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_dependency_explains_vector(self, vectors):
        dependency = find_linear_dependency(vectors)
        if dependency is None:
            # All vectors independent: rank equals count.
            assert span_rank(vectors) == len(vectors)
        else:
            index, combo = dependency
            folded = 0
            for j in range(index):
                if combo >> j & 1:
                    folded ^= vectors[j]
            assert folded == vectors[index]


class TestExpressionLinearAlgebra:
    def test_dependency_among_expressions(self):
        ctx = Context()
        a, b = Anf.var(ctx, "a"), Anf.var(ctx, "b")
        result = find_expression_dependency([a, b, a ^ b])
        assert result == (2, [0, 1])
        assert find_expression_dependency([a, b]) is None

    def test_expression_in_span(self):
        ctx = Context()
        exprs = [parse(ctx, "a ^ b"), parse(ctx, "b ^ c"), parse(ctx, "a*b")]
        combo = expression_in_span(parse(ctx, "a ^ c"), exprs)
        assert combo is not None
        folded = Anf.zero(ctx)
        for index in combo:
            folded = folded ^ exprs[index]
        assert folded == parse(ctx, "a ^ c")
        assert expression_in_span(parse(ctx, "c"), exprs[:1]) is None

    def test_expressions_rank(self):
        ctx = Context()
        exprs = [parse(ctx, "a"), parse(ctx, "b"), parse(ctx, "a ^ b")]
        assert expressions_rank(exprs) == 2

    def test_lzd_basis_reduction_example(self):
        """The paper's 5.3 example: {V0, P00, P01, V0+P00, V0+P01} has rank 3."""
        ctx = Context()
        v0 = parse(ctx, "a0 | a1 | a2 | a3")
        p00 = parse(ctx, "a3 ^ ~a3*~a2*a1")
        p01 = parse(ctx, "a3 ^ ~a3*a2")
        exprs = [v0, p00, p01, v0 ^ p00, v0 ^ p01]
        assert expressions_rank(exprs) == 3
        dependency = find_expression_dependency(exprs)
        assert dependency is not None
        assert dependency[0] == 3
