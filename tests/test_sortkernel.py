"""Property tests for the whole-matrix sort/scan kernel layer.

Three implementations of every split/scatter kernel must agree on arbitrary
inputs:

* the ``SetBackend`` reference (per-term loops over frozensets),
* the old per-term packed path (kept as ``sortkernel._split_runs_python`` /
  the small-input fallbacks), and
* the new key-sort path (numpy, forced by dropping ``KERNEL_MIN_ROWS`` to 0).

The construction kernels (``sort_terms``/``merge_disjoint``/``xor_merge``/
``parity_merge``/``product_rows``) are checked against brute-force multiset
semantics, the vectorised monomial vocabulary against the dict indexer, and
the sharded ``find_group`` paths against their serial twins.
"""

from array import array

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.anf import Anf, Context
from repro.anf import sortkernel
from repro.anf.backend import PackedBackend, SetBackend
from repro.anf.expression import xor_accumulate
from repro.anf.termmatrix import TermMatrix
from repro.gf2.linear import MonomialIndexer, MonomialVocabulary
from repro.gf2.vectorspace import find_linear_dependency

terms_strategy = st.lists(
    st.integers(min_value=0, max_value=(1 << 40) - 1), unique=True, max_size=80
)
mask_strategy = st.integers(min_value=0, max_value=(1 << 40) - 1)


@pytest.fixture(params=["python", "numpy", "cnative"])
def kernel_mode(request, monkeypatch):
    """Run each kernel property under the per-term fallback, the forced
    numpy path, and the compiled C core (``KERNEL_MIN_ROWS = 0`` sends even
    tiny inputs through the vector kernels; installing ``cnative`` behind
    the parallel seam routes the public kernels through the C primitives)."""
    if request.param == "numpy":
        if not sortkernel.available():
            pytest.skip("numpy unavailable")
        monkeypatch.setattr(sortkernel, "KERNEL_MIN_ROWS", 0)
    elif request.param == "cnative":
        from repro.anf import cnative, nativekernel

        if not cnative.available():
            pytest.skip("C extension not built")
        monkeypatch.setattr(sortkernel, "KERNEL_MIN_ROWS", 0)
        monkeypatch.setattr(sortkernel, "_parallel", cnative)
        monkeypatch.setattr(nativekernel, "_serial", cnative)
    else:
        monkeypatch.setattr(sortkernel, "_np", None)
    return request.param


def _slab(terms):
    return array(sortkernel.WORD_CODE, sorted(terms))


class TestSplitKernel:
    @given(terms=terms_strategy, group_mask=mask_strategy)
    @settings(max_examples=60, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_split_runs_match_reference(self, kernel_mode, terms, group_mask):
        slab = _slab(terms)
        runs, remainder = sortkernel.split_runs_by_group(slab, group_mask)
        ref_runs, ref_remainder = sortkernel._split_runs_python(slab, group_mask)
        assert sorted(remainder) == sorted(ref_remainder)
        assert {p: sorted(r) for p, r in runs} == {
            p: sorted(r) for p, r in ref_runs
        }
        # Born-sorted: every bucket (and the remainder) must ascend strictly.
        for _, rows in runs:
            assert list(rows) == sorted(set(rows))
        assert list(remainder) == sorted(set(remainder))

    @given(terms=terms_strategy)
    @settings(max_examples=30, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_group_mask_zero_is_all_remainder(self, kernel_mode, terms):
        runs, remainder = sortkernel.split_runs_by_group(_slab(terms), 0)
        assert runs == []
        assert sorted(remainder) == sorted(terms)

    @given(terms=terms_strategy)
    @settings(max_examples=30, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_all_bits_mask_buckets_every_term(self, kernel_mode, terms):
        mask = (1 << 64) - 1
        runs, remainder = sortkernel.split_runs_by_group(_slab(terms), mask)
        assert sorted(remainder) == ([0] if 0 in terms else [])
        assert sorted(p for p, _ in runs) == sorted(t for t in terms if t)
        assert all(list(rows) == [0] for _, rows in runs)


class TestRadixSplit:
    """The counting/radix bucketing vs the stable argsort it replaced."""

    # Literal bound (== sortkernel.RADIX_MAX_GROUP_BITS): the strategy must
    # not read the module attribute, which one test monkeypatches.
    narrow_mask = st.integers(min_value=1, max_value=(1 << 40) - 1).filter(
        lambda m: m.bit_count() <= 6
    )

    @given(terms=terms_strategy, group_mask=narrow_mask)
    @settings(max_examples=60)
    def test_radix_matches_python_reference(self, terms, group_mask):
        if not sortkernel.available():
            pytest.skip("numpy unavailable")
        slab = _slab(terms)
        runs, remainder = sortkernel._split_runs_radix(
            slab, sortkernel._mask_bit_positions(group_mask)
        )
        ref_runs, ref_remainder = sortkernel._split_runs_python(slab, group_mask)
        assert list(remainder) == sorted(ref_remainder)
        assert dict(runs) == {p: array(sortkernel.WORD_CODE, sorted(r))
                              for p, r in ref_runs}
        # Buckets come out in ascending group-part order, born-sorted.
        assert [p for p, _ in runs] == sorted(p for p, _ in runs)
        for _, rows in runs:
            assert list(rows) == sorted(set(rows))

    @given(terms=terms_strategy, group_mask=narrow_mask)
    @settings(max_examples=40, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_radix_matches_argsort_path(self, monkeypatch, terms, group_mask):
        """Same inputs through the dispatcher's two vectorised paths."""
        if not sortkernel.available():
            pytest.skip("numpy unavailable")
        monkeypatch.setattr(sortkernel, "KERNEL_MIN_ROWS", 0)
        slab = _slab(terms)
        radix = sortkernel.split_runs_by_group(slab, group_mask)
        # Forcing the width guard to 0 sends the same call down the argsort
        # branch; both paths must emit identical bucket lists (order included).
        # Scoped patch: hypothesis reruns this body many times per fixture.
        with monkeypatch.context() as scoped:
            scoped.setattr(sortkernel, "RADIX_MAX_GROUP_BITS", 0)
            argsort = sortkernel.split_runs_by_group(slab, group_mask)
        assert list(radix[1]) == list(argsort[1])
        assert [(p, list(r)) for p, r in radix[0]] == [
            (p, list(r)) for p, r in argsort[0]
        ]

    def test_wide_masks_keep_the_argsort_path(self, monkeypatch):
        if not sortkernel.available():
            pytest.skip("numpy unavailable")
        monkeypatch.setattr(sortkernel, "KERNEL_MIN_ROWS", 0)
        wide_mask = sum(1 << i for i in range(sortkernel.RADIX_MAX_GROUP_BITS + 2))
        terms = list(range(1, 600))
        runs, remainder = sortkernel.split_runs_by_group(_slab(terms), wide_mask)
        ref_runs, ref_remainder = sortkernel._split_runs_python(_slab(terms), wide_mask)
        assert list(remainder) == sorted(ref_remainder)
        assert dict(runs) == {p: array(sortkernel.WORD_CODE, sorted(r))
                              for p, r in ref_runs}

    def test_all_rows_groupless_returns_input_slab(self, monkeypatch):
        if not sortkernel.available():
            pytest.skip("numpy unavailable")
        monkeypatch.setattr(sortkernel, "KERNEL_MIN_ROWS", 0)
        slab = _slab([2, 4, 6])
        runs, remainder = sortkernel.split_runs_by_group(slab, 1)
        assert runs == [] and remainder is slab


class TestFusedSplitBuild:
    """``split_build_by_group`` vs its per-term oracle and the two-step path.

    Tags are fresh single bits above the term range (bits 50+), group masks
    stay below bit 40 — the preconditions the backend seam enforces before
    calling the fused kernel.
    """

    tagged_slabs = st.lists(terms_strategy, min_size=1, max_size=3).map(
        lambda groups: [
            (1 << (50 + i), _slab(group)) for i, group in enumerate(groups)
        ]
    )

    @given(slabs=tagged_slabs, group_mask=mask_strategy)
    @settings(max_examples=60, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_matches_python_oracle(self, kernel_mode, slabs, group_mask):
        runs, remainder = sortkernel.split_build_by_group(slabs, group_mask)
        ref_runs, ref_remainder = sortkernel._split_build_python(slabs, group_mask)
        assert list(remainder) == list(ref_remainder)
        assert [(p, list(r)) for p, r in runs] == [
            (p, list(r)) for p, r in ref_runs
        ]
        # Born-canonical: ascending parts, strictly ascending rows.
        assert [p for p, _ in runs] == sorted(p for p, _ in runs)
        for _, rows in runs:
            assert list(rows) == sorted(set(rows))

    @given(slabs=tagged_slabs, group_mask=mask_strategy)
    @settings(max_examples=40, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_matches_combine_then_split(self, kernel_mode, slabs, group_mask):
        """The fused kernel equals tag-OR + disjoint merge + split."""
        combined = sortkernel.merge_disjoint(
            [sortkernel.or_into_all(rows, tag) for tag, rows in slabs]
        )
        two_step = sortkernel.split_runs_by_group(combined, group_mask)
        fused = sortkernel.split_build_by_group(slabs, group_mask)
        assert list(fused[1]) == sorted(two_step[1])
        assert {p: list(r) for p, r in fused[0]} == {
            p: sorted(r) for p, r in two_step[0]
        }

    @given(slabs=tagged_slabs)
    @settings(max_examples=20, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_zero_mask_tags_everything_into_remainder(self, kernel_mode, slabs):
        runs, remainder = sortkernel.split_build_by_group(slabs, 0)
        assert runs == []
        expected = sorted(t | tag for tag, rows in slabs for t in rows)
        assert list(remainder) == expected

    def test_empty_slabs_are_skipped(self, kernel_mode):
        empty = array(sortkernel.WORD_CODE)
        runs, remainder = sortkernel.split_build_by_group(
            [(1 << 50, empty), (1 << 51, _slab([3, 4]))], 0b1
        )
        assert list(remainder) == [(1 << 51) | 4]
        assert [(p, list(r)) for p, r in runs] == [(1, [2 | (1 << 51)])]


class TestFusedBackendSeam:
    """``PackedBackend.split_tagged`` vs combine-then-split, decline cases."""

    def _items(self, ctx, outputs):
        from repro.core.basis import _tag_items

        return _tag_items(outputs, ctx)

    @given(outputs_terms=st.lists(st.lists(st.integers(min_value=0, max_value=255),
                                           unique=True, max_size=20), min_size=1, max_size=3),
           group_mask=st.integers(min_value=0, max_value=255))
    @settings(max_examples=40, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_split_tagged_matches_two_step(self, monkeypatch, outputs_terms, group_mask):
        if not sortkernel.available():
            pytest.skip("numpy unavailable")
        from repro.core.basis import combine_with_tags

        monkeypatch.setattr(sortkernel, "KERNEL_MIN_ROWS", 0)
        results = []
        for _ in range(2):
            ctx = Context([f"v{i}" for i in range(8)])
            outputs = {f"o{i}": Anf(ctx, terms) for i, terms in enumerate(outputs_terms)}
            results.append((ctx, outputs))
        (ctx_a, outputs_a), (ctx_b, outputs_b) = results
        items, _ = self._items(ctx_a, outputs_a)
        fused = PackedBackend().split_tagged(items, group_mask, ctx_a)
        assert fused is not None
        combined, _ = combine_with_tags(outputs_b, ctx_b)
        buckets, remainder = combined.split_by_group(group_mask)
        fused_buckets, fused_remainder = fused
        assert fused_remainder.terms == remainder.terms
        assert {p: b.terms for p, b in fused_buckets.items()} == {
            p: b.terms for p, b in buckets.items()
        }

    def test_set_backend_always_declines(self):
        ctx = Context(["a", "b"])
        items, _ = self._items(ctx, {"o": Anf(ctx, [1, 2])})
        assert SetBackend().split_tagged(items, 0b1, ctx) is None

    def test_wide_terms_decline_the_fused_path(self):
        ctx = Context([f"w{i}" for i in range(70)])
        items, _ = self._items(ctx, {"o": Anf(ctx, [1 << 69, 5])})
        assert PackedBackend().split_tagged(items, 0b100, ctx) is None

    def test_group_mask_colliding_with_tags_declines(self):
        ctx = Context(["a", "b"])
        items, _ = self._items(ctx, {"o": Anf(ctx, [1, 2])})
        tag_bit = items[0][0]
        assert PackedBackend().split_tagged(items, tag_bit | 1, ctx) is None


class TestBackendParityThreeWays:
    """SetBackend vs old per-term packed path vs new key-sort path."""

    @given(terms=terms_strategy, group_mask=st.integers(min_value=0, max_value=255))
    @settings(max_examples=50, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_split_by_group(self, monkeypatch, terms, group_mask):
        if not sortkernel.available():
            pytest.skip("numpy unavailable")
        ctx = Context([f"v{i}" for i in range(8)])
        expr = Anf(ctx, terms)
        set_buckets, set_rem = SetBackend().split_by_group(expr, group_mask)
        monkeypatch.setattr(sortkernel, "KERNEL_MIN_ROWS", 0)
        new_buckets, new_rem = PackedBackend().split_by_group(
            Anf(ctx, terms), group_mask
        )
        assert set_rem.terms == new_rem.terms
        assert {p: b.terms for p, b in set_buckets.items()} == {
            p: b.terms for p, b in new_buckets.items()
        }

    @given(terms=terms_strategy, tags_mask=st.integers(min_value=0, max_value=(1 << 8) - 1))
    @settings(max_examples=50, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_scatter_by_tags(self, monkeypatch, terms, tags_mask):
        if not sortkernel.available():
            pytest.skip("numpy unavailable")
        ctx = Context([f"v{i}" for i in range(8)])
        reference = SetBackend().scatter_by_tags(Anf(ctx, terms), tags_mask)
        monkeypatch.setattr(sortkernel, "KERNEL_MIN_ROWS", 0)
        fast = PackedBackend().scatter_by_tags(Anf(ctx, terms), tags_mask)
        assert {bit: comp.terms for bit, comp in reference.items()} == {
            bit: comp.terms for bit, comp in fast.items()
        }

    def test_wide_terms_fall_back_to_set_path(self):
        ctx = Context([f"w{i}" for i in range(70)])
        wide = Anf(ctx, [1 << 69, (1 << 68) | (1 << 2), 5])
        buckets, remainder = PackedBackend().split_by_group(wide, 0b100)
        assert sorted(buckets) == [0b100]
        assert set(buckets[0b100].terms) == {1 << 68, 1}
        assert set(remainder.terms) == {1 << 69}
        scattered = PackedBackend().scatter_by_tags(wide, 0b101)
        reference = SetBackend().scatter_by_tags(wide, 0b101)
        assert {b: c.terms for b, c in scattered.items()} == {
            b: c.terms for b, c in reference.items()
        }


class TestConstructionKernels:
    @given(terms=terms_strategy)
    @settings(max_examples=40, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_sort_terms(self, kernel_mode, terms):
        rows = sortkernel.sort_terms(frozenset(terms))
        assert rows is not None and list(rows) == sorted(terms)

    def test_sort_terms_declines_wide_rows(self, kernel_mode):
        assert sortkernel.sort_terms([0, 1 << 64]) is None

    @given(groups=st.lists(terms_strategy, max_size=4))
    @settings(max_examples=40, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_merge_disjoint(self, kernel_mode, groups):
        marked = [_slab({(t << 3) | i for t in group}) for i, group in enumerate(groups)]
        union = set()
        for slab in marked:
            union |= set(slab)
        assert list(sortkernel.merge_disjoint(marked)) == sorted(union)

    @given(left=terms_strategy, right=terms_strategy)
    @settings(max_examples=40, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_xor_merge(self, kernel_mode, left, right):
        merged = sortkernel.xor_merge(_slab(left), _slab(right))
        assert list(merged) == sorted(set(left) ^ set(right))

    @given(slabs=st.lists(st.lists(st.integers(min_value=0, max_value=255), max_size=12), max_size=6))
    @settings(max_examples=60, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_parity_merge(self, kernel_mode, slabs):
        counts = {}
        for slab in slabs:
            for row in slab:
                counts[row] = counts.get(row, 0) + 1
        expected = sorted(r for r, c in counts.items() if c & 1)
        got = sortkernel.parity_merge(
            [array(sortkernel.WORD_CODE, slab) for slab in slabs]
        )
        assert sorted(got) == expected

    @given(large=terms_strategy, small=st.lists(st.integers(min_value=0, max_value=(1 << 20) - 1),
                                               unique=True, min_size=1, max_size=8))
    @settings(max_examples=50, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_product_rows(self, kernel_mode, large, small):
        counts = {}
        for t in small:
            for r in large:
                key = r | t
                counts[key] = counts.get(key, 0) + 1
        expected = sorted(r for r, c in counts.items() if c & 1)
        got = sortkernel.product_rows(_slab(large), small)
        assert list(got) == expected

    @given(left=terms_strategy, right=terms_strategy)
    @settings(max_examples=40, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_shared_literal_count(self, kernel_mode, left, right):
        shared = set(left) & set(right)
        expected = sum(r.bit_count() for r in shared)
        assert sortkernel.shared_literal_count(_slab(left), _slab(right)) == expected

    @given(terms=terms_strategy)
    @settings(max_examples=30, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_support_fold_and_or_into_all(self, kernel_mode, terms):
        slab = _slab(terms)
        mask = 0
        for t in terms:
            mask |= t
        assert sortkernel.support_fold(slab) == mask
        disjoint = (1 << 41)
        assert list(sortkernel.or_into_all(slab, disjoint)) == sorted(
            t | disjoint for t in terms
        )


class TestExpressionAccumulation:
    @given(st.lists(st.lists(st.integers(min_value=0, max_value=255), max_size=10), max_size=8))
    @settings(max_examples=50, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_xor_accumulate_matches_fold(self, pieces_terms):
        ctx = Context([f"v{i}" for i in range(8)])
        pieces = [Anf(ctx, terms) for terms in pieces_terms]
        folded = Anf.zero(ctx)
        for piece in pieces:
            folded = folded ^ piece
        assert xor_accumulate(pieces, ctx).terms == folded.terms

    @given(large_terms=terms_strategy, small_terms=st.lists(st.integers(min_value=0, max_value=(1 << 10) - 1),
                                                           unique=True, min_size=1, max_size=6))
    @settings(max_examples=40, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_matrix_product_matches_set_product(self, monkeypatch, large_terms, small_terms):
        if not sortkernel.available():
            pytest.skip("numpy unavailable")
        ctx = Context([f"v{i}" for i in range(41)])
        reference = Anf(ctx, large_terms) & Anf(ctx, small_terms)
        monkeypatch.setattr(sortkernel, "KERNEL_MIN_ROWS", 0)
        fast_large = Anf._from_matrix(ctx, TermMatrix.from_terms(large_terms))
        fast = fast_large & Anf(ctx, small_terms)
        assert fast.terms == reference.terms


class TestMonomialVocabulary:
    @given(st.lists(st.lists(st.integers(min_value=0, max_value=(1 << 30) - 1),
                             unique=True, max_size=30), min_size=1, max_size=8))
    @settings(max_examples=50, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_dependencies_match_indexer(self, exprs_terms):
        ctx = Context([f"v{i}" for i in range(30)])
        exprs = [Anf(ctx, terms) for terms in exprs_terms]
        indexer, vocabulary = MonomialIndexer(), MonomialVocabulary()
        by_indexer = find_linear_dependency([indexer.vector_of(e) for e in exprs])
        by_vocabulary = find_linear_dependency([vocabulary.vector_of(e) for e in exprs])
        assert by_indexer == by_vocabulary

    @given(terms=st.lists(st.integers(min_value=0, max_value=(1 << 30) - 1),
                          unique=True, max_size=40))
    @settings(max_examples=30, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_equal_sets_equal_vectors(self, monkeypatch, terms):
        monkeypatch.setattr(MonomialVocabulary, "BULK_MIN_TERMS", 1)
        ctx = Context([f"v{i}" for i in range(30)])
        vocabulary = MonomialVocabulary()
        first = vocabulary.vector_of(Anf(ctx, terms))
        # Same set again, scalar path this time — coordinates must agree.
        monkeypatch.setattr(MonomialVocabulary, "BULK_MIN_TERMS", 10 ** 9)
        second = vocabulary.vector_of(Anf(ctx, list(reversed(terms))))
        assert first == second

    def test_wide_monomials_share_the_id_space(self):
        ctx = Context([f"w{i}" for i in range(70)])
        vocabulary = MonomialVocabulary()
        wide = Anf(ctx, [1 << 69, 5])
        narrow = Anf(ctx, [5])
        v_wide = vocabulary.vector_of(wide)
        v_narrow = vocabulary.vector_of(narrow)
        # XOR must cancel the shared monomial 5 exactly.
        assert (v_wide ^ v_narrow).bit_count() == 1


class TestShardedGrouping:
    """REPRO_SHARD_PASSES must never change a result, only where it runs."""

    @given(outputs_terms=st.lists(st.lists(st.integers(min_value=0, max_value=(1 << 10) - 1),
                                           unique=True, max_size=20), min_size=1, max_size=3))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_find_group_parity(self, monkeypatch, outputs_terms):
        from repro.core.grouping import find_group

        ctx = Context([f"v{i}" for i in range(10)])
        outputs = {f"o{i}": Anf(ctx, terms) for i, terms in enumerate(outputs_terms)}
        inputs = [f"v{i}" for i in range(10)]
        monkeypatch.delenv("REPRO_SHARD_PASSES", raising=False)
        serial = find_group(outputs, 4, ctx, [], [inputs])
        monkeypatch.setenv("REPRO_SHARD_PASSES", "2")
        sharded = find_group(outputs, 4, ctx, [], [inputs])
        assert serial == sharded

    @given(outputs_terms=st.lists(st.lists(st.integers(min_value=0, max_value=(1 << 10) - 1),
                                           unique=True, max_size=20), min_size=1, max_size=3))
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_cooccurrence_parity(self, monkeypatch, outputs_terms):
        from repro.core.grouping import _cooccurrence_group

        ctx = Context([f"v{i}" for i in range(10)])
        outputs = {f"o{i}": Anf(ctx, terms) for i, terms in enumerate(outputs_terms)}
        candidates = [f"v{i}" for i in range(10)]
        monkeypatch.delenv("REPRO_SHARD_PASSES", raising=False)
        serial = _cooccurrence_group(outputs, candidates, ctx, 4)
        monkeypatch.setenv("REPRO_SHARD_PASSES", "2")
        sharded = _cooccurrence_group(outputs, candidates, ctx, 4)
        assert serial == sharded

    def test_sharding_disabled_inside_daemonic_workers(self, monkeypatch):
        import multiprocessing

        from repro.engine.batch import shard_workers

        monkeypatch.setenv("REPRO_SHARD_PASSES", "1")
        assert shard_workers() is not None
        monkeypatch.setattr(
            multiprocessing.current_process(), "_config", {"daemon": True}
        )
        assert shard_workers() is None

    def test_sharded_decomposition_is_bit_identical(self, monkeypatch):
        from repro.anf import majority, variables
        from repro.core import DecompositionOptions, progressive_decomposition

        results = {}
        for mode in (None, "2"):
            ctx = Context()
            bits = variables(ctx, [f"x{i}" for i in range(9)])
            outputs = {"maj": majority(bits, ctx), "parity": xor_accumulate(bits, ctx)}
            if mode is None:
                monkeypatch.delenv("REPRO_SHARD_PASSES", raising=False)
            else:
                monkeypatch.setenv("REPRO_SHARD_PASSES", mode)
            d = progressive_decomposition(
                outputs, DecompositionOptions(), input_words=[[f"x{i}" for i in range(9)]]
            )
            assert d.verify()
            results[mode] = (
                [(b.name, sorted(b.definition.terms)) for b in d.blocks],
                {p: sorted(e.terms) for p, e in d.outputs.items()},
                [record.group for record in d.iterations],
            )
        assert results[None] == results["2"]
