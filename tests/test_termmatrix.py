"""Property tests for the packed term-matrix backend.

Two layers are exercised: the :class:`TermMatrix` data structure itself
(packed views must agree with per-term computation), and the backend kernels
(``split_by_group``, ``combine_with_tags``, ``scatter_by_tags``,
``disjoint_xor``, ``pair_key``) whose set- and packed-backend implementations
must compute identical canonical term sets on arbitrary expressions.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.anf import Anf, Context
from repro.anf.backend import (
    PackedBackend,
    SetBackend,
    get_backend,
    set_backend,
    using_backend,
)
from repro.anf.termmatrix import (
    TERM_LIMIT,
    TermMatrix,
    concat_sorted,
    replicate,
    xor_sorted,
)

terms_strategy = st.lists(
    st.integers(min_value=0, max_value=(1 << 40) - 1), unique=True, max_size=60
)


class TestTermMatrix:
    @given(terms_strategy)
    def test_roundtrip_and_views(self, terms):
        matrix = TermMatrix.from_terms(terms)
        assert matrix is not None
        assert matrix.count == len(terms)
        assert matrix.to_list() == sorted(terms)
        assert matrix.literal_count() == sum(t.bit_count() for t in terms)
        support = 0
        for t in terms:
            support |= t
        assert matrix.support_mask() == support

    @given(terms_strategy, terms_strategy)
    def test_key_equality_is_set_equality(self, left, right):
        lm = TermMatrix.from_terms(left)
        rm = TermMatrix.from_terms(right)
        assert (lm.key() == rm.key()) == (set(left) == set(right))

    @given(terms_strategy, st.integers(min_value=0, max_value=(1 << 63) - 1))
    def test_or_all_matches_per_term(self, terms, mask):
        matrix = TermMatrix.from_terms(terms)
        mask &= ~matrix.support_mask()
        result = matrix.or_all(mask)
        assert result.to_list() == sorted(t | mask for t in terms)

    def test_or_all_rejects_overlapping_mask(self):
        matrix = TermMatrix.from_terms([0b01, 0b10])
        with pytest.raises(ValueError):
            matrix.or_all(0b10)

    @given(terms_strategy, st.integers(min_value=0, max_value=(1 << 40) - 1))
    def test_strip_and_contains(self, terms, mask):
        marked = {t | mask for t in terms}
        matrix = TermMatrix.from_terms(marked)
        assert matrix.contains_all(mask)
        assert matrix.strip_all(mask).to_list() == sorted({t & ~mask for t in marked})

    @given(terms_strategy, terms_strategy)
    def test_xor_sorted_is_symmetric_difference(self, left, right):
        lm = TermMatrix.from_terms(left)
        rm = TermMatrix.from_terms(right)
        assert set(xor_sorted(lm, rm).to_list()) == set(left) ^ set(right)

    @given(st.lists(terms_strategy, max_size=4))
    def test_concat_sorted_of_disjoint_runs(self, groups):
        # Tag each group's rows with a distinct low marker so the groups are
        # disjoint by construction (the precondition of concat_sorted).
        marked = [
            TermMatrix.from_terms({(t << 3) | i for t in group})
            for i, group in enumerate(groups)
        ]
        union = set()
        for matrix in marked:
            union |= set(matrix.to_list())
        assert concat_sorted(marked).to_list() == sorted(union)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1), st.integers(min_value=0, max_value=40))
    def test_replicate(self, mask, count):
        rep = replicate(mask, count)
        for i in range(count):
            assert (rep >> (64 * i)) & ((1 << 64) - 1) == mask

    def test_from_terms_declines_wide_terms(self):
        assert TermMatrix.from_terms([0, TERM_LIMIT]) is None


def _expr(ctx, subsets):
    terms = []
    for subset in subsets:
        mask = 0
        for i in subset:
            mask |= 1 << i
        terms.append(mask)
    return Anf(ctx, terms)


subsets_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=7), max_size=5).map(frozenset),
    max_size=24,
)


class TestBackendKernelParity:
    """The two backends must compute identical canonical term sets."""

    @given(subsets_strategy, st.integers(min_value=0, max_value=255))
    @settings(max_examples=80)
    def test_split_by_group(self, subsets, group_mask):
        ctx = Context([f"v{i}" for i in range(8)])
        expr = _expr(ctx, subsets)
        set_buckets, set_rem = SetBackend().split_by_group(expr, group_mask)
        packed_buckets, packed_rem = PackedBackend().split_by_group(expr, group_mask)
        assert set_rem.terms == packed_rem.terms
        assert set(set_buckets) == set(packed_buckets)
        for part in set_buckets:
            assert set_buckets[part].terms == packed_buckets[part].terms

    @given(subsets_strategy, subsets_strategy)
    @settings(max_examples=60)
    def test_combine_and_scatter(self, subsets_f, subsets_g):
        from repro.core.basis import combine_with_tags

        results = {}
        for name in ("set", "packed"):
            ctx = Context([f"v{i}" for i in range(8)])
            outputs = {"f": _expr(ctx, subsets_f), "g": _expr(ctx, subsets_g)}
            with using_backend(name):
                combined, tag_of_port = combine_with_tags(outputs, ctx)
                tags_mask = sum(1 << ctx.index(t) for t in tag_of_port.values())
                scattered = get_backend().scatter_by_tags(combined, tags_mask)
            results[name] = (
                combined.terms,
                {bit: comp.terms for bit, comp in scattered.items()},
            )
        assert results["set"] == results["packed"]

    @given(subsets_strategy)
    @settings(max_examples=40)
    def test_pair_key_equality_semantics(self, subsets):
        ctx = Context([f"v{i}" for i in range(8)])
        built = _expr(ctx, subsets)
        twin = Anf(ctx, list(built.terms))
        matrix_backed = Anf._from_matrix(ctx, TermMatrix.from_terms(built.terms))
        backend = PackedBackend()
        assert backend.pair_key(built) == backend.pair_key(twin)
        assert backend.pair_key(built) == backend.pair_key(matrix_backed)

    @given(subsets_strategy)
    @settings(max_examples=40)
    def test_matrix_backed_anf_behaves_identically(self, subsets):
        ctx = Context([f"v{i}" for i in range(8)])
        plain = _expr(ctx, subsets)
        lazy = Anf._from_matrix(ctx, TermMatrix.from_terms(plain.terms))
        assert lazy == plain and plain == lazy
        assert hash(lazy) == hash(plain)
        assert lazy.num_terms == plain.num_terms
        assert lazy.literal_count == plain.literal_count
        assert lazy.support_mask == plain.support_mask
        assert lazy.degree == plain.degree
        assert lazy.is_zero == plain.is_zero
        assert lazy.is_one == plain.is_one
        assert lazy.is_literal == plain.is_literal
        assert sorted(lazy.term_list()) == sorted(plain.term_list())
        other = _expr(ctx, [frozenset({0, 3}), frozenset({1})])
        assert (lazy ^ other).terms == (plain ^ other).terms
        assert (lazy & other).terms == (plain & other).terms


class TestBackendSelection:
    def test_active_backend_honours_environment(self):
        import os

        expected = os.environ.get("REPRO_TERM_BACKEND", "packed")
        assert get_backend().name == expected

    def test_set_backend_round_trip(self):
        previous = get_backend().name
        try:
            assert set_backend("set").name == "set"
            assert get_backend().name == "set"
        finally:
            set_backend(previous)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            set_backend("bogus")

    def test_using_backend_restores(self):
        before = get_backend().name
        with using_backend("set"):
            assert get_backend().name == "set"
        assert get_backend().name == before


class TestWideContexts:
    """Terms over 64 variable indices cannot pack; everything must fall back."""

    def test_decomposition_with_high_variable_indices(self):
        from repro.core import DecompositionOptions, progressive_decomposition

        results = {}
        from repro.anf import majority

        for backend in ("set", "packed"):
            ctx = Context([f"w{i}" for i in range(70)])
            names = [f"w{i}" for i in range(62, 70)]  # bits 62..69 cross word size
            maj = majority([Anf.var(ctx, n) for n in names], ctx)
            with using_backend(backend):
                d = progressive_decomposition({"m": maj}, DecompositionOptions(), input_words=[names])
            assert d.verify()
            results[backend] = (
                [(b.name, sorted(b.definition.terms)) for b in d.blocks],
                {p: sorted(e.terms) for p, e in d.outputs.items()},
            )
        assert results["set"] == results["packed"]

    def test_wide_anf_fast_paths_degrade(self):
        ctx = Context([f"w{i}" for i in range(70)])
        wide = Anf(ctx, [1 << 69, (1 << 68) | (1 << 2), 5])
        assert wide.term_matrix(build=True) is None
        assert wide.term_key() == wide.terms
        assert wide.literal_count == 5
        assert wide.support_mask == (1 << 69) | (1 << 68) | 5
        buckets, remainder = PackedBackend().split_by_group(wide, 0b100)
        assert sorted(buckets) == [0b100]
        assert set(buckets[0b100].terms) == {1 << 68, 1}
        assert set(remainder.terms) == {1 << 69}
