"""CI promotion of the full-width benchmark sweep (ROADMAP lever).

Runs the paper's Table 1 widths through the batch orchestrator and asserts
the decomposition structure matches the committed expectations in
``benchmarks/BENCH_full_expected.json`` — the same result keys
``run_bench.py --compare`` enforces, so any change to the engine's observable
behaviour at full width fails tier-1 immediately.

The 15-bit comparator is the one full-width circuit that takes minutes, not
seconds (its flat Reed-Muller form runs to millions of monomials); it is
only included when ``REPRO_FULL_SWEEP=all``.  Set ``REPRO_FULL_SWEEP=0`` to
skip the sweep entirely (e.g. on very constrained machines).

The sweep runs through the session-scoped ``bench_cache_dir`` fixture (see
``conftest.py``): by default that is a throwaway per-session directory —
the result cache is keyed by (spec, pipeline config), not by code version,
so a cache persisting across *revisions* would return pre-regression
results and defeat the gate — but CI may point ``REPRO_TEST_CACHE_DIR`` at
a per-commit directory so a warm rerun of the same code skips the
re-derivation.  Parallel workers keep the cold run in the "seconds" budget.
"""

import json
import os
from pathlib import Path

import pytest

from repro.engine import BatchJob, BatchOrchestrator
from repro.eval.table1 import PD_SPEC_BUILDERS

REPO_ROOT = Path(__file__).resolve().parent.parent
EXPECTED_PATH = REPO_ROOT / "benchmarks" / "BENCH_full_expected.json"

SWEEP_MODE = os.environ.get("REPRO_FULL_SWEEP", "1")
SLOW_CIRCUITS = ("comparator",)


@pytest.mark.skipif(SWEEP_MODE == "0", reason="REPRO_FULL_SWEEP=0 disables the sweep")
def test_full_width_sweep_matches_committed_expectations(bench_cache_dir):
    expected = json.loads(EXPECTED_PATH.read_text())["circuits"]
    selected = [
        name for name in expected
        if SWEEP_MODE == "all" or name not in SLOW_CIRCUITS
    ]
    assert selected, "expectation file is empty"

    orchestrator = BatchOrchestrator(bench_cache_dir / "decompositions")
    results = orchestrator.run([
        BatchJob(name, PD_SPEC_BUILDERS[name], (expected[name]["width"],))
        for name in selected
    ])

    failures = []
    for name in selected:
        decomposition = results[name].decomposition
        if not decomposition.verify():
            failures.append(f"{name}: Decomposition.verify() failed")
            continue
        # "width" is the job input, not a decomposition metric — comparing it
        # against itself would be vacuous.
        measured = {
            "blocks": len(decomposition.blocks),
            "levels": decomposition.num_levels,
            "block_literals": decomposition.total_block_literals(),
            "output_literals": sum(
                expr.literal_count for expr in decomposition.outputs.values()
            ),
        }
        for key, value in expected[name].items():
            if key == "width":
                continue
            if measured[key] != value:
                failures.append(
                    f"{name}: {key} changed {value} -> {measured[key]}"
                )
    assert not failures, "full-width sweep diverged from committed results:\n" + "\n".join(
        f"  - {failure}" for failure in failures
    )
