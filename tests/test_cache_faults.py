"""Crash-consistency tests for the shared on-disk caches.

Every test answers one question: if a writer is interrupted (killed between
write and rename, tears its payload, or a foreign/damaged file lands at a
record path), do readers (a) never crash, (b) never serve torn data, and
(c) quarantine exactly the damaged records to ``*.corrupt`` sidecars?

The interruption points come from two directions: a byte-level truncation
sweep driven by hypothesis (any prefix of a committed record), and the
``REPRO_FAULT_SPEC`` harness tearing the write path itself at its named
fault sites (``cache.store.payload``, ``cache.store.rename``,
``cache.index.*``).
"""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from test_engine_parity import assert_bit_identical

from repro import faults
from repro.anf import Context, canonical_spec_digest, majority, variables
from repro.core import progressive_decomposition
from repro.engine import (
    CacheTelemetry,
    DecompositionCache,
    Pipeline,
    SynthesisCache,
    cache_key,
    corrupt_record_count,
    decompose_cached,
)
from repro.engine.cache import FSYNC_ENV, LOCK_ENV


@pytest.fixture(autouse=True)
def _clean_fault_env(monkeypatch):
    monkeypatch.delenv(faults.ENV, raising=False)
    monkeypatch.delenv(LOCK_ENV, raising=False)
    monkeypatch.delenv(FSYNC_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


def arm(monkeypatch, spec: str) -> None:
    monkeypatch.setenv(faults.ENV, spec)
    faults.reset()


def _majority_outputs(width: int):
    ctx = Context()
    bits = ctx.bus("a", width)
    return {"maj": majority(variables(ctx, bits), ctx)}, [bits]


def _stored_record(cache_dir):
    """A real committed record: (cache, key, record_path, decomposition)."""
    cache = DecompositionCache(cache_dir, telemetry=CacheTelemetry())
    outputs, words = _majority_outputs(5)
    pipeline = Pipeline.from_options(None)
    key = cache_key(canonical_spec_digest(outputs, words), pipeline.config_key())
    decomposition, hit = decompose_cached(outputs, input_words=words, cache=cache)
    assert not hit
    return cache, key, cache._path(key), decomposition


# ----------------------------------------------------------------------
# Byte-level truncation sweep: any prefix of a record is survivable
# ----------------------------------------------------------------------
class TestTruncationSweep:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_any_prefix_is_a_quarantined_miss(self, tmp_path_factory, data):
        tmp_path = tmp_path_factory.mktemp("trunc")
        cache, key, path, decomposition = _stored_record(tmp_path)
        payload = path.read_bytes()
        cut = data.draw(st.integers(min_value=0, max_value=len(payload) - 1))
        path.write_bytes(payload[:cut])

        assert cache.load(key) is None  # never crashes, never serves torn data
        assert not path.exists()  # the torn record was moved aside ...
        assert path.with_name(path.name + ".corrupt").exists()
        assert cache.telemetry.corrupt == 1

        # ... and the key is immediately writable again with a good record.
        cache.store(key, decomposition)
        assert_bit_identical(cache.load(key), decomposition)

    def test_full_record_loads_bit_identical(self, tmp_path):
        cache, key, _, decomposition = _stored_record(tmp_path)
        assert_bit_identical(cache.load(key), decomposition)
        assert cache.telemetry.corrupt == 0


# ----------------------------------------------------------------------
# Fault-injected write path
# ----------------------------------------------------------------------
class TestTornStores:
    def test_skipped_rename_never_publishes_the_record(self, tmp_path, monkeypatch):
        cache, key, path, decomposition = _stored_record(tmp_path)
        path.unlink()
        arm(monkeypatch, "cache.store.rename:skip")
        cache.store(key, decomposition)  # "crashes" between write and rename
        assert not path.exists()
        assert cache.load(key) is None
        assert len(cache) == 0
        # Only the writer's tmp file remains; it is invisible to readers.
        leftovers = list(tmp_path.glob("*.tmp"))
        assert len(leftovers) == 1
        # A later healthy writer lands the record normally.
        monkeypatch.delenv(faults.ENV)
        cache.store(key, decomposition)
        assert_bit_identical(cache.load(key), decomposition)

    def test_torn_payload_is_quarantined_on_read(self, tmp_path, monkeypatch):
        cache, key, path, decomposition = _stored_record(tmp_path)
        path.unlink()
        arm(monkeypatch, "cache.store.payload:truncate")
        cache.store(key, decomposition)  # the rename publishes a torn payload
        monkeypatch.delenv(faults.ENV)
        assert cache.load(key) is None
        assert path.with_name(path.name + ".corrupt").exists()
        assert corrupt_record_count(tmp_path) == 1

    def test_corrupted_payload_is_quarantined_on_read(self, tmp_path, monkeypatch):
        cache, key, path, decomposition = _stored_record(tmp_path)
        path.unlink()
        arm(monkeypatch, "cache.store.payload:corrupt")
        cache.store(key, decomposition)
        monkeypatch.delenv(faults.ENV)
        assert cache.load(key) is None
        assert corrupt_record_count(tmp_path) == 1

    def test_store_io_error_leaves_no_partial_record(self, tmp_path, monkeypatch):
        cache, key, path, decomposition = _stored_record(tmp_path)
        path.unlink()
        arm(monkeypatch, "cache.store:err")
        with pytest.raises(OSError):
            cache.store(key, decomposition)
        assert len(cache) == 0
        assert list(tmp_path.glob("*.tmp")) == []  # tmp cleaned up on failure

    def test_quarantine_is_exact_healthy_neighbours_survive(self, tmp_path, monkeypatch):
        cache, key, path, decomposition = _stored_record(tmp_path)
        healthy_key = "0" * len(key)
        cache.store_raw(healthy_key, json.loads(path.read_text()))
        path.write_text("{torn")
        assert cache.load(key) is None
        assert corrupt_record_count(tmp_path) == 1  # exactly the damaged one
        assert_bit_identical(cache.load(healthy_key), decomposition)

    def test_corrupt_sidecars_are_never_reread_and_clear_removes_them(
        self, tmp_path, monkeypatch
    ):
        cache, key, path, decomposition = _stored_record(tmp_path)
        path.write_text("{torn")
        assert cache.load(key) is None
        assert cache.load(key) is None  # second read: plain miss, one sidecar
        assert corrupt_record_count(tmp_path) == 1
        assert cache.telemetry.corrupt == 1
        assert cache.clear() == 0
        assert corrupt_record_count(tmp_path) == 0


class TestTornIndexStores:
    def test_skipped_index_rename_is_a_plain_index_miss(self, tmp_path, monkeypatch):
        cache, key, _, _ = _stored_record(tmp_path)
        arm(monkeypatch, "cache.index.rename:skip")
        cache.store_index("job-fp", key)
        assert cache.load_index("job-fp") is None
        monkeypatch.delenv(faults.ENV)
        cache.store_index("job-fp", key)
        assert cache.load_index("job-fp") == key

    def test_truncated_index_payload_is_a_plain_index_miss(self, tmp_path, monkeypatch):
        cache, key, _, _ = _stored_record(tmp_path)
        arm(monkeypatch, "cache.index.payload:truncate:0")
        cache.store_index("job-fp", key)
        assert cache.load_index("job-fp") is None


class TestSynthesisCacheFaults:
    METRICS = {"design": "d", "area": 1.0, "delay": 2.0, "cells": 3, "depth": 4}

    def test_torn_record_quarantined(self, tmp_path):
        telemetry = CacheTelemetry()
        cache = SynthesisCache(tmp_path, telemetry=telemetry)
        cache.store("k", self.METRICS)
        (tmp_path / "k.json").write_text('{"schema": "repro-synthesis-v1", "area"')
        assert cache.load("k") is None
        assert telemetry.corrupt == 1
        assert corrupt_record_count(tmp_path) == 1
        assert cache.clear() == 0
        assert corrupt_record_count(tmp_path) == 0

    def test_non_numeric_metric_quarantined(self, tmp_path):
        cache = SynthesisCache(tmp_path, telemetry=CacheTelemetry())
        cache.store("k", self.METRICS)
        record = dict(self.METRICS, schema="repro-synthesis-v1", area="wide")
        (tmp_path / "k.json").write_text(json.dumps(record))
        assert cache.load("k") is None
        assert cache.telemetry.corrupt == 1

    def test_fault_injected_torn_store(self, tmp_path, monkeypatch):
        cache = SynthesisCache(tmp_path, telemetry=CacheTelemetry())
        arm(monkeypatch, "cache.store.payload:truncate")
        cache.store("k", self.METRICS)
        monkeypatch.delenv(faults.ENV)
        assert cache.load("k") is None
        assert corrupt_record_count(tmp_path) == 1
        cache.store("k", self.METRICS)
        assert cache.load("k")["area"] == 1.0


# ----------------------------------------------------------------------
# Locking / fsync knobs (behavioural smoke: correctness is unchanged)
# ----------------------------------------------------------------------
class TestDurabilityKnobs:
    def test_lock_enabled_store_and_load(self, tmp_path, monkeypatch):
        monkeypatch.setenv(LOCK_ENV, "1")
        cache, key, _, decomposition = _stored_record(tmp_path)
        assert (tmp_path / ".lock").exists()
        assert_bit_identical(cache.load(key), decomposition)

    def test_fsync_enabled_store_and_load(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FSYNC_ENV, "1")
        cache, key, _, decomposition = _stored_record(tmp_path)
        assert_bit_identical(cache.load(key), decomposition)

    def test_telemetry_snapshot_includes_corrupt(self, tmp_path):
        cache, key, path, _ = _stored_record(tmp_path)
        path.write_text("{")
        cache.load(key)
        snap = cache.telemetry.snapshot()
        assert snap["corrupt"] == 1
        assert snap["stores"] == 1
