"""Admission control: token buckets, shedding, brownout, and the 429 path.

The unit half drives :class:`AdmissionController` with an injected fake
clock, so every hold timer and refill is deterministic.  The end-to-end
half runs the real server (``ServiceThread``) with deliberately tiny
:class:`AdmissionConfig` operating points and asserts the HTTP contract:
a heavy client gets a structured 429 with ``Retry-After`` while a light
client on the same server stays untouched.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro import faults
from repro.engine.cost import estimate_cost
from repro.service import (
    AdmissionConfig,
    AdmissionController,
    ServiceThread,
    SpecError,
    TokenBucket,
    parse_job_spec,
)
from repro.service.admission import (
    ADMIT,
    CACHE_ONLY,
    DEDUP_COST,
    SHED,
    THROTTLE,
    admission_config_from_env,
)

from test_service import http_json


@pytest.fixture(autouse=True)
def _clean_fault_env(monkeypatch):
    monkeypatch.delenv(faults.ENV, raising=False)
    monkeypatch.delenv(faults.STATE_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


class FakeClock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def post_spec_raw(base_url, spec, headers=None, wait=True, timeout=60.0):
    """Like ``post_spec`` but returns (status, body, headers) and does not
    raise on 4xx — admission rejections are an expected outcome here."""
    suffix = "?wait=1" if wait else ""
    request = urllib.request.Request(
        f"{base_url}/jobs{suffix}",
        data=json.dumps(spec).encode("utf-8"),
        headers=headers or {},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


# ----------------------------------------------------------------------
# Token bucket
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_starts_full_and_charges_down(self):
        bucket = TokenBucket(rate=10.0, burst=100.0, now=0.0)
        assert bucket.try_charge(30.0, 0.0) == 0.0
        assert bucket.tokens == pytest.approx(70.0)

    def test_unaffordable_charge_reports_wait_without_charging(self):
        bucket = TokenBucket(rate=10.0, burst=100.0, now=0.0)
        bucket.try_charge(30.0, 0.0)
        wait = bucket.try_charge(200.0, 0.0)  # need = min(200, burst) = 100
        assert wait == pytest.approx(3.0)
        assert bucket.tokens == pytest.approx(70.0)  # untouched

    def test_oversized_job_drives_the_bucket_into_debt(self):
        bucket = TokenBucket(rate=10.0, burst=100.0, now=0.0)
        assert bucket.try_charge(250.0, 0.0) == 0.0  # affordable at full burst
        assert bucket.tokens == pytest.approx(-150.0)
        # the debt must refill before anything else is admitted
        wait = bucket.try_charge(10.0, 0.0)
        assert wait == pytest.approx(16.0)  # (10 - (-150)) / 10

    def test_refill_is_lazy_and_capped_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=100.0, now=0.0)
        bucket.try_charge(100.0, 0.0)
        assert bucket.try_charge(50.0, 5.0) == 0.0  # refilled to 50 by t=5
        bucket.try_charge(0.0, 1000.0)
        assert bucket.tokens == pytest.approx(100.0)  # never above burst

    def test_clock_going_backwards_does_not_drain_tokens(self):
        bucket = TokenBucket(rate=10.0, burst=100.0, now=50.0)
        bucket.try_charge(0.0, 10.0)
        assert bucket.tokens == pytest.approx(100.0)


# ----------------------------------------------------------------------
# Environment parsing
# ----------------------------------------------------------------------
class TestConfigFromEnv:
    def test_defaults_without_environment(self, monkeypatch):
        for name in list(__import__("os").environ):
            if name.startswith("REPRO_ADMISSION"):
                monkeypatch.delenv(name)
        config = admission_config_from_env()
        assert config == AdmissionConfig()
        assert config.enabled

    def test_master_switch(self, monkeypatch):
        for value in ("0", "false", "off", "no"):
            monkeypatch.setenv("REPRO_ADMISSION", value)
            assert not admission_config_from_env().enabled
        monkeypatch.setenv("REPRO_ADMISSION", "1")
        assert admission_config_from_env().enabled

    def test_malformed_value_warns_and_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_ADMISSION_RATE", "plenty")
        with pytest.warns(RuntimeWarning, match="REPRO_ADMISSION_RATE"):
            config = admission_config_from_env()
        assert config.rate == AdmissionConfig().rate

    def test_below_minimum_warns_and_clamps(self, monkeypatch):
        monkeypatch.setenv("REPRO_ADMISSION_BURST", "-5")
        with pytest.warns(RuntimeWarning, match="clamping"):
            config = admission_config_from_env()
        assert config.burst == 1.0

    def test_explicit_values_land(self, monkeypatch):
        monkeypatch.setenv("REPRO_ADMISSION_RATE", "400")
        monkeypatch.setenv("REPRO_ADMISSION_MAX_QUEUE_DEPTH", "64")
        config = admission_config_from_env()
        assert config.rate == 400.0
        assert config.max_queue_depth == 64


# ----------------------------------------------------------------------
# The decision, two-phase bookkeeping and client tracking
# ----------------------------------------------------------------------
def controller(clock, **overrides) -> AdmissionController:
    defaults = dict(rate=10.0, burst=100.0, max_queue_cost=1000.0,
                    max_queue_depth=8, cheap_cost=5.0,
                    brownout_high=0.75, brownout_low=0.25, brownout_hold=1.0,
                    client_ttl=600.0)
    defaults.update(overrides)
    return AdmissionController(AdmissionConfig(**defaults), clock=clock)


class TestDecide:
    def test_admit_then_throttle_then_recover(self):
        clock = FakeClock()
        ctl = controller(clock)
        first = ctl.decide("alice", 80.0)
        assert first.action == ADMIT
        second = ctl.decide("alice", 80.0)
        assert second.action == THROTTLE
        assert second.retry_after == pytest.approx(6.0)  # (80-20)/10
        clock.advance(second.retry_after)
        assert ctl.decide("alice", 80.0).action == ADMIT
        assert ctl.throttled == 1 and ctl.admitted == 2

    def test_clients_have_independent_buckets(self):
        clock = FakeClock()
        ctl = controller(clock)
        ctl.decide("alice", 100.0)
        assert ctl.decide("alice", 50.0).action == THROTTLE
        assert ctl.decide("bob", 50.0).action == ADMIT

    def test_shed_on_queue_cost_watermark(self):
        clock = FakeClock()
        ctl = controller(clock, max_queue_cost=100.0, burst=1000.0)
        admitted = ctl.decide("alice", 90.0)
        ctl.register(admitted)
        refused = ctl.decide("bob", 20.0)
        assert refused.action == SHED
        assert refused.retry_after >= ctl.config.brownout_hold
        assert ctl.shed == 1
        # settling the admitted job reopens the gate
        ctl.settle(admitted)
        assert ctl.decide("bob", 20.0).action == ADMIT

    def test_shed_on_queue_depth_watermark(self):
        clock = FakeClock()
        ctl = controller(clock, max_queue_depth=1, burst=10000.0,
                         max_queue_cost=100000.0)
        ctl.register(ctl.decide("alice", 10.0))
        assert ctl.decide("bob", 10.0).action == SHED

    def test_cheap_jobs_pass_the_watermarks(self):
        clock = FakeClock()
        ctl = controller(clock, max_queue_cost=100.0, burst=1000.0)
        ctl.register(ctl.decide("alice", 99.0))
        cheap = ctl.decide("bob", 4.0)  # <= cheap_cost
        assert cheap.action == ADMIT
        assert cheap.cost_class == "cheap"

    def test_dedup_bypasses_shedding_and_pays_nominal_cost(self):
        clock = FakeClock()
        ctl = controller(clock, max_queue_cost=100.0, burst=1000.0)
        ctl.register(ctl.decide("alice", 99.0))
        attach = ctl.decide("bob", 500.0, dedup=True)
        assert attach.action == ADMIT
        assert attach.cost == DEDUP_COST
        # dedup attaches never register queue cost
        ctl.register(attach)
        assert ctl.queue_cost == pytest.approx(99.0)
        assert ctl.queue_depth == 1

    def test_register_and_settle_are_idempotent_and_balanced(self):
        clock = FakeClock()
        ctl = controller(clock, burst=1000.0)
        decision = ctl.decide("alice", 60.0)
        ctl.register(decision)
        ctl.register(decision)  # double-register is a no-op
        assert ctl.queue_cost == pytest.approx(60.0)
        assert ctl.queue_cost_by_class["standard"] == pytest.approx(60.0)
        ctl.settle(decision)
        ctl.settle(decision)  # double-settle is a no-op
        ctl.settle(None)  # settling an unadmitted submission is fine
        assert ctl.queue_cost == 0.0
        assert ctl.queue_depth == 0

    def test_rejected_decisions_never_register(self):
        clock = FakeClock()
        ctl = controller(clock)
        ctl.decide("alice", 100.0)
        refused = ctl.decide("alice", 100.0)
        assert refused.action == THROTTLE
        ctl.register(refused)
        assert ctl.queue_cost == 0.0

    def test_idle_clients_are_evicted_after_ttl(self):
        clock = FakeClock()
        ctl = controller(clock, client_ttl=60.0)
        ctl.decide("alice", 1.0)
        assert ctl.snapshot()["active_clients"] == 1
        clock.advance(61.0)
        ctl.decide("bob", 1.0)
        assert set(ctl._buckets) == {"bob"}

    def test_classify_boundaries(self):
        ctl = controller(FakeClock())
        assert ctl.classify(5.0) == "cheap"
        assert ctl.classify(5.1) == "standard"
        assert ctl.classify(50.0) == "heavy"  # >= burst / 2


# ----------------------------------------------------------------------
# Brownout hysteresis
# ----------------------------------------------------------------------
class TestBrownout:
    def saturated(self, clock, **overrides):
        """A controller whose queue sits above the high watermark."""
        ctl = controller(clock, max_queue_cost=100.0, burst=10000.0,
                         **overrides)
        heavy = ctl.decide("alice", 90.0)
        ctl.register(heavy)
        return ctl, heavy

    def test_escalates_only_after_the_hold_period(self):
        clock = FakeClock()
        ctl, _ = self.saturated(clock)
        assert ctl.brownout_state() == "normal"  # arms the timer
        clock.advance(0.5)
        assert ctl.brownout_state() == "normal"  # hold not yet served
        clock.advance(0.6)
        assert ctl.brownout_state() == "degraded"
        clock.advance(1.1)
        assert ctl.brownout_state() == "cache_only"
        clock.advance(10.0)
        assert ctl.brownout_state() == "cache_only"  # no level past the floor

    def test_band_between_watermarks_resets_the_timers(self):
        clock = FakeClock()
        ctl, heavy = self.saturated(clock)
        ctl.brownout_state()
        clock.advance(0.9)  # almost escalated …
        ctl.settle(heavy)
        mid = ctl.decide("alice", 50.0)  # pressure 0.5: inside the band
        ctl.register(mid)
        ctl.brownout_state()
        clock.advance(0.9)
        # saturate again: the hold starts over instead of resuming at 0.9
        ctl.register(ctl.decide("bob", 45.0))
        ctl.brownout_state()
        clock.advance(0.5)
        assert ctl.brownout_state() == "normal"

    def test_recovery_needs_the_low_watermark_held(self):
        clock = FakeClock()
        ctl, heavy = self.saturated(clock)
        ctl.brownout_state()
        clock.advance(1.1)
        assert ctl.brownout_state() == "degraded"
        ctl.settle(heavy)  # pressure 0.0
        clock.advance(0.5)
        assert ctl.brownout_state() == "degraded"  # hold not served yet
        clock.advance(0.6)
        assert ctl.brownout_state() == "normal"
        snap = ctl.snapshot()["brownout"]
        assert snap["engaged"] == 1 and snap["cleared"] == 1

    def test_cache_only_refuses_cold_work_but_not_cached_or_cheap(self):
        clock = FakeClock()
        ctl, _ = self.saturated(clock, cheap_cost=5.0)
        ctl.brownout_state()
        clock.advance(1.1)
        ctl.brownout_state()
        clock.advance(1.1)
        assert ctl.brownout_state() == "cache_only"
        cold = ctl.decide("bob", 50.0)
        assert cold.action == CACHE_ONLY
        assert cold.retry_after >= 1.0
        assert ctl.cache_only_rejects == 1
        assert ctl.decide("bob", 2.0).action == ADMIT  # cheap
        assert ctl.decide("bob", 50.0, dedup=True).action == ADMIT
        # a submission that collapses to a disk read is priced cheap by the
        # cost model, but even a heavier cached estimate may pass the floor
        assert ctl.decide("bob", 50.0, cached=True).action != CACHE_ONLY


# ----------------------------------------------------------------------
# Spec-level client plumbing (no server needed)
# ----------------------------------------------------------------------
class TestClientSpecField:
    def test_client_field_parses_and_round_trips(self):
        spec = parse_job_spec(
            {"circuit": "majority", "width": 5, "client": "team-a.web_1"}
        )
        assert spec.client == "team-a.web_1"
        assert spec.payload()["client"] == "team-a.web_1"

    def test_client_does_not_change_the_dedup_digest(self):
        base = parse_job_spec({"circuit": "majority", "width": 5})
        tagged = parse_job_spec(
            {"circuit": "majority", "width": 5, "client": "alice"}
        )
        assert base.digest() == tagged.digest()

    @pytest.mark.parametrize("bad", ["", "spaces here", "semi;colon", "x" * 65, 7])
    def test_invalid_client_values_rejected(self, bad):
        with pytest.raises(SpecError) as excinfo:
            parse_job_spec({"circuit": "majority", "width": 5, "client": bad})
        assert excinfo.value.detail["field"] == "client"


# ----------------------------------------------------------------------
# End to end: the HTTP 429 contract
# ----------------------------------------------------------------------
#: comparator-13 costs ~60 units; comparator-12 ~21.  rate=1 means a
#: throttled client waits tens of seconds — far past any test timing.
TIGHT_QUOTA = AdmissionConfig(rate=1.0, burst=25.0, cheap_cost=5.0)


class TestServiceAdmission:
    def test_heavy_client_throttled_while_light_client_unaffected(self, tmp_path):
        with ServiceThread(cache_dir=str(tmp_path / "store"), workers=0,
                           admission=TIGHT_QUOTA) as handle:
            status, body, _ = post_spec_raw(
                handle.base_url, {"circuit": "comparator", "width": 12},
                headers={"X-Repro-Client": "hog"},
            )
            assert status == 200 and body["state"] == "done"

            status, body, headers = post_spec_raw(
                handle.base_url, {"circuit": "comparator", "width": 13},
                headers={"X-Repro-Client": "hog"},
            )
            assert status == 429
            detail = body["error"]
            assert detail["type"] == "ClientThrottled"
            assert detail["client"] == "hog"
            assert detail["estimated_cost"] == pytest.approx(
                estimate_cost("comparator", 13), rel=1e-6
            )
            assert detail["retry_after_seconds"] >= 1
            assert int(headers["Retry-After"]) == detail["retry_after_seconds"]

            # A different client's cheap work sails through the same server.
            status, body, _ = post_spec_raw(
                handle.base_url, {"circuit": "majority", "width": 5},
                headers={"X-Repro-Client": "light"},
            )
            assert status == 200 and body["state"] == "done"

            _, metrics = http_json(f"{handle.base_url}/metrics")
            admission = metrics["admission"]
            assert admission["enabled"] is True
            assert admission["throttled"] == 1
            assert admission["admitted"] == 2
            assert admission["queue_cost"] == 0.0  # everything settled
            assert admission["queue_depth"] == 0
            assert admission["active_clients"] == 2

    def test_spec_client_field_names_the_bucket(self, tmp_path):
        with ServiceThread(cache_dir=str(tmp_path / "store"), workers=0,
                           admission=TIGHT_QUOTA) as handle:
            post_spec_raw(handle.base_url,
                          {"circuit": "comparator", "width": 12, "client": "hog"})
            status, body, _ = post_spec_raw(
                handle.base_url,
                {"circuit": "comparator", "width": 13, "client": "hog"},
            )
            assert status == 429
            assert body["error"]["client"] == "hog"

    def test_shed_and_dedup_bypass_under_a_tiny_queue(self, tmp_path):
        config = AdmissionConfig(
            max_queue_cost=1050.0, cheap_cost=5.0,
            brownout_hold=300.0,  # keep brownout out of this test
        )
        with ServiceThread(cache_dir=str(tmp_path / "store"), workers=0,
                           admission=config) as handle:
            # A long job occupies ~1021 cost units of queue (delay is priced
            # 1:1 per ms) — it fits under the 1050-unit watermark alone, but
            # leaves no room for any further non-cheap work.
            long_spec = {"circuit": "comparator", "width": 12, "delay_ms": 1000}
            status, body, _ = post_spec_raw(handle.base_url, long_spec, wait=False)
            assert status == 202
            job_id = body["id"]

            status, body, headers = post_spec_raw(
                handle.base_url, {"circuit": "comparator", "width": 13}
            )
            assert status == 429
            assert body["error"]["type"] == "AdmissionShed"
            assert "Retry-After" in headers

            # The identical in-flight spec attaches (dedup) instead of shedding.
            status, body, _ = post_spec_raw(handle.base_url, long_spec, wait=False)
            assert status == 202

            # Cheap work still admits through the storm.
            status, body, _ = post_spec_raw(
                handle.base_url, {"circuit": "majority", "width": 5}
            )
            assert status == 200 and body["state"] == "done"

            status, done = http_json(f"{handle.base_url}/jobs/{job_id}?wait=1")
            assert done["state"] == "done"
            _, metrics = http_json(f"{handle.base_url}/metrics")
            assert metrics["admission"]["shed"] == 1
            assert metrics["admission"]["queue_cost"] == 0.0

    def test_brownout_strips_verify_and_recovers(self, tmp_path):
        config = AdmissionConfig(
            max_queue_cost=1600.0, cheap_cost=5.0,
            brownout_high=0.5, brownout_low=0.2, brownout_hold=0.0,
        )
        with ServiceThread(cache_dir=str(tmp_path / "store"), workers=0,
                           admission=config) as handle:
            # ~1521 cost units of queue: pressure ≈ 0.95, past the 0.5 high
            # watermark, while the job itself still fits under the cap.
            long_spec = {"circuit": "comparator", "width": 12, "delay_ms": 1500}
            status, body, _ = post_spec_raw(handle.base_url, long_spec, wait=False)
            assert status == 202
            job_id = body["id"]

            # Metrics scrapes observe pressure; with hold=0 each scrape can
            # advance the brownout one level.
            deadline = time.time() + 10.0
            state = "normal"
            while time.time() < deadline and state == "normal":
                _, metrics = http_json(f"{handle.base_url}/metrics")
                state = metrics["admission"]["brownout"]["state"]
                time.sleep(0.05)
            assert state != "normal"

            # A verify submission is degraded: optional work shed, job runs.
            status, body, _ = post_spec_raw(
                handle.base_url,
                {"circuit": "majority", "width": 5, "verify": True},
            )
            assert status == 200 and body["state"] == "done"
            assert body.get("degraded") is True
            assert "verified" not in body["result"]

            http_json(f"{handle.base_url}/jobs/{job_id}?wait=1")
            # With the queue drained the scrapes walk the state back down.
            deadline = time.time() + 10.0
            while time.time() < deadline:
                _, metrics = http_json(f"{handle.base_url}/metrics")
                if metrics["admission"]["brownout"]["state"] == "normal":
                    break
                time.sleep(0.05)
            brownout = metrics["admission"]["brownout"]
            assert brownout["state"] == "normal"
            assert brownout["engaged"] >= 1
            assert brownout["cleared"] >= 1
            assert metrics["admission"]["degraded_jobs"] >= 1

    def test_disabled_admission_is_a_pass_through(self, tmp_path):
        config = AdmissionConfig(enabled=False, rate=0.001, burst=0.001)
        with ServiceThread(cache_dir=str(tmp_path / "store"), workers=0,
                           admission=config) as handle:
            for _ in range(3):
                status, body, _ = post_spec_raw(
                    handle.base_url, {"circuit": "comparator", "width": 12},
                    headers={"X-Repro-Client": "hog"},
                )
                assert status == 200
            _, metrics = http_json(f"{handle.base_url}/metrics")
            assert metrics["admission"]["enabled"] is False
            assert metrics["admission"]["admitted"] == 0

    def test_admit_fault_site_cannot_leak_queue_cost(self, tmp_path, monkeypatch):
        # An I/O fault injected after the admit decision but before the
        # queue books are touched: the request fails as a 500 and the
        # accounting stays balanced, so the next submission is untouched.
        monkeypatch.setenv(faults.ENV, "admission.admit:err@1")
        faults.reset()
        with ServiceThread(cache_dir=str(tmp_path / "store"), workers=0) as handle:
            status, body, _ = post_spec_raw(
                handle.base_url, {"circuit": "majority", "width": 5}
            )
            assert status == 500
            status, body, _ = post_spec_raw(
                handle.base_url, {"circuit": "majority", "width": 5}
            )
            assert status == 200 and body["state"] == "done"
            _, metrics = http_json(f"{handle.base_url}/metrics")
            assert metrics["admission"]["queue_cost"] == 0.0
            assert metrics["admission"]["queue_depth"] == 0

    def test_shed_fault_site_fires_on_rejection(self, tmp_path, monkeypatch):
        monkeypatch.setenv(faults.ENV, "admission.shed[hog]:exc@1")
        faults.reset()
        with ServiceThread(cache_dir=str(tmp_path / "store"), workers=0,
                           admission=TIGHT_QUOTA) as handle:
            post_spec_raw(handle.base_url, {"circuit": "comparator", "width": 12},
                          headers={"X-Repro-Client": "hog"})
            status, _, _ = post_spec_raw(
                handle.base_url, {"circuit": "comparator", "width": 13},
                headers={"X-Repro-Client": "hog"},
            )
            assert status == 500  # the injected fault pre-empts the 429
            assert ("admission.shed", "exc", 1) in faults.snapshot()
