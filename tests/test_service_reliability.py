"""Supervision tests: worker death, retries, timeouts, quarantine, 408s.

Worker deaths are injected deterministically through ``REPRO_FAULT_SPEC``
(see :mod:`repro.faults`) with ``REPRO_FAULT_STATE`` pointing at a shared
counter directory, so "the worker dies exactly once and the retry
succeeds" is an assertion, not a race.  The fault environment is set
*before* the ``ServiceThread`` starts, so forked pool workers inherit it.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import faults
from repro.service import ServiceThread, parse_job_spec

from test_service import http_json, post_spec


@pytest.fixture(autouse=True)
def _clean_fault_env(monkeypatch):
    monkeypatch.delenv(faults.ENV, raising=False)
    monkeypatch.delenv(faults.STATE_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


def arm_global(monkeypatch, tmp_path, spec: str) -> None:
    """Arm a fault spec with cross-process (flock-file) hit counters."""
    state = tmp_path / "fault-state"
    state.mkdir(exist_ok=True)
    monkeypatch.setenv(faults.ENV, spec)
    monkeypatch.setenv(faults.STATE_ENV, str(state))
    faults.reset()


# ----------------------------------------------------------------------
# Spec-level plumbing (no server needed)
# ----------------------------------------------------------------------
class TestReliabilitySpecFields:
    def test_timeout_and_retries_parse_and_round_trip(self):
        spec = parse_job_spec(
            {"circuit": "majority", "width": 5, "timeout": 2.5, "max_retries": 1}
        )
        assert spec.timeout == 2.5
        assert spec.max_retries == 1
        payload = spec.payload()
        assert payload["timeout"] == 2.5
        assert payload["max_retries"] == 1

    def test_scheduling_fields_do_not_change_the_dedup_digest(self):
        base = parse_job_spec({"circuit": "majority", "width": 5})
        tuned = parse_job_spec(
            {"circuit": "majority", "width": 5, "timeout": 9.0, "max_retries": 5}
        )
        assert base.digest() == tuned.digest()

    @pytest.mark.parametrize("bad, field", [
        ({"circuit": "majority", "width": 5, "timeout": 0}, "timeout"),
        ({"circuit": "majority", "width": 5, "timeout": -1}, "timeout"),
        ({"circuit": "majority", "width": 5, "timeout": 1e9}, "timeout"),
        ({"circuit": "majority", "width": 5, "timeout": "fast"}, "timeout"),
        ({"circuit": "majority", "width": 5, "max_retries": -1}, "max_retries"),
        ({"circuit": "majority", "width": 5, "max_retries": 99}, "max_retries"),
        ({"circuit": "majority", "width": 5, "max_retries": 1.5}, "max_retries"),
    ])
    def test_invalid_values_rejected(self, bad, field):
        from repro.service import SpecError

        with pytest.raises(SpecError) as excinfo:
            parse_job_spec(bad)
        assert excinfo.value.detail["field"] == field


# ----------------------------------------------------------------------
# Worker death -> retry -> recovery
# ----------------------------------------------------------------------
class TestWorkerDeathRecovery:
    def test_killed_worker_is_retried_and_job_completes(self, tmp_path, monkeypatch):
        arm_global(monkeypatch, tmp_path, "worker.job:kill@1")
        with ServiceThread(workers=1, retry_base_delay=0.05) as handle:
            status, body = post_spec(
                handle.base_url, {"circuit": "majority", "width": 5}, timeout=120.0
            )
            assert status == 200
            assert body["state"] == "done"
            assert body["attempts"] == 2  # died once, retry landed
            _, metrics = http_json(f"{handle.base_url}/metrics")
            assert metrics["reliability"]["worker_deaths"] == 1
            assert metrics["reliability"]["retries"] == 1
            assert metrics["reliability"]["quarantined_jobs"] == 0
            assert metrics["jobs"]["completed"] == 1
            assert metrics["jobs"]["failed"] == 0

    def test_dedup_subscribers_survive_worker_death(self, tmp_path, monkeypatch):
        # The herd gate: N identical submissions attach to one in-flight
        # computation, its worker dies, and every subscriber is served by
        # the retry — nobody is lost, and it still runs only once per attempt.
        arm_global(monkeypatch, tmp_path, "worker.job[majority-5]:kill@1")
        with ServiceThread(workers=1, retry_base_delay=0.05) as handle:
            spec = {"circuit": "majority", "width": 5, "delay_ms": 300}
            with ThreadPoolExecutor(max_workers=6) as pool:
                futures = [
                    pool.submit(post_spec, handle.base_url, spec, True, 120.0)
                    for _ in range(6)
                ]
                outcomes = [f.result() for f in futures]
            assert all(status == 200 for status, _ in outcomes)
            assert all(body["state"] == "done" for _, body in outcomes)
            _, metrics = http_json(f"{handle.base_url}/metrics")
            assert metrics["jobs"]["completed"] == 6
            assert metrics["jobs"]["failed"] == 0
            assert metrics["reliability"]["worker_deaths"] == 1
            assert metrics["dedup"]["inflight_hits"] >= 1

    def test_poisoned_spec_exhausts_retries_and_quarantines(self, tmp_path, monkeypatch):
        arm_global(monkeypatch, tmp_path, "worker.job:kill%1")  # kill every attempt
        with ServiceThread(workers=1, retry_base_delay=0.05,
                           quarantine_ttl=300.0) as handle:
            status, body = post_spec(
                handle.base_url,
                {"circuit": "majority", "width": 5, "max_retries": 1},
                timeout=120.0,
            )
            assert status == 200
            assert body["state"] == "failed"
            assert body["error_detail"]["type"] == "WorkerCrash"
            assert body["error_detail"]["attempts"] == 2
            # The digest is now quarantined: an identical resubmission fails
            # fast with a structured error instead of burning more workers.
            status, body = post_spec(
                handle.base_url,
                {"circuit": "majority", "width": 5, "max_retries": 1},
                timeout=30.0,
            )
            assert body["state"] == "failed"
            assert body["error_detail"]["type"] == "Quarantined"
            assert body["error_detail"]["retry_after_seconds"] > 0
            _, metrics = http_json(f"{handle.base_url}/metrics")
            assert metrics["reliability"]["worker_deaths"] == 2
            assert metrics["reliability"]["retries"] == 1
            assert metrics["reliability"]["quarantined_jobs"] == 1

    def test_service_survives_death_and_serves_fresh_jobs(self, tmp_path, monkeypatch):
        arm_global(monkeypatch, tmp_path, "worker.job[majority-3]:kill x9".replace(" ", ""))
        with ServiceThread(workers=1, retry_base_delay=0.05) as handle:
            status, body = post_spec(
                handle.base_url,
                {"circuit": "majority", "width": 3, "max_retries": 0},
                timeout=120.0,
            )
            assert body["state"] == "failed"
            # The pool was rebuilt: an unrelated spec still computes fine.
            status, body = post_spec(
                handle.base_url, {"circuit": "majority", "width": 5}, timeout=120.0
            )
            assert status == 200
            assert body["state"] == "done"


# ----------------------------------------------------------------------
# Per-job wall-clock timeout
# ----------------------------------------------------------------------
class TestJobTimeout:
    def test_job_past_its_deadline_fails_structured(self):
        with ServiceThread(workers=0) as handle:
            start = time.time()
            status, body = post_spec(
                handle.base_url,
                {"circuit": "majority", "width": 3, "delay_ms": 2000,
                 "timeout": 0.3},
                timeout=60.0,
            )
            elapsed = time.time() - start
            assert status == 200
            assert body["state"] == "failed"
            assert body["error_detail"]["type"] == "JobTimeout"
            assert body["error_detail"]["timeout_seconds"] == 0.3
            assert elapsed < 1.5  # failed at the deadline, not after the sleep
            _, metrics = http_json(f"{handle.base_url}/metrics")
            assert metrics["reliability"]["timeouts"] == 1

    def test_fast_job_is_untouched_by_its_timeout(self):
        with ServiceThread(workers=0) as handle:
            status, body = post_spec(
                handle.base_url,
                {"circuit": "majority", "width": 5, "timeout": 60.0},
                timeout=60.0,
            )
            assert body["state"] == "done"
            _, metrics = http_json(f"{handle.base_url}/metrics")
            assert metrics["reliability"]["timeouts"] == 0


# ----------------------------------------------------------------------
# Connection read timeout (slowloris)
# ----------------------------------------------------------------------
class TestRequestReadTimeout:
    def test_stalled_client_gets_structured_408(self):
        with ServiceThread(workers=0, read_timeout=0.4) as handle:
            with socket.create_connection(("127.0.0.1", handle.port), timeout=30) as sock:
                # Send a partial request and stall: never finish the headers.
                sock.sendall(b"POST /jobs HTTP/1.1\r\nContent-Le")
                response = b""
                sock.settimeout(30)
                while b"\r\n\r\n" not in response:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    response += chunk
                while True:
                    try:
                        chunk = sock.recv(4096)
                    except socket.timeout:
                        break
                    if not chunk:
                        break
                    response += chunk
            head, _, body = response.partition(b"\r\n\r\n")
            assert b"408 Request Timeout" in head
            payload = json.loads(body.decode("utf-8"))
            assert payload["error"]["type"] == "RequestTimeout"
            _, metrics = http_json(f"{handle.base_url}/metrics")
            assert metrics["reliability"]["request_timeouts"] == 1

    def test_prompt_requests_are_unaffected(self):
        with ServiceThread(workers=0, read_timeout=0.4) as handle:
            status, body = http_json(f"{handle.base_url}/healthz")
            assert status == 200
            assert body["status"] == "ok"


# ----------------------------------------------------------------------
# Corrupt cache records surface in /metrics
# ----------------------------------------------------------------------
class TestCacheCorruptionMetrics:
    def test_corrupt_record_counter(self, tmp_path):
        store = tmp_path / "store"
        with ServiceThread(workers=0, cache_dir=str(store)) as handle:
            spec = {"circuit": "majority", "width": 5}
            _, first = post_spec(handle.base_url, spec)
            assert first["state"] == "done"
            _, metrics = http_json(f"{handle.base_url}/metrics")
            assert metrics["cache"]["corrupt_records"] == 0
            # Damage the stored record on disk; the next submission must
            # quarantine it, recompute, and expose the counter.
            record = store / f"{first['result']['content_key']}.json"
            record.write_text("{torn-record")
            _, second = post_spec(handle.base_url, spec)
            assert second["state"] == "done"
            assert second["result"]["decomposition_cached"] is False
            _, metrics = http_json(f"{handle.base_url}/metrics")
            assert metrics["cache"]["corrupt_records"] == 1


# ----------------------------------------------------------------------
# Quarantine map hygiene: expired digests are swept, not leaked
# ----------------------------------------------------------------------
class TestQuarantineSweep:
    def test_expired_quarantine_entries_are_swept(self, tmp_path, monkeypatch):
        arm_global(monkeypatch, tmp_path, "worker.job:kill%1")  # every attempt dies
        with ServiceThread(workers=1, retry_base_delay=0.05,
                           quarantine_ttl=0.4) as handle:
            status, body = post_spec(
                handle.base_url,
                {"circuit": "majority", "width": 5, "max_retries": 0},
                timeout=120.0,
            )
            assert body["state"] == "failed"
            assert body["error_detail"]["type"] == "WorkerCrash"
            _, metrics = http_json(f"{handle.base_url}/metrics")
            assert metrics["reliability"]["quarantined_jobs"] == 1
            assert metrics["reliability"]["quarantine_size"] == 1
            # After the TTL the map is swept on the next scrape — even though
            # the poisoned digest is never resubmitted (the old leak).
            time.sleep(0.5)
            _, metrics = http_json(f"{handle.base_url}/metrics")
            assert metrics["reliability"]["quarantine_size"] == 0
            # The cumulative counter is history, not a gauge: it stays.
            assert metrics["reliability"]["quarantined_jobs"] == 1
