"""Correctness tests for every benchmark circuit generator."""

import random

import pytest

from repro.benchcircuits import (
    adder_chain_counter_netlist,
    adder_spec,
    carry_lookahead_adder_netlist,
    cascaded_rca_netlist,
    comparator_spec,
    compressor_tree_counter_netlist,
    counter_spec,
    csa_adder_netlist,
    lod_sop,
    lod_spec,
    lzd_sop,
    lzd_spec,
    majority_sop,
    majority_spec,
    oklobdzija_lzd_netlist,
    prefix_adder_netlist,
    progressive_comparator_netlist,
    ripple_carry_adder_netlist,
    subtracter_carry_comparator_netlist,
    three_input_adder_spec,
)

RNG = random.Random(2007)


def int_assignment(prefix, width, value):
    return {f"{prefix}{i}": (value >> i) & 1 for i in range(width)}


def leading_zeros(value, width):
    count = 0
    for i in range(width - 1, -1, -1):
        if value >> i & 1:
            return count
        count += 1
    return width - 1  # saturating encoding used by the spec


class TestLzdLod:
    @pytest.mark.parametrize("width", [4, 8])
    def test_lzd_spec_semantics(self, width):
        spec = lzd_spec(width)
        for value in range(1 << width):
            env = int_assignment("a", width, value)
            count = sum(spec.outputs[f"z{k}"].evaluate(env) << k
                        for k in range(max(1, (width - 1).bit_length())))
            assert count == leading_zeros(value, width)
            assert spec.outputs["v"].evaluate(env) == (1 if value else 0)

    def test_lzd_sop_matches_spec(self):
        spec = lzd_spec(8)
        sops = lzd_sop(spec)
        for port, sop in sops.items():
            assert sop.to_anf() == spec.outputs[port]

    @pytest.mark.parametrize("width", [8, 16])
    def test_oklobdzija_matches_spec(self, width):
        spec = lzd_spec(width)
        netlist = oklobdzija_lzd_netlist(width)
        from repro.circuit import check_netlist_against_anf

        assert check_netlist_against_anf(netlist, spec.outputs).equivalent

    def test_oklobdzija_requires_multiple_of_4(self):
        with pytest.raises(ValueError):
            oklobdzija_lzd_netlist(6)

    def test_lod_spec_semantics(self):
        width = 8
        spec = lod_spec(width)
        for value in range(1 << width):
            env = int_assignment("a", width, value)
            # Leading ones = leading zeros of the complemented input.
            expected = leading_zeros(value ^ ((1 << width) - 1), width)
            count = sum(spec.outputs[f"z{k}"].evaluate(env) << k for k in range(3))
            assert count == expected

    def test_lod_reed_muller_is_small(self):
        """The paper's observation: LOD stays small in Reed-Muller form, LZD does not."""
        lod = lod_spec(16)
        lzd = lzd_spec(16)
        lod_terms = sum(e.num_terms for e in lod.outputs.values())
        lzd_terms = sum(e.num_terms for e in lzd.outputs.values())
        assert lod_terms < 100
        assert lzd_terms > 10000

    def test_lod_sop_matches_spec(self):
        spec = lod_spec(8)
        sops = lod_sop(spec)
        for port, sop in sops.items():
            assert sop.to_anf() == spec.outputs[port]


class TestMajorityAndCounter:
    def test_majority_spec_and_sop(self):
        spec = majority_spec(7)
        sop = majority_sop(spec)["maj"]
        assert sop.num_cubes == 35
        assert sop.to_anf() == spec.outputs["maj"]

    @pytest.mark.parametrize("width", [5, 9])
    def test_majority_semantics(self, width):
        spec = majority_spec(width)
        for _ in range(50):
            value = RNG.randrange(1 << width)
            env = int_assignment("a", width, value)
            expected = 1 if bin(value).count("1") >= (width + 1) // 2 else 0
            assert spec.outputs["maj"].evaluate(env) == expected

    @pytest.mark.parametrize("width", [4, 9])
    def test_counter_spec_semantics(self, width):
        spec = counter_spec(width)
        for value in range(1 << width) if width <= 6 else (RNG.randrange(1 << width) for _ in range(60)):
            env = int_assignment("a", width, value)
            count = sum(spec.outputs[f"s{k}"].evaluate(env) << k for k in range(len(spec.outputs)))
            assert count == bin(value).count("1")

    @pytest.mark.parametrize("builder", [adder_chain_counter_netlist, compressor_tree_counter_netlist])
    def test_counter_netlists(self, builder):
        width = 10
        netlist = builder(width)
        for _ in range(80):
            value = RNG.randrange(1 << width)
            outputs = netlist.evaluate_outputs(int_assignment("a", width, value))
            count = sum(outputs[f"s{k}"] << k for k in range(len(outputs)))
            assert count == bin(value).count("1")


class TestAdders:
    def test_adder_spec_semantics(self):
        spec = adder_spec(5)
        for _ in range(60):
            x, y = RNG.randrange(32), RNG.randrange(32)
            env = {**int_assignment("a", 5, x), **int_assignment("b", 5, y)}
            total = sum(spec.outputs[f"s{k}"].evaluate(env) << k for k in range(6))
            assert total == x + y

    @pytest.mark.parametrize("builder", [
        ripple_carry_adder_netlist, carry_lookahead_adder_netlist, prefix_adder_netlist,
    ])
    def test_adder_netlists(self, builder):
        width = 12
        netlist = builder(width)
        for _ in range(80):
            x, y = RNG.randrange(1 << width), RNG.randrange(1 << width)
            env = {**int_assignment("a", width, x), **int_assignment("b", width, y)}
            outputs = netlist.evaluate_outputs(env)
            total = sum(outputs[f"s{k}"] << k for k in range(width + 1))
            assert total == x + y

    def test_three_input_adder_spec(self):
        spec = three_input_adder_spec(4)
        for _ in range(60):
            x, y, z = (RNG.randrange(16) for _ in range(3))
            env = {**int_assignment("a", 4, x), **int_assignment("b", 4, y), **int_assignment("c", 4, z)}
            total = sum(spec.outputs[f"s{k}"].evaluate(env) << k for k in range(len(spec.outputs)))
            assert total == x + y + z

    @pytest.mark.parametrize("builder", [cascaded_rca_netlist, csa_adder_netlist])
    def test_three_input_adder_netlists(self, builder):
        width = 8
        netlist = builder(width)
        for _ in range(80):
            x, y, z = (RNG.randrange(1 << width) for _ in range(3))
            env = {**int_assignment("a", width, x), **int_assignment("b", width, y),
                   **int_assignment("c", width, z)}
            outputs = netlist.evaluate_outputs(env)
            total = sum(outputs[f"s{k}"] << k for k in range(len(outputs)))
            assert total == x + y + z


class TestComparators:
    def test_comparator_spec(self):
        spec = comparator_spec(5)
        for x in range(32):
            for y in range(0, 32, 3):
                env = {**int_assignment("a", 5, x), **int_assignment("b", 5, y)}
                assert spec.outputs["gt"].evaluate(env) == (1 if x > y else 0)

    @pytest.mark.parametrize("builder", [
        progressive_comparator_netlist, subtracter_carry_comparator_netlist,
    ])
    def test_comparator_netlists(self, builder):
        width = 12
        netlist = builder(width)
        for _ in range(120):
            x, y = RNG.randrange(1 << width), RNG.randrange(1 << width)
            env = {**int_assignment("a", width, x), **int_assignment("b", width, y)}
            assert netlist.evaluate_outputs(env)["gt"] == (1 if x > y else 0)
        # Equality corner case.
        env = {**int_assignment("a", width, 77), **int_assignment("b", width, 77)}
        assert netlist.evaluate_outputs(env)["gt"] == 0
