"""Property tests for the compiled kernel extension and its wrapper.

Two layers are under test:

* ``repro.anf._ckernel._impl`` — the raw C primitives, checked against
  brute-force multiset semantics on arbitrary inputs (including the
  decline rules: empty masks, masks wider than the radix bound);
* ``repro.anf.cnative`` — the seam wrapper, checked for bit-identity with
  the sortkernel serial kernels it shadows, for the no-copy guarantee on
  groupless slabs, and for the graceful no-extension degrade (numpy path
  plus a one-time warning when the ``native`` backend activates without
  the compiled module).

The whole module skips when the extension is not built — except the
fallback tests, which force the import guard off and must pass anywhere.
"""

from array import array
from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.anf import Anf, Context, cnative, nativekernel, sortkernel
from repro.anf.backend import get_backend, using_backend

terms_strategy = st.lists(
    st.integers(min_value=0, max_value=(1 << 40) - 1), unique=True, max_size=100
)
mask_strategy = st.integers(min_value=0, max_value=(1 << 40) - 1)
narrow_mask = st.integers(min_value=1, max_value=(1 << 40) - 1).filter(
    lambda m: m.bit_count() <= 6
)


def _slab(terms):
    return array(sortkernel.WORD_CODE, sorted(terms))


def _rows(raw):
    out = array(sortkernel.WORD_CODE)
    out.frombytes(raw)
    return list(out)


needs_ext = pytest.mark.skipif(
    not cnative.available(), reason="C extension not built"
)


@needs_ext
class TestRawPrimitives:
    """``_impl`` vs brute force, on the raw buffer-level contracts."""

    @given(terms=terms_strategy, group_mask=narrow_mask)
    @settings(max_examples=60)
    def test_split_radix_matches_python_reference(self, terms, group_mask):
        tag = 1 << 50
        result = cnative._C.split_radix(_slab(terms), group_mask, tag, 6)
        assert result is not None
        parts, buckets, remainder = result
        ref_runs, ref_rest = sortkernel._split_runs_python(
            _slab(terms), group_mask, or_mask=tag
        )
        assert _rows(remainder) == sorted(ref_rest)
        assert {p: _rows(b) for p, b in zip(parts, buckets)} == {
            p: sorted(r) for p, r in ref_runs
        }
        # Ascending part order, born-sorted buckets.
        assert parts == sorted(parts)
        for bucket in buckets:
            rows = _rows(bucket)
            assert rows == sorted(set(rows))

    @given(terms=terms_strategy)
    @settings(max_examples=20)
    def test_split_radix_declines_empty_and_wide_masks(self, terms):
        slab = _slab(terms)
        assert cnative._C.split_radix(slab, 0, 0, 6) is None
        wide = (1 << 7) - 1  # 7 bits > max_bits=6
        assert cnative._C.split_radix(slab, wide, 0, 6) is None
        # the hard 16-bit cap holds even when max_bits allows more
        assert cnative._C.split_radix(slab, (1 << 17) - 1, 0, 64) is None

    def test_split_radix_empty_slab(self):
        parts, buckets, remainder = cnative._C.split_radix(array("Q"), 0b11, 0, 6)
        assert parts == [] and buckets == [] and _rows(remainder) == []

    @given(left=terms_strategy, right=terms_strategy)
    @settings(max_examples=50)
    def test_xor_merge_is_symmetric_difference(self, left, right):
        merged = cnative._C.xor_merge(_slab(left), _slab(right))
        assert _rows(merged) == sorted(set(left) ^ set(right))

    @given(slabs=st.lists(
        st.lists(st.integers(min_value=0, max_value=(1 << 40) - 1), max_size=30),
        max_size=6,
    ))
    @settings(max_examples=50)
    def test_sort_parity_keeps_odd_count_rows(self, slabs):
        rows = [r for s in slabs for r in s]
        buf = bytearray(array(sortkernel.WORD_CODE, rows).tobytes())
        survivors = cnative._C.sort_parity(buf)
        counts = Counter(rows)
        assert _rows(memoryview(buf)[: survivors * 8]) == sorted(
            r for r, c in counts.items() if c & 1
        )

    @given(terms=terms_strategy, bit=st.sampled_from([1, 1 << 7, 1 << 39]))
    @settings(max_examples=30)
    def test_scatter_tag(self, terms, bit):
        selected = cnative._C.scatter_tag(_slab(terms), bit)
        assert _rows(selected) == sorted(t & ~bit for t in terms if t & bit)

    @given(left=terms_strategy, right=terms_strategy)
    @settings(max_examples=30)
    def test_shared_literal_count_and_popcount(self, left, right):
        shared = set(left) & set(right)
        assert cnative._C.shared_literal_count(
            _slab(left), _slab(right)
        ) == sum(t.bit_count() for t in shared)
        assert cnative._C.popcount_rows(_slab(left)) == sum(
            t.bit_count() for t in left
        )

    def test_rejects_misaligned_buffers(self):
        with pytest.raises(ValueError, match="multiple of 8"):
            cnative._C.popcount_rows(b"\x01\x02\x03")


@needs_ext
class TestSerialWrapperParity:
    """cnative's ``_*_serial`` kernels vs sortkernel's, bit for bit."""

    @pytest.fixture(autouse=True)
    def forced_kernels(self, monkeypatch):
        monkeypatch.setattr(sortkernel, "KERNEL_MIN_ROWS", 0)

    @given(terms=terms_strategy, group_mask=mask_strategy,
           tag=st.sampled_from([0, 1 << 50]))
    @settings(max_examples=60, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_split_runs(self, terms, group_mask, tag):
        slab = _slab(terms)
        ours = cnative._split_runs_serial(slab, group_mask, or_mask=tag)
        ref = sortkernel._split_runs_serial(slab, group_mask, or_mask=tag)
        assert list(ours[1]) == list(ref[1])
        assert [(p, list(r)) for p, r in ours[0]] == [
            (p, list(r)) for p, r in sorted(ref[0])
        ]

    @given(groups=st.lists(terms_strategy, min_size=1, max_size=3),
           group_mask=mask_strategy)
    @settings(max_examples=40, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_split_build(self, groups, group_mask):
        slabs = [(1 << (50 + i), _slab(g)) for i, g in enumerate(groups)]
        ours = cnative._split_build_serial(slabs, group_mask)
        ref = sortkernel._split_build_serial(slabs, group_mask)
        assert list(ours[1]) == list(ref[1])
        assert [(p, list(r)) for p, r in ours[0]] == [
            (p, list(r)) for p, r in ref[0]
        ]

    @given(slabs=st.lists(
        st.lists(st.integers(min_value=0, max_value=255), max_size=20),
        max_size=8,
    ))
    @settings(max_examples=40, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_parity_merge(self, slabs):
        arrays = [array(sortkernel.WORD_CODE, s) for s in slabs]
        assert list(cnative._parity_merge_serial(arrays)) == list(
            sortkernel._parity_merge_serial(arrays)
        )

    @given(large=terms_strategy,
           small=st.lists(st.integers(min_value=0, max_value=(1 << 20) - 1),
                          unique=True, min_size=1, max_size=6))
    @settings(max_examples=40, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_product_rows(self, large, small):
        assert list(cnative._product_rows_serial(_slab(large), small)) == list(
            sortkernel._product_rows_serial(_slab(large), small)
        )

    def test_product_divide_and_conquer_path(self, monkeypatch):
        """Shrink the slab budget so the D&C + C xor_merge recombination
        actually runs, and check it against the one-shot parity sweep."""
        monkeypatch.setattr(sortkernel, "PRODUCT_SLAB_ROWS", 64)
        large = _slab(range(1, 200))
        small = [1 << 45, (1 << 46) | 3, 7, (1 << 47) | 1, 11, 1 << 48]
        expected = sortkernel._product_rows_serial(large, small)
        assert list(cnative._product_rows_serial(large, small)) == list(expected)

    def test_groupless_slab_is_returned_uncopied(self):
        slab = _slab([2, 4, 6])
        runs, remainder = cnative._split_runs_serial(slab, 1)
        assert runs == [] and remainder is slab

    def test_empty_slab_and_empty_operands(self):
        empty = array(sortkernel.WORD_CODE)
        assert cnative._split_runs_serial(empty, 0b11) == ([], empty)
        some = _slab([1, 2, 3])
        assert cnative._xor_merge_serial(empty, some) is some
        assert cnative._xor_merge_serial(some, empty) is some
        assert list(cnative._parity_merge_serial([])) == []
        assert cnative._shared_literal_count_serial(empty, some) == 0
        assert cnative._popcount_rows_serial(empty) == 0


class TestNativeBackend:
    def test_wide_terms_fall_back_to_set_path(self):
        """>64-var terms cannot pack; the native backend must decline to the
        set kernels exactly like the packed backend does."""
        ctx = Context([f"w{i}" for i in range(70)])
        wide = Anf(ctx, [1 << 69, (1 << 68) | (1 << 2), 5])
        with using_backend("native"):
            buckets, remainder = get_backend().split_by_group(wide, 0b100)
        assert sorted(buckets) == [0b100]
        assert set(buckets[0b100].terms) == {1 << 68, 1}
        assert set(remainder.terms) == {1 << 69}

    def test_missing_extension_falls_back_with_one_warning(self, monkeypatch):
        """Import guard forced off: activation warns once, kernels run the
        numpy path, results unchanged."""
        monkeypatch.setattr(cnative, "_C", None)
        monkeypatch.setattr(cnative, "_warned_missing", False)
        assert not cnative.available()
        # Step out to packed first: activating "native" must be a genuine
        # transition even when the session backend is already native.
        with using_backend("packed"):
            with pytest.warns(RuntimeWarning, match="not built"):
                with using_backend("native"):
                    slab = _slab(range(1, 50))
                    runs, remainder = sortkernel.split_runs_by_group(slab, 0b11)
        ref_runs, ref_rest = sortkernel._split_runs_python(slab, 0b11)
        assert {p: list(r) for p, r in runs} == {
            p: sorted(r) for p, r in ref_runs
        }
        assert list(remainder) == sorted(ref_rest)
        # Second activation stays silent (one-time warning).
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            with using_backend("native"):
                pass

    def test_missing_extension_serial_kernels_delegate(self, monkeypatch):
        monkeypatch.setattr(cnative, "_C", None)
        monkeypatch.setattr(sortkernel, "KERNEL_MIN_ROWS", 0)
        slab = _slab([1, 2, 3, 9])
        assert list(cnative._xor_merge_serial(slab, _slab([2, 4]))) == [1, 3, 4, 9]
        assert cnative._popcount_rows_serial(slab) == 6
        runs, remainder = cnative._split_runs_serial(slab, 0b1)
        assert [p for p, _ in runs] == [1]
        assert list(remainder) == [2]

    @needs_ext
    def test_engine_parity_native_vs_packed(self):
        """Full decomposition, native vs packed, bit for bit (kernels forced
        through the C path by the session-wide thresholds)."""
        from repro.anf import majority, variables
        from repro.anf.expression import xor_accumulate
        from repro.core import DecompositionOptions, progressive_decomposition

        results = {}
        for backend in ("packed", "native"):
            ctx = Context()
            bits = variables(ctx, [f"x{i}" for i in range(8)])
            outputs = {
                "maj": majority(bits, ctx),
                "parity": xor_accumulate(bits, ctx),
            }
            with using_backend(backend):
                d = progressive_decomposition(
                    outputs,
                    DecompositionOptions(),
                    input_words=[[f"x{i}" for i in range(8)]],
                )
            assert d.verify()
            results[backend] = (
                [(b.name, sorted(b.definition.terms)) for b in d.blocks],
                {p: sorted(e.terms) for p, e in d.outputs.items()},
            )
        assert results["packed"] == results["native"]
