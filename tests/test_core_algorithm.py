"""Tests for the Progressive Decomposition core: pairs, null-spaces, basis,
optimisation, identities, and the full algorithm (including the paper's own
worked examples)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.anf import Anf, Context, majority, parse, variables
from repro.circuit import check_netlist_against_anf
from repro.core import (
    DecompositionOptions,
    NullSpaceTable,
    decomposition_to_netlist,
    extract_basis,
    find_group,
    find_identities,
    hierarchy_stats,
    ideal_contains,
    improve_basis_by_size_reduction,
    initial_pairs,
    merge_equal_parts,
    merge_with_nullspaces,
    minimize_basis_by_linear_dependence,
    progressive_decomposition,
    reduce_basis_using_identities,
    rewrite_outputs,
    split_over_ideals,
)

VARS = ["a", "b", "c", "d", "p", "q", "x", "y", "z"]

anf_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=8), max_size=4).map(frozenset),
    min_size=1,
    max_size=12,
)


def build(ctx, subsets):
    terms = []
    for subset in subsets:
        mask = 0
        for i in subset:
            mask |= 1 << i
        terms.append(mask)
    return Anf(ctx, terms)


class TestNullSpaces:
    def test_ideal_membership(self):
        ctx = Context()
        g = parse(ctx, "a*b")
        assert ideal_contains(g, parse(ctx, "a*b*c"))
        assert ideal_contains(g, Anf.zero(ctx))
        assert not ideal_contains(g, parse(ctx, "a"))
        assert not ideal_contains(Anf.zero(ctx), parse(ctx, "a"))

    def test_split_over_ideals(self):
        ctx = Context()
        gen_a, gen_b = parse(ctx, "z"), parse(ctx, "x")
        element = parse(ctx, "x ^ z")
        split = split_over_ideals(element, gen_a, gen_b)
        assert split is not None
        u, v = split
        assert u ^ v == element
        assert ideal_contains(gen_a, u)
        assert ideal_contains(gen_b, v)
        assert split_over_ideals(parse(ctx, "y"), gen_a, gen_b) is None

    def test_nullspace_table_from_identities(self):
        ctx = Context()
        identities = [parse(ctx, "a*z"), parse(ctx, "b*x")]
        table = NullSpaceTable.from_identities(ctx, identities)
        assert table.generator_for_variable("a") == parse(ctx, "z")
        assert table.generator_for_variable("b") == parse(ctx, "x")
        assert table.generator_for_variable("c").is_zero
        combined = table.generator_for_monomial(ctx.mask_of(["a", "b"]))
        assert ideal_contains(combined, parse(ctx, "z"))
        assert ideal_contains(combined, parse(ctx, "x"))

    def test_paper_nullspace_factorisation_example(self):
        """Section 4: (a^b)(p^cd) ^ (c^d)(p^ab) = (a^b^c^d)(p^ab^cd)."""
        ctx = Context()
        lhs = (parse(ctx, "a ^ b") & parse(ctx, "p ^ c*d")) ^ (
            parse(ctx, "c ^ d") & parse(ctx, "p ^ a*b")
        )
        rhs = parse(ctx, "a ^ b ^ c ^ d") & parse(ctx, "p ^ a*b ^ c*d")
        assert lhs == rhs


class TestPairsAndBasis:
    def test_initial_pairs_reconstruct(self):
        ctx = Context()
        expr = parse(ctx, "a*d ^ a*e*f ^ b*c*d ^ a*b*e ^ a*c*e ^ b*c*e*f ^ x*y")
        pairs = initial_pairs(expr, ctx.mask_of(["a", "b", "c"]), NullSpaceTable(ctx))
        assert pairs.reconstruct() == expr

    def test_paper_findbasis_example(self):
        """Section 5.2: basis of X w.r.t. {a,b,c} is {a^bc, ab^ac}."""
        ctx = Context()
        expr = parse(ctx, "a*d ^ a*e*f ^ b*c*d ^ a*b*e ^ a*c*e ^ b*c*e*f ^ x*y")
        pairs = merge_equal_parts(
            initial_pairs(expr, ctx.mask_of(["a", "b", "c"]), NullSpaceTable(ctx))
        )
        firsts = {frozenset(p.first.terms) for p in pairs.pairs}
        expected = {
            frozenset(parse(ctx, "a ^ b*c").terms),
            frozenset(parse(ctx, "a*b ^ a*c").terms),
        }
        assert firsts == expected
        assert pairs.remainder == parse(ctx, "x*y")
        assert pairs.reconstruct() == expr

    def test_paper_nullspace_merge_example(self):
        """Section 5.2 second example: with az=bx=cy=0 the basis collapses to one pair."""
        ctx = Context()
        expr = parse(ctx, "a*p ^ b*p ^ c*p ^ a*x ^ a*y ^ b*y ^ b*z ^ c*x ^ c*z")
        identities = [parse(ctx, "a*z"), parse(ctx, "b*x"), parse(ctx, "c*y")]
        table = NullSpaceTable.from_identities(ctx, identities)
        pairs = merge_equal_parts(initial_pairs(expr, ctx.mask_of(["a", "b", "c"]), table))
        merged = merge_with_nullspaces(pairs)
        assert len(merged.pairs) == 1
        assert merged.pairs[0].first == parse(ctx, "a ^ b ^ c")
        assert merged.pairs[0].second == parse(ctx, "p ^ x ^ y ^ z")

    @given(anf_strategy, st.integers(min_value=1, max_value=510))
    @settings(max_examples=50, deadline=None)
    def test_merges_preserve_reconstruction(self, subsets, group_bits):
        ctx = Context(VARS)
        expr = build(ctx, subsets)
        group_mask = group_bits & ((1 << len(VARS)) - 1)
        if group_mask == 0:
            group_mask = 1
        pairs = initial_pairs(expr, group_mask, NullSpaceTable(ctx))
        assert pairs.reconstruct() == expr
        merged = merge_equal_parts(pairs)
        assert merged.reconstruct() == expr
        reduced = minimize_basis_by_linear_dependence(merged)
        assert reduced.reconstruct() == expr
        improved = improve_basis_by_size_reduction(reduced)
        assert improved.reconstruct() == expr


class TestOptimisation:
    def test_size_reduction_paper_example(self):
        """Section 5.4: {(a, p^q^r^s^t), (b, p^q^r^s)} shrinks to {(a^b,...),(a,t)}."""
        ctx = Context()
        expr = (parse(ctx, "a") & parse(ctx, "p ^ q ^ r ^ s ^ t")) ^ (
            parse(ctx, "b") & parse(ctx, "p ^ q ^ r ^ s")
        )
        pairs = merge_equal_parts(initial_pairs(expr, ctx.mask_of(["a", "b"]), NullSpaceTable(ctx)))
        before = pairs.literal_count
        improved = improve_basis_by_size_reduction(pairs)
        assert improved.literal_count < before
        assert improved.reconstruct() == expr

    def test_linear_dependence_reduces_basis(self):
        ctx = Context()
        # Construct pairs whose firsts are {u, v, u^v}: the third is dependent.
        expr = (parse(ctx, "a") & parse(ctx, "p")) ^ (parse(ctx, "b") & parse(ctx, "q")) ^ (
            parse(ctx, "a ^ b") & parse(ctx, "r")
        )
        pairs = merge_equal_parts(initial_pairs(expr, ctx.mask_of(["a", "b"]), NullSpaceTable(ctx)))
        reduced = minimize_basis_by_linear_dependence(pairs)
        assert len(reduced.pairs) == 2
        assert reduced.reconstruct() == expr


class TestIdentities:
    def test_counter_identities(self):
        """The section 5.5 example: e3 = e1*e2 and ei*e4 = 0 for the 4-bit counter."""
        ctx = Context()
        bits = variables(ctx, ctx.bus("a", 4))
        from repro.anf import elementary_symmetric

        defs = [elementary_symmetric(bits, d, ctx) for d in (1, 2, 3, 4)]
        names = ["s1", "s2", "s3", "s4"]
        identities = find_identities(names, defs, ctx)
        descriptions = {identity.description for identity in identities}
        assert "s3 = s1*s2" in descriptions
        assert "s1*s4 = 0" in descriptions
        assert "s2*s4 = 0" in descriptions
        assert "s3*s4 = 0" in descriptions
        analysis = reduce_basis_using_identities(names, defs, identities, ctx)
        assert "s3" in analysis.replacements
        assert analysis.replacements["s3"] == parse(ctx, "s1*s2")
        assert analysis.kept == ["s1", "s2", "s4"]

    def test_identity_soundness(self):
        ctx = Context()
        defs = [parse(ctx, "a"), parse(ctx, "b"), parse(ctx, "a ^ b")]
        identities = find_identities(["u", "v", "w"], defs, ctx)
        # No *pair* product vanishes, but the triple product a·b·(a^b) does,
        # and the XOR dependency u ^ v ^ w = 0 must be discovered.
        pair_products = [i for i in identities if i.kind == "product" and i.expr.degree == 2]
        assert not pair_products
        assert any(i.description == "u*v*w = 0" for i in identities)
        assert any(i.kind == "definition" for i in identities)
        # Every reported identity really is identically zero.
        substitution = {"u": defs[0], "v": defs[1], "w": defs[2]}
        for identity in identities:
            assert identity.expr.substitute(substitution).is_zero


class TestFullAlgorithm:
    def test_majority7_counter_discovery(self):
        """Reproduces Fig. 6: PD finds the 4:3 and 3:2 counters inside MAJ7."""
        ctx = Context()
        bits = ctx.bus("a", 7)
        spec = {"maj": majority(variables(ctx, bits), ctx)}
        decomposition = progressive_decomposition(spec, input_words=[bits])
        assert decomposition.verify()
        level1 = decomposition.blocks_at_level(1)
        level1_defs = {block.definition.to_str() for block in level1}
        # The 4-bit counter outputs (e1, e2, e4) — e3 must have been removed
        # by the identity e3 = e1*e2.
        assert len(level1) == 3
        assert "a0 ^ a1 ^ a2 ^ a3" in level1_defs
        assert "a0*a1*a2*a3" in level1_defs
        identity_texts = [
            identity.description
            for record in decomposition.iterations
            for identity in record.identities_found
        ]
        assert any("= t1_0*t1_1" in text for text in identity_texts)

    def test_decomposition_netlist_equivalence(self):
        ctx = Context()
        bits = ctx.bus("a", 7)
        spec = {"maj": majority(variables(ctx, bits), ctx)}
        decomposition = progressive_decomposition(spec, input_words=[bits])
        netlist = decomposition_to_netlist(decomposition)
        assert check_netlist_against_anf(netlist, spec).equivalent

    def test_multi_output_adder(self):
        from repro.benchcircuits import adder_spec

        spec = adder_spec(4)
        decomposition = progressive_decomposition(spec.outputs, input_words=spec.input_words)
        assert decomposition.verify()
        netlist = decomposition_to_netlist(decomposition)
        assert check_netlist_against_anf(netlist, spec.outputs).equivalent

    def test_hierarchy_stats_and_trace(self):
        ctx = Context()
        bits = ctx.bus("a", 7)
        spec = {"maj": majority(variables(ctx, bits), ctx)}
        decomposition = progressive_decomposition(spec, input_words=[bits])
        stats = hierarchy_stats(decomposition)
        assert stats.num_blocks == len(decomposition.blocks)
        assert stats.num_levels == decomposition.num_levels
        assert stats.max_block_support <= 4 + 1
        assert "iteration 1" in decomposition.trace()
        assert "level 1" in decomposition.describe()

    def test_options_ablation_still_correct(self):
        ctx = Context()
        bits = ctx.bus("a", 7)
        spec = {"maj": majority(variables(ctx, bits), ctx)}
        for options in (
            DecompositionOptions(use_nullspaces=False),
            DecompositionOptions(use_identities=False),
            DecompositionOptions(use_size_reduction=False),
            DecompositionOptions(use_linear_dependence=False),
            DecompositionOptions(k=3),
            DecompositionOptions(k=5),
        ):
            decomposition = progressive_decomposition(spec, options, input_words=[bits])
            assert decomposition.verify(), options

    def test_constant_and_literal_outputs(self):
        ctx = Context()
        spec = {"zero": Anf.zero(ctx), "one": Anf.one(ctx), "copy": Anf.var(ctx, "a")}
        decomposition = progressive_decomposition(spec)
        assert decomposition.verify()
        assert decomposition.blocks == []

    @given(st.lists(
        st.lists(st.integers(min_value=0, max_value=5), max_size=4).map(frozenset),
        min_size=1, max_size=10,
    ))
    @settings(max_examples=25, deadline=None)
    def test_random_expressions_roundtrip(self, subsets):
        ctx = Context(["v0", "v1", "v2", "v3", "v4", "v5"])
        expr = build(ctx, subsets)
        decomposition = progressive_decomposition({"f": expr}, DecompositionOptions(k=3))
        assert decomposition.verify()

    def test_rewrite_outputs_requires_matching_substitutions(self):
        ctx = Context()
        spec = {"f": parse(ctx, "a*b ^ c")}
        extraction = extract_basis(spec, ["a", "b"], (), ctx)
        with pytest.raises(ValueError):
            rewrite_outputs(extraction, [], ctx)

    def test_find_group_prefers_primary_lsbs(self):
        from repro.benchcircuits import adder_spec

        spec = adder_spec(4)
        ctx = spec.ctx
        group = find_group(spec.outputs, 4, ctx, spec.inputs, spec.input_words)
        assert set(group) == {"a0", "a1", "b0", "b1"}
