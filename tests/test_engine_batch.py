"""Tests for canonical spec hashing, the on-disk cache, and the orchestrator."""

import time

import pytest

from reference_loop import reference_decomposition
from test_engine_parity import assert_bit_identical

from repro.anf import Context, canonical_spec_digest, canonical_spec_payload, majority, parse, variables
from repro.benchcircuits import adder_spec, counter_spec, majority_spec
from repro.core import DecompositionOptions, progressive_decomposition
from repro.engine import (
    BatchJob,
    BatchOrchestrator,
    DecompositionCache,
    Pipeline,
    cache_key,
    decompose_cached,
    deserialize_decomposition,
    serialize_decomposition,
)


def _majority_outputs(width=7):
    ctx = Context()
    bits = ctx.bus("a", width)
    return {"maj": majority(variables(ctx, bits), ctx)}, [bits]


class TestCanonicalDigest:
    def test_independent_of_context_identity_and_unused_vars(self):
        c1 = Context(["a", "b", "c"])
        c2 = Context(["a", "b", "c", "unused_tag"])
        e1 = {"f": parse(c1, "a*b ^ c"), "g": parse(c1, "b ^ 1")}
        e2 = {"f": parse(c2, "a*b ^ c"), "g": parse(c2, "b ^ 1")}
        assert canonical_spec_digest(e1) == canonical_spec_digest(e2)
        assert canonical_spec_payload(e1) == canonical_spec_payload(e2)

    def test_declaration_order_is_part_of_the_key(self):
        # findGroup iterates candidates in declaration order, so the same
        # functions declared differently may decompose differently — the
        # digest must keep such specs apart (a warm hit must always be what
        # the cold run would have produced).
        c1 = Context(["a", "b", "c"])
        c2 = Context(["c", "b", "a"])
        e1 = {"f": parse(c1, "a*b ^ c")}
        e2 = {"f": parse(c2, "a*b ^ c")}
        assert canonical_spec_digest(e1) != canonical_spec_digest(e2)

    def test_distinguishes_functions_ports_and_words(self):
        ctx = Context(["a", "b", "c"])
        base = {"f": parse(ctx, "a*b ^ c")}
        assert canonical_spec_digest(base) != canonical_spec_digest(
            {"f": parse(ctx, "a*b ^ c ^ 1")}
        )
        assert canonical_spec_digest(base) != canonical_spec_digest(
            {"h": parse(ctx, "a*b ^ c")}
        )
        assert canonical_spec_digest(base, [["a", "b"], ["c"]]) != canonical_spec_digest(
            base, [["a", "b", "c"]]
        )

    def test_same_builder_same_digest_across_contexts(self):
        first = counter_spec(6)
        second = counter_spec(6)
        assert canonical_spec_digest(
            first.outputs, first.input_words
        ) == canonical_spec_digest(second.outputs, second.input_words)

    def test_wide_spec_uses_multiple_chunks(self):
        # > 16 variables exercises the multi-chunk remap path.
        spec = adder_spec(10)
        twin = adder_spec(10)
        assert canonical_spec_digest(spec.outputs) == canonical_spec_digest(twin.outputs)

    def test_constant_spec(self):
        ctx = Context()
        digest = canonical_spec_digest({"zero": parse(ctx, "0"), "one": parse(ctx, "1")})
        assert isinstance(digest, str) and len(digest) == 64


class TestSerialization:
    def test_round_trip_is_bit_identical(self):
        outputs, words = _majority_outputs(7)
        decomposition = progressive_decomposition(outputs, input_words=words)
        rebuilt = deserialize_decomposition(serialize_decomposition(decomposition))
        assert_bit_identical(decomposition, rebuilt)
        assert rebuilt.verify()
        assert rebuilt.describe() == decomposition.describe()
        assert rebuilt.trace() == decomposition.trace()

    def test_rejects_unknown_schema(self):
        with pytest.raises(ValueError):
            deserialize_decomposition({"schema": "bogus"})


class TestDecompositionCache:
    def test_miss_then_hit(self, tmp_path):
        cache = DecompositionCache(tmp_path)
        outputs, words = _majority_outputs(7)
        first, hit_first = decompose_cached(outputs, input_words=words, cache=cache)
        assert not hit_first
        assert len(cache) == 1
        outputs2, words2 = _majority_outputs(7)
        second, hit_second = decompose_cached(outputs2, input_words=words2, cache=cache)
        assert hit_second
        assert_bit_identical(first, second)

    def test_different_pipeline_config_misses(self, tmp_path):
        cache = DecompositionCache(tmp_path)
        outputs, words = _majority_outputs(7)
        decompose_cached(outputs, input_words=words, cache=cache)
        _, hit = decompose_cached(
            outputs, DecompositionOptions(use_identities=False),
            input_words=words, cache=cache,
        )
        assert not hit
        assert len(cache) == 2

    def test_corrupt_record_is_a_miss(self, tmp_path):
        cache = DecompositionCache(tmp_path)
        outputs, words = _majority_outputs(5)
        pipeline = Pipeline.from_options(None)
        key = cache_key(canonical_spec_digest(outputs, words), pipeline.config_key())
        decompose_cached(outputs, input_words=words, cache=cache)
        (tmp_path / f"{key}.json").write_text("{truncated")
        assert cache.load(key) is None
        _, hit = decompose_cached(outputs, input_words=words, cache=cache)
        assert not hit

    def test_clear(self, tmp_path):
        cache = DecompositionCache(tmp_path)
        outputs, words = _majority_outputs(5)
        decompose_cached(outputs, input_words=words, cache=cache)
        assert cache.clear() == 1
        assert len(cache) == 0


class TestBatchOrchestrator:
    def test_results_match_in_process_runs(self, tmp_path):
        orchestrator = BatchOrchestrator(tmp_path, processes=2)
        results = orchestrator.run([
            BatchJob("maj7", majority_spec, (7,)),
            BatchJob("counter6", counter_spec, (6,)),
            BatchJob(
                "maj7-noident", majority_spec, (7,),
                options=DecompositionOptions(use_identities=False),
            ),
        ])
        assert set(results) == {"maj7", "counter6", "maj7-noident"}
        for name, outcome in results.items():
            assert not outcome.cache_hit, name
            assert outcome.decomposition.verify(), name

        spec = majority_spec(7)
        expected = progressive_decomposition(spec.outputs, input_words=spec.input_words)
        assert_bit_identical(expected, results["maj7"].decomposition)

        reference = reference_decomposition(
            majority_spec(7).outputs,
            DecompositionOptions(use_identities=False),
            input_words=majority_spec(7).input_words,
        )
        assert_bit_identical(reference, results["maj7-noident"].decomposition)

    def test_second_run_hits_the_cache(self, tmp_path):
        jobs = [BatchJob("maj7", majority_spec, (7,))]
        cold = BatchOrchestrator(tmp_path, processes=1).run(jobs)
        warm = BatchOrchestrator(tmp_path, processes=1).run(jobs)
        assert not cold["maj7"].cache_hit
        assert warm["maj7"].cache_hit
        assert_bit_identical(cold["maj7"].decomposition, warm["maj7"].decomposition)

    def test_duplicate_job_names_rejected(self):
        orchestrator = BatchOrchestrator(processes=1)
        with pytest.raises(ValueError):
            orchestrator.run([
                BatchJob("same", majority_spec, (5,)),
                BatchJob("same", majority_spec, (7,)),
            ])

    def test_mapping_spec_builder(self, tmp_path):
        def build_mapping(width):
            outputs, _ = _majority_outputs(width)
            return outputs

        results = BatchOrchestrator(tmp_path, processes=1).run(
            [BatchJob("plain", build_mapping, (5,))]
        )
        assert results["plain"].decomposition.verify()

    def test_warm_cache_beats_sequential_cold_2x(self, tmp_path):
        """Acceptance check: the orchestrator with a warm cache re-runs
        Table 1 decomposition rows at least 2x faster than sequential cold
        runs.  Uses the rows where decomposition dominates the job (spec
        construction is common to both sides); the observed margin there is
        ~5-8x, so the 2x threshold keeps the test robust to timer noise."""
        circuits = [("majority", 15), ("counter", 16), ("adder", 12)]
        builders = {
            "majority": majority_spec, "counter": counter_spec, "adder": adder_spec,
        }
        jobs = [
            BatchJob(name, builders[name], (width,)) for name, width in circuits
        ]
        orchestrator = BatchOrchestrator(tmp_path, processes=1)

        start = time.perf_counter()
        cold = orchestrator.run(jobs)  # sequential (1 process), empty cache
        sequential_cold = time.perf_counter() - start
        assert not any(outcome.cache_hit for outcome in cold.values())

        start = time.perf_counter()
        warm = orchestrator.run(jobs)
        warm_elapsed = time.perf_counter() - start
        assert all(outcome.cache_hit for outcome in warm.values())
        for name, _ in circuits:
            assert_bit_identical(cold[name].decomposition, warm[name].decomposition)
        assert warm_elapsed * 2 < sequential_cold, (
            f"warm batch {warm_elapsed:.3f}s vs sequential cold {sequential_cold:.3f}s"
        )


class TestCacheRobustness:
    """Corrupted or stale cache state must fall back to recompute, not crash."""

    def _content_key(self, outputs, words):
        pipeline = Pipeline.from_options(None)
        return cache_key(canonical_spec_digest(outputs, words), pipeline.config_key())

    def test_wrong_schema_record_is_a_miss(self, tmp_path):
        cache = DecompositionCache(tmp_path)
        outputs, words = _majority_outputs(5)
        key = self._content_key(outputs, words)
        decompose_cached(outputs, input_words=words, cache=cache)
        (tmp_path / f"{key}.json").write_text('{"schema": "not-a-decomposition"}')
        assert cache.load(key) is None
        assert cache.load_raw(key) is None

    def test_missing_sections_record_is_a_miss(self, tmp_path):
        cache = DecompositionCache(tmp_path)
        outputs, words = _majority_outputs(5)
        key = self._content_key(outputs, words)
        decompose_cached(outputs, input_words=words, cache=cache)
        (tmp_path / f"{key}.json").write_text(
            '{"schema": "repro-decomposition-v1", "names": []}'
        )
        assert cache.load(key) is None

    def test_binary_garbage_record_is_a_miss(self, tmp_path):
        cache = DecompositionCache(tmp_path)
        outputs, words = _majority_outputs(5)
        key = self._content_key(outputs, words)
        decompose_cached(outputs, input_words=words, cache=cache)
        (tmp_path / f"{key}.json").write_bytes(b"\x00\xff\xfe not json at all")
        assert cache.load(key) is None
        _, hit = decompose_cached(outputs, input_words=words, cache=cache)
        assert not hit

    def test_structurally_invalid_record_recomputes(self, tmp_path):
        # Parses, has the right schema and sections, but the payload is junk:
        # deserialisation raises and load() must translate that into a miss.
        cache = DecompositionCache(tmp_path)
        outputs, words = _majority_outputs(5)
        key = self._content_key(outputs, words)
        decompose_cached(outputs, input_words=words, cache=cache)
        import json as _json
        broken = cache.load_raw(key)
        broken["blocks"] = [{"definitely": "not a block"}]
        (tmp_path / f"{key}.json").write_text(_json.dumps(broken))
        assert cache.load(key) is None
        result, hit = decompose_cached(outputs, input_words=words, cache=cache)
        assert not hit
        assert result.verify()

    def test_stale_job_index_recomputes(self, tmp_path):
        # A job index pointing at a content record that no longer exists must
        # fall through to a full rebuild, then repair both layers.
        jobs = [BatchJob("maj5", majority_spec, (5,))]
        cold = BatchOrchestrator(tmp_path, processes=1).run(jobs)
        for record in tmp_path.glob("*.json"):
            record.unlink()
        assert list((tmp_path / "index").glob("*.key")), "job index missing"
        rerun = BatchOrchestrator(tmp_path, processes=1).run(jobs)
        assert not rerun["maj5"].cache_hit
        assert rerun["maj5"].decomposition.verify()
        assert_bit_identical(cold["maj5"].decomposition, rerun["maj5"].decomposition)
        warm = BatchOrchestrator(tmp_path, processes=1).run(jobs)
        assert warm["maj5"].cache_hit

    def test_corrupt_job_index_entry_recomputes(self, tmp_path):
        jobs = [BatchJob("maj5", majority_spec, (5,))]
        BatchOrchestrator(tmp_path, processes=1).run(jobs)
        for index_file in (tmp_path / "index").glob("*.key"):
            index_file.write_text("0123deadbeef-not-a-real-content-key")
        rerun = BatchOrchestrator(tmp_path, processes=1).run(jobs)
        assert rerun["maj5"].decomposition.verify()

    def test_truncated_record_behind_fresh_index(self, tmp_path):
        # Index hit -> truncated content record -> worker must rebuild.
        jobs = [BatchJob("maj5", majority_spec, (5,))]
        BatchOrchestrator(tmp_path, processes=1).run(jobs)
        for record in tmp_path.glob("*.json"):
            record.write_text(record.read_text()[: 40])
        rerun = BatchOrchestrator(tmp_path, processes=1).run(jobs)
        assert not rerun["maj5"].cache_hit
        assert rerun["maj5"].decomposition.verify()
