"""The width-weighted job cost model (`repro.engine.cost`).

The admission layer and the batch scheduler only consume *orderings and
ratios* from the model, so that is what the suite pins down:

* monotonicity — more width, more outputs, more terms, more optional work
  never makes the estimate smaller (property-tested);
* fidelity — the estimates rank the benchcircuit quick-sweep specs in the
  same order as the runtimes recorded in ``benchmarks/BENCH_native.json``
  (pairs separated by a real margin; near-ties are not ranked);
* the additive knobs (verify, synthesize, delay, cached) move the price
  in the documented direction.
"""

import json
import pathlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.cost import (
    CACHED_COST,
    CALIBRATION,
    DEFAULT_COST,
    MIN_COST,
    SpecShape,
    estimate_batch_job,
    estimate_cost,
    estimate_from_shape,
    spec_shape,
)
from repro.service.jobs import CIRCUITS, MAX_WIDTH

BENCH_NATIVE = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks" / "BENCH_native.json"
)

WIDTHS = list(range(1, MAX_WIDTH + 5))  # past the service ceiling on purpose


# ----------------------------------------------------------------------
# Monotonicity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("circuit", sorted(CIRCUITS))
@pytest.mark.parametrize(
    "kwargs",
    [
        {},
        {"verify": True},
        {"kind": "synthesize"},
        {"kind": "synthesize", "verify": True},
    ],
    ids=["plain", "verify", "synthesize", "synthesize+verify"],
)
def test_estimate_monotone_in_width(circuit, kwargs):
    costs = [estimate_cost(circuit, w, **kwargs) for w in WIDTHS]
    assert all(a <= b for a, b in zip(costs, costs[1:])), (circuit, kwargs)
    assert all(c >= MIN_COST for c in costs)


@pytest.mark.parametrize("circuit", sorted(CIRCUITS))
def test_known_shapes_monotone_in_width(circuit):
    shapes = [spec_shape(circuit, w) for w in WIDTHS]
    assert all(s is not None for s in shapes)
    for field in ("inputs", "outputs", "log2_terms"):
        values = [getattr(s, field) for s in shapes]
        assert all(a <= b for a, b in zip(values, values[1:])), (circuit, field)


@given(
    inputs=st.integers(min_value=0, max_value=256),
    outputs=st.integers(min_value=1, max_value=128),
    log2_terms=st.floats(min_value=0.0, max_value=40.0,
                         allow_nan=False, allow_infinity=False),
    bump_inputs=st.integers(min_value=0, max_value=64),
    bump_outputs=st.integers(min_value=0, max_value=32),
    bump_terms=st.floats(min_value=0.0, max_value=8.0,
                         allow_nan=False, allow_infinity=False),
)
@settings(max_examples=200, deadline=None)
def test_shape_estimate_monotone_in_every_field(
    inputs, outputs, log2_terms, bump_inputs, bump_outputs, bump_terms
):
    base = estimate_from_shape(SpecShape(inputs, outputs, log2_terms))
    assert base >= MIN_COST
    assert estimate_from_shape(
        SpecShape(inputs + bump_inputs, outputs, log2_terms)) >= base
    assert estimate_from_shape(
        SpecShape(inputs, outputs + bump_outputs, log2_terms)) >= base
    assert estimate_from_shape(
        SpecShape(inputs, outputs, log2_terms + bump_terms)) >= base


# ----------------------------------------------------------------------
# Fidelity against the committed quick-sweep record
# ----------------------------------------------------------------------
def test_estimates_rank_benchcircuits_like_recorded_runtimes():
    """Estimated costs must order the quick-sweep specs the way their
    recorded runtimes do.

    Only pairs whose recorded runtimes differ by a real margin are
    compared: the quick sweep packs several circuits within ~10% of each
    other, and demanding the model rank measurement noise would pin the
    test to one machine's jitter rather than to the algorithmic weights.
    """
    record = json.loads(BENCH_NATIVE.read_text())
    runs = [
        (circuit, entry["width"], entry["seconds"])
        for circuit, entry in record["circuits"].items()
    ]
    assert len(runs) >= 5, "quick sweep shrank — update the fidelity test"
    margin = 1.2
    compared = 0
    for i, (circuit_a, width_a, seconds_a) in enumerate(runs):
        for circuit_b, width_b, seconds_b in runs[i + 1:]:
            if max(seconds_a, seconds_b) < margin * min(seconds_a, seconds_b):
                continue  # a near-tie: noise, not signal
            compared += 1
            cost_a = estimate_cost(circuit_a, width_a)
            cost_b = estimate_cost(circuit_b, width_b)
            if seconds_a < seconds_b:
                assert cost_a < cost_b, (
                    f"{circuit_a}-{width_a} measured faster than "
                    f"{circuit_b}-{width_b} but priced heavier")
            else:
                assert cost_b < cost_a, (
                    f"{circuit_b}-{width_b} measured faster than "
                    f"{circuit_a}-{width_a} but priced heavier")
    assert compared >= 3, "margin filter left nothing to rank"


def test_every_benchcircuit_family_is_calibrated():
    assert set(CALIBRATION) == set(CIRCUITS)


# ----------------------------------------------------------------------
# The additive knobs
# ----------------------------------------------------------------------
def test_verify_and_synthesize_add_cost():
    for circuit in CIRCUITS:
        plain = estimate_cost(circuit, 8)
        assert estimate_cost(circuit, 8, verify=True) > plain
        assert estimate_cost(circuit, 8, kind="synthesize") > plain


def test_delay_ms_adds_one_unit_per_millisecond():
    base = estimate_cost("majority", 7)
    assert estimate_cost("majority", 7, delay_ms=250) == pytest.approx(base + 250)


def test_cached_jobs_price_as_a_record_load():
    cold = estimate_cost("comparator", 12)
    warm = estimate_cost("comparator", 12, cached=True)
    assert warm == pytest.approx(CACHED_COST)
    assert warm < cold
    # verification still re-runs on a disk hit, priced off the build cost
    assert estimate_cost("comparator", 12, cached=True, verify=True) > warm


def test_unknown_circuit_gets_the_default_cost():
    assert estimate_cost("mystery_circuit", 9) == DEFAULT_COST


# ----------------------------------------------------------------------
# The batch-job estimator (LPT dispatch in BatchOrchestrator)
# ----------------------------------------------------------------------
def test_batch_estimator_resolves_builder_families():
    from repro.benchcircuits import adder_spec, comparator_spec

    light = estimate_batch_job(adder_spec, (6,), {})
    heavy = estimate_batch_job(comparator_spec, (15,), {})
    assert heavy > light  # 3^15 terms vs a 6-bit adder


def test_batch_estimator_defaults_for_unknown_builders():
    def custom_builder(width):
        raise AssertionError("must never be called for pricing")

    assert estimate_batch_job(custom_builder, (9,), {}) == DEFAULT_COST
    assert estimate_batch_job(custom_builder, (), {}) == DEFAULT_COST
