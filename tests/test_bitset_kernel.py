"""Property tests for the word-parallel bitset kernel and the hot-path
rewrites that ride on it.

Every fast path introduced for the performance work (truth-bitset semantics,
memoised products, the disjoint-support product shortcut, bucketed
``split_by_group``, the identity-search restructuring, the tag scatter in
``rewrite_outputs``, and the literal-count arithmetic of the size-reduction
optimiser) is checked here against a naive reference implementation on
seeded random expressions and on the seed benchmark circuits.  The fast
paths must be observationally identical, not approximately right.
"""

import random
from itertools import combinations

import pytest

from repro.anf import Anf, Context, kernel_for_exprs, kernel_for_support, truth_table
from repro.benchcircuits import counter_spec, lzd_spec, majority_spec
from repro.core import (
    NullSpaceTable,
    extract_basis,
    find_identities,
    ideal_contains,
    improve_basis_by_size_reduction,
    progressive_decomposition,
    rewrite_outputs,
)
from repro.core.grouping import score_group
from repro.core.pairs import Pair, PairList, initial_pairs, merge_equal_parts
from repro.core.rewrite import extract_tag_component
from repro.gf2 import GF2Matrix
from repro.gf2.linear import MonomialIndexer


def random_anf(rng, ctx, num_vars, max_terms):
    terms = [rng.randrange(0, 1 << num_vars) for _ in range(rng.randrange(0, max_terms))]
    return Anf(ctx, terms)


def fresh_ctx(num_vars):
    return Context([f"x{i}" for i in range(num_vars)])


# ---------------------------------------------------------------------------
# The kernel itself
# ---------------------------------------------------------------------------
def test_truth_bitset_matches_pointwise_evaluation():
    rng = random.Random(1234)
    for _ in range(200):
        ctx = fresh_ctx(6)
        expr = random_anf(rng, ctx, 6, 12)
        kernel = kernel_for_support(ctx, expr.support_mask | rng.randrange(0, 64))
        bits = []
        mask = kernel.support_mask
        while mask:
            low = mask & -mask
            bits.append(low)
            mask ^= low
        packed = kernel.truth(expr)
        for point in range(kernel.num_points):
            ones = 0
            for position, bit in enumerate(bits):
                if point >> position & 1:
                    ones |= bit
            assert (packed >> point) & 1 == expr.evaluate_mask(ones)


def test_kernel_semantic_queries_match_symbolic():
    rng = random.Random(99)
    for _ in range(300):
        ctx = fresh_ctx(6)
        a = random_anf(rng, ctx, 6, 10)
        b = random_anf(rng, ctx, 6, 10)
        c = random_anf(rng, ctx, 6, 10)
        kernel = kernel_for_exprs([a, b, c], ctx)
        assert kernel.product_is_zero(a, b) == (a & b).is_zero
        assert kernel.product_is_zero(a, b, c) == (a & b & c).is_zero
        assert kernel.xor_is_zero(a, b, c) == (a ^ b ^ c).is_zero
        assert kernel.contains_product(b, c, a) == (a == (b & c))
        if not a.is_zero:
            expected = b.is_zero or (b & a) == b
            assert kernel.divides(a, b) == expected


def test_kernel_rejects_uncovered_expressions():
    ctx = fresh_ctx(4)
    kernel = kernel_for_support(ctx, 0b0011)
    with pytest.raises(ValueError):
        kernel.truth(Anf(ctx, [0b1000]))


def test_truth_table_convenience():
    ctx = fresh_ctx(2)
    a = Anf.var(ctx, "x0")
    support, packed = truth_table(a)
    assert support == 0b01
    assert packed == 0b10  # true exactly when x0 is set


# ---------------------------------------------------------------------------
# Operator fast paths
# ---------------------------------------------------------------------------
def naive_product(a, b):
    acc = set()
    for left in a.terms:
        for right in b.terms:
            product = left | right
            if product in acc:
                acc.discard(product)
            else:
                acc.add(product)
    return Anf(a.ctx, acc)


def test_product_fast_paths_match_naive_reference():
    rng = random.Random(2024)
    for _ in range(300):
        ctx = fresh_ctx(8)
        a = random_anf(rng, ctx, 8, 12)
        b = random_anf(rng, ctx, 8, 12)
        expected = naive_product(a, b)
        assert (a & b) == expected
        assert a.cached_and(b) == expected
        assert a.cached_and(b) == expected  # memo hit returns the same value
        # Disjoint supports exercise the injective shortcut explicitly.
        lo = Anf(ctx, [term & 0b00001111 for term in a.terms])
        hi = Anf(ctx, [(term & 0b00001111) << 4 for term in b.terms])
        assert (lo & hi) == naive_product(lo, hi)


def test_split_by_group_reconstructs_expression():
    rng = random.Random(7)
    for _ in range(200):
        ctx = fresh_ctx(8)
        expr = random_anf(rng, ctx, 8, 16)
        group_mask = rng.randrange(0, 1 << 8)
        buckets, remainder = expr.split_by_group(group_mask)
        total = remainder
        for group_part, rest in buckets.items():
            assert group_part != 0
            assert not rest.is_zero
            assert rest.support_mask & group_mask == 0
            total = total ^ (Anf(ctx, [group_part]) & rest)
        assert total == expr


def test_cached_metrics_match_fresh_computation():
    rng = random.Random(5)
    for _ in range(200):
        ctx = fresh_ctx(10)
        expr = random_anf(rng, ctx, 10, 20)
        support = 0
        literals = 0
        degree = 0
        for term in expr.terms:
            support |= term
            literals += bin(term).count("1")
            degree = max(degree, bin(term).count("1"))
        assert expr.support_mask == support
        assert expr.literal_count == literals
        assert expr.degree == degree
        # Second read hits the cache and must agree.
        assert expr.support_mask == support
        assert expr.literal_count == literals
        assert expr.degree == degree


# ---------------------------------------------------------------------------
# Identity discovery
# ---------------------------------------------------------------------------
def naive_find_identity_descriptions(names, definitions, ctx, max_products=3):
    """The seed's O(n^3) symbolic identity search, kept as the oracle."""
    found = []
    n = len(names)
    zero_pairs = set()
    for i, j in combinations(range(n), 2):
        if (definitions[i] & definitions[j]).is_zero:
            zero_pairs.add((i, j))
            found.append(f"{names[i]}*{names[j]} = 0")
    if max_products >= 3:
        for i, j, k in combinations(range(n), 3):
            if (i, j) in zero_pairs or (i, k) in zero_pairs or (j, k) in zero_pairs:
                continue
            if (definitions[i] & definitions[j] & definitions[k]).is_zero:
                found.append(f"{names[i]}*{names[j]}*{names[k]} = 0")
    for i, j in combinations(range(n), 2):
        if definitions[i] == definitions[j]:
            found.append(f"{names[i]} = {names[j]}")
    for i, j, k in combinations(range(n), 3):
        if (definitions[i] ^ definitions[j] ^ definitions[k]).is_zero:
            found.append(f"{names[i]} = {names[j]} ^ {names[k]}")
    for i in range(n):
        for j, k in combinations(range(n), 2):
            if i in (j, k):
                continue
            if definitions[i] == (definitions[j] & definitions[k]):
                found.append(f"{names[i]} = {names[j]}*{names[k]}")
    return found


def test_find_identities_matches_naive_reference():
    rng = random.Random(31337)
    for trial in range(120):
        num_vars = rng.choice([3, 4, 5])
        ctx = fresh_ctx(num_vars)
        n = rng.randrange(2, 6)
        definitions = [random_anf(rng, ctx, num_vars, 6) for _ in range(n)]
        names = [f"s{i}" for i in range(n)]
        identities = find_identities(names, definitions, ctx)
        expected = naive_find_identity_descriptions(names, definitions, ctx)
        assert [identity.description for identity in identities] == expected
        for identity in identities:
            assert identity.kind in ("product", "definition")


def test_find_identities_reports_known_families():
    # Hand-built cases for each identity family, mirroring the paper's
    # examples: a zero product, a duplicate definition, and a definitional
    # product s1 = s2*s3.
    ctx = fresh_ctx(4)
    a = Anf.var(ctx, "x0")
    b = Anf.var(ctx, "x1")
    definitions = [a & b, a, b, a]
    names = ["s0", "s1", "s2", "s3"]
    descriptions = [
        identity.description for identity in find_identities(names, definitions, ctx)
    ]
    assert "s1 = s3" in descriptions          # duplicate definitions
    assert "s0 = s1*s2" in descriptions       # definitional product
    # And a disjoint-support zero product never appears (ab, a, b share vars
    # and none of the products vanish).
    assert not any(description.endswith("= 0") for description in descriptions)


# ---------------------------------------------------------------------------
# Ideal membership
# ---------------------------------------------------------------------------
def test_ideal_contains_fast_path_matches_naive():
    rng = random.Random(777)
    for _ in range(300):
        ctx = fresh_ctx(8)
        generator = random_anf(rng, ctx, 8, 12)
        element = random_anf(rng, ctx, 8, 12)
        if element.is_zero:
            expected = True
        elif generator.is_zero:
            expected = False
        else:
            expected = (element & generator) == element
        assert ideal_contains(generator, element) == expected
        # Multiples must always be members.
        product = element & generator
        assert ideal_contains(generator, product)


# ---------------------------------------------------------------------------
# Rewrite step
# ---------------------------------------------------------------------------
def naive_rewrite_outputs(extraction, substitutions, ctx):
    """The seed's per-(port, pair) extraction loop, kept as the oracle."""
    outputs = {}
    remainder = extraction.pair_list.remainder
    for port in extraction.ports:
        tag = extraction.tag_of_port[port]
        if remainder is not None:
            acc = extract_tag_component(remainder, tag, ctx)
        else:
            acc = Anf.zero(ctx)
        for pair, replacement in zip(extraction.pair_list.pairs, substitutions):
            gamma = extract_tag_component(pair.second, tag, ctx)
            if gamma.is_zero:
                continue
            acc = acc ^ (replacement & gamma)
        outputs[port] = acc
    return outputs


@pytest.mark.parametrize("spec_builder,width", [(lzd_spec, 4), (counter_spec, 4), (majority_spec, 5)])
def test_rewrite_outputs_matches_naive_on_benchmarks(spec_builder, width):
    spec = spec_builder(width)
    ctx = next(iter(spec.outputs.values())).ctx
    group = list(spec.outputs[next(iter(spec.outputs))].support[:3]) or list(ctx)[:3]
    extraction = extract_basis(spec.outputs, group, (), ctx)
    substitutions = []
    for index, _pair in enumerate(extraction.pair_list.pairs):
        substitutions.append(Anf.var(ctx, f"blk{index}"))
    fast = rewrite_outputs(extraction, substitutions, ctx)
    naive = naive_rewrite_outputs(extraction, substitutions, ctx)
    assert fast == naive


def test_rewrite_outputs_random_tagged_expressions():
    rng = random.Random(4242)
    for _ in range(100):
        ctx = fresh_ctx(6)
        ports = ["p0", "p1", "p2"]
        outputs = {port: random_anf(rng, ctx, 6, 10) for port in ports}
        group = ["x0", "x1"]
        extraction = extract_basis(outputs, group, (), ctx)
        substitutions = [
            random_anf(rng, ctx, 6, 4) for _ in extraction.pair_list.pairs
        ]
        fast = rewrite_outputs(extraction, substitutions, ctx)
        naive = naive_rewrite_outputs(extraction, substitutions, ctx)
        assert fast == naive


# ---------------------------------------------------------------------------
# Group scoring and size reduction
# ---------------------------------------------------------------------------
def naive_score_group(outputs, group, ctx):
    """The seed's score: pairs + seconds + remainder after the cheap merge."""
    from repro.core.basis import combine_with_tags

    combined, _ = combine_with_tags(outputs, ctx)
    pair_list = merge_equal_parts(
        initial_pairs(combined, ctx.mask_of(group), NullSpaceTable(ctx))
    )
    total = len(pair_list.pairs)
    total += sum(pair.second.literal_count for pair in pair_list.pairs)
    if pair_list.remainder is not None:
        total += pair_list.remainder.literal_count
    return total


def test_score_group_matches_pairlist_reference():
    rng = random.Random(1001)
    for _ in range(100):
        ctx = fresh_ctx(6)
        outputs = {f"p{i}": random_anf(rng, ctx, 6, 12) for i in range(2)}
        names = [f"x{i}" for i in range(6)]
        group = rng.sample(names, rng.randrange(1, 4))
        assert score_group(outputs, group, ctx) == naive_score_group(outputs, group, ctx)


def naive_size_reduction(pair_list, max_rounds=200):
    """The seed's candidate scan building full Pair objects per candidate."""
    from repro.core.nullspace import ideal_product_generator

    pairs = list(pair_list.pairs)
    for _ in range(max_rounds):
        best_gain = 0
        best_action = None
        for i in range(len(pairs)):
            for j in range(len(pairs)):
                if i == j:
                    continue
                left, right = pairs[i], pairs[j]
                before = left.literal_count + right.literal_count
                new_left = Pair(
                    left.first ^ right.first,
                    left.second,
                    ideal_product_generator(left.null_generator, right.null_generator),
                )
                new_right = Pair(right.first, left.second ^ right.second, right.null_generator)
                if new_left.first.is_zero or new_right.second.is_zero:
                    continue
                after = new_left.literal_count + new_right.literal_count
                gain = before - after
                if gain > best_gain:
                    best_gain = gain
                    best_action = (i, j, new_left, new_right)
        if best_action is None:
            break
        i, j, new_left, new_right = best_action
        pairs[i] = new_left
        pairs[j] = new_right
    return PairList(pairs, pair_list.remainder)


def test_size_reduction_matches_naive_reference():
    rng = random.Random(909)
    for _ in range(60):
        ctx = fresh_ctx(8)
        zero = Anf.zero(ctx)
        pairs = []
        for _ in range(rng.randrange(2, 6)):
            first = random_anf(rng, ctx, 4, 4)
            second = random_anf(rng, ctx, 8, 6)
            if first.is_zero or second.is_zero:
                continue
            pairs.append(Pair(first, second, zero))
        pair_list = PairList(pairs, None)
        fast = improve_basis_by_size_reduction(pair_list)
        naive = naive_size_reduction(pair_list)
        assert [(p.first, p.second) for p in fast.pairs] == [
            (p.first, p.second) for p in naive.pairs
        ]


# ---------------------------------------------------------------------------
# Supporting structures
# ---------------------------------------------------------------------------
def test_gf2matrix_validation_uses_bit_length():
    matrix = GF2Matrix([0b101, 0b011], 3)
    assert matrix.num_rows == 2
    with pytest.raises(ValueError):
        GF2Matrix([0b1000], 3)
    with pytest.raises(ValueError):
        GF2Matrix([-1], 3)
    # Wide matrices no longer materialise 2^cols.
    wide = GF2Matrix([1 << 9999], 10000)
    assert wide.num_cols == 10000


def test_monomial_indexer_vector_assembly():
    rng = random.Random(55)
    for _ in range(100):
        ctx = fresh_ctx(8)
        expr = random_anf(rng, ctx, 8, 20)
        indexer = MonomialIndexer()
        vector = indexer.vector_of(expr)
        assert vector.bit_count() == expr.num_terms
        # Re-encoding with the same indexer yields the identical vector.
        assert indexer.vector_of(expr) == vector


# ---------------------------------------------------------------------------
# End to end: the fast paths preserve the decomposition exactly
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "spec_builder,width",
    [(lzd_spec, 8), (majority_spec, 7), (counter_spec, 8)],
)
def test_progressive_decomposition_still_exact(spec_builder, width):
    spec = spec_builder(width)
    decomposition = progressive_decomposition(spec.outputs, input_words=spec.input_words)
    assert decomposition.verify()
