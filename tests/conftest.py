"""Shared fixtures: session-scoped result caches for the bench suites.

The heavyweight sweeps (``test_full_width_sweep``, the Table 1 builds) used
to run against throwaway per-test cache directories, so every nightly run —
and every test touching the same circuit twice — re-derived warm results
from scratch.  These fixtures give the whole pytest session one shared
cache root instead:

* By default the root is a session ``tmp_path_factory`` directory: tests
  within one run share warm ``DecompositionCache``/``SynthesisCache``
  entries, but nothing persists across runs — a cache surviving the run
  could replay pre-regression results and defeat the expectation gates.
* Set ``REPRO_TEST_CACHE_DIR`` to persist the root across runs (CI keys it
  by commit, so a warm rerun of the same revision skips the re-derivation
  while different code always starts cold).
"""

import os
from pathlib import Path

import pytest


@pytest.fixture(scope="session")
def bench_cache_dir(tmp_path_factory) -> Path:
    """One cache root for every bench-suite test in this session."""
    configured = os.environ.get("REPRO_TEST_CACHE_DIR", "").strip()
    if configured:
        path = Path(configured)
        path.mkdir(parents=True, exist_ok=True)
        return path
    return tmp_path_factory.mktemp("bench-cache")


@pytest.fixture(scope="session")
def bench_synthesis_cache(bench_cache_dir):
    """A session-shared :class:`~repro.engine.cache.SynthesisCache`."""
    from repro.engine import SynthesisCache

    return SynthesisCache(bench_cache_dir / "synthesis")
