"""Unit and property tests for the Reed-Muller expression engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.anf import Anf, Context, ContextError, parse

VARS = ["a", "b", "c", "d", "e"]


def random_anf(draw_terms):
    ctx = Context(VARS)
    terms = []
    for subset in draw_terms:
        mask = 0
        for i in subset:
            mask |= 1 << i
        terms.append(mask)
    return ctx, Anf(ctx, terms)


anf_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=4), max_size=5).map(frozenset),
    max_size=12,
)


def build(ctx, subsets):
    terms = []
    for subset in subsets:
        mask = 0
        for i in subset:
            mask |= 1 << i
        terms.append(mask)
    return Anf(ctx, terms)


class TestBasics:
    def test_zero_and_one(self):
        ctx = Context()
        assert Anf.zero(ctx).is_zero
        assert Anf.one(ctx).is_one
        assert not Anf.one(ctx).is_zero
        assert Anf.constant(ctx, 1) == Anf.one(ctx)
        assert Anf.constant(ctx, 0) == Anf.zero(ctx)

    def test_var_and_literal(self):
        ctx = Context()
        a = Anf.var(ctx, "a")
        assert a.is_literal
        assert a.literal_name == "a"
        assert not (a ^ Anf.var(ctx, "b")).is_literal
        assert not Anf.one(ctx).is_literal

    def test_duplicate_terms_cancel(self):
        ctx = Context(["a"])
        expr = Anf(ctx, [1, 1])
        assert expr.is_zero

    def test_monomial_and_from_names(self):
        ctx = Context()
        m = Anf.monomial(ctx, ["a", "b"])
        assert m.num_terms == 1
        assert m.degree == 2
        expr = Anf.from_monomial_names(ctx, [["a"], ["a", "b"]])
        assert expr.num_terms == 2
        assert expr.literal_count == 3

    def test_support_and_degree(self):
        ctx = Context()
        expr = parse(ctx, "a*b ^ c")
        assert set(expr.support) == {"a", "b", "c"}
        assert expr.degree == 2
        assert expr.literal_count == 3

    def test_str_rendering(self):
        ctx = Context()
        expr = parse(ctx, "a ^ b*c ^ 1")
        assert expr.to_str() == "1 ^ a ^ b*c"
        assert Anf.zero(ctx).to_str() == "0"

    def test_mixed_context_rejected(self):
        ctx1, ctx2 = Context(["a"]), Context(["a"])
        with pytest.raises(ContextError):
            Anf.var(ctx1, "a") ^ Anf.var(ctx2, "a")

    def test_depends_on(self):
        ctx = Context()
        expr = parse(ctx, "a*b ^ c")
        assert expr.depends_on("a")
        assert not expr.depends_on("z")


class TestOperators:
    def test_xor_and_identities(self):
        ctx = Context()
        a, b = Anf.var(ctx, "a"), Anf.var(ctx, "b")
        assert (a ^ a).is_zero
        assert (a & a) == a
        assert (a & Anf.one(ctx)) == a
        assert (a & Anf.zero(ctx)).is_zero
        assert (a ^ Anf.zero(ctx)) == a

    def test_or_via_ring(self):
        ctx = Context()
        a, b = Anf.var(ctx, "a"), Anf.var(ctx, "b")
        disjunction = a | b
        for va in (0, 1):
            for vb in (0, 1):
                assert disjunction.evaluate({"a": va, "b": vb}) == (va or vb)

    def test_invert(self):
        ctx = Context()
        a = Anf.var(ctx, "a")
        assert (~a).evaluate({"a": 0}) == 1
        assert (~a).evaluate({"a": 1}) == 0
        assert ~~a == a

    def test_bool(self):
        ctx = Context()
        assert not Anf.zero(ctx)
        assert Anf.one(ctx)


class TestEvaluation:
    def test_evaluate_requires_support(self):
        ctx = Context()
        expr = parse(ctx, "a ^ b")
        with pytest.raises(ValueError):
            expr.evaluate({"a": 1})

    def test_evaluate_mask(self):
        ctx = Context()
        expr = parse(ctx, "a*b ^ c")
        a_bit = 1 << ctx.index("a")
        b_bit = 1 << ctx.index("b")
        c_bit = 1 << ctx.index("c")
        assert expr.evaluate_mask(a_bit | b_bit) == 1
        assert expr.evaluate_mask(c_bit) == 1
        assert expr.evaluate_mask(a_bit | b_bit | c_bit) == 0

    def test_cofactor(self):
        ctx = Context()
        expr = parse(ctx, "a*b ^ c")
        assert expr.cofactor("a", 1) == parse(ctx, "b ^ c")
        assert expr.cofactor("a", 0) == parse(ctx, "c")
        # Shannon expansion reconstructs the function.
        a = Anf.var(ctx, "a")
        assert (a & expr.cofactor("a", 1)) ^ (~a & expr.cofactor("a", 0)) == expr

    def test_derivative(self):
        ctx = Context()
        expr = parse(ctx, "a*b ^ c")
        assert expr.derivative("a") == parse(ctx, "b")
        assert expr.derivative("c") == Anf.one(ctx)

    def test_substitute(self):
        ctx = Context()
        expr = parse(ctx, "a*b ^ c")
        replaced = expr.substitute({"a": parse(ctx, "x ^ y")})
        assert replaced == parse(ctx, "(x ^ y)*b ^ c")

    def test_substitute_simultaneous(self):
        ctx = Context()
        expr = parse(ctx, "a ^ b")
        swapped = expr.substitute({"a": Anf.var(ctx, "b"), "b": Anf.var(ctx, "a")})
        assert swapped == expr  # symmetric expression unchanged by the swap

    def test_split_by_group(self):
        ctx = Context()
        expr = parse(ctx, "a*d ^ a*e ^ b*d ^ d*e")
        group_mask = ctx.mask_of(["a", "b"])
        buckets, remainder = expr.split_by_group(group_mask)
        reconstructed = remainder
        for group_part, rest in buckets.items():
            reconstructed = reconstructed ^ (Anf(ctx, [group_part]) & rest)
        assert reconstructed == expr
        assert remainder == parse(ctx, "d*e")


class TestProperties:
    @given(anf_strategy, anf_strategy)
    @settings(max_examples=60, deadline=None)
    def test_xor_commutative_and_associative(self, left_subsets, right_subsets):
        ctx = Context(VARS)
        left = build(ctx, left_subsets)
        right = build(ctx, right_subsets)
        assert left ^ right == right ^ left
        assert (left ^ right) ^ left == right

    @given(anf_strategy, anf_strategy)
    @settings(max_examples=60, deadline=None)
    def test_and_distributes_over_xor(self, left_subsets, right_subsets):
        ctx = Context(VARS)
        left = build(ctx, left_subsets)
        right = build(ctx, right_subsets)
        c = Anf.var(ctx, "c")
        assert c & (left ^ right) == (c & left) ^ (c & right)

    @given(anf_strategy)
    @settings(max_examples=60, deadline=None)
    def test_idempotent_multiplication(self, subsets):
        ctx = Context(VARS)
        expr = build(ctx, subsets)
        assert expr & expr == expr

    @given(anf_strategy, st.integers(min_value=0, max_value=31))
    @settings(max_examples=80, deadline=None)
    def test_operators_match_semantics(self, subsets, point):
        ctx = Context(VARS)
        expr = build(ctx, subsets)
        other = Anf.var(ctx, "a") ^ Anf.monomial(ctx, ["b", "c"])
        assignment = {name: (point >> i) & 1 for i, name in enumerate(VARS)}
        assert (expr ^ other).evaluate(assignment) == (
            expr.evaluate(assignment) ^ other.evaluate(assignment)
        )
        assert (expr & other).evaluate(assignment) == (
            expr.evaluate(assignment) & other.evaluate(assignment)
        )
        assert (expr | other).evaluate(assignment) == (
            expr.evaluate(assignment) | other.evaluate(assignment)
        )
        assert (~expr).evaluate(assignment) == 1 - expr.evaluate(assignment)

    @given(anf_strategy)
    @settings(max_examples=40, deadline=None)
    def test_cofactor_reconstruction(self, subsets):
        ctx = Context(VARS)
        expr = build(ctx, subsets)
        a = Anf.var(ctx, "a")
        assert (a & expr.cofactor("a", 1)) ^ (~a & expr.cofactor("a", 0)) == expr
