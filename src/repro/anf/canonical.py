"""Canonical, context-independent hashing of multi-output specifications.

The Reed-Muller form is canonical (two expressions denote the same function
iff their monomial sets are equal), so a specification has a well-defined
digest.  The canonical form relabels the support variables *densely in
declaration order*: bit *i* of a canonical monomial is the *i*-th support
variable as declared.  Two specs built in different contexts or processes —
e.g. by re-running the same deterministic builder — hash equal exactly when
they denote the same functions over the same named inputs declared in the
same order; variables outside the support (tags, other problems sharing the
context) never influence the digest.

Declaration order is deliberately part of the key: ``findGroup`` iterates
candidates and breaks ties in declaration order (and the default input word
is the declaration-ordered support), so the same functions declared in a
different order can legitimately decompose differently.  Folding order into
the digest keeps the result-cache contract exact — a warm hit is always the
result the cold run would have produced.

Flat Reed-Muller specs can carry hundreds of thousands of monomials (the
15-bit comparator is megabytes of terms), so the digest avoids per-bit
string work: masks are remapped through precomputed per-chunk permutation
tables (two dict lookups per term for specs up to 32 variables) and hashed
incrementally as fixed-width little-endian bytes.

This digest keys the on-disk result cache of the batch orchestrator
(:mod:`repro.engine.batch`), together with the pipeline's ``config_key``.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Mapping, Sequence

from .expression import Anf

_CHUNK_BITS = 16


def _remap_tables(width: int, perm: Dict[int, int]) -> List[Dict[int, int]]:
    """Per-chunk lookup tables applying the bit permutation ``perm``.

    ``perm`` maps source bit positions to canonical bit positions (only bits
    that can actually occur need entries).  Table ``c`` maps every value of
    the ``c``-th :data:`_CHUNK_BITS`-bit chunk of a source mask to its
    remapped image, so remapping a mask costs one lookup per chunk instead
    of one iteration per set bit.
    """
    tables: List[Dict[int, int]] = []
    for base in range(0, max(width, 1), _CHUNK_BITS):
        chunk_bits = [
            (1 << offset, 1 << perm[base + offset])
            for offset in range(min(_CHUNK_BITS, width - base))
            if base + offset in perm
        ]
        table = {0: 0}
        for source_bit, target_bit in chunk_bits:
            # Extend the table by this bit: every existing entry, with and
            # without the new bit set.
            for value, image in list(table.items()):
                table[value | source_bit] = image | target_bit
        tables.append(table)
    return tables


def _canonical_parts(
    outputs: Mapping[str, Anf],
) -> tuple[List[str], Dict[str, List[int]]]:
    """Declaration-ordered support names and densely relabelled term masks."""
    if not outputs:
        return [], {}
    first = next(iter(outputs.values()))
    ctx = first.ctx
    support_mask = 0
    for expr in outputs.values():
        ctx.require_same(expr.ctx)
        support_mask |= expr.support_mask
    names = list(ctx.names_of(support_mask))
    perm = {ctx.index(name): position for position, name in enumerate(names)}
    tables = _remap_tables(len(ctx), perm)
    chunk_mask = (1 << _CHUNK_BITS) - 1
    rendered: Dict[str, List[int]] = {}
    for port in sorted(outputs):
        terms = outputs[port].terms
        # Flat Reed-Muller specs run to ~10^6 monomials, so the one- and
        # two-chunk cases (up to 32 variables) get loop-free remaps.
        if len(tables) == 1:
            table = tables[0]
            remapped = [table[mask] for mask in terms]
        elif len(tables) == 2:
            low, high = tables
            remapped = [
                low[mask & chunk_mask] | high[mask >> _CHUNK_BITS] for mask in terms
            ]
        else:
            remapped = []
            for mask in terms:
                canonical = 0
                chunk = 0
                while mask:
                    canonical |= tables[chunk][mask & chunk_mask]
                    mask >>= _CHUNK_BITS
                    chunk += 1
                remapped.append(canonical)
        remapped.sort()
        rendered[port] = remapped
    return names, rendered


def canonical_spec_payload(
    outputs: Mapping[str, Anf],
    input_words: Sequence[Sequence[str]] | None = None,
) -> dict:
    """The canonical form of a specification as a JSON-serialisable dict.

    ``support`` lists the support variables in declaration order; monomial
    bit *i* refers to ``support[i]``.
    """
    names, rendered = _canonical_parts(outputs)
    payload: dict = {"support": names, "outputs": rendered}
    if input_words is not None:
        payload["input_words"] = [list(word) for word in input_words]
    return payload


def canonical_spec_digest(
    outputs: Mapping[str, Anf],
    input_words: Sequence[Sequence[str]] | None = None,
) -> str:
    """SHA-256 hex digest of the canonical form of a specification."""
    names, rendered = _canonical_parts(outputs)
    digest = hashlib.sha256()
    header = {"support": names, "ports": sorted(rendered)}
    if input_words is not None:
        header["input_words"] = [list(word) for word in input_words]
    digest.update(json.dumps(header, sort_keys=True, separators=(",", ":")).encode("utf-8"))
    mask_bytes = (len(names) + 7) // 8 or 1
    for port in sorted(rendered):
        digest.update(port.encode("utf-8") + b"\0")
        digest.update(
            b"".join(mask.to_bytes(mask_bytes, "little") for mask in rendered[port])
        )
    return digest.hexdigest()
