"""The ``native`` term-backend kernels: C primitives behind the seam.

This module is what ``REPRO_TERM_BACKEND=native`` installs at both ends of
the kernel stack:

* as :mod:`repro.anf.sortkernel`'s ``set_parallel`` module, so every public
  whole-slab kernel dispatches here; and
* as :mod:`repro.anf.nativekernel`'s chunk-serial core (``set_serial``), so
  each chunk of a thread-partitioned slab runs the compiled primitives.

The public seam functions below are therefore *aliases of nativekernel's
chunked dispatchers* — chunking policy (``REPRO_KERNEL_THREADS``,
``REPRO_KERNEL_CHUNK_MIN_ROWS``) is decided in exactly one place — and the
``_*_serial`` functions are the per-chunk floors, signature-compatible with
sortkernel's.  Each one calls into the compiled extension
(:mod:`repro.anf._ckernel._impl`) when it is built and the input clears the
same ``KERNEL_MIN_ROWS`` floor the numpy kernels use; everything else —
missing extension, tiny slabs, masks wider than ``RADIX_MAX_GROUP_BITS``,
numpy-less product fills — delegates to the sortkernel implementation, so
the semantics are those of the packed backend bit for bit.  The C
primitives release the GIL over their hot loops, which is what makes the
thread chunking genuinely parallel instead of merely interleaved.

The extension build is optional (``setup.py`` marks it ``optional=True``):
importing this module never fails.  :func:`warn_if_missing` — called by the
backend's ``activate`` hook — emits a one-time :class:`RuntimeWarning` when
the native backend is selected without a compiled extension, because the
user asked for native speed and is silently getting numpy speed.
"""

from __future__ import annotations

import warnings
from array import array
from typing import Dict, List, Sequence, Tuple

from . import nativekernel, sortkernel
from .sortkernel import ROW_MASK, WORD_CODE, merge_disjoint

try:  # pragma: no cover - exercised implicitly by every kernel call
    import numpy as _np
except ImportError:  # pragma: no cover - the container bakes numpy in
    _np = None

try:  # pragma: no cover - both arms are covered by the fallback tests
    from ._ckernel import _impl as _C
except ImportError:  # pragma: no cover
    _C = None


def available() -> bool:
    """True when the compiled extension imported (C primitives in use)."""
    return _C is not None


_warned_missing = False


def warn_if_missing() -> None:
    """One-time warning when the native backend runs without the extension."""
    global _warned_missing
    if _C is None and not _warned_missing:
        _warned_missing = True
        warnings.warn(
            "the 'native' term backend was selected but the compiled kernel "
            "extension (repro.anf._ckernel._impl) is not built; falling back "
            "to the numpy kernels — build it with "
            "'python setup.py build_ext --inplace'",
            RuntimeWarning,
            stacklevel=3,
        )


def _from_bytes(raw) -> array:
    """Wrap a C-produced row buffer (bytearray/memoryview) as ``array('Q')``."""
    out = array(WORD_CODE)
    out.frombytes(raw)
    return out


# ----------------------------------------------------------------------
# Per-chunk serial kernels (signature-compatible with sortkernel's)
# ----------------------------------------------------------------------
def _split_runs_serial(
    words: array, group_mask: int, or_mask: int = 0
) -> Tuple[List[Tuple[int, array]], array]:
    """Fused compress + histogram + gather radix split, in one C pass each.

    ``_impl.split_radix`` returns ``None`` for empty masks and masks wider
    than ``RADIX_MAX_GROUP_BITS`` — the same decline rule as the numpy radix
    path — and the argsort route stays in sortkernel.
    """
    if _C is None or len(words) < sortkernel.KERNEL_MIN_ROWS:
        return sortkernel._split_runs_serial(words, group_mask, or_mask)
    result = _C.split_radix(
        words,
        group_mask & ROW_MASK,
        or_mask & ROW_MASK,
        sortkernel.RADIX_MAX_GROUP_BITS,
    )
    if result is None:
        return sortkernel._split_runs_serial(words, group_mask, or_mask)
    parts, buckets, remainder = result
    if not parts and not or_mask:
        # No row carries a group bit and there is no tag to plant: the
        # input slab *is* the remainder (same no-copy guarantee as the
        # numpy kernel).
        return [], words
    return (
        [(part, _from_bytes(rows)) for part, rows in zip(parts, buckets)],
        _from_bytes(remainder),
    )


def _split_build_serial(
    tagged_slabs: Sequence[Tuple[int, array]], group_mask: int
) -> Tuple[List[Tuple[int, array]], array]:
    if _C is None:
        return sortkernel._split_build_serial(tagged_slabs, group_mask)
    per_bucket: Dict[int, List[array]] = {}
    rest_parts: List[array] = []
    for tag, words in tagged_slabs:
        if not len(words):
            continue
        buckets, rest = _split_runs_serial(words, group_mask, or_mask=tag)
        for part, rows in buckets:
            pieces = per_bucket.get(part)
            if pieces is None:
                per_bucket[part] = pieces = []
            pieces.append(rows)
        if len(rest):
            rest_parts.append(rest)
    merged = [
        (part, merge_disjoint(per_bucket[part])) for part in sorted(per_bucket)
    ]
    return merged, merge_disjoint(rest_parts) if rest_parts else array(WORD_CODE)


def _scatter_tag_serial(words: array, bit: int) -> array:
    if (
        _C is None
        or bit > ROW_MASK
        or len(words) < sortkernel.KERNEL_MIN_ROWS
    ):
        return sortkernel._scatter_tag_serial(words, bit)
    return _from_bytes(_C.scatter_tag(words, bit))


def _xor_merge_serial(left: array, right: array) -> array:
    if not len(left):
        return right
    if not len(right):
        return left
    if _C is None or len(left) + len(right) < sortkernel.KERNEL_MIN_ROWS:
        return sortkernel._xor_merge_serial(left, right)
    return _from_bytes(_C.xor_merge(left, right))


def _parity_merge_serial(slabs: Sequence[array]) -> array:
    alive = [s for s in slabs if len(s)]
    if not alive:
        return array(WORD_CODE)
    total = sum(len(s) for s in alive)
    if _C is None or total < sortkernel.KERNEL_MIN_ROWS:
        return sortkernel._parity_merge_serial(slabs)
    # One writable slab holding the whole multiset; ``sort_parity`` radix-
    # sorts it in place and compacts the odd-count rows into its prefix.
    buf = bytearray(total * 8)
    view = memoryview(buf)
    pos = 0
    for slab in alive:
        raw = memoryview(slab).cast("B")
        view[pos : pos + len(raw)] = raw
        pos += len(raw)
    survivors = _C.sort_parity(buf)
    return _from_bytes(view[: survivors * 8])


def _product_rows_serial(large: array, small_terms: Sequence[int]) -> array:
    terms = list(small_terms)
    if (
        _C is None
        or _np is None  # the slab fill below is a numpy broadcast
        or len(large) * len(terms) < sortkernel.KERNEL_MIN_ROWS
    ):
        return sortkernel._product_rows_serial(large, small_terms)
    rows = _np.frombuffer(large, dtype=_np.uint64)
    raw = _product_rec(rows, [term & ROW_MASK for term in terms])
    return _from_bytes(raw)


def _product_rec(rows, terms: List[int]):
    """Parity-reduced ``XOR(terms) * rows`` as a raw row buffer.

    Mirrors sortkernel's divide-and-conquer slab budget
    (``PRODUCT_SLAB_ROWS``); the halves are canonical (sorted, distinct), so
    their mod-2 recombination *is* the C two-pointer symmetric difference.
    """
    if len(terms) * len(rows) <= sortkernel.PRODUCT_SLAB_ROWS or len(terms) <= 2:
        n = len(rows)
        buf = bytearray(len(terms) * n * 8)
        out = _np.frombuffer(buf, dtype=_np.uint64)
        for i, term in enumerate(terms):
            _np.bitwise_or(rows, _np.uint64(term), out=out[i * n : (i + 1) * n])
        survivors = _C.sort_parity(buf)
        return memoryview(buf)[: survivors * 8]
    mid = len(terms) // 2
    return _C.xor_merge(
        _product_rec(rows, terms[:mid]), _product_rec(rows, terms[mid:])
    )


def _shared_literal_count_serial(left: array, right: array) -> int:
    if (
        _C is None
        or min(len(left), len(right)) == 0
        or len(left) + len(right) < sortkernel.KERNEL_MIN_ROWS
    ):
        return sortkernel._shared_literal_count_serial(left, right)
    return _C.shared_literal_count(left, right)


def _popcount_rows_serial(words) -> int:
    if (
        _C is None
        or not isinstance(words, array)
        or len(words) < sortkernel.KERNEL_MIN_ROWS
    ):
        return sortkernel._popcount_rows_serial(words)
    return _C.popcount_rows(words)


# ----------------------------------------------------------------------
# Seam functions: nativekernel's chunked dispatchers, verbatim.  The
# backend installs this module as nativekernel's serial core first, so the
# dispatchers run the ``_*_serial`` kernels above per chunk (or directly,
# below the chunking floor / on one thread).
# ----------------------------------------------------------------------
split_runs_by_group = nativekernel.split_runs_by_group
split_build_by_group = nativekernel.split_build_by_group
scatter_tag = nativekernel.scatter_tag
xor_merge = nativekernel.xor_merge
parity_merge = nativekernel.parity_merge
product_rows = nativekernel.product_rows
shared_literal_count = nativekernel.shared_literal_count
popcount_rows = nativekernel.popcount_rows
