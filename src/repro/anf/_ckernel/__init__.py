"""Build tree for the optional C kernel extension (``repro.anf._ckernel._impl``).

The compiled module lands next to this file as ``_impl``; it is built by
``setup.py``'s optional ``ext_modules`` entry (``pip install -e .`` or
``python setup.py build_ext --inplace``).  Nothing imports this package
directly except :mod:`repro.anf.cnative`, which degrades to the numpy
kernels when the extension is missing — so a failed or skipped build never
breaks an install, it only forfeits the native speedup.
"""
