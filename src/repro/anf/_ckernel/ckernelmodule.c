/* Cache-resident C kernels for the packed term-matrix hot paths.
 *
 * Every function operates on contiguous slabs of native-endian uint64 rows
 * exposed through the buffer protocol (``array('Q')``, ``bytearray``, or a
 * C-contiguous numpy uint64 vector) and releases the GIL around its hot
 * loop, so the thread-chunking layer in ``repro.anf.nativekernel`` can run
 * chunks genuinely in parallel.  The Python-facing contracts — what the
 * inputs mean, when a kernel declines, and the exact result semantics —
 * live in ``repro.anf.cnative``, which wraps this module and falls back to
 * the numpy kernels in ``repro.anf.sortkernel`` whenever it is missing.
 *
 * The headline kernel is ``split_radix``: the fused key-compress + bincount
 * + gather radix split that serves both ``split_runs_by_group`` and (via
 * its ``or_mask`` tag argument) the fused ``split_build_by_group``.  Where
 * the numpy path materialises a key vector, bincounts it, and then either
 * argsorts the keys or runs two whole-slab passes per bucket, this kernel
 * makes exactly two passes over the slab: one histogram pass and one gather
 * pass that recomputes the tiny compressed key in registers and writes each
 * row — group part stripped and tag planted by a single XOR — straight into
 * its bucket's output buffer.
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#if defined(__GNUC__) || defined(__clang__)
#define POPCOUNT64(x) ((int)__builtin_popcountll(x))
#define CTZ64(x) ((int)__builtin_ctzll(x))
#else
static int
fallback_popcount64(uint64_t x)
{
    int count = 0;
    while (x) {
        x &= x - 1;
        ++count;
    }
    return count;
}

static int
fallback_ctz64(uint64_t x)
{
    int count = 0;
    while (!(x & 1)) {
        x >>= 1;
        ++count;
    }
    return count;
}

#define POPCOUNT64(x) fallback_popcount64(x)
#define CTZ64(x) fallback_ctz64(x)
#endif

/* Widest compressed key served by split_radix: 2^16 buckets keeps the
 * histogram and offset tables cache-resident.  Python enforces the much
 * smaller RADIX_MAX_GROUP_BITS before calling; this is the hard cap. */
#define MAX_KEY_BITS 16

static int
u64_view(PyObject *obj, Py_buffer *view, int writable)
{
    if (PyObject_GetBuffer(obj, view, writable ? PyBUF_WRITABLE : PyBUF_SIMPLE) != 0)
        return -1;
    if (view->len % 8 != 0) {
        PyBuffer_Release(view);
        PyErr_SetString(PyExc_ValueError, "buffer length is not a multiple of 8 bytes");
        return -1;
    }
    return 0;
}

/* ----------------------------------------------------------------------
 * split_radix(rows, group_mask, or_mask, max_bits)
 *   -> (parts: list[int], buckets: list[bytearray], remainder: bytearray)
 *   or None when the mask is empty or wider than max_bits (caller falls
 *   back to the argsort path).
 *
 * Each row r lands in bucket r & group_mask as r ^ ((r & group_mask) |
 * or_mask); rows with no group bit form the remainder (with or_mask ORed
 * in — or_mask is a fresh tag bit disjoint from every row, so XOR == OR).
 * Buckets come out in ascending group-part order and, because the gather
 * is a stable sequential scan, every bucket preserves the input order —
 * ascending input slabs produce born-canonical ascending buckets.
 * ---------------------------------------------------------------------- */

typedef struct {
    int shift;     /* right-shift taking this run of mask bits to its key position */
    uint64_t mask; /* the run's bits, already positioned in key space */
} keyrun;

/* Decompose the group mask into maximal runs of consecutive bits; the
 * compression (one shift-and-mask per run) is monotone, so ascending
 * compressed keys enumerate ascending group parts. */
static int
build_runs(uint64_t group_mask, keyrun *runs)
{
    int nruns = 0;
    int out_bits = 0;
    uint64_t m = group_mask;
    while (m) {
        int start = CTZ64(m);
        int length = 1;
        while (((m >> start) >> length) & 1ULL)
            ++length;
        runs[nruns].shift = start - out_bits;
        runs[nruns].mask = ((1ULL << length) - 1ULL) << out_bits;
        ++nruns;
        out_bits += length;
        m &= ~(((1ULL << length) - 1ULL) << start);
    }
    return nruns;
}

static inline uint32_t
compress_key(uint64_t row, const keyrun *runs, int nruns)
{
    uint32_t key = 0;
    int r;
    for (r = 0; r < nruns; ++r)
        key |= (uint32_t)((row >> runs[r].shift) & runs[r].mask);
    return key;
}

static inline uint64_t
expand_key(uint32_t key, const keyrun *runs, int nruns)
{
    uint64_t part = 0;
    int r;
    for (r = 0; r < nruns; ++r)
        part |= ((uint64_t)key & runs[r].mask) << runs[r].shift;
    return part;
}

static PyObject *
py_split_radix(PyObject *self, PyObject *args)
{
    PyObject *rows_obj;
    unsigned long long group_mask_arg, or_mask_arg;
    int max_bits;
    Py_buffer view;
    keyrun runs[MAX_KEY_BITS];
    PyObject *parts = NULL, *buckets = NULL, *remainder = NULL, *result = NULL;
    Py_ssize_t *counts = NULL;
    uint64_t **dest = NULL;
    uint64_t *strips = NULL;

    if (!PyArg_ParseTuple(args, "OKKi", &rows_obj, &group_mask_arg, &or_mask_arg, &max_bits))
        return NULL;
    {
        uint64_t group_mask = (uint64_t)group_mask_arg;
        uint64_t or_mask = (uint64_t)or_mask_arg;
        int nbits = POPCOUNT64(group_mask);
        int nruns;
        const uint64_t *rows;
        Py_ssize_t n, i;
        size_t nbuckets, key;

        if (nbits == 0 || nbits > max_bits || nbits > MAX_KEY_BITS)
            Py_RETURN_NONE;
        if (u64_view(rows_obj, &view, 0) < 0)
            return NULL;
        rows = (const uint64_t *)view.buf;
        n = view.len / 8;
        nruns = build_runs(group_mask, runs);
        nbuckets = (size_t)1 << nbits;

        counts = (Py_ssize_t *)calloc(nbuckets, sizeof(Py_ssize_t));
        dest = (uint64_t **)calloc(nbuckets, sizeof(uint64_t *));
        strips = (uint64_t *)calloc(nbuckets, sizeof(uint64_t));
        if (!counts || !dest || !strips) {
            PyErr_NoMemory();
            goto fail;
        }

        /* Pass 1: histogram (key recomputed in registers, nothing stored). */
        Py_BEGIN_ALLOW_THREADS
        for (i = 0; i < n; ++i)
            counts[compress_key(rows[i], runs, nruns)]++;
        Py_END_ALLOW_THREADS

        parts = PyList_New(0);
        buckets = PyList_New(0);
        if (!parts || !buckets)
            goto fail;
        for (key = 0; key < nbuckets; ++key) {
            PyObject *bucket;
            uint64_t part;
            if (!counts[key])
                continue;
            bucket = PyByteArray_FromStringAndSize(NULL, counts[key] * 8);
            if (!bucket)
                goto fail;
            dest[key] = (uint64_t *)PyByteArray_AS_STRING(bucket);
            part = expand_key((uint32_t)key, runs, nruns);
            strips[key] = part | or_mask;
            if (key == 0) {
                remainder = bucket;
            }
            else {
                PyObject *part_obj = PyLong_FromUnsignedLongLong(part);
                int failed = (part_obj == NULL || PyList_Append(parts, part_obj) < 0 ||
                              PyList_Append(buckets, bucket) < 0);
                Py_XDECREF(part_obj);
                Py_DECREF(bucket);
                if (failed)
                    goto fail;
            }
        }
        if (!remainder) {
            remainder = PyByteArray_FromStringAndSize(NULL, 0);
            if (!remainder)
                goto fail;
        }

        /* Pass 2: gather.  Within a bucket the sequential scan is stable, and
         * every bucket row contains all of its group part and none of the
         * (fresh) tag, so one XOR both strips the part and plants the tag. */
        Py_BEGIN_ALLOW_THREADS
        for (i = 0; i < n; ++i) {
            uint64_t row = rows[i];
            uint32_t k = compress_key(row, runs, nruns);
            *dest[k]++ = row ^ strips[k];
        }
        Py_END_ALLOW_THREADS

        result = PyTuple_Pack(3, parts, buckets, remainder);
    }
fail:
    free(counts);
    free(dest);
    free(strips);
    Py_XDECREF(parts);
    Py_XDECREF(buckets);
    Py_XDECREF(remainder);
    PyBuffer_Release(&view);
    return result;
}

/* ----------------------------------------------------------------------
 * xor_merge(a, b) -> bytearray
 * Symmetric difference of two ascending slabs of distinct rows: one
 * two-pointer pass, equal rows cancel in place of numpy's concatenate +
 * sort + duplicate-mask sweeps.
 * ---------------------------------------------------------------------- */
static PyObject *
py_xor_merge(PyObject *self, PyObject *args)
{
    PyObject *a_obj, *b_obj, *out;
    Py_buffer av, bv;
    const uint64_t *a, *b;
    uint64_t *dst;
    Py_ssize_t na, nb, i = 0, j = 0, k = 0;

    if (!PyArg_ParseTuple(args, "OO", &a_obj, &b_obj))
        return NULL;
    if (u64_view(a_obj, &av, 0) < 0)
        return NULL;
    if (u64_view(b_obj, &bv, 0) < 0) {
        PyBuffer_Release(&av);
        return NULL;
    }
    na = av.len / 8;
    nb = bv.len / 8;
    out = PyByteArray_FromStringAndSize(NULL, (na + nb) * 8);
    if (!out) {
        PyBuffer_Release(&av);
        PyBuffer_Release(&bv);
        return NULL;
    }
    a = (const uint64_t *)av.buf;
    b = (const uint64_t *)bv.buf;
    dst = (uint64_t *)PyByteArray_AS_STRING(out);
    Py_BEGIN_ALLOW_THREADS
    while (i < na && j < nb) {
        if (a[i] < b[j])
            dst[k++] = a[i++];
        else if (b[j] < a[i])
            dst[k++] = b[j++];
        else {
            ++i; /* shared row: occurs exactly twice, cancels */
            ++j;
        }
    }
    while (i < na)
        dst[k++] = a[i++];
    while (j < nb)
        dst[k++] = b[j++];
    Py_END_ALLOW_THREADS
    PyBuffer_Release(&av);
    PyBuffer_Release(&bv);
    if (PyByteArray_Resize(out, k * 8) < 0) {
        Py_DECREF(out);
        return NULL;
    }
    return out;
}

/* ----------------------------------------------------------------------
 * sort_parity(buffer) -> int
 * In-place LSD radix sort of a writable u64 slab followed by an odd-run
 * sweep; returns the number of surviving rows (the sorted mod-2 reduction
 * occupies the buffer's prefix).  Byte positions where every row agrees
 * are skipped, so 40-bit term universes pay ~5 passes instead of 8.
 * ---------------------------------------------------------------------- */
static Py_ssize_t
sort_parity_core(uint64_t *a, Py_ssize_t n, uint64_t *tmp)
{
    static const int BYTES = 8;
    Py_ssize_t hist[8][256];
    uint64_t *src = a, *dst = tmp;
    Py_ssize_t i, out;
    int b;

    memset(hist, 0, sizeof(hist));
    for (i = 0; i < n; ++i) {
        uint64_t v = a[i];
        for (b = 0; b < BYTES; ++b)
            hist[b][(v >> (b * 8)) & 0xff]++;
    }
    for (b = 0; b < BYTES; ++b) {
        Py_ssize_t offsets[256];
        Py_ssize_t acc = 0;
        int v, distinct = 0;
        for (v = 0; v < 256 && distinct < 2; ++v)
            if (hist[b][v])
                ++distinct;
        if (distinct < 2)
            continue; /* all rows share this byte: the pass is a no-op */
        for (v = 0; v < 256; ++v) {
            offsets[v] = acc;
            acc += hist[b][v];
        }
        for (i = 0; i < n; ++i) {
            uint64_t row = src[i];
            dst[offsets[(row >> (b * 8)) & 0xff]++] = row;
        }
        {
            uint64_t *swap = src;
            src = dst;
            dst = swap;
        }
    }
    if (src != a)
        memcpy(a, src, (size_t)n * 8);
    out = 0;
    i = 0;
    while (i < n) {
        Py_ssize_t j = i + 1;
        while (j < n && a[j] == a[i])
            ++j;
        if ((j - i) & 1)
            a[out++] = a[i];
        i = j;
    }
    return out;
}

static PyObject *
py_sort_parity(PyObject *self, PyObject *args)
{
    PyObject *obj;
    Py_buffer view;
    uint64_t *tmp;
    Py_ssize_t n, surviving;

    if (!PyArg_ParseTuple(args, "O", &obj))
        return NULL;
    if (u64_view(obj, &view, 1) < 0)
        return NULL;
    n = view.len / 8;
    if (n == 0) {
        PyBuffer_Release(&view);
        return PyLong_FromSsize_t(0);
    }
    tmp = (uint64_t *)malloc((size_t)n * 8);
    if (!tmp) {
        PyBuffer_Release(&view);
        return PyErr_NoMemory();
    }
    Py_BEGIN_ALLOW_THREADS
    surviving = sort_parity_core((uint64_t *)view.buf, n, tmp);
    Py_END_ALLOW_THREADS
    free(tmp);
    PyBuffer_Release(&view);
    return PyLong_FromSsize_t(surviving);
}

/* ----------------------------------------------------------------------
 * scatter_tag(rows, bit) -> bytearray
 * Rows intersecting ``bit``, with those bits cleared: one filtering pass.
 * ---------------------------------------------------------------------- */
static PyObject *
py_scatter_tag(PyObject *self, PyObject *args)
{
    PyObject *obj, *out;
    unsigned long long bit_arg;
    Py_buffer view;
    const uint64_t *rows;
    uint64_t *dst, bit;
    Py_ssize_t n, i, k = 0;

    if (!PyArg_ParseTuple(args, "OK", &obj, &bit_arg))
        return NULL;
    if (u64_view(obj, &view, 0) < 0)
        return NULL;
    n = view.len / 8;
    out = PyByteArray_FromStringAndSize(NULL, n * 8);
    if (!out) {
        PyBuffer_Release(&view);
        return NULL;
    }
    rows = (const uint64_t *)view.buf;
    dst = (uint64_t *)PyByteArray_AS_STRING(out);
    bit = (uint64_t)bit_arg;
    Py_BEGIN_ALLOW_THREADS
    for (i = 0; i < n; ++i) {
        uint64_t row = rows[i];
        if (row & bit)
            dst[k++] = row & ~bit;
    }
    Py_END_ALLOW_THREADS
    PyBuffer_Release(&view);
    if (PyByteArray_Resize(out, k * 8) < 0) {
        Py_DECREF(out);
        return NULL;
    }
    return out;
}

/* ----------------------------------------------------------------------
 * shared_literal_count(a, b) -> int
 * Total set bits over the rows present in both ascending slabs: one
 * two-pointer intersection with popcounts, no allocations.
 * ---------------------------------------------------------------------- */
static PyObject *
py_shared_literal_count(PyObject *self, PyObject *args)
{
    PyObject *a_obj, *b_obj;
    Py_buffer av, bv;
    const uint64_t *a, *b;
    Py_ssize_t na, nb, i = 0, j = 0;
    unsigned long long total = 0;

    if (!PyArg_ParseTuple(args, "OO", &a_obj, &b_obj))
        return NULL;
    if (u64_view(a_obj, &av, 0) < 0)
        return NULL;
    if (u64_view(b_obj, &bv, 0) < 0) {
        PyBuffer_Release(&av);
        return NULL;
    }
    na = av.len / 8;
    nb = bv.len / 8;
    a = (const uint64_t *)av.buf;
    b = (const uint64_t *)bv.buf;
    Py_BEGIN_ALLOW_THREADS
    while (i < na && j < nb) {
        if (a[i] < b[j])
            ++i;
        else if (b[j] < a[i])
            ++j;
        else {
            total += (unsigned long long)POPCOUNT64(a[i]);
            ++i;
            ++j;
        }
    }
    Py_END_ALLOW_THREADS
    PyBuffer_Release(&av);
    PyBuffer_Release(&bv);
    return PyLong_FromUnsignedLongLong(total);
}

/* ----------------------------------------------------------------------
 * popcount_rows(rows) -> int
 * Total set bits over a slab (the literal count of a matrix).
 * ---------------------------------------------------------------------- */
static PyObject *
py_popcount_rows(PyObject *self, PyObject *args)
{
    PyObject *obj;
    Py_buffer view;
    const uint64_t *rows;
    Py_ssize_t n, i;
    unsigned long long total = 0;

    if (!PyArg_ParseTuple(args, "O", &obj))
        return NULL;
    if (u64_view(obj, &view, 0) < 0)
        return NULL;
    rows = (const uint64_t *)view.buf;
    n = view.len / 8;
    Py_BEGIN_ALLOW_THREADS
    for (i = 0; i < n; ++i)
        total += (unsigned long long)POPCOUNT64(rows[i]);
    Py_END_ALLOW_THREADS
    PyBuffer_Release(&view);
    return PyLong_FromUnsignedLongLong(total);
}

static PyMethodDef ckernel_methods[] = {
    {"split_radix", py_split_radix, METH_VARARGS,
     "split_radix(rows, group_mask, or_mask, max_bits) -> (parts, buckets, remainder) | None"},
    {"xor_merge", py_xor_merge, METH_VARARGS,
     "xor_merge(a, b) -> bytearray: symmetric difference of two ascending distinct-row slabs"},
    {"sort_parity", py_sort_parity, METH_VARARGS,
     "sort_parity(buffer) -> int: radix-sort a writable u64 slab in place, keep odd-count rows "
     "in its prefix, return how many survived"},
    {"scatter_tag", py_scatter_tag, METH_VARARGS,
     "scatter_tag(rows, bit) -> bytearray: rows intersecting bit, with the bit cleared"},
    {"shared_literal_count", py_shared_literal_count, METH_VARARGS,
     "shared_literal_count(a, b) -> int: popcount of the rows present in both ascending slabs"},
    {"popcount_rows", py_popcount_rows, METH_VARARGS,
     "popcount_rows(rows) -> int: total set bits over a u64 slab"},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef ckernel_module = {
    PyModuleDef_HEAD_INIT,
    "repro.anf._ckernel._impl",
    "Cache-resident C kernels over contiguous uint64 row slabs (see repro.anf.cnative).",
    -1,
    ckernel_methods,
};

PyMODINIT_FUNC
PyInit__impl(void)
{
    return PyModule_Create(&ckernel_module);
}
