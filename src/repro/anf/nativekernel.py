"""Chunked whole-slab kernel execution for the ``threaded`` backend.

The serial kernels in :mod:`repro.anf.sortkernel` spend their time inside
numpy ufuncs and sorts, all of which release the GIL while they run over a
slab.  This module exploits that: each whole-slab primitive is partitioned
into independent chunks, the chunks run on a shared ``ThreadPoolExecutor``
sized by ``REPRO_KERNEL_THREADS`` (``auto`` = CPU count), and the partial
results are recombined with *deterministic, ordered* merges so the final
slab is bit-identical to the serial kernel at any thread count.

Determinism contract (what makes chunking invisible):

* **Row partitions are contiguous.**  A sorted slab is split into
  ``[lo, hi)`` row ranges, so chunk ``i``'s rows all sort below chunk
  ``i+1``'s and concatenating the partial outputs in chunk order *is* the
  sorted result — no re-sort, no tie-breaking.
* **Value partitions respect equal rows.**  ``xor_merge`` splits both
  operands at the same pivot values (``searchsorted`` with the same side),
  so rows that must cancel always land in the same chunk.
* **Parity is associative.**  ``parity_merge`` and ``product_rows`` reduce
  each chunk mod 2 and then reduce the partials mod 2 — a row's final
  parity is the parity of its total count however the multiset was split.

Everything below a size floor (``2 * CHUNK_MIN_ROWS`` rows) or on a single
configured thread delegates straight to the serial kernel: thread fan-out
costs more than it saves on small slabs, and the quick sweep must not
regress.  The module is installed/removed via
:func:`repro.anf.sortkernel.set_parallel` by the backend's
``activate``/``deactivate`` hooks; it always calls the ``_*_serial``
internals directly, so a chunk can never re-enter the chunking layer.

The per-chunk serial core is itself pluggable (:func:`set_serial`): it
defaults to sortkernel's numpy kernels, and the ``native`` backend swaps in
:mod:`repro.anf.cnative`, whose compiled primitives release the GIL over
plain C loops — same chunking policy, same deterministic merges, faster
floors.  Whatever the core, a chunk never re-enters the chunking layer.
"""

from __future__ import annotations

import os
import warnings
from array import array
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from . import sortkernel
from .sortkernel import WORD_CODE, merge_disjoint

try:  # pragma: no cover - same dependency story as sortkernel
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

THREADS_ENV = "REPRO_KERNEL_THREADS"

#: Minimum rows per chunk; inputs under ``2 *`` this run serially.  Chosen so
#: the per-chunk executor overhead (~tens of µs) stays well under the numpy
#: work it parallelises.  Tunable via ``REPRO_KERNEL_CHUNK_MIN_ROWS``; tests
#: monkeypatch it down to force chunk boundaries on small inputs.
CHUNK_MIN_ROWS = sortkernel._env_int("REPRO_KERNEL_CHUNK_MIN_ROWS", 1 << 16)

_T = TypeVar("_T")
_R = TypeVar("_R")

#: The module supplying the per-chunk ``_*_serial`` kernels.  Defaults to
#: the numpy implementations in :mod:`repro.anf.sortkernel`; the ``native``
#: backend installs :mod:`repro.anf.cnative` here so every chunk runs the
#: compiled primitives.  Swapping the core never changes results — both
#: cores are bit-identical, which the parity suites assert.
_serial = sortkernel


def set_serial(module) -> None:
    """Install (or reset, with ``None``) the per-chunk serial kernel core."""
    global _serial
    _serial = sortkernel if module is None else module


def thread_count() -> int:
    """The configured worker count (``auto``/``0``/unset → CPU count).

    Malformed or negative ``REPRO_KERNEL_THREADS`` values warn once and
    fall back to the auto (CPU count) default instead of raising.
    """
    value = os.environ.get(THREADS_ENV, "").strip().lower()
    if value in ("", "auto", "0"):
        return os.cpu_count() or 1
    try:
        parsed = int(value)
    except ValueError:
        warnings.warn(
            f"ignoring malformed ${THREADS_ENV}={value!r} (expected an "
            "integer or 'auto'); using the CPU count",
            RuntimeWarning,
            stacklevel=2,
        )
        return os.cpu_count() or 1
    if parsed < 0:
        warnings.warn(
            f"${THREADS_ENV}={parsed} is out of range; using the CPU count",
            RuntimeWarning,
            stacklevel=2,
        )
        return os.cpu_count() or 1
    return max(1, parsed)


_executor: Optional[ThreadPoolExecutor] = None
_executor_size = 0


def _map(func: Callable[[_T], _R], jobs: Sequence[_T]) -> List[_R]:
    """Run ``func`` over ``jobs`` on the shared pool, results in job order."""
    global _executor, _executor_size
    size = thread_count()
    if _executor is None or _executor_size != size:
        if _executor is not None:
            _executor.shutdown(wait=False)
        _executor = ThreadPoolExecutor(
            max_workers=size, thread_name_prefix="repro-kernel"
        )
        _executor_size = size
    return list(_executor.map(func, jobs))


def _chunkable(total_rows: int) -> bool:
    return (
        _np is not None
        and total_rows >= 2 * CHUNK_MIN_ROWS
        and thread_count() >= 2
    )


def _chunk_bounds(total: int) -> List[int]:
    """Contiguous ``[lo, hi)`` boundaries: one chunk per worker, but never
    chunks smaller than :data:`CHUNK_MIN_ROWS`."""
    parts = min(thread_count(), max(2, total // CHUNK_MIN_ROWS))
    return [total * i // parts for i in range(parts + 1)]


def _row_chunks(words: array) -> List[array]:
    bounds = _chunk_bounds(len(words))
    return [words[lo:hi] for lo, hi in zip(bounds, bounds[1:])]


# ----------------------------------------------------------------------
# Split kernels
# ----------------------------------------------------------------------
def _merge_chunked_splits(
    results: Sequence[Tuple[List[Tuple[int, array]], array]]
) -> Tuple[List[Tuple[int, array]], array]:
    """Recombine per-chunk split results emitted in ascending-row chunk order.

    Within one bucket, chunk ``i``'s stripped rows all sort below chunk
    ``i+1``'s (contiguous row ranges of an ascending slab, minus a shared
    group part, plus a shared tag), so ``merge_disjoint`` recognises the
    pieces as already ordered and concatenates them.
    """
    per_bucket: Dict[int, List[array]] = {}
    rest_parts: List[array] = []
    for buckets, rest in results:
        for part, rows in buckets:
            pieces = per_bucket.get(part)
            if pieces is None:
                per_bucket[part] = pieces = []
            pieces.append(rows)
        if len(rest):
            rest_parts.append(rest)
    merged = [
        (part, merge_disjoint(per_bucket[part])) for part in sorted(per_bucket)
    ]
    remainder = merge_disjoint(rest_parts) if rest_parts else array(WORD_CODE)
    return merged, remainder


def split_runs_by_group(
    words: array, group_mask: int
) -> Tuple[List[Tuple[int, array]], array]:
    if not _chunkable(len(words)):
        return _serial._split_runs_serial(words, group_mask)
    results = _map(
        lambda chunk: _serial._split_runs_serial(chunk, group_mask),
        _row_chunks(words),
    )
    return _merge_chunked_splits(results)


def split_build_by_group(
    tagged_slabs: Sequence[Tuple[int, array]], group_mask: int
) -> Tuple[List[Tuple[int, array]], array]:
    total = sum(len(words) for _, words in tagged_slabs)
    if not _chunkable(total):
        return _serial._split_build_serial(tagged_slabs, group_mask)
    # Flatten every slab into row-range jobs, keeping (slab, row) order so
    # the per-bucket pieces recombine in the same order the serial fused
    # kernel emits them (tags ascend across slabs, rows ascend within one).
    jobs: List[Tuple[array, int]] = []
    for tag, words in tagged_slabs:
        if not len(words):
            continue
        if len(words) < 2 * CHUNK_MIN_ROWS:
            jobs.append((words, tag))
        else:
            jobs.extend((chunk, tag) for chunk in _row_chunks(words))
    results = _map(
        lambda job: _serial._split_runs_serial(
            job[0], group_mask, or_mask=job[1]
        ),
        jobs,
    )
    return _merge_chunked_splits(results)


def scatter_tag(words: array, bit: int) -> array:
    if not _chunkable(len(words)):
        return _serial._scatter_tag_serial(words, bit)
    pieces = _map(
        lambda chunk: _serial._scatter_tag_serial(chunk, bit),
        _row_chunks(words),
    )
    # Selected rows all shared ``bit``; stripping a shared bit preserves the
    # ascending cross-chunk order, so concatenation is already sorted.
    out = array(WORD_CODE)
    for piece in pieces:
        out.extend(piece)
    return out


# ----------------------------------------------------------------------
# Merge kernels
# ----------------------------------------------------------------------
def xor_merge(left: array, right: array) -> array:
    if not len(left):
        return right
    if not len(right):
        return left
    if not _chunkable(len(left) + len(right)):
        return _serial._xor_merge_serial(left, right)
    # Partition by *value*: pick pivot rows from the larger operand, cut both
    # operands at the same pivots (same searchsorted side), and symmetric-
    # difference each value range independently.  Equal rows land in the same
    # range on both sides, so every cancellation happens inside one chunk;
    # ranges ascend, so concatenating the partials in order is the result.
    big = left if len(left) >= len(right) else right
    big_rows = _np.frombuffer(big, dtype=_np.uint64)
    bounds = _chunk_bounds(len(big))
    pivots = big_rows[_np.asarray(bounds[1:-1], dtype=_np.intp)]
    left_rows = _np.frombuffer(left, dtype=_np.uint64)
    right_rows = _np.frombuffer(right, dtype=_np.uint64)
    left_cuts = [0, *_np.searchsorted(left_rows, pivots).tolist(), len(left)]
    right_cuts = [0, *_np.searchsorted(right_rows, pivots).tolist(), len(right)]
    jobs = [
        (left[llo:lhi], right[rlo:rhi])
        for llo, lhi, rlo, rhi in zip(
            left_cuts, left_cuts[1:], right_cuts, right_cuts[1:]
        )
    ]
    pieces = _map(
        lambda job: _serial._xor_merge_serial(job[0], job[1]), jobs
    )
    out = array(WORD_CODE)
    for piece in pieces:
        out.extend(piece)
    return out


def parity_merge(slabs: Sequence[array]) -> array:
    alive = [s for s in slabs if len(s)]
    total = sum(len(s) for s in alive)
    if len(alive) < 2 or not _chunkable(total):
        return _serial._parity_merge_serial(slabs)
    # Greedy contiguous grouping of the slab list into roughly row-balanced
    # jobs; each job reduces mod 2 independently and the partials reduce
    # mod 2 once more (parity of the total count = parity of group parities).
    target = max(CHUNK_MIN_ROWS, total // thread_count())
    groups: List[List[array]] = []
    current: List[array] = []
    current_rows = 0
    for slab in alive:
        current.append(slab)
        current_rows += len(slab)
        if current_rows >= target:
            groups.append(current)
            current, current_rows = [], 0
    if current:
        groups.append(current)
    if len(groups) < 2:
        return _serial._parity_merge_serial(alive)
    partials = _map(_serial._parity_merge_serial, groups)
    return _serial._parity_merge_serial(partials)


def product_rows(large: array, small_terms: Sequence[int]) -> array:
    total = len(large) * len(small_terms)
    if len(large) < 2 * CHUNK_MIN_ROWS or not _chunkable(total):
        return _serial._product_rows_serial(large, small_terms)
    terms = list(small_terms)
    partials = _map(
        lambda chunk: _serial._product_rows_serial(chunk, terms),
        _row_chunks(large),
    )
    # A product row can repeat across chunks (row1|term1 == row2|term2), so
    # the chunk parities reduce mod 2 once more.
    return _serial._parity_merge_serial(partials)


# ----------------------------------------------------------------------
# Scan kernels
# ----------------------------------------------------------------------
def shared_literal_count(left: array, right: array) -> int:
    small, large = (left, right) if len(left) <= len(right) else (right, left)
    if not _chunkable(len(small)):
        return _serial._shared_literal_count_serial(left, right)
    partials = _map(
        lambda chunk: _serial._shared_literal_count_serial(chunk, large),
        _row_chunks(small),
    )
    return sum(partials)


def popcount_rows(words: array) -> int:
    if not isinstance(words, array) or not _chunkable(len(words)):
        return _serial._popcount_rows_serial(words)
    # Per-chunk popcounts sum: addition is associative, so any partition
    # gives the serial total.
    return sum(_map(_serial._popcount_rows_serial, _row_chunks(words)))
