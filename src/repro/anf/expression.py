"""Reed-Muller (algebraic normal form) expressions over a Boolean ring.

An :class:`Anf` is an XOR of product terms (monomials) over the variables of a
:class:`~repro.anf.context.Context`.  Each monomial is stored as an integer
bitmask (bit *i* set means the variable with index *i* appears in the
product); the empty monomial (mask ``0``) is the constant ``1``.

The representation is canonical: two expressions denote the same Boolean
function if and only if their monomial sets are equal.  This is the property
the paper relies on ("the Reed-Muller form of an expression is unique, hence
the output of our algorithm is independent of the input description").

Operators:

``a ^ b``
    XOR (ring addition).
``a & b``
    AND (ring multiplication).
``a | b``
    Boolean OR, computed as ``a ⊕ b ⊕ ab``.
``~a``
    Complement, computed as ``1 ⊕ a``.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Iterator, Mapping

from . import sortkernel
from .context import Context
from .termmatrix import TERM_LIMIT, TermMatrix, xor_sorted


def _popcount(mask: int) -> int:
    return mask.bit_count()


#: Cached marker for expressions whose terms do not fit a 64-bit matrix row.
_UNPACKABLE = object()


class Anf:
    """An immutable Boolean-ring (XOR-of-products) expression.

    Derived metrics that the decomposition engine queries in its inner loops
    (:attr:`support_mask`, :attr:`degree`, :attr:`literal_count`) are computed
    lazily and cached; the expression itself is immutable so the caches never
    invalidate.

    The canonical monomial set has two interchangeable storages: a frozenset
    (``_terms``) and a packed :class:`~repro.anf.termmatrix.TermMatrix`
    (``_matrix``).  At least one is always present; the other is materialised
    on demand and cached.  Expressions produced by the packed backend carry
    only the matrix, so the giant intermediates of the decomposition loop
    never pay for per-term frozenset construction unless a consumer asks for
    set semantics.
    """

    __slots__ = (
        "_ctx", "_terms", "_matrix", "_hash",
        "_support_mask", "_degree", "_literal_count",
    )

    def __init__(self, ctx: Context, terms: Iterable[int] = ()) -> None:
        """Build an expression from monomial bitmasks.

        Duplicate monomials cancel in pairs (mod-2 collection), matching the
        ring semantics.
        """
        if not isinstance(ctx, Context):
            raise TypeError("ctx must be a Context")
        collected: set[int] = set()
        for mask in terms:
            if mask < 0:
                raise ValueError("monomial masks must be non-negative integers")
            if mask in collected:
                collected.discard(mask)
            else:
                collected.add(mask)
        self._ctx = ctx
        self._terms: FrozenSet[int] | None = frozenset(collected)
        self._matrix = None
        self._hash: int | None = None
        self._support_mask: int | None = None
        self._degree: int | None = None
        self._literal_count: int | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def _raw(cls, ctx: Context, terms: FrozenSet[int]) -> "Anf":
        """Internal constructor that trusts ``terms`` to already be reduced."""
        expr = object.__new__(cls)
        expr._ctx = ctx
        expr._terms = terms
        expr._matrix = None
        expr._hash = None
        expr._support_mask = None
        expr._degree = None
        expr._literal_count = None
        return expr

    @classmethod
    def _from_matrix(cls, ctx: Context, matrix: TermMatrix) -> "Anf":
        """Internal constructor from a canonical packed term matrix."""
        expr = object.__new__(cls)
        expr._ctx = ctx
        expr._terms = None
        expr._matrix = matrix
        expr._hash = None
        expr._support_mask = None
        expr._degree = None
        expr._literal_count = None
        return expr

    @classmethod
    def zero(cls, ctx: Context) -> "Anf":
        """The constant ``0``."""
        return cls._raw(ctx, frozenset())

    @classmethod
    def one(cls, ctx: Context) -> "Anf":
        """The constant ``1``."""
        return cls._raw(ctx, frozenset({0}))

    @classmethod
    def constant(cls, ctx: Context, value: int | bool) -> "Anf":
        """The constant ``0`` or ``1``."""
        return cls.one(ctx) if value else cls.zero(ctx)

    @classmethod
    def var(cls, ctx: Context, name: str) -> "Anf":
        """The single variable ``name`` (declared in ``ctx`` if new)."""
        index = ctx.add_var(name)
        return cls._raw(ctx, frozenset({1 << index}))

    @classmethod
    def monomial(cls, ctx: Context, names: Iterable[str]) -> "Anf":
        """A single product term over the given variables (``1`` if empty)."""
        mask = 0
        for name in names:
            mask |= 1 << ctx.add_var(name)
        return cls._raw(ctx, frozenset({mask}))

    @classmethod
    def from_monomial_names(cls, ctx: Context, monomials: Iterable[Iterable[str]]) -> "Anf":
        """XOR of product terms, each given as an iterable of variable names."""
        terms = []
        for names in monomials:
            mask = 0
            for name in names:
                mask |= 1 << ctx.add_var(name)
            terms.append(mask)
        return cls(ctx, terms)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def ctx(self) -> Context:
        """The variable context this expression belongs to."""
        return self._ctx

    @property
    def terms(self) -> FrozenSet[int]:
        """The monomial bitmasks (frozen, canonical; materialised on demand)."""
        terms = self._terms
        if terms is None:
            terms = frozenset(self._matrix.to_list())
            self._terms = terms
        return terms

    def term_matrix(self, build: bool = False) -> TermMatrix | None:
        """The packed term matrix, or ``None``.

        With ``build=False`` only an already-attached matrix is returned;
        ``build=True`` packs the frozenset (one C sort) unless some term does
        not fit a 64-bit row, in which case the failure is cached.
        """
        matrix = self._matrix
        if matrix is not None:
            return matrix if matrix is not _UNPACKABLE else None
        if not build:
            return None
        built = TermMatrix.from_terms(self._terms)
        self._matrix = built if built is not None else _UNPACKABLE
        return built

    def term_list(self) -> list[int]:
        """The monomials as a plain list (no frozenset materialisation)."""
        terms = self._terms
        if terms is None:
            return self._matrix.to_list()
        return list(terms)

    def term_key(self):
        """Canonical hashable key for term-set equality across representations.

        Any set that packs gets the matrix's canonical bytes; a set that
        cannot pack (a >64-bit term) can never equal one that does, so the
        frozenset fallback preserves the equality relation.
        """
        matrix = self.term_matrix(build=True)
        if matrix is not None:
            return matrix.key()
        return self.terms

    @property
    def num_terms(self) -> int:
        """Number of monomials in the Reed-Muller form."""
        terms = self._terms
        if terms is None:
            return self._matrix.count
        return len(terms)

    @property
    def is_zero(self) -> bool:
        return self.num_terms == 0

    @property
    def is_one(self) -> bool:
        terms = self._terms
        if terms is None:
            matrix = self._matrix
            return matrix.count == 1 and matrix.words[0] == 0
        return terms == frozenset({0})

    @property
    def is_constant(self) -> bool:
        return self.is_zero or self.is_one

    @property
    def is_literal(self) -> bool:
        """True when the expression is exactly one variable."""
        if self.num_terms != 1:
            return False
        (mask,) = self.term_list()
        return mask != 0 and (mask & (mask - 1)) == 0

    @property
    def literal_name(self) -> str:
        """The variable name when :attr:`is_literal`, otherwise an error."""
        if not self.is_literal:
            raise ValueError("expression is not a single literal")
        (mask,) = self.term_list()
        return self._ctx.name(mask.bit_length() - 1)

    @property
    def support_mask(self) -> int:
        """Bitmask of every variable appearing in the expression (cached)."""
        mask = self._support_mask
        if mask is None:
            matrix = self._matrix
            if matrix is not None and matrix is not _UNPACKABLE:
                mask = matrix.support_mask()
            else:
                mask = 0
                for term in self._terms:
                    mask |= term
            self._support_mask = mask
        return mask

    @property
    def support(self) -> tuple[str, ...]:
        """Names of the variables appearing in the expression."""
        return self._ctx.names_of(self.support_mask)

    @property
    def degree(self) -> int:
        """Largest monomial size (0 for constants, cached)."""
        degree = self._degree
        if degree is None:
            if self.num_terms == 0:
                degree = 0
            else:
                degree = max(mask.bit_count() for mask in self.term_list())
            self._degree = degree
        return degree

    @property
    def literal_count(self) -> int:
        """Total number of literal occurrences (the paper's size metric, cached).

        Matrix-backed expressions answer with one C popcount of the packed
        view instead of a per-term sum.
        """
        count = self._literal_count
        if count is None:
            matrix = self._matrix
            if matrix is not None and matrix is not _UNPACKABLE:
                count = matrix.literal_count()
            else:
                count = sum(mask.bit_count() for mask in self._terms)
            self._literal_count = count
        return count

    def depends_on(self, name: str) -> bool:
        """True when the variable ``name`` appears in some monomial."""
        if name not in self._ctx:
            return False
        bit = 1 << self._ctx.index(name)
        return bool(self.support_mask & bit)

    # ------------------------------------------------------------------
    # Ring operations
    # ------------------------------------------------------------------
    def _check(self, other: "Anf") -> None:
        if not isinstance(other, Anf):
            raise TypeError(f"expected Anf, got {type(other).__name__}")
        self._ctx.require_same(other._ctx)

    def __xor__(self, other: "Anf") -> "Anf":
        self._check(other)
        left, right = self._terms, other._terms
        if left is None or right is None:
            # At least one operand is matrix-only: keep the result packed so
            # the pipeline's giant intermediates never round-trip through
            # frozensets (the merge loops XOR matrix-backed pair seconds).
            left_matrix = self.term_matrix(build=True)
            right_matrix = other.term_matrix(build=True)
            if left_matrix is not None and right_matrix is not None:
                return Anf._from_matrix(self._ctx, xor_sorted(left_matrix, right_matrix))
            left, right = self.terms, other.terms
        return Anf._raw(self._ctx, left.symmetric_difference(right))

    def __and__(self, other: "Anf") -> "Anf":
        self._check(other)
        if self.is_zero or other.is_zero:
            return Anf.zero(self._ctx)
        if self.is_one:
            return other
        if other.is_one:
            return self
        small, large = (self, other)
        if small.num_terms > large.num_terms:
            small, large = large, small
        disjoint = self.support_mask & other.support_mask == 0
        if disjoint and small.num_terms == 1:
            # A fresh-variable (tag/block) multiply: OR one mask into every
            # term.  Keep it word-parallel when the big operand is (or is
            # worth making) matrix-backed — this is the hot product of the
            # combine and rewrite stages.
            matrix = large.term_matrix(
                build=large.num_terms >= sortkernel.KERNEL_MIN_ROWS
            )
            (mask,) = small.term_list()
            if matrix is not None and mask < TERM_LIMIT:
                return Anf._from_matrix(self._ctx, matrix.or_all(mask))
        if (
            sortkernel.available()
            and large.num_terms >= sortkernel.KERNEL_MIN_ROWS
            and small.support_mask < TERM_LIMIT
        ):
            # Distribute the small operand over the large one's matrix: each
            # small term is one vectorised OR sweep, and the partial slabs
            # cancel mod 2 in a single sorted parity sweep.  The result stays
            # matrix-backed, so chained products (spec builders, flatten)
            # never round-trip through frozensets.
            matrix = large.term_matrix(build=True)
            if matrix is not None:
                rows = sortkernel.product_rows(matrix.words, small.term_list())
                return Anf._from_matrix(self._ctx, TermMatrix.from_sorted(rows))
        if disjoint:
            # Disjoint supports make (left, right) -> left | right injective
            # (each factor is recovered by masking with its own support), so
            # no mod-2 cancellation can occur and the pairwise unions are the
            # product's canonical term set as-is.
            return Anf._raw(
                self._ctx,
                frozenset(left | right for left in self.terms for right in other.terms),
            )
        # Multiply the smaller operand into the larger one.
        acc: set[int] = set()
        for left in small.terms:
            for right in large.terms:
                product = left | right
                if product in acc:
                    acc.discard(product)
                else:
                    acc.add(product)
        return Anf._raw(self._ctx, frozenset(acc))

    def cached_and(self, other: "Anf") -> "Anf":
        """Ring product via the context-scoped memo.

        The rewrite step multiplies the same ``replacement`` into the same
        tag components over and over across ports and iterations; memoising
        on the (canonical, hash-cached) term sets makes the repeats O(1).
        Only worthwhile for products that are themselves non-trivial — tiny
        operands go straight to :meth:`__and__`.
        """
        self._check(other)
        if self.num_terms * other.num_terms < 4:
            return self & other
        if (self.num_terms == 1 or other.num_terms == 1) and (
            self.support_mask & other.support_mask == 0
        ):
            # Single-variable disjoint products run word-parallel in
            # :meth:`__and__`; skipping the memo keeps giant matrix-backed
            # operands from materialising frozensets for the memo key.
            return self & other
        memo = self._ctx._product_memo
        # Products commute; normalise the key so (a, b) and (b, a) share one
        # memo slot (hash ties keep both orders as distinct keys, which is
        # merely a missed dedup, never a wrong answer).
        left, right = self.terms, other.terms
        if hash(left) > hash(right):
            left, right = right, left
        key = (left, right)
        product = memo.get(key)
        if product is None:
            product = self & other
            if len(memo) >= Context.PRODUCT_MEMO_LIMIT:
                memo.clear()
            memo[key] = product
        return product

    def __or__(self, other: "Anf") -> "Anf":
        self._check(other)
        return self ^ other ^ self.cached_and(other)

    def __invert__(self) -> "Anf":
        if self._terms is None:
            # Matrix-only operand: complement via the packed XOR so giant
            # intermediates (spec-builder borrow chains) stay matrix-backed.
            return self ^ Anf.one(self._ctx)
        return Anf._raw(self._ctx, self._terms.symmetric_difference({0}))

    def __bool__(self) -> bool:
        return not self.is_zero

    # ------------------------------------------------------------------
    # Equality / hashing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Anf):
            return NotImplemented
        if self._ctx is not other._ctx:
            return False
        left, right = self._terms, other._terms
        if left is not None and right is not None:
            return left == right
        # At least one side is matrix-only.  Matrices are canonical, so two
        # packed sides compare by rows; for a mixed pair try the cheap
        # invariants before materialising a giant frozenset.
        if self.num_terms != other.num_terms:
            return False
        left_matrix = self.term_matrix()
        right_matrix = other.term_matrix()
        if left_matrix is not None and right_matrix is not None:
            return left_matrix.words == right_matrix.words
        if self.support_mask != other.support_mask:
            return False
        if self.literal_count != other.literal_count:
            return False
        return self.terms == other.terms

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((id(self._ctx), self.terms))
        return self._hash

    # ------------------------------------------------------------------
    # Evaluation and substitution
    # ------------------------------------------------------------------
    def evaluate(self, assignment: Mapping[str, int | bool]) -> int:
        """Evaluate under a full assignment of the expression's support.

        Variables outside the support may be omitted; support variables must
        all be present.
        """
        ones_mask = 0
        known_mask = 0
        for name, value in assignment.items():
            if name not in self._ctx:
                continue
            bit = 1 << self._ctx.index(name)
            known_mask |= bit
            if value:
                ones_mask |= bit
        missing = self.support_mask & ~known_mask
        if missing:
            names = self._ctx.names_of(missing)
            raise ValueError(f"assignment is missing variables: {', '.join(names)}")
        result = 0
        for term in self._term_iterable():
            if term & ones_mask == term:
                result ^= 1
        return result

    def evaluate_mask(self, ones_mask: int) -> int:
        """Evaluate with variable values given as a bitmask of true variables."""
        # Iterate whichever storage is live: truth-table loops call this once
        # per assignment, so a per-call to_list() materialisation would turn
        # O(2^n) evaluations into O(2^n * terms) allocations.
        result = 0
        for term in self._term_iterable():
            if term & ones_mask == term:
                result ^= 1
        return result

    def _term_iterable(self):
        """The live storage's terms, with no materialisation or copy."""
        terms = self._terms
        return terms if terms is not None else self._matrix.words

    def substitute(self, mapping: Mapping[str, "Anf"]) -> "Anf":
        """Replace variables by expressions (simultaneously).

        Variables not present in ``mapping`` are left unchanged.  All
        replacement expressions must belong to the same context.
        """
        if not mapping:
            return self
        replace: Dict[int, Anf] = {}
        for name, expr in mapping.items():
            if not isinstance(expr, Anf):
                raise TypeError(f"replacement for {name!r} must be an Anf")
            self._ctx.require_same(expr._ctx)
            if name in self._ctx:
                replace[self._ctx.index(name)] = expr
        if not replace:
            return self
        replace_mask = 0
        for index in replace:
            replace_mask |= 1 << index

        cache: Dict[int, Anf] = {}

        def substituted_monomial(term: int) -> Anf:
            cached = cache.get(term)
            if cached is not None:
                return cached
            untouched = term & ~replace_mask
            result = Anf._raw(self._ctx, frozenset({untouched}))
            touched = term & replace_mask
            index = 0
            while touched:
                if touched & 1:
                    result = result & replace[index]
                    if result.is_zero:
                        break
                touched >>= 1
                index += 1
            cache[term] = result
            return result

        return xor_accumulate(
            (substituted_monomial(term) for term in self.term_list()), self._ctx
        )

    def cofactor(self, name: str, value: int | bool) -> "Anf":
        """Shannon cofactor: the expression with ``name`` fixed to ``value``."""
        if name not in self._ctx:
            return self
        bit = 1 << self._ctx.index(name)
        acc: set[int] = set()
        if value:
            for term in self.term_list():
                reduced = term & ~bit
                if reduced in acc:
                    acc.discard(reduced)
                else:
                    acc.add(reduced)
        else:
            for term in self.term_list():
                if term & bit:
                    continue
                if term in acc:
                    acc.discard(term)
                else:
                    acc.add(term)
        return Anf._raw(self._ctx, frozenset(acc))

    def derivative(self, name: str) -> "Anf":
        """Boolean derivative d/d(name) = f|name=1 ⊕ f|name=0."""
        return self.cofactor(name, 1) ^ self.cofactor(name, 0)

    # ------------------------------------------------------------------
    # Structure helpers used by the decomposition engine
    # ------------------------------------------------------------------
    def split_by_group(self, group_mask: int) -> tuple[dict[int, "Anf"], "Anf"]:
        """Partition the expression by the group-variable part of each monomial.

        Returns ``(bucket, remainder)`` where ``bucket[g]`` is the XOR of the
        non-group parts of all monomials whose group part equals ``g`` (with
        ``g != 0``), and ``remainder`` collects the monomials containing no
        group variable at all.  The expression equals
        ``XOR_g (g & bucket[g]) ^ remainder``.
        """
        from .backend import get_backend

        return get_backend().split_by_group(self, group_mask)

    def restricted_to(self, mask: int) -> bool:
        """True when every monomial only uses variables inside ``mask``."""
        return self.support_mask & ~mask == 0

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def sorted_terms(self) -> list[int]:
        """Monomials sorted by (size, variable indices) for stable printing."""
        return sorted(self.term_list(), key=lambda mask: (_popcount(mask), mask))

    def to_str(self, xor_symbol: str = " ^ ", and_symbol: str = "*") -> str:
        """Readable rendering, e.g. ``a ^ b*c ^ 1``."""
        if self.is_zero:
            return "0"
        parts = []
        for mask in self.sorted_terms():
            if mask == 0:
                parts.append("1")
            else:
                parts.append(and_symbol.join(self._ctx.names_of(mask)))
        return xor_symbol.join(parts)

    def __str__(self) -> str:
        return self.to_str()

    def __repr__(self) -> str:
        text = self.to_str()
        if len(text) > 120:
            text = f"<{self.num_terms} terms over {len(self.support)} vars>"
        return f"Anf({text})"

    def __iter__(self) -> Iterator[int]:
        return iter(self.terms)

    def __len__(self) -> int:
        return self.num_terms


def xor_accumulate(exprs: Iterable[Anf], ctx: Context) -> Anf:
    """XOR many expressions in one mod-2 sweep instead of pairwise folds.

    Folding ``total ^= piece`` re-traverses the accumulated set once per
    piece — quadratic in the result size, which is what dominated
    ``Decomposition.verify`` on the full-width sweeps.  When every piece
    packs, the pieces' slabs reduce in a single sorted parity pass; any
    unpackable piece degrades to the fold.
    """
    if not sortkernel.available():
        total = Anf.zero(ctx)
        for expr in exprs:
            total = total ^ expr
        return total
    # Stream the pieces, batching their slabs against a row budget: the
    # transient concatenation stays O(budget + result) even when the pieces
    # are individually giant but mostly cancel, and the pieces themselves
    # are never all held at once (callers may pass a generator).
    accumulated = None
    batch: list = []
    batch_rows = 0
    last_alive: Anf | None = None
    alive_count = 0
    residue: Anf | None = None
    for expr in exprs:
        if expr.is_zero:
            continue
        alive_count += 1
        if residue is not None:
            residue = residue ^ expr
            continue
        matrix = expr.term_matrix(build=True)
        if matrix is None:
            # An unpackable piece: collapse what is batched so far and fall
            # back to pairwise folds for the rest of the stream.
            merged = batch if accumulated is None else [accumulated, *batch]
            rows = sortkernel.parity_merge(merged)
            residue = Anf._from_matrix(ctx, TermMatrix.from_sorted(rows)) ^ expr
            batch, batch_rows = [], 0
            continue
        last_alive = expr
        batch.append(matrix.words)
        batch_rows += matrix.count
        if batch_rows >= sortkernel.PRODUCT_SLAB_ROWS:
            merged = batch if accumulated is None else [accumulated, *batch]
            accumulated = sortkernel.parity_merge(merged)
            batch, batch_rows = [], 0
    if residue is not None:
        return residue
    if alive_count == 0:
        return Anf.zero(ctx)
    if alive_count == 1 and last_alive is not None:
        return last_alive
    merged = batch if accumulated is None else [accumulated, *batch]
    return Anf._from_matrix(
        ctx, TermMatrix.from_sorted(sortkernel.parity_merge(merged))
    )


def anf_product(exprs: Iterable[Anf], ctx: Context) -> Anf:
    """AND together a sequence of expressions (``1`` for an empty sequence)."""
    result = Anf.one(ctx)
    for expr in exprs:
        result = result & expr
        if result.is_zero:
            break
    return result


def anf_xor(exprs: Iterable[Anf], ctx: Context) -> Anf:
    """XOR together a sequence of expressions (``0`` for an empty sequence)."""
    return xor_accumulate(exprs, ctx)


def anf_or(exprs: Iterable[Anf], ctx: Context) -> Anf:
    """OR together a sequence of expressions (``0`` for an empty sequence)."""
    result = Anf.zero(ctx)
    for expr in exprs:
        result = result | expr
    return result


def build_from_function(
    ctx: Context, names: list[str], function: Callable[[tuple[int, ...]], int | bool]
) -> Anf:
    """Build the ANF of an arbitrary Boolean function by Moebius transform.

    ``function`` receives a tuple of 0/1 values ordered like ``names`` and
    must return the function value.  Exponential in ``len(names)``; intended
    for specifications of at most ~20 variables.
    """
    n = len(names)
    if n > 24:
        raise ValueError("build_from_function is exponential; refusing more than 24 variables")
    size = 1 << n
    values = bytearray(size)
    for point in range(size):
        bits = tuple((point >> i) & 1 for i in range(n))
        values[point] = 1 if function(bits) else 0
    # In-place Moebius (zeta) transform over GF(2).
    step = 1
    while step < size:
        for block in range(0, size, step << 1):
            for offset in range(block, block + step):
                values[offset + step] ^= values[offset]
        step <<= 1
    indices = [ctx.add_var(name) for name in names]
    terms = []
    for point in range(size):
        if values[point]:
            mask = 0
            for local_bit in range(n):
                if point >> local_bit & 1:
                    mask |= 1 << indices[local_bit]
            terms.append(mask)
    return Anf(ctx, terms)
