"""Convenience constructors for common Boolean functions in ANF."""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

from .context import Context
from .expression import Anf, anf_or, anf_product, anf_xor


def var(ctx: Context, name: str) -> Anf:
    """Single variable."""
    return Anf.var(ctx, name)

def variables(ctx: Context, names: Iterable[str]) -> list[Anf]:
    """List of single-variable expressions."""
    return [Anf.var(ctx, name) for name in names]


def true(ctx: Context) -> Anf:
    """Constant 1."""
    return Anf.one(ctx)


def false(ctx: Context) -> Anf:
    """Constant 0."""
    return Anf.zero(ctx)


def xor_all(exprs: Sequence[Anf], ctx: Context | None = None) -> Anf:
    """XOR of a sequence of expressions."""
    if ctx is None:
        if not exprs:
            raise ValueError("xor_all of an empty sequence needs an explicit context")
        ctx = exprs[0].ctx
    return anf_xor(exprs, ctx)


def and_all(exprs: Sequence[Anf], ctx: Context | None = None) -> Anf:
    """AND of a sequence of expressions."""
    if ctx is None:
        if not exprs:
            raise ValueError("and_all of an empty sequence needs an explicit context")
        ctx = exprs[0].ctx
    return anf_product(exprs, ctx)


def or_all(exprs: Sequence[Anf], ctx: Context | None = None) -> Anf:
    """OR of a sequence of expressions."""
    if ctx is None:
        if not exprs:
            raise ValueError("or_all of an empty sequence needs an explicit context")
        ctx = exprs[0].ctx
    return anf_or(exprs, ctx)


def not_(expr: Anf) -> Anf:
    """Complement."""
    return ~expr


def implies(a: Anf, b: Anf) -> Anf:
    """Logical implication ``a -> b``."""
    return ~a | b


def equivalent(a: Anf, b: Anf) -> Anf:
    """XNOR of two expressions."""
    return ~(a ^ b)


def mux(select: Anf, if_true: Anf, if_false: Anf) -> Anf:
    """2:1 multiplexer: ``if_false`` when ``select`` is 0, else ``if_true``."""
    return (select & if_true) ^ (~select & if_false)


def elementary_symmetric(bits: Sequence[Anf], degree: int, ctx: Context | None = None) -> Anf:
    """Elementary symmetric polynomial e_degree over GF(2).

    ``e_0 = 1``; ``e_d`` is the XOR of all products of ``d`` distinct inputs.
    These arise naturally as the outputs of parallel counters (population
    count bit *k* of *n* inputs equals ``e_{2^k}`` by Lucas' theorem).
    """
    if ctx is None:
        if not bits:
            raise ValueError("elementary_symmetric of no bits needs an explicit context")
        ctx = bits[0].ctx
    if degree < 0:
        raise ValueError("degree must be non-negative")
    if degree == 0:
        return Anf.one(ctx)
    if degree > len(bits):
        return Anf.zero(ctx)
    total = Anf.zero(ctx)
    for subset in combinations(bits, degree):
        total = total ^ anf_product(subset, ctx)
    return total


def threshold(bits: Sequence[Anf], k: int, ctx: Context | None = None) -> Anf:
    """True when at least ``k`` of the inputs are true.

    Built by dynamic programming over partial counts so that it stays exact
    (and reasonably sized) for the widths used by the paper's benchmarks.
    """
    if ctx is None:
        if not bits:
            raise ValueError("threshold of no bits needs an explicit context")
        ctx = bits[0].ctx
    if k <= 0:
        return Anf.one(ctx)
    if k > len(bits):
        return Anf.zero(ctx)
    # state[j] = probability-style indicator "exactly j of the processed bits
    # are one", represented exactly in the Boolean ring.  Cap counting at k,
    # where state[k] means "at least k".
    state: list[Anf] = [Anf.one(ctx)] + [Anf.zero(ctx)] * k
    for bit in bits:
        next_state = list(state)
        next_state[k] = state[k] ^ (bit & state[k - 1])
        for j in range(k - 1, 0, -1):
            # exactly j ones after this bit: (exactly j, bit=0) xor (exactly j-1, bit=1)
            next_state[j] = (state[j] & ~bit) ^ (state[j - 1] & bit)
        next_state[0] = state[0] & ~bit
        state = next_state
    return state[k]


def majority(bits: Sequence[Anf], ctx: Context | None = None) -> Anf:
    """Majority of an odd number of inputs (at least ``(n+1)//2`` ones)."""
    if not bits:
        raise ValueError("majority needs at least one input")
    return threshold(bits, (len(bits) + 1) // 2, ctx)


def parity(bits: Sequence[Anf], ctx: Context | None = None) -> Anf:
    """XOR of all inputs."""
    return xor_all(list(bits), ctx)


def full_adder(a: Anf, b: Anf, cin: Anf) -> tuple[Anf, Anf]:
    """Full adder: returns ``(sum, carry)``."""
    total = a ^ b ^ cin
    carry = (a & b) ^ (a & cin) ^ (b & cin)
    return total, carry


def half_adder(a: Anf, b: Anf) -> tuple[Anf, Anf]:
    """Half adder: returns ``(sum, carry)``."""
    return a ^ b, a & b
