"""Word-parallel semantic kernel: packed truth-bitsets of ANF expressions.

The decomposition engine asks many *semantic* questions about small groups of
expressions — "is this product identically zero?", "does this element lie in
that principal ideal?", "is ``s_i`` exactly ``s_j·s_k``?".  Answering them
symbolically multiplies Reed-Muller forms term by term, which is quadratic in
the term counts.  This module answers them by evaluating each expression over
*all* ``2^m`` assignments of its support at once, packed into a single Python
integer (bit ``p`` holds the function value under assignment ``p``), so a
semantic query becomes one or two bigint AND/XOR operations.

The truth bitset of an expression is computed from its monomial set by the
word-parallel zeta (Moebius) transform over GF(2): seed a ``2^m``-bit integer
with one bit per monomial, then run the ``m`` butterfly levels as masked
shifts.  The whole transform is ``O(m)`` bigint operations regardless of the
term count, which is what makes the kernel "as fast as the hardware allows"
for the supports the identity search actually sees (a handful of variables).

Because the Reed-Muller form is canonical, truth-bitset equality over a
covering support is *exactly* ANF equality — every fast path here is an exact
replacement for the symbolic computation, never an approximation.  Supports
wider than :data:`DEFAULT_MAX_VARS` fall back to the symbolic path at the
call sites.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .context import Context
from .expression import Anf

#: Widest support (in variables) the kernel will pack; 2^16-bit integers are
#: 8 KiB each, which keeps per-kernel caches comfortably small.
DEFAULT_MAX_VARS = 16

#: Per-kernel truth-cache bound (entries are up to ``2^m``-bit integers).
TRUTH_CACHE_LIMIT = 4096

# (shift, mask) butterfly schedule per support size m, shared by all kernels.
_ZETA_SCHEDULE: Dict[int, List[Tuple[int, int]]] = {}


def _zeta_schedule(m: int) -> List[Tuple[int, int]]:
    """The masked-shift schedule of the ``m``-dimensional zeta transform.

    Level ``d`` XORs every position with bit ``d`` clear into its partner
    with bit ``d`` set: ``F ^= (F & mask_d) << 2^d`` where ``mask_d`` selects
    the low half of every ``2^(d+1)``-aligned block.
    """
    schedule = _ZETA_SCHEDULE.get(m)
    if schedule is None:
        size = 1 << m
        schedule = []
        for d in range(m):
            shift = 1 << d
            pattern = (1 << shift) - 1
            width = shift << 1
            while width < size:
                pattern |= pattern << width
                width <<= 1
            schedule.append((shift, pattern))
        _ZETA_SCHEDULE[m] = schedule
    return schedule


class BitsetKernel:
    """Evaluates expressions over a fixed support as packed truth-bitsets.

    The kernel is bound to a support (a set of context variable indices);
    every expression queried through it must stay inside that support.  Truth
    bitsets are cached per expression — the identity search queries the same
    basis definitions O(n^3) times.
    """

    __slots__ = ("_ctx", "_support_mask", "_num_vars", "_position_of", "_schedule", "_cache")

    def __init__(self, ctx: Context, support_mask: int) -> None:
        if support_mask < 0:
            raise ValueError("support mask must be non-negative")
        self._ctx = ctx
        self._support_mask = support_mask
        positions: Dict[int, int] = {}
        mask = support_mask
        while mask:
            low = mask & -mask
            positions[low] = len(positions)
            mask ^= low
        self._position_of = positions
        self._num_vars = len(positions)
        self._schedule = _zeta_schedule(self._num_vars)
        self._cache: Dict[Anf, int] = {}

    # ------------------------------------------------------------------
    @property
    def ctx(self) -> Context:
        return self._ctx

    @property
    def support_mask(self) -> int:
        return self._support_mask

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_points(self) -> int:
        """Number of assignments evaluated in parallel."""
        return 1 << self._num_vars

    def covers(self, expr: Anf) -> bool:
        """True when every variable of ``expr`` lies inside this support."""
        return expr.support_mask & ~self._support_mask == 0

    # ------------------------------------------------------------------
    def truth(self, expr: Anf) -> int:
        """The packed truth bitset of ``expr`` over this kernel's support.

        Bit ``p`` of the result is the value of ``expr`` under the assignment
        that sets exactly the support variables selected by ``p`` (position
        ``i`` of ``p`` is the ``i``-th lowest variable of the support).
        """
        cached = self._cache.get(expr)
        if cached is not None:
            return cached
        self._ctx.require_same(expr.ctx)
        if not self.covers(expr):
            raise ValueError("expression uses variables outside the kernel support")
        positions = self._position_of
        seed = 0
        for term in expr.terms:
            local = 0
            mask = term
            while mask:
                low = mask & -mask
                local |= 1 << positions[low]
                mask ^= low
            seed |= 1 << local
        for shift, pattern in self._schedule:
            seed ^= (seed & pattern) << shift
        if len(self._cache) >= TRUTH_CACHE_LIMIT:
            self._cache.clear()
        self._cache[expr] = seed
        return seed

    # ------------------------------------------------------------------
    # Semantic queries (each an exact replacement for a symbolic test)
    # ------------------------------------------------------------------
    def product_is_zero(self, *exprs: Anf) -> bool:
        """Exact test ``expr_1 · … · expr_n == 0``."""
        if not exprs:
            return False
        acc = self.truth(exprs[0])
        for expr in exprs[1:]:
            if not acc:
                return True
            acc &= self.truth(expr)
        return not acc

    def xor_is_zero(self, *exprs: Anf) -> bool:
        """Exact test ``expr_1 ⊕ … ⊕ expr_n == 0``."""
        acc = 0
        for expr in exprs:
            acc ^= self.truth(expr)
        return not acc

    def contains_product(self, left: Anf, right: Anf, target: Anf) -> bool:
        """Exact test ``target == left · right`` (definitional identity)."""
        return self.truth(target) == self.truth(left) & self.truth(right)

    def divides(self, generator: Anf, element: Anf) -> bool:
        """Exact ideal-membership test ``element ∈ ideal(generator)``.

        In a Boolean ring ``D`` is a multiple of ``G`` iff ``D·G = D``, i.e.
        the truth set of ``D`` is contained in the truth set of ``G``.
        """
        return self.truth(element) & ~self.truth(generator) == 0


def kernel_for_support(ctx: Context, support_mask: int,
                       max_vars: int = DEFAULT_MAX_VARS) -> Optional[BitsetKernel]:
    """A (context-cached) kernel for the given support, or ``None`` if too wide."""
    if support_mask.bit_count() > max_vars:
        return None
    kernels = ctx._kernels
    kernel = kernels.get(support_mask)
    if kernel is None:
        kernel = BitsetKernel(ctx, support_mask)
        if len(kernels) >= Context.KERNEL_LIMIT:
            kernels.clear()
        kernels[support_mask] = kernel
    return kernel


def kernel_for_exprs(exprs: Iterable[Anf], ctx: Context,
                     max_vars: int = DEFAULT_MAX_VARS) -> Optional[BitsetKernel]:
    """A kernel covering the joint support of ``exprs``, or ``None`` if too wide."""
    joint = 0
    for expr in exprs:
        joint |= expr.support_mask
    return kernel_for_support(ctx, joint, max_vars)


def truth_table(expr: Anf) -> Tuple[int, int]:
    """``(support_mask, bitset)`` of ``expr`` over its own support.

    Convenience for tests and debugging; raises when the support is wider
    than :data:`DEFAULT_MAX_VARS`.
    """
    kernel = kernel_for_support(expr.ctx, expr.support_mask)
    if kernel is None:
        raise ValueError("expression support is too wide for a packed truth table")
    return expr.support_mask, kernel.truth(expr)
