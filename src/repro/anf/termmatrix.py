"""Packed term matrices: contiguous machine-word storage for ANF term sets.

PR 1's truth-bitset kernel (:mod:`repro.anf.bitset`) showed that packing
semantic state into machine words turns per-term Python loops into a handful
of C-level big-integer operations.  This module applies the same idea to the
*term sets themselves*: a :class:`TermMatrix` stores every monomial bitmask of
an expression in one flat ``array('Q')`` of unsigned 64-bit words, kept in
ascending order.  Two derived views are cached on demand:

``packed``
    The whole matrix as a single big integer (row ``i`` occupies bits
    ``[64*i, 64*i+64)``).  One ``int.bit_count()`` over it is the literal
    count of the expression; ``packed | replicate(bit)`` multiplies a fresh
    disjoint variable into every term at memory bandwidth — the operations
    that dominate the comparator's first-iteration floor.

``key``
    The raw little-endian bytes of the word array.  Because rows are sorted
    and distinct, two matrices hold equal term sets *iff* their keys are
    equal, which gives the pair-merging fixpoints an O(n/8) canonical
    dictionary key with no per-term hashing.

Everything here is stdlib only (``array`` + big ints) and exact: a
``TermMatrix`` is just another spelling of the same canonical monomial set,
so routing an operation through it can never change a result.  Terms that do
not fit in 64 bits (contexts with more than 64 variables reaching the high
indices) simply decline to pack — callers fall back to the frozenset path.
"""

from __future__ import annotations

from array import array
from typing import Iterable, List, Optional, Sequence

from . import sortkernel

#: Array typecode for the row storage.  ``Q`` is guaranteed to be exactly
#: 64 bits by the :mod:`array` documentation, unlike ``L``.
WORD_CODE = "Q"
WORD_BITS = 64
WORD_BYTES = 8

#: Terms at or above this value do not fit a row and force the set fallback.
TERM_LIMIT = 1 << WORD_BITS


def replicate(mask: int, count: int) -> int:
    """``mask`` repeated in each of ``count`` 64-bit rows, as one big integer.

    Built by repeating the 8-byte pattern at C speed (one ``bytes.__mul__``
    plus one ``int.from_bytes``).
    """
    if count <= 0 or mask == 0:
        return 0
    return int.from_bytes(mask.to_bytes(WORD_BYTES, "little") * count, "little")


class TermMatrix:
    """An immutable, sorted, packed view of a canonical monomial set.

    Invariants: ``words`` is an ``array('Q')`` of distinct terms in strictly
    ascending order.  All constructors either uphold this or return ``None``
    (terms too wide to pack).
    """

    __slots__ = ("words", "_packed", "_key", "_support")

    def __init__(self, words: array) -> None:
        self.words = words
        self._packed: Optional[int] = None
        self._key: Optional[bytes] = None
        self._support: Optional[int] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_terms(cls, terms: Iterable[int]) -> Optional["TermMatrix"]:
        """Pack an unordered collection of distinct terms (one vectorised sort)."""
        rows = sortkernel.sort_terms(
            terms, count=len(terms) if hasattr(terms, "__len__") else None
        )
        if rows is None:
            return None
        return cls(rows)

    @classmethod
    def from_sorted(cls, rows: Sequence[int]) -> "TermMatrix":
        """Pack a list that is already strictly ascending (trusted)."""
        if isinstance(rows, array):
            return cls(rows)
        return cls(array(WORD_CODE, rows))

    # ------------------------------------------------------------------
    # Cheap views
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self.words)

    def to_list(self) -> List[int]:
        return self.words.tolist()

    def packed(self) -> int:
        """The matrix as one big integer (row ``i`` at bit offset ``64*i``)."""
        value = self._packed
        if value is None:
            value = int.from_bytes(self.words.tobytes(), "little")
            self._packed = value
        return value

    def key(self) -> bytes:
        """Canonical bytes: equal term sets have equal keys (rows are sorted)."""
        value = self._key
        if value is None:
            value = self.words.tobytes()
            self._key = value
        return value

    def literal_count(self) -> int:
        """Total set bits over all rows — one vectorised (or big-int) popcount.

        Reuses the packed big integer when it is already cached, but never
        *builds* it for this query: on multi-million-row slabs the packed
        construction costs more than the count itself.
        """
        if self._packed is not None:
            return self._packed.bit_count()
        return sortkernel.popcount_rows(self.words)

    def support_mask(self) -> int:
        """OR of every row (one vector fold; big-integer halving fallback)."""
        mask = self._support
        if mask is None:
            if sortkernel.available() and len(self.words) >= sortkernel.KERNEL_MIN_ROWS:
                mask = sortkernel.support_fold(self.words)
            else:
                value = self.packed()
                width = len(self.words)
                while width > 1:
                    half = (width + 1) // 2
                    high = value >> (half * WORD_BITS)
                    value = (value ^ (high << (half * WORD_BITS))) | high
                    width = half
                mask = value
            self._support = mask
        return mask

    # ------------------------------------------------------------------
    # Word-parallel rewrites (all order-preserving by construction)
    # ------------------------------------------------------------------
    def or_all(self, mask: int) -> "TermMatrix":
        """OR ``mask`` into every row.

        Precondition: ``mask`` is disjoint from the support, so each row grows
        by the same amount and the ascending order is preserved — this is the
        ``fresh_variable & expression`` product of ``combine_with_tags`` and
        the rewrite step.
        """
        if not self.words:
            return self
        if mask & self.support_mask():
            raise ValueError("or_all requires a mask disjoint from the support")
        if mask >= TERM_LIMIT or mask < 0:
            raise ValueError("mask does not fit a 64-bit row")
        if sortkernel.available() and len(self.words) >= sortkernel.KERNEL_MIN_ROWS:
            result = TermMatrix(sortkernel.or_into_all(self.words, mask))
        else:
            merged = self.packed() | replicate(mask, len(self.words))
            result = TermMatrix(_array_from_packed(merged, len(self.words)))
        if self._support is not None:
            result._support = self._support | mask
        return result

    def strip_all(self, mask: int) -> "TermMatrix":
        """Clear ``mask`` from every row.

        Precondition: every row contains all of ``mask`` (checked via
        :meth:`contains_all` by callers), so each row shrinks by the same
        amount and the order is preserved — the tag-component extraction of
        ``rewriteExpr``.
        """
        if not self.words:
            return self
        if sortkernel.available() and len(self.words) >= sortkernel.KERNEL_MIN_ROWS:
            return TermMatrix(sortkernel.clear_bits_all(self.words, mask))
        cleared = self.packed() & ~replicate(mask, len(self.words))
        return TermMatrix(_array_from_packed(cleared, len(self.words)))

    def equal_rows(self, other: "TermMatrix") -> bool:
        """True when both matrices hold the same rows (one C array compare).

        Rows are sorted and distinct, so row equality is term-set equality.
        Cached canonical keys are compared when both sides already have
        them; otherwise the raw arrays compare element-wise at C speed
        without materialising any bytes copy.
        """
        if len(self.words) != len(other.words):
            return False
        if self._key is not None and other._key is not None:
            return self._key == other._key
        return self.words == other.words

    def contains_all(self, mask: int) -> bool:
        """True when every row contains every bit of ``mask`` (one popcount)."""
        if not self.words:
            return True
        if mask == 0:
            return True
        if mask >= TERM_LIMIT or mask < 0:
            return False
        if sortkernel.available() and len(self.words) >= sortkernel.KERNEL_MIN_ROWS:
            return sortkernel.rows_contain_all(self.words, mask)
        selected = self.packed() & replicate(mask, len(self.words))
        return selected.bit_count() == mask.bit_count() * len(self.words)


def _array_from_packed(value: int, count: int) -> array:
    """Rebuild the row array of a packed big integer (C-level conversion)."""
    rows = array(WORD_CODE)
    rows.frombytes(value.to_bytes(count * WORD_BYTES, "little"))
    return rows


def concat_sorted(matrices: Sequence[TermMatrix]) -> TermMatrix:
    """Union of pairwise-disjoint matrices, re-sorted into canonical order.

    The concatenation of sorted runs is Timsort's best case, so the merge
    runs at C speed.  Callers are responsible for disjointness (e.g. every
    operand is marked by a distinct variable bit), which is what makes the
    union equal to the XOR of the operands.
    """
    return TermMatrix(sortkernel.merge_disjoint([m.words for m in matrices]))


def xor_sorted(left: TermMatrix, right: TermMatrix) -> TermMatrix:
    """Symmetric difference of two matrices (terms appearing in exactly one).

    Concatenate, merge-sort (two sorted runs — C speed), then cancel adjacent
    duplicates in one pass: each operand holds distinct terms, so a shared
    term appears exactly twice and the duplicates are adjacent after sorting.
    """
    if not left.words:
        return right
    if not right.words:
        return left
    return TermMatrix(sortkernel.xor_merge(left.words, right.words))
