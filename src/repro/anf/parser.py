"""A small Boolean expression parser.

Accepts the usual infix syntax so that specifications and tests can be written
compactly::

    parse(ctx, "(a ^ b) & (p ^ c*d) | ~e")

Grammar (highest precedence first):

* ``~x`` or ``!x`` — complement
* ``x & y`` or ``x * y`` — AND
* ``x ^ y`` — XOR
* ``x | y`` or ``x + y`` — OR

``0`` and ``1`` are the Boolean constants.  Identifiers match
``[A-Za-z_][A-Za-z0-9_]*``.
"""

from __future__ import annotations

import re
from typing import Iterator, NamedTuple

from .context import Context
from .expression import Anf


class ParseError(ValueError):
    """Raised on malformed expression text."""


class _Token(NamedTuple):
    kind: str
    text: str
    position: int


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<const>[01])
  | (?P<op>[~!&*^|+()])
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> Iterator[_Token]:
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r} at position {position}")
        position = match.end()
        if match.lastgroup == "ws":
            continue
        yield _Token(match.lastgroup or "", match.group(), match.start())
    yield _Token("end", "", len(text))


class _Parser:
    def __init__(self, ctx: Context, text: str) -> None:
        self._ctx = ctx
        self._tokens = list(_tokenize(text))
        self._index = 0

    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, text: str) -> None:
        token = self._advance()
        if token.text != text:
            raise ParseError(f"expected {text!r} at position {token.position}, got {token.text!r}")

    def parse(self) -> Anf:
        expr = self._parse_or()
        token = self._peek()
        if token.kind != "end":
            raise ParseError(f"unexpected trailing input at position {token.position}: {token.text!r}")
        return expr

    def _parse_or(self) -> Anf:
        expr = self._parse_xor()
        while self._peek().text in ("|", "+"):
            self._advance()
            expr = expr | self._parse_xor()
        return expr

    def _parse_xor(self) -> Anf:
        expr = self._parse_and()
        while self._peek().text == "^":
            self._advance()
            expr = expr ^ self._parse_and()
        return expr

    def _parse_and(self) -> Anf:
        expr = self._parse_unary()
        while True:
            token = self._peek()
            if token.text in ("&", "*"):
                self._advance()
                expr = expr & self._parse_unary()
            else:
                break
        return expr

    def _parse_unary(self) -> Anf:
        token = self._peek()
        if token.text in ("~", "!"):
            self._advance()
            return ~self._parse_unary()
        return self._parse_atom()

    def _parse_atom(self) -> Anf:
        token = self._advance()
        if token.text == "(":
            expr = self._parse_or()
            self._expect(")")
            return expr
        if token.kind == "name":
            return Anf.var(self._ctx, token.text)
        if token.kind == "const":
            return Anf.constant(self._ctx, int(token.text))
        raise ParseError(f"unexpected token {token.text!r} at position {token.position}")


def parse(ctx: Context, text: str) -> Anf:
    """Parse an infix Boolean expression into canonical ANF."""
    return _Parser(ctx, text).parse()
