"""Dense truth tables and conversions to/from ANF.

Truth tables are the bridge between the symbolic world (ANF, SOP, netlists)
and exhaustive verification.  They are stored as numpy uint8 arrays indexed by
the integer whose bit *i* is the value of the *i*-th variable of the table's
variable order.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .context import Context
from .expression import Anf


class TruthTable:
    """Dense truth table over an explicit variable order."""

    __slots__ = ("_ctx", "_variables", "_values")

    def __init__(self, ctx: Context, variables: Sequence[str], values: np.ndarray) -> None:
        variables = list(variables)
        values = np.asarray(values, dtype=np.uint8)
        if values.shape != (1 << len(variables),):
            raise ValueError(
                f"expected {1 << len(variables)} entries for {len(variables)} variables, "
                f"got {values.shape}"
            )
        self._ctx = ctx
        self._variables = variables
        self._values = values % 2

    # ------------------------------------------------------------------
    @property
    def ctx(self) -> Context:
        return self._ctx

    @property
    def variables(self) -> list[str]:
        return list(self._variables)

    @property
    def values(self) -> np.ndarray:
        return self._values.copy()

    @property
    def num_variables(self) -> int:
        return len(self._variables)

    def __len__(self) -> int:
        return len(self._values)

    def __getitem__(self, point: int) -> int:
        return int(self._values[point])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TruthTable):
            return NotImplemented
        return self._variables == other._variables and bool(
            np.array_equal(self._values, other._values)
        )

    def __hash__(self) -> int:
        return hash((tuple(self._variables), self._values.tobytes()))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_function(
        cls,
        ctx: Context,
        variables: Sequence[str],
        function: Callable[[tuple[int, ...]], int | bool],
    ) -> "TruthTable":
        """Tabulate an arbitrary Python function of 0/1 tuples."""
        n = len(variables)
        if n > 24:
            raise ValueError("refusing to tabulate more than 24 variables")
        values = np.zeros(1 << n, dtype=np.uint8)
        for point in range(1 << n):
            bits = tuple((point >> i) & 1 for i in range(n))
            values[point] = 1 if function(bits) else 0
        return cls(ctx, variables, values)

    @classmethod
    def from_anf(cls, expr: Anf, variables: Sequence[str] | None = None) -> "TruthTable":
        """Tabulate an ANF over the given variable order (default: its support)."""
        ctx = expr.ctx
        if variables is None:
            variables = list(expr.support)
        n = len(variables)
        if n > 24:
            raise ValueError("refusing to tabulate more than 24 variables")
        positions = {ctx.index(name): local for local, name in enumerate(variables)}
        size = 1 << n
        values = np.zeros(size, dtype=np.uint8)
        outside = expr.support_mask & ~ctx.mask_of(variables)
        if outside:
            names = ctx.names_of(outside)
            raise ValueError(f"expression depends on variables outside the order: {names}")
        for term in expr.terms:
            # Translate the global monomial mask into the local variable order.
            local_mask = 0
            remaining = term
            index = 0
            while remaining:
                if remaining & 1:
                    local_mask |= 1 << positions[index]
                remaining >>= 1
                index += 1
            # XOR the indicator of "point covers local_mask" into the table.
            covered = _supersets_indicator(local_mask, n)
            values ^= covered
        return cls(ctx, variables, values)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_anf(self) -> Anf:
        """Moebius transform back to the canonical Reed-Muller form."""
        values = self._values.copy()
        n = self.num_variables
        size = 1 << n
        step = 1
        while step < size:
            # values[block + step + offset] ^= values[block + offset]
            idx = np.arange(size)
            upper = (idx & step).astype(bool)
            values[upper] ^= values[idx[upper] ^ step]
            step <<= 1
        indices = [self._ctx.add_var(name) for name in self._variables]
        terms = []
        for point in np.nonzero(values)[0]:
            point = int(point)
            mask = 0
            for local_bit in range(n):
                if point >> local_bit & 1:
                    mask |= 1 << indices[local_bit]
            terms.append(mask)
        return Anf(self._ctx, terms)

    def count_ones(self) -> int:
        """Number of satisfying assignments."""
        return int(self._values.sum())

    def evaluate(self, assignment: dict[str, int]) -> int:
        point = 0
        for local, name in enumerate(self._variables):
            if assignment.get(name, 0):
                point |= 1 << local
        return int(self._values[point])


def _supersets_indicator(mask: int, n: int) -> np.ndarray:
    """uint8 array ``v`` with ``v[p] = 1`` iff ``p & mask == mask``."""
    idx = np.arange(1 << n, dtype=np.int64)
    return ((idx & mask) == mask).astype(np.uint8)
