"""Symbolic bit-vectors (words) of ANF expressions.

A :class:`Word` is an unsigned little-endian vector of :class:`Anf` bits.  It
provides the integer arithmetic used to specify the paper's benchmark
circuits (adders, comparators, counters, leading-zero/one detectors) directly
as Reed-Muller expressions.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from .builders import full_adder, mux
from .context import Context
from .expression import Anf


class Word:
    """Little-endian vector of Boolean expressions representing an unsigned int."""

    __slots__ = ("_ctx", "_bits")

    def __init__(self, ctx: Context, bits: Iterable[Anf]) -> None:
        bits = list(bits)
        for bit in bits:
            if not isinstance(bit, Anf):
                raise TypeError("Word bits must be Anf expressions")
            ctx.require_same(bit.ctx)
        self._ctx = ctx
        self._bits = bits

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def inputs(cls, ctx: Context, prefix: str, width: int) -> "Word":
        """Fresh input word ``prefix0 .. prefix{width-1}`` (LSB first)."""
        names = ctx.bus(prefix, width)
        return cls(ctx, [Anf.var(ctx, name) for name in names])

    @classmethod
    def constant(cls, ctx: Context, value: int, width: int) -> "Word":
        """Constant word of the given width."""
        if value < 0:
            raise ValueError("Word constants must be non-negative")
        bits = [Anf.constant(ctx, (value >> i) & 1) for i in range(width)]
        return cls(ctx, bits)

    @classmethod
    def zeros(cls, ctx: Context, width: int) -> "Word":
        """All-zero word."""
        return cls.constant(ctx, 0, width)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    @property
    def ctx(self) -> Context:
        return self._ctx

    @property
    def bits(self) -> list[Anf]:
        """The bits, least significant first (a copy)."""
        return list(self._bits)

    @property
    def width(self) -> int:
        return len(self._bits)

    def __len__(self) -> int:
        return len(self._bits)

    def __iter__(self) -> Iterator[Anf]:
        return iter(self._bits)

    def __getitem__(self, index: int | slice) -> "Anf | Word":
        if isinstance(index, slice):
            return Word(self._ctx, self._bits[index])
        return self._bits[index]

    def bit(self, index: int) -> Anf:
        """Bit ``index`` (0 = least significant); zero beyond the width."""
        if 0 <= index < len(self._bits):
            return self._bits[index]
        return Anf.zero(self._ctx)

    def zero_extend(self, width: int) -> "Word":
        """Extend with constant-zero bits up to ``width``."""
        if width < self.width:
            raise ValueError("cannot zero-extend to a smaller width")
        extra = [Anf.zero(self._ctx)] * (width - self.width)
        return Word(self._ctx, self._bits + extra)

    def truncate(self, width: int) -> "Word":
        """Keep only the ``width`` least significant bits."""
        return Word(self._ctx, self._bits[:width])

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def add(self, other: "Word", carry_in: Anf | None = None, keep_carry: bool = True) -> "Word":
        """Ripple-carry addition; the result is one bit wider when ``keep_carry``."""
        self._ctx.require_same(other.ctx)
        width = max(self.width, other.width)
        carry = carry_in if carry_in is not None else Anf.zero(self._ctx)
        bits: list[Anf] = []
        for i in range(width):
            total, carry = full_adder(self.bit(i), other.bit(i), carry)
            bits.append(total)
        if keep_carry:
            bits.append(carry)
        return Word(self._ctx, bits)

    def __add__(self, other: "Word") -> "Word":
        return self.add(other)

    def sub(self, other: "Word") -> tuple["Word", Anf]:
        """Subtraction ``self - other`` (two's complement).

        Returns ``(difference, borrow)`` where ``borrow`` is true when
        ``other > self``.  The difference has the width of the wider operand.
        """
        self._ctx.require_same(other.ctx)
        width = max(self.width, other.width)
        carry = Anf.one(self._ctx)
        bits: list[Anf] = []
        for i in range(width):
            total, carry = full_adder(self.bit(i), ~other.bit(i), carry)
            bits.append(total)
        borrow = ~carry
        return Word(self._ctx, bits), borrow

    def greater_than(self, other: "Word") -> Anf:
        """Unsigned ``self > other``."""
        _, borrow = other.sub(self)
        return borrow

    def less_than(self, other: "Word") -> Anf:
        """Unsigned ``self < other``."""
        _, borrow = self.sub(other)
        return borrow

    def equals(self, other: "Word") -> Anf:
        """Bitwise equality of the two words (width-extended)."""
        self._ctx.require_same(other.ctx)
        width = max(self.width, other.width)
        result = Anf.one(self._ctx)
        for i in range(width):
            result = result & ~(self.bit(i) ^ other.bit(i))
        return result

    def greater_equal(self, other: "Word") -> Anf:
        """Unsigned ``self >= other``."""
        return ~self.less_than(other)

    def select(self, condition: Anf, other: "Word") -> "Word":
        """Word-wise multiplexer: ``self`` when ``condition`` else ``other``."""
        self._ctx.require_same(other.ctx)
        width = max(self.width, other.width)
        bits = [mux(condition, self.bit(i), other.bit(i)) for i in range(width)]
        return Word(self._ctx, bits)

    def shifted_left(self, amount: int) -> "Word":
        """Logical left shift by a constant amount (width grows)."""
        if amount < 0:
            raise ValueError("shift amount must be non-negative")
        zeros = [Anf.zero(self._ctx)] * amount
        return Word(self._ctx, zeros + self._bits)

    # ------------------------------------------------------------------
    # Evaluation helpers (used heavily by tests)
    # ------------------------------------------------------------------
    def evaluate(self, assignment: dict[str, int]) -> int:
        """Evaluate the word to an integer under a variable assignment."""
        value = 0
        for i, bit in enumerate(self._bits):
            if bit.evaluate(assignment):
                value |= 1 << i
        return value

    def as_outputs(self, prefix: str) -> dict[str, Anf]:
        """Name the bits ``prefix0..`` and return an output dictionary."""
        return {f"{prefix}{i}": bit for i, bit in enumerate(self._bits)}


def popcount_word(ctx: Context, bits: Sequence[Anf]) -> Word:
    """Population count of the given bits as a word (adder-tree construction)."""
    words = [Word(ctx, [bit]) for bit in bits]
    if not words:
        return Word.constant(ctx, 0, 1)
    while len(words) > 1:
        next_round: list[Word] = []
        for i in range(0, len(words) - 1, 2):
            next_round.append(words[i].add(words[i + 1]))
        if len(words) % 2:
            next_round.append(words[-1])
        words = next_round
    return words[0]


def carry_save_reduce(ctx: Context, operands: Sequence[Word]) -> tuple[Word, Word]:
    """Reduce three or more operands to two using 3:2 carry-save adders.

    Returns ``(sum_word, carry_word)`` such that the true total equals
    ``sum_word + carry_word`` (as integers).
    """
    pending = [list(op.bits) for op in operands]
    if len(pending) < 2:
        raise ValueError("carry_save_reduce needs at least two operands")
    while len(pending) > 2:
        a, b, c = pending[0], pending[1], pending[2]
        width = max(len(a), len(b), len(c))

        def bit_of(vec: list[Anf], i: int) -> Anf:
            return vec[i] if i < len(vec) else Anf.zero(ctx)

        sums: list[Anf] = []
        carries: list[Anf] = [Anf.zero(ctx)]
        for i in range(width):
            s, cy = full_adder(bit_of(a, i), bit_of(b, i), bit_of(c, i))
            sums.append(s)
            carries.append(cy)
        pending = [sums, carries] + pending[3:]
    return Word(ctx, pending[0]), Word(ctx, pending[1])
