"""Reed-Muller (Boolean ring) expression engine.

This package is the symbolic substrate of the reproduction: canonical
XOR-of-products expressions (:class:`Anf`), SOP cube lists, truth tables,
symbolic bit-vectors (:class:`Word`) and a small infix parser.
"""

from .bitset import BitsetKernel, kernel_for_exprs, kernel_for_support, truth_table
from .canonical import canonical_spec_digest, canonical_spec_payload
from .builders import (
    and_all,
    elementary_symmetric,
    equivalent,
    false,
    full_adder,
    half_adder,
    implies,
    majority,
    mux,
    not_,
    or_all,
    parity,
    threshold,
    true,
    var,
    variables,
    xor_all,
)
from .context import Context, ContextError
from .expression import Anf, anf_or, anf_product, anf_xor, build_from_function
from .parser import ParseError, parse
from .sop import Cube, Sop, anf_to_sop
from .truthtable import TruthTable
from .word import Word, carry_save_reduce, popcount_word

__all__ = [
    "Anf",
    "BitsetKernel",
    "Context",
    "ContextError",
    "Cube",
    "ParseError",
    "Sop",
    "TruthTable",
    "Word",
    "and_all",
    "anf_or",
    "anf_product",
    "anf_to_sop",
    "anf_xor",
    "build_from_function",
    "canonical_spec_digest",
    "canonical_spec_payload",
    "carry_save_reduce",
    "elementary_symmetric",
    "equivalent",
    "false",
    "full_adder",
    "half_adder",
    "implies",
    "kernel_for_exprs",
    "kernel_for_support",
    "majority",
    "mux",
    "not_",
    "or_all",
    "parity",
    "parse",
    "popcount_word",
    "threshold",
    "true",
    "truth_table",
    "var",
    "variables",
    "xor_all",
]
