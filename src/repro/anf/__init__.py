"""Reed-Muller (Boolean ring) expression engine.

This package is the symbolic substrate of the reproduction: canonical
XOR-of-products expressions (:class:`Anf`), SOP cube lists, truth tables,
symbolic bit-vectors (:class:`Word`) and a small infix parser.
"""

from .backend import get_backend, set_backend, using_backend
from .bitset import BitsetKernel, kernel_for_exprs, kernel_for_support, truth_table
from .canonical import canonical_spec_digest, canonical_spec_payload
from .termmatrix import TermMatrix
from .builders import (
    and_all,
    elementary_symmetric,
    equivalent,
    false,
    full_adder,
    half_adder,
    implies,
    majority,
    mux,
    not_,
    or_all,
    parity,
    threshold,
    true,
    var,
    variables,
    xor_all,
)
from .context import Context, ContextError
from .expression import Anf, anf_or, anf_product, anf_xor, build_from_function
from .parser import ParseError, parse
from .sop import Cube, Sop, anf_to_sop
from .truthtable import TruthTable
from .word import Word, carry_save_reduce, popcount_word

__all__ = [
    "Anf",
    "TermMatrix",
    "BitsetKernel",
    "Context",
    "ContextError",
    "Cube",
    "ParseError",
    "Sop",
    "TruthTable",
    "Word",
    "and_all",
    "anf_or",
    "anf_product",
    "anf_to_sop",
    "anf_xor",
    "build_from_function",
    "canonical_spec_digest",
    "canonical_spec_payload",
    "carry_save_reduce",
    "elementary_symmetric",
    "equivalent",
    "false",
    "full_adder",
    "get_backend",
    "half_adder",
    "implies",
    "kernel_for_exprs",
    "kernel_for_support",
    "majority",
    "mux",
    "not_",
    "or_all",
    "parity",
    "parse",
    "popcount_word",
    "set_backend",
    "threshold",
    "true",
    "truth_table",
    "using_backend",
    "var",
    "variables",
    "xor_all",
]
