"""Whole-matrix sort/scan kernels over packed term matrices.

PR 3's :class:`~repro.anf.termmatrix.TermMatrix` made the whole-expression
*queries* word-parallel (popcounts, OR-folds, replicated masks), but the
remaining comparator floor was still per-term Python: the bucketing loop in
the packed ``split_by_group``, the multi-tag scatter, the one-time
``sorted(frozenset)`` pack of a spec, and the cancel-adjacent loop of
``xor_sorted``.  This module eliminates those by treating the matrix as what
it physically is — one contiguous slab of unsigned 64-bit rows — and running
every remaining O(terms) scan as a handful of vectorised passes:

``split_runs_by_group``
    The bucketing kernel behind ``split_by_group``.  The key space is tiny —
    a group is at most ``k`` variables, so there are at most ``2^k`` distinct
    group parts (≤ 16 for the paper's ``k = 4``) — which makes a counting /
    radix bucketing strictly cheaper than a comparison sort: compress the
    group bits of every row into a dense small-integer key, count the
    buckets with one ``bincount``, then emit each present bucket with one
    stable masked selection.  Within a bucket the rows already ascend (rows
    sharing a group part keep their input order, and clearing the shared
    part preserves it), so every bucket is born a canonical
    :class:`TermMatrix` without any per-term rebucketing.  Masks wider than
    :data:`RADIX_MAX_GROUP_BITS` fall back to the composite-key stable
    argsort-and-slice this kernel replaced.

``scatter_tag``
    One boolean-mask selection plus a bit-strip per tag: the multi-tag path
    of ``scatter_by_tags`` becomes O(tags) vector passes instead of a
    per-term inner loop over the tag bits.

``sort_terms`` / ``merge_disjoint`` / ``xor_merge`` / ``parity_merge``
    The construction kernels: pack-and-sort an unordered term stream, union
    pairwise-disjoint sorted slabs, symmetric-difference two slabs, and
    reduce a multiset of slabs modulo 2 (terms surviving iff they occur an
    odd number of times).  ``parity_merge`` is what lets a product or a
    substitution accumulate *all* its partial term slabs first and cancel
    them in one sorted sweep, instead of XOR-ing partials one at a time
    (which is quadratic in the result size).

``shared_literal_count`` / ``support_fold``
    Scan-side helpers for the optimisation passes: literals shared between
    two sorted slabs, and the OR-fold of a slab.

All kernels are exact and representation-transparent: they compute the same
canonical term sets as the per-term reference loops, which the property
tests in ``tests/test_sortkernel.py`` assert on arbitrary inputs.  The
heavy lifting needs :mod:`numpy` (already a dependency via
:mod:`repro.anf.truthtable`); when numpy is unavailable every entry point
falls back to a pure-Python implementation, and tiny inputs skip numpy
anyway — below :data:`KERNEL_MIN_ROWS` rows the fixed cost of array
round-trips exceeds the per-term loop it replaces.
"""

from __future__ import annotations

import os
import warnings
from array import array
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised implicitly by every kernel call
    import numpy as _np
except ImportError:  # pragma: no cover - the container bakes numpy in
    _np = None


def _env_int(name: str, default: int, minimum: int = 0) -> int:
    """An integer tunable from the environment.

    Malformed values keep the default and values below ``minimum`` are
    clamped — in both cases with a :class:`RuntimeWarning` naming the
    variable, so a typo'd tunable is visible instead of silently running
    the wrong configuration (and never an import-time crash).
    """
    value = os.environ.get(name, "").strip()
    if not value:
        return default
    try:
        parsed = int(value)
    except ValueError:
        warnings.warn(
            f"ignoring malformed ${name}={value!r} (expected an integer); "
            f"using the default {default}",
            RuntimeWarning,
            stacklevel=2,
        )
        return default
    if parsed < minimum:
        warnings.warn(
            f"${name}={parsed} is below the minimum {minimum}; clamping",
            RuntimeWarning,
            stacklevel=2,
        )
        return minimum
    return parsed


#: Row count below which the per-term Python paths win (array round-trip
#: costs dominate); measured on the quick-width sweep.  Tunable via
#: ``REPRO_KERNEL_MIN_ROWS`` (0 forces the vector kernels everywhere — the
#: parity suite's forced-numpy mode).
KERNEL_MIN_ROWS = _env_int("REPRO_KERNEL_MIN_ROWS", 1024)

#: Rows are 64-bit; masks are clipped to the row width before vectorising
#: (a variable with index >= 64 cannot occur in any packable term, so
#: clipping never changes a result).
ROW_MASK = (1 << 64) - 1

WORD_CODE = "Q"

#: Group masks with at most this many set bits take the counting/radix
#: bucketing path of :func:`split_runs_by_group` (≤ 64 buckets).  Wider
#: masks — only the full-group stall fallback produces them — keep the
#: stable composite-key argsort.  Tunable via ``REPRO_RADIX_MAX_GROUP_BITS``.
RADIX_MAX_GROUP_BITS = _env_int("REPRO_RADIX_MAX_GROUP_BITS", 6, minimum=1)

#: With at least this many occupied buckets (including the remainder) the
#: radix split switches from one masked selection per bucket to a single
#: stable argsort of the compressed ``uint8`` key plus one gather: per-bucket
#: selection costs two whole-slab passes per bucket, the argsort-and-slice a
#: fixed ~4, so the crossover sits at a handful of buckets (measured ~1.8x
#: on the comparator's 16-bucket 14.3 M-row split).
RADIX_ARGSORT_MIN_BUCKETS = 4

#: When the ``threaded`` backend is active this holds the chunking module
#: (:mod:`repro.anf.nativekernel`); the public kernels below dispatch to it
#: so *every* caller — backends and module-level users such as
#: ``xor_accumulate`` alike — runs chunked.  ``None`` keeps the serial path.
_parallel = None


def set_parallel(module) -> None:
    """Install (or clear, with ``None``) the chunked-execution module."""
    global _parallel
    _parallel = module


def available() -> bool:
    """True when the numpy-backed kernels are usable."""
    return _np is not None


def _as_u64(words: array):
    """Zero-copy numpy view of an ``array('Q')`` slab."""
    return _np.frombuffer(words, dtype=_np.uint64)


def _to_words(rows) -> array:
    """Materialise a numpy uint64 vector back into an ``array('Q')``.

    A contiguous vector is copied once, straight from its buffer — the
    ``tobytes()`` round-trip would copy twice, which is measurable on the
    multi-million-row slabs the comparator produces.
    """
    out = array(WORD_CODE)
    if not (isinstance(rows, _np.ndarray) and rows.dtype == _np.uint64):
        rows = _np.ascontiguousarray(rows, dtype=_np.uint64)
    if rows.flags.c_contiguous:
        out.frombytes(rows.data.cast("B"))
    else:
        out.frombytes(rows.tobytes())
    return out


# ----------------------------------------------------------------------
# Sort-and-slice kernels
# ----------------------------------------------------------------------
def split_runs_by_group(
    words: array, group_mask: int
) -> Tuple[List[Tuple[int, array]], array]:
    """Bucket a sorted row slab by the group part of every row.

    Returns ``(buckets, remainder)`` where ``buckets`` is a list of
    ``(group_part, rest_rows)`` with ``group_part != 0`` and ``rest_rows``
    strictly ascending, and ``remainder`` holds the rows containing no group
    variable.  Semantics match the per-term reference: each row ``t`` lands
    in bucket ``t & group_mask`` as ``t ^ (t & group_mask)``.  Buckets are
    emitted in ascending ``group_part`` order.

    Narrow masks (≤ :data:`RADIX_MAX_GROUP_BITS` bits — every real group)
    take the O(n) counting/radix path; wide masks keep the stable
    composite-key argsort, which is order-equivalent: both preserve the
    input (ascending) order within a bucket, so every slice is canonical.
    """
    par = _parallel
    if par is not None:
        return par.split_runs_by_group(words, group_mask)
    return _split_runs_serial(words, group_mask)


def split_build_by_group(
    tagged_slabs: Sequence[Tuple[int, array]], group_mask: int
) -> Tuple[List[Tuple[int, array]], array]:
    """Fused tag-multiply + combine + split: the engine's ``findBasis`` feed.

    ``tagged_slabs`` is a sequence of ``(tag_mask, rows)`` — one sorted slab
    per output port plus the fresh tag bit that marks it.  The result equals
    splitting ``merge_disjoint([rows_i | tag_i])`` by ``group_mask``, but is
    computed in one pass per slab: each bucket row is emitted directly as
    ``(row ^ group_part) | tag``, so the combined expression — the largest
    allocation of the old pipeline — never materialises, and the per-bucket
    cross-slab merges degenerate to boundary-checked concatenations (tags
    are allocated in ascending order, so slab ``i``'s rows all sort below
    slab ``i+1``'s once the tags are ORed in).

    Preconditions (the backend seam checks them before calling): every tag
    is a fresh single bit disjoint from its slab's support, from every other
    tag, and from ``group_mask``.
    """
    par = _parallel
    if par is not None:
        return par.split_build_by_group(tagged_slabs, group_mask)
    return _split_build_serial(tagged_slabs, group_mask)


def _split_build_serial(
    tagged_slabs: Sequence[Tuple[int, array]], group_mask: int
) -> Tuple[List[Tuple[int, array]], array]:
    per_bucket: Dict[int, List[array]] = {}
    rest_parts: List[array] = []
    for tag, words in tagged_slabs:
        if not len(words):
            continue
        buckets, rest = _split_runs_serial(words, group_mask, or_mask=tag)
        for part, rows in buckets:
            pieces = per_bucket.get(part)
            if pieces is None:
                per_bucket[part] = pieces = []
            pieces.append(rows)
        if len(rest):
            rest_parts.append(rest)
    merged = [
        (part, merge_disjoint(per_bucket[part])) for part in sorted(per_bucket)
    ]
    return merged, merge_disjoint(rest_parts) if rest_parts else array(WORD_CODE)


def _split_runs_serial(
    words: array, group_mask: int, or_mask: int = 0
) -> Tuple[List[Tuple[int, array]], array]:
    """The serial split kernel; ``or_mask`` is ORed into every emitted row.

    ``or_mask`` (the fused path's tag bit) must be disjoint from the slab's
    support and from ``group_mask``, so ORing it preserves the ascending
    order of every bucket and of the remainder.
    """
    if _np is None or len(words) < KERNEL_MIN_ROWS:
        return _split_runs_python(words, group_mask, or_mask)
    mask = group_mask & ROW_MASK
    bit_positions = _mask_bit_positions(mask)
    if 0 < len(bit_positions) <= RADIX_MAX_GROUP_BITS:
        return _split_runs_radix(words, bit_positions, or_mask)
    rows = _as_u64(words)
    gpart = rows & _np.uint64(mask)
    if not gpart.any():
        return [], or_into_all(words, or_mask) if or_mask else words
    order = _np.argsort(gpart, kind="stable")
    sorted_g = gpart[order]
    sorted_rest = (rows ^ gpart)[order]
    if or_mask:
        sorted_rest |= _np.uint64(or_mask & ROW_MASK)
    edges = _np.flatnonzero(sorted_g[1:] != sorted_g[:-1]) + 1
    starts = [0, *edges.tolist()]
    ends = [*edges.tolist(), len(rows)]
    buckets: List[Tuple[int, array]] = []
    remainder = array(WORD_CODE)
    for lo, hi in zip(starts, ends):
        part = int(sorted_g[lo])
        if part == 0:
            remainder = _to_words(sorted_rest[lo:hi])
        else:
            buckets.append((part, _to_words(sorted_rest[lo:hi])))
    return buckets, remainder


def _mask_bit_positions(mask: int) -> List[int]:
    """Ascending bit positions set in ``mask``."""
    positions: List[int] = []
    while mask:
        bit = mask & -mask
        positions.append(bit.bit_length() - 1)
        mask ^= bit
    return positions


def _bit_runs(bit_positions: List[int]) -> List[Tuple[int, int]]:
    """Maximal runs of consecutive bit positions as ``(start, length)``."""
    runs: List[Tuple[int, int]] = []
    start = bit_positions[0]
    length = 1
    for pos in bit_positions[1:]:
        if pos == start + length:
            length += 1
        else:
            runs.append((start, length))
            start, length = pos, 1
    runs.append((start, length))
    return runs


def _split_runs_radix(
    words: array, bit_positions: List[int], or_mask: int = 0
) -> Tuple[List[Tuple[int, array]], array]:
    """Counting split on a ≤``RADIX_MAX_GROUP_BITS``-bit key space.

    The group bits of every row compress into a dense ``uint8`` key — one
    shift-and-mask per *run* of consecutive group bits, and the compression
    is monotone (ascending bit positions map to ascending key bits), so
    ascending keys enumerate ascending group parts.  One ``bincount`` sizes
    all buckets; then the rows are gathered bucket-by-bucket along one of
    two equivalent routes:

    * few occupied buckets — one stable masked selection per bucket (two
      whole-slab passes each, no index permutation);
    * :data:`RADIX_ARGSORT_MIN_BUCKETS` or more — one stable ``argsort`` of
      the byte-wide key plus a single gather, after which every bucket is a
      contiguous slice (fixed number of passes regardless of bucket count).

    Both routes preserve the input (ascending) order within a bucket —
    stability of the masked selection and of the argsort respectively — so
    every bucket is born canonical and the results are bit-identical.
    """
    rows = _as_u64(words)
    runs = _bit_runs(bit_positions)
    key = _np.empty(len(rows), dtype=_np.uint8)
    scratch = _np.empty(len(rows), dtype=_np.uint8)
    out = 0
    for start, length in runs:
        packed = (rows >> _np.uint64(start - out)) & _np.uint64(((1 << length) - 1) << out)
        if out == 0:
            _np.copyto(key, packed, casting="unsafe")
        else:
            _np.copyto(scratch, packed, casting="unsafe")
            key |= scratch
        out += length
    counts = _np.bincount(key, minlength=1 << len(bit_positions))
    if len(counts) == 1 or not counts[1:].any():
        return [], or_into_all(words, or_mask) if or_mask else words

    def expand(compressed: int) -> int:
        part = 0
        offset = 0
        for start, length in runs:
            part |= ((compressed >> offset) & ((1 << length) - 1)) << start
            offset += length
        return part

    # ``row ^ (part | tag)`` strips the group part *and* marks the tag in one
    # pass: every row of a bucket contains all of ``part``, no row contains
    # the (fresh) tag bit, and the two masks are disjoint — so the XOR equals
    # clear-then-OR without the second whole-slab sweep of the fused path.
    present = _np.flatnonzero(counts).tolist()
    buckets: List[Tuple[int, array]] = []
    remainder = array(WORD_CODE)
    if len(present) >= RADIX_ARGSORT_MIN_BUCKETS:
        order = _np.argsort(key, kind="stable")
        gathered = rows[order]
        bounds = _np.cumsum(counts).tolist()
        for compressed in present:
            hi = bounds[compressed]
            lo = hi - int(counts[compressed])
            selected = gathered[lo:hi]
            part = expand(compressed) if compressed else 0
            strip = part | or_mask
            if strip:
                selected ^= _np.uint64(strip)
            if compressed == 0:
                remainder = _to_words(selected)
            else:
                buckets.append((part, _to_words(selected)))
        return buckets, remainder
    mask_buffer = _np.empty(len(rows), dtype=bool)
    for compressed in present:
        _np.equal(key, compressed, out=mask_buffer)
        selected = rows[mask_buffer]
        part = expand(compressed) if compressed else 0
        strip = part | or_mask
        if strip:
            selected ^= _np.uint64(strip)
        if compressed == 0:
            remainder = _to_words(selected)
        else:
            buckets.append((part, _to_words(selected)))
    return buckets, remainder


def _split_runs_python(
    words: Sequence[int], group_mask: int, or_mask: int = 0
) -> Tuple[List[Tuple[int, array]], array]:
    """Per-term reference split (also the numpy-less fallback)."""
    buckets: Dict[int, List[int]] = {}
    remainder: List[int] = []
    remainder_append = remainder.append
    bucket_get = buckets.get
    for term in words:
        group_part = term & group_mask
        if group_part == 0:
            remainder_append(term | or_mask)
        else:
            rows = bucket_get(group_part)
            if rows is None:
                buckets[group_part] = rows = []
            rows.append((term ^ group_part) | or_mask)
    return (
        [(part, array(WORD_CODE, rest)) for part, rest in buckets.items()],
        array(WORD_CODE, remainder),
    )


def _split_build_python(
    tagged_slabs: Sequence[Tuple[int, Sequence[int]]], group_mask: int
) -> Tuple[List[Tuple[int, array]], array]:
    """Per-term reference of the fused split (parity oracle for the tests)."""
    per_bucket: Dict[int, List[int]] = {}
    rest: List[int] = []
    for tag, words in tagged_slabs:
        for term in words:
            group_part = term & group_mask
            row = (term ^ group_part) | tag
            if group_part == 0:
                rest.append(row)
            else:
                rows = per_bucket.get(group_part)
                if rows is None:
                    per_bucket[group_part] = rows = []
                rows.append(row)
    return (
        [(part, array(WORD_CODE, sorted(per_bucket[part]))) for part in sorted(per_bucket)],
        array(WORD_CODE, sorted(rest)),
    )


def scatter_tag(words: array, bit: int) -> array:
    """Rows containing ``bit``, with the bit stripped, in ascending order.

    Rows that all contain a common bit keep their relative order when it is
    cleared, so the selection is born sorted.
    """
    par = _parallel
    if par is not None:
        return par.scatter_tag(words, bit)
    return _scatter_tag_serial(words, bit)


def _scatter_tag_serial(words: array, bit: int) -> array:
    if bit > ROW_MASK:
        return array(WORD_CODE)
    if _np is None or len(words) < KERNEL_MIN_ROWS:
        return array(WORD_CODE, [t & ~bit for t in words if t & bit])
    rows = _as_u64(words)
    b = _np.uint64(bit)
    return _to_words(rows[(rows & b) != 0] & ~b)


# ----------------------------------------------------------------------
# Construction kernels
# ----------------------------------------------------------------------
def sort_terms(terms: Iterable[int], count: Optional[int] = None) -> Optional[array]:
    """Pack an unordered stream of distinct terms into a sorted slab.

    Returns ``None`` when some term does not fit a 64-bit row (the caller
    falls back to frozenset storage, exactly like
    :meth:`TermMatrix.from_terms`).
    """
    if count is None:
        terms = list(terms)
        count = len(terms)
    if _np is None or count < KERNEL_MIN_ROWS:
        rows = sorted(terms)
        if rows and rows[-1] > ROW_MASK:
            return None
        return array(WORD_CODE, rows)
    try:
        rows = _np.fromiter(terms, dtype=_np.uint64, count=count)
    except OverflowError:
        return None
    rows.sort(kind="stable")
    return _to_words(rows)


def merge_disjoint(slabs: Sequence[array]) -> array:
    """Union of pairwise-disjoint sorted slabs, re-sorted into one slab.

    The slabs are first ordered by their smallest row (a permutation cannot
    change the sorted union); when every boundary then ascends —
    ``max(slab_i) < min(slab_i+1)`` — the concatenation *is* the union and
    the sort is skipped entirely.  That O(k) check turns the hot merges of
    the engine into plain memcpys: tag-combined port slabs and the rewrite's
    marker-tagged pieces are each dominated by one fresh high bit, so their
    row ranges never interleave.
    """
    alive = [s for s in slabs if len(s)]
    if not alive:
        return array(WORD_CODE)
    if len(alive) == 1:
        return alive[0]
    alive.sort(key=lambda s: s[0])
    ordered = all(
        alive[i][-1] < alive[i + 1][0] for i in range(len(alive) - 1)
    )
    total = sum(len(s) for s in alive)
    if ordered or _np is None or total < KERNEL_MIN_ROWS:
        merged = array(WORD_CODE)
        for s in alive:
            merged.extend(s)
        if not ordered:
            rows = merged.tolist()
            rows.sort()
            merged = array(WORD_CODE, rows)
        return merged
    merged = _np.concatenate([_as_u64(s) for s in alive])
    merged.sort(kind="stable")
    return _to_words(merged)


def xor_merge(left: array, right: array) -> array:
    """Symmetric difference of two sorted slabs of distinct rows.

    Each operand holds distinct rows, so a shared row occurs exactly twice in
    the concatenation and the adjacent duplicates cancel.
    """
    par = _parallel
    if par is not None:
        return par.xor_merge(left, right)
    return _xor_merge_serial(left, right)


def _xor_merge_serial(left: array, right: array) -> array:
    if not len(left):
        return right
    if not len(right):
        return left
    if _np is None or len(left) + len(right) < KERNEL_MIN_ROWS:
        return _xor_merge_python(left, right)
    merged = _np.concatenate([_as_u64(left), _as_u64(right)])
    merged.sort(kind="stable")
    dup = merged[1:] == merged[:-1]
    keep = _np.ones(len(merged), dtype=bool)
    keep[1:] &= ~dup
    keep[:-1] &= ~dup
    return _to_words(merged[keep])


def _xor_merge_python(left: Sequence[int], right: Sequence[int]) -> array:
    merged = list(left)
    merged.extend(right)
    merged.sort()
    out: List[int] = []
    append = out.append
    previous = -1
    for row in merged:
        if row == previous:
            out.pop()
            previous = -1
        else:
            append(row)
            previous = row
    return array(WORD_CODE, out)


def parity_merge(slabs: Sequence[array]) -> array:
    """Mod-2 reduction of a multiset of row slabs.

    The result holds the rows occurring an odd number of times across all
    slabs — the canonical term set of the XOR of the expressions the slabs
    represent.  One sorted sweep replaces the quadratic one-at-a-time XOR
    accumulation of products and substitutions.  Slabs need not be sorted
    or duplicate-free (product slabs ``rows | term`` are neither when the
    term overlaps the support), so even a single slab is swept.
    """
    par = _parallel
    if par is not None:
        return par.parity_merge(slabs)
    return _parity_merge_serial(slabs)


def _parity_merge_serial(slabs: Sequence[array]) -> array:
    alive = [s for s in slabs if len(s)]
    if not alive:
        return array(WORD_CODE)
    total = sum(len(s) for s in alive)
    if _np is None or total < KERNEL_MIN_ROWS:
        counts: Dict[int, int] = {}
        for s in alive:
            for row in s:
                counts[row] = counts.get(row, 0) + 1
        return array(WORD_CODE, sorted(r for r, c in counts.items() if c & 1))
    if len(alive) == 1:
        merged = _as_u64(alive[0]).copy()
    else:
        merged = _np.concatenate([_as_u64(s) for s in alive])
    # Slabs from expressions are sorted runs — timsort ("stable") gallops
    # through them instead of re-partitioning from scratch.
    merged.sort(kind="stable")
    return _to_words(_odd_runs(merged))


def _odd_runs(merged):
    """Rows of a sorted vector occurring an odd number of times."""
    edges = _np.flatnonzero(merged[1:] != merged[:-1]) + 1
    starts = _np.concatenate(([0], edges))
    ends = _np.concatenate((edges, [len(merged)]))
    odd = ((ends - starts) & 1).astype(bool)
    return merged[starts[odd]]


def product_rows(large: array, small_terms: Sequence[int]) -> array:
    """Sorted canonical rows of ``XOR(small_terms) * large``.

    Each small term contributes one vectorised ``row | term`` slab; the
    slabs reduce mod 2 in one sorted parity sweep (a product term can repeat
    — ``r1 | t1 == r2 | t2`` — whenever the factors overlap, so plain
    dedup is not enough).  A divide-and-conquer split bounds the transient
    slab memory for products where both operands are large; the halves are
    themselves canonical, so they recombine with a run-friendly stable sort.
    """
    par = _parallel
    if par is not None:
        return par.product_rows(large, small_terms)
    return _product_rows_serial(large, small_terms)


def _product_rows_serial(large: array, small_terms: Sequence[int]) -> array:
    if _np is None or len(large) * len(small_terms) < KERNEL_MIN_ROWS:
        counts: Dict[int, int] = {}
        for term in small_terms:
            for row in large:
                key = row | term
                counts[key] = counts.get(key, 0) + 1
        return array(WORD_CODE, sorted(r for r, c in counts.items() if c & 1))
    rows = _as_u64(large)
    return _to_words(_product_rows_rec(rows, list(small_terms)))


#: Transient row budget of one product parity sweep (~128 MB of u64 rows).
PRODUCT_SLAB_ROWS = 1 << 24


def _product_rows_rec(rows, small_terms: List[int]):
    if len(small_terms) * len(rows) <= PRODUCT_SLAB_ROWS or len(small_terms) <= 2:
        slabs = [rows | _np.uint64(term & ROW_MASK) for term in small_terms]
        merged = slabs[0] if len(slabs) == 1 else _np.concatenate(slabs)
        # Product slabs are unsorted whenever a term overlaps the support;
        # introsort beats timsort on run-free data.
        merged.sort()
        return _odd_runs(merged)
    mid = len(small_terms) // 2
    left = _product_rows_rec(rows, small_terms[:mid])
    right = _product_rows_rec(rows, small_terms[mid:])
    merged = _np.concatenate((left, right))
    merged.sort(kind="stable")  # two sorted runs: timsort gallops
    return _odd_runs(merged)


# ----------------------------------------------------------------------
# Scan helpers
# ----------------------------------------------------------------------
def or_into_all(words: array, mask: int) -> array:
    """``row | mask`` for every row; ascending whenever the mask is disjoint
    from the slab's support (the caller's precondition).

    One C-level slab copy plus one in-place OR over a writable view — no
    transient numpy allocation, which is what the giant tag multiplies of
    ``combine_with_tags`` pay for first-touch page faults otherwise.
    """
    if _np is None or len(words) < KERNEL_MIN_ROWS:
        return array(WORD_CODE, [t | mask for t in words])
    out = array(WORD_CODE, words)
    view = _np.frombuffer(out, dtype=_np.uint64)
    view |= _np.uint64(mask & ROW_MASK)
    return out


def support_fold(words: array) -> int:
    """OR of every row in one vector pass."""
    if _np is None or len(words) < KERNEL_MIN_ROWS:
        mask = 0
        for term in words:
            mask |= term
        return mask
    return int(_np.bitwise_or.reduce(_as_u64(words)))


def shared_literal_count(left: array, right: array) -> int:
    """Total set bits over the rows present in both sorted slabs."""
    par = _parallel
    if par is not None:
        return par.shared_literal_count(left, right)
    return _shared_literal_count_serial(left, right)


def _shared_literal_count_serial(left: array, right: array) -> int:
    if (
        _np is None
        or min(len(left), len(right)) == 0
        or len(left) + len(right) < KERNEL_MIN_ROWS
    ):
        shared = frozenset(left) & frozenset(right)
        return sum(int(row).bit_count() for row in shared)
    small, large = (left, right) if len(left) <= len(right) else (right, left)
    small_rows = _as_u64(small)
    large_rows = _as_u64(large)
    positions = _np.searchsorted(large_rows, small_rows)
    positions[positions == len(large_rows)] = 0
    hits = large_rows[positions] == small_rows
    # Popcount of the concatenated row bytes == sum of per-row popcounts
    # (works on every numpy, unlike np.bitwise_count which needs >= 2.0).
    return int.from_bytes(small_rows[hits].tobytes(), "little").bit_count()


def popcount_rows(words: array) -> int:
    """Total set bits over a row slab (the literal count of a matrix).

    One vectorised ``bitwise_count`` + sum on numpy >= 2.0; a single
    big-integer popcount of the raw bytes otherwise.  Replaces the packed
    big-integer construction that used to dominate the engine's
    ``literal_count`` queries on multi-million-row slabs.
    """
    par = _parallel
    if par is not None:
        return par.popcount_rows(words)
    return _popcount_rows_serial(words)


def _popcount_rows_serial(words) -> int:
    if _np is None or len(words) < KERNEL_MIN_ROWS:
        if isinstance(words, array):
            return int.from_bytes(words.tobytes(), "little").bit_count()
        return sum(int(row).bit_count() for row in words)
    rows = _as_u64(words)
    if hasattr(_np, "bitwise_count"):
        return int(_np.bitwise_count(rows).sum(dtype=_np.int64))
    return int.from_bytes(rows.tobytes(), "little").bit_count()


def clear_bits_all(words: array, mask: int) -> array:
    """``row & ~mask`` for every row; ascending whenever every row contains
    all of ``mask`` (the caller's precondition — tag stripping)."""
    if _np is None or len(words) < KERNEL_MIN_ROWS:
        return array(WORD_CODE, [t & ~mask for t in words])
    return _to_words(_as_u64(words) & _np.uint64(~mask & ROW_MASK))


def rows_contain_all(words: array, mask: int) -> bool:
    """True when every row contains every bit of ``mask`` (one vector pass)."""
    if _np is None or len(words) < KERNEL_MIN_ROWS:
        return all(t & mask == mask for t in words)
    m = _np.uint64(mask & ROW_MASK)
    rows = _as_u64(words)
    return bool(((rows & m) == m).all())
