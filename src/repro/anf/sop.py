"""Sum-of-products (SOP) form and conversions to/from the Reed-Muller form.

The paper's "Unoptimised (SOP)" baselines describe circuits as an OR of
product terms over positive and negative literals.  This module provides a
cube-list representation of SOPs, conversion between SOP and ANF, and a
covering-based extraction of an SOP from an ANF (used when the baseline
synthesiser needs a two-level starting point).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from .context import Context
from .expression import Anf


@dataclass(frozen=True)
class Cube:
    """One product term: a set of positive and a set of negative literals.

    ``positive`` and ``negative`` are bitmasks over the context variables.
    The constant-one cube has both masks zero.
    """

    positive: int
    negative: int

    def __post_init__(self) -> None:
        if self.positive & self.negative:
            raise ValueError("a cube cannot contain a literal and its complement")

    @property
    def num_literals(self) -> int:
        return self.positive.bit_count() + self.negative.bit_count()

    def contains_point(self, ones_mask: int) -> bool:
        """True when the minterm ``ones_mask`` satisfies this cube."""
        return (ones_mask & self.positive) == self.positive and (ones_mask & self.negative) == 0

    def covers(self, other: "Cube") -> bool:
        """True when every minterm of ``other`` is also a minterm of this cube."""
        return (
            self.positive & ~other.positive == 0
            and self.negative & ~other.negative == 0
        )

    def to_anf(self, ctx: Context) -> Anf:
        """Expand the cube into ANF (product of literals)."""
        result = Anf._raw(ctx, frozenset({self.positive}))
        negative = self.negative
        index = 0
        while negative:
            if negative & 1:
                result = result & ~Anf.var(ctx, ctx.name(index))
            negative >>= 1
            index += 1
        return result

    def render(self, ctx: Context) -> str:
        """Readable rendering such as ``a*~b*c`` (``1`` for the empty cube)."""
        parts = [name for name in ctx.names_of(self.positive)]
        parts += [f"~{name}" for name in ctx.names_of(self.negative)]
        return "*".join(parts) if parts else "1"


class Sop:
    """A sum (OR) of product terms."""

    __slots__ = ("_ctx", "_cubes")

    def __init__(self, ctx: Context, cubes: Iterable[Cube] = ()) -> None:
        self._ctx = ctx
        self._cubes: list[Cube] = list(cubes)

    @property
    def ctx(self) -> Context:
        return self._ctx

    @property
    def cubes(self) -> list[Cube]:
        return list(self._cubes)

    @property
    def num_cubes(self) -> int:
        return len(self._cubes)

    @property
    def num_literals(self) -> int:
        return sum(cube.num_literals for cube in self._cubes)

    def __iter__(self) -> Iterator[Cube]:
        return iter(self._cubes)

    def __len__(self) -> int:
        return len(self._cubes)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_literal_names(
        cls, ctx: Context, cubes: Iterable[tuple[Sequence[str], Sequence[str]]]
    ) -> "Sop":
        """Build from ``(positive_names, negative_names)`` pairs."""
        built = []
        for positive_names, negative_names in cubes:
            positive = ctx.mask_of(positive_names)
            negative = ctx.mask_of(negative_names)
            built.append(Cube(positive, negative))
        return cls(ctx, built)

    def add_cube(self, cube: Cube) -> None:
        self._cubes.append(cube)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def evaluate(self, assignment: Mapping[str, int]) -> int:
        ones_mask = 0
        for name, value in assignment.items():
            if name in self._ctx and value:
                ones_mask |= 1 << self._ctx.index(name)
        return 1 if any(cube.contains_point(ones_mask) for cube in self._cubes) else 0

    def to_anf(self) -> Anf:
        """Exact conversion to Reed-Muller form (OR-folding of cube ANFs)."""
        result = Anf.zero(self._ctx)
        for cube in self._cubes:
            result = result | cube.to_anf(self._ctx)
        return result

    def render(self) -> str:
        if not self._cubes:
            return "0"
        return " + ".join(cube.render(self._ctx) for cube in self._cubes)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        text = self.render()
        if len(text) > 120:
            return f"Sop(<{self.num_cubes} cubes>)"
        return f"Sop({text})"


def anf_to_sop(expr: Anf, variables: Sequence[str] | None = None) -> Sop:
    """Convert an ANF to a (non-minimised) SOP by enumerating minterms.

    Exponential in the support size; intended for block-level expressions
    (a handful of variables).  Use :mod:`repro.synth.twolevel` to minimise
    the result.
    """
    ctx = expr.ctx
    if variables is None:
        variables = list(expr.support)
    n = len(variables)
    if n > 20:
        raise ValueError("anf_to_sop enumerates minterms; refusing more than 20 variables")
    indices = [ctx.index(name) for name in variables]
    cubes = []
    for point in range(1 << n):
        ones_mask = 0
        for local_bit in range(n):
            if point >> local_bit & 1:
                ones_mask |= 1 << indices[local_bit]
        if expr.evaluate_mask(ones_mask):
            positive = ones_mask
            negative = 0
            for local_bit in range(n):
                if not point >> local_bit & 1:
                    negative |= 1 << indices[local_bit]
            cubes.append(Cube(positive, negative))
    return Sop(ctx, cubes)
