"""Variable registry shared by all expressions of one problem instance.

Every :class:`~repro.anf.expression.Anf` stores its monomials as integer
bitmasks; a :class:`Context` owns the mapping between variable names and bit
positions.  Expressions can only be combined when they share a context, which
keeps bitmask indices consistent and makes mixing unrelated problems an error
instead of a silent bug.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence


class ContextError(ValueError):
    """Raised when variables or expressions from different contexts are mixed."""


class Context:
    """Registry of Boolean variables for one decomposition problem.

    Variables are identified by name (a non-empty string) and are assigned
    consecutive bit positions in the order they are declared.  The bit
    position of a variable never changes once assigned, so bitmask-encoded
    monomials remain valid for the lifetime of the context.
    """

    __slots__ = ("_name_to_index", "_names", "_product_memo", "_kernels")

    #: Bound on the number of memoised products / truth-table kernels kept per
    #: context; both caches are cleared wholesale when they outgrow it.
    PRODUCT_MEMO_LIMIT = 1 << 14
    KERNEL_LIMIT = 64

    def __init__(self, names: Iterable[str] = ()) -> None:
        self._name_to_index: dict[str, int] = {}
        self._names: list[str] = []
        # Caches scoped to this context (see Anf.cached_and and anf.bitset):
        # expression products recur heavily in the rewrite step, and truth
        # bitset kernels recur per support set in the identity search.
        self._product_memo: dict = {}
        self._kernels: dict = {}
        for name in names:
            self.add_var(name)

    # ------------------------------------------------------------------
    # Declaration
    # ------------------------------------------------------------------
    def add_var(self, name: str) -> int:
        """Declare ``name`` (if new) and return its bit position."""
        if not isinstance(name, str) or not name:
            raise ContextError(f"variable name must be a non-empty string, got {name!r}")
        index = self._name_to_index.get(name)
        if index is None:
            index = len(self._names)
            self._name_to_index[name] = index
            self._names.append(name)
        return index

    def add_vars(self, names: Iterable[str]) -> list[int]:
        """Declare several variables and return their bit positions."""
        return [self.add_var(name) for name in names]

    def bus(self, prefix: str, width: int, start: int = 0) -> list[str]:
        """Declare ``width`` variables ``prefix0 .. prefix{width-1}`` (LSB first).

        Returns the list of names ordered from least significant (index
        ``start``) to most significant.
        """
        if width < 0:
            raise ContextError(f"bus width must be non-negative, got {width}")
        names = [f"{prefix}{i}" for i in range(start, start + width)]
        self.add_vars(names)
        return names

    def fresh_name(self, prefix: str) -> str:
        """Return an undeclared name of the form ``prefix``, ``prefix_1``, ..."""
        if prefix not in self._name_to_index:
            return prefix
        suffix = 1
        while f"{prefix}_{suffix}" in self._name_to_index:
            suffix += 1
        return f"{prefix}_{suffix}"

    def fresh_var(self, prefix: str) -> str:
        """Declare and return a new variable with an unused name."""
        name = self.fresh_name(prefix)
        self.add_var(name)
        return name

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def index(self, name: str) -> int:
        """Bit position of a declared variable."""
        try:
            return self._name_to_index[name]
        except KeyError:
            raise ContextError(f"unknown variable {name!r}") from None

    def name(self, index: int) -> str:
        """Name of the variable at bit position ``index``."""
        try:
            return self._names[index]
        except IndexError:
            raise ContextError(f"no variable with index {index}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._name_to_index

    def __len__(self) -> int:
        return len(self._names)

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    @property
    def names(self) -> tuple[str, ...]:
        """All declared variable names in declaration order."""
        return tuple(self._names)

    # ------------------------------------------------------------------
    # Mask helpers
    # ------------------------------------------------------------------
    def mask_of(self, names: Iterable[str]) -> int:
        """Bitmask with the bits of all the given variables set."""
        mask = 0
        for name in names:
            mask |= 1 << self.index(name)
        return mask

    def names_of(self, mask: int) -> tuple[str, ...]:
        """Variable names present in a monomial bitmask, in index order."""
        if mask < 0:
            raise ContextError("monomial masks must be non-negative")
        names = []
        index = 0
        while mask:
            if mask & 1:
                names.append(self.name(index))
            mask >>= 1
            index += 1
        return tuple(names)

    def monomial_str(self, mask: int) -> str:
        """Human-readable rendering of one monomial (``1`` for the empty one)."""
        if mask == 0:
            return "1"
        return "*".join(self.names_of(mask))

    def require_same(self, other: "Context") -> None:
        """Raise :class:`ContextError` unless ``other`` is this same context."""
        if other is not self:
            raise ContextError("expressions belong to different contexts")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        preview = ", ".join(self._names[:8])
        if len(self._names) > 8:
            preview += ", ..."
        return f"Context({len(self._names)} vars: {preview})"


def ordered_support_names(ctx: Context, mask: int) -> Sequence[str]:
    """Names of the variables in ``mask`` ordered by declaration index."""
    return ctx.names_of(mask)
