"""Term-set backends: the interface between the engine and term storage.

The decomposition engine's intrinsic floor is O(terms) work per iteration —
splitting the giant combined expression by group, multiplying tag variables
in, extracting per-port tag components, counting literals.  How fast that
floor runs depends entirely on the *representation* of the term sets, so the
representation-dependent kernels live here, behind a two-implementation
interface:

:class:`SetBackend` (``"set"``)
    The seed behaviour: every kernel iterates Python ``frozenset`` objects.
    Kept both as the reference implementation for the parity suite and as the
    fallback for term sets that cannot be packed (terms over 64 variable
    indices).

:class:`PackedBackend` (``"packed"``, the default)
    Routes the kernels through :class:`~repro.anf.termmatrix.TermMatrix`:
    per-term scans become word-parallel sweeps over contiguous ``array('Q')``
    memory and big-integer operations, and the expressions flowing between
    pipeline stages stay matrix-backed so frozensets are only materialised
    when a consumer genuinely needs set semantics.

Both backends compute the *same canonical term sets* for every kernel — the
parity test-suite runs the full engine under both and asserts bit-identical
decompositions.  Select with :func:`set_backend`, the :func:`using_backend`
context manager, or the ``REPRO_TERM_BACKEND`` environment variable.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from . import sortkernel
from .context import Context
from .expression import Anf
from .termmatrix import TERM_LIMIT, TermMatrix, concat_sorted

BACKEND_ENV = "REPRO_TERM_BACKEND"


class SetBackend:
    """Reference kernels over plain frozensets (the seed implementation)."""

    name = "set"

    # ------------------------------------------------------------------
    def split_by_group(self, expr: Anf, group_mask: int) -> Tuple[Dict[int, Anf], Anf]:
        """Partition ``expr`` by the group-variable part of each monomial.

        The terms are distinct and (group part, rest part) determines the
        term, so no mod-2 cancellation can occur while bucketing — plain
        list appends suffice and every bucket is non-empty by construction.
        """
        ctx = expr.ctx
        buckets: Dict[int, List[int]] = {}
        remainder: List[int] = []
        remainder_append = remainder.append
        bucket_get = buckets.get
        for term in expr.terms:
            group_part = term & group_mask
            if group_part == 0:
                remainder_append(term)
            else:
                rows = bucket_get(group_part)
                if rows is None:
                    buckets[group_part] = rows = []
                rows.append(term ^ group_part)
        result = {
            group_part: Anf._raw(ctx, frozenset(rest))
            for group_part, rest in buckets.items()
        }
        return result, Anf._raw(ctx, frozenset(remainder))

    # ------------------------------------------------------------------
    def combine_tagged(
        self, items: Sequence[Tuple[int, Anf]], ctx: Context
    ) -> Optional[Anf]:
        """``XOR_i (bit_i & expr_i)`` for fresh single-variable bits, or ``None``.

        ``None`` means "no fast path" — the caller runs the generic product
        loop.  The set backend always declines.
        """
        return None

    # ------------------------------------------------------------------
    def split_tagged(
        self, items: Sequence[Tuple[int, Anf]], group_mask: int, ctx: Context
    ) -> Optional[Tuple[Dict[int, Anf], Anf]]:
        """Fused ``split_by_group(combine_tagged(items))`` — or ``None``.

        ``None`` means "no fused path" — the caller combines then splits in
        two steps.  The set backend always declines.
        """
        return None

    # ------------------------------------------------------------------
    def scatter_by_tags(self, expr: Anf, tags_mask: int) -> Dict[int, Anf]:
        """Split ``expr`` into per-tag components in a single traversal.

        Returns ``{tag_bit: component}`` where ``component`` holds every
        monomial of ``expr`` containing that tag bit, with the bit stripped.
        Distinct terms stay distinct after stripping a shared bit, so no
        cancellation is possible and every component is non-empty.
        """
        ctx = expr.ctx
        buckets: Dict[int, List[int]] = {}
        for term in expr.terms:
            tags = term & tags_mask
            while tags:
                bit = tags & -tags
                rows = buckets.get(bit)
                if rows is None:
                    buckets[bit] = rows = []
                rows.append(term & ~bit)
                tags ^= bit
        return {
            bit: Anf._raw(ctx, frozenset(rows)) for bit, rows in buckets.items()
        }

    # ------------------------------------------------------------------
    def disjoint_xor(self, pieces: Sequence[Anf], ctx: Context) -> Anf:
        """XOR expressions whose term sets are pairwise disjoint."""
        total = Anf.zero(ctx)
        for piece in pieces:
            total = total ^ piece
        return total

    # ------------------------------------------------------------------
    def pair_key(self, expr: Anf):
        """Canonical hashable key for term-set equality in the merge loops."""
        return expr.terms

    # ------------------------------------------------------------------
    def prepare_outputs(self, outputs) -> None:
        """Hook run once per decomposition on the specification outputs."""

    # ------------------------------------------------------------------
    def activate(self) -> None:
        """Hook run when this backend becomes the active one."""

    def deactivate(self) -> None:
        """Hook run when this backend stops being the active one."""


class PackedBackend(SetBackend):
    """Word-parallel kernels over packed term matrices.

    Every kernel falls back to the :class:`SetBackend` behaviour when a term
    set cannot be packed, so the two backends are interchangeable point-wise.
    """

    name = "packed"

    # ------------------------------------------------------------------
    def split_by_group(self, expr: Anf, group_mask: int) -> Tuple[Dict[int, Anf], Anf]:
        matrix = expr.term_matrix(build=True)
        if matrix is None:
            return SetBackend.split_by_group(self, expr, group_mask)
        ctx = expr.ctx
        # Composite-key sort-and-slice: one stable sort keyed by the group
        # part of every row, then each contiguous run is a bucket.  Rows
        # sharing a group part keep their ascending order through the stable
        # sort, and clearing the shared part preserves it, so the buckets
        # are born canonical.
        runs, remainder = sortkernel.split_runs_by_group(matrix.words, group_mask)
        result = {
            group_part: Anf._from_matrix(ctx, TermMatrix.from_sorted(rest))
            for group_part, rest in runs
        }
        return result, Anf._from_matrix(ctx, TermMatrix.from_sorted(remainder))

    # ------------------------------------------------------------------
    def combine_tagged(
        self, items: Sequence[Tuple[int, Anf]], ctx: Context
    ) -> Optional[Anf]:
        bits_union = 0
        for bit, _ in items:
            bits_union |= bit
        tagged: List[TermMatrix] = []
        for bit, expr in items:
            if bit >= TERM_LIMIT:
                return None
            matrix = expr.term_matrix(build=True)
            # Port expressions never mention tag variables (the rewrite strips
            # them), so the tag products are disjoint-support single-variable
            # multiplies and the per-port results are pairwise disjoint term
            # sets; anything else declines the fast path.
            if matrix is None or (expr.support_mask & bits_union):
                return None
            tagged.append(matrix.or_all(bit))
        return Anf._from_matrix(ctx, concat_sorted(tagged))

    # ------------------------------------------------------------------
    def split_tagged(
        self, items: Sequence[Tuple[int, Anf]], group_mask: int, ctx: Context
    ) -> Optional[Tuple[Dict[int, Anf], Anf]]:
        # Fused split→build: per port, bucket the rows by group part, strip
        # the group bits and OR the tag in one kernel pass — the buckets come
        # out as the next iteration's sorted matrices with no intermediate
        # combined slab.  Preconditions mirror ``combine_tagged`` exactly
        # (fresh disjoint single-bit tags), plus the group mask must not
        # collide with the tags; any violation declines to the two-step path.
        bits_union = 0
        for bit, _ in items:
            bits_union |= bit
        if group_mask & bits_union:
            return None
        slabs: List[Tuple[int, "array"]] = []
        for bit, expr in items:
            if bit >= TERM_LIMIT:
                return None
            matrix = expr.term_matrix(build=True)
            if matrix is None or (expr.support_mask & bits_union):
                return None
            slabs.append((bit, matrix.words))
        runs, remainder = sortkernel.split_build_by_group(slabs, group_mask)
        buckets = {
            group_part: Anf._from_matrix(ctx, TermMatrix.from_sorted(rest))
            for group_part, rest in runs
        }
        return buckets, Anf._from_matrix(ctx, TermMatrix.from_sorted(remainder))

    # ------------------------------------------------------------------
    def scatter_by_tags(self, expr: Anf, tags_mask: int) -> Dict[int, Anf]:
        matrix = expr.term_matrix(build=True)
        if matrix is None:
            return SetBackend.scatter_by_tags(self, expr, tags_mask)
        ctx = expr.ctx
        if tags_mask and tags_mask & (tags_mask - 1) == 0:
            # One tag (the overwhelmingly common single-output case): either
            # every monomial carries it (strip word-parallel) or none does.
            if matrix.contains_all(tags_mask):
                if matrix.count == 0:
                    return {}
                return {tags_mask: Anf._from_matrix(ctx, matrix.strip_all(tags_mask))}
            if matrix.support_mask() & tags_mask == 0:
                return {}
        # Multi-tag path: one boolean-mask selection per tag bit actually
        # present in the support (a term may carry several tags, so the
        # components overlap and a single sort cannot slice them).
        result: Dict[int, Anf] = {}
        present = matrix.support_mask() & tags_mask
        while present:
            bit = present & -present
            present ^= bit
            rows = sortkernel.scatter_tag(matrix.words, bit)
            if len(rows):
                result[bit] = Anf._from_matrix(ctx, TermMatrix.from_sorted(rows))
        return result

    # ------------------------------------------------------------------
    def disjoint_xor(self, pieces: Sequence[Anf], ctx: Context) -> Anf:
        matrices: List[TermMatrix] = []
        for piece in pieces:
            matrix = piece.term_matrix(build=True)
            if matrix is None:
                return SetBackend.disjoint_xor(self, pieces, ctx)
            matrices.append(matrix)
        return Anf._from_matrix(ctx, concat_sorted(matrices))

    # ------------------------------------------------------------------
    def pair_key(self, expr: Anf):
        # Canonical bytes for any set that packs, frozenset otherwise —
        # equal term sets always map to equal keys (see Anf.term_key).
        return expr.term_key()

    # ------------------------------------------------------------------
    def prepare_outputs(self, outputs) -> None:
        # Pack the specification outputs up front: the engine's first
        # iteration then answers literal counts and support queries with
        # popcounts/folds instead of per-term sums over the giant frozensets,
        # and the first ``combine_with_tags`` reuses the matrices as-is.
        for expr in outputs.values():
            expr.term_matrix(build=True)


class ThreadedBackend(PackedBackend):
    """Packed kernels with whole-slab primitives chunked across threads.

    Identical representation and semantics to :class:`PackedBackend`; the
    only difference is that, while active, the module-level kernel functions
    in :mod:`repro.anf.sortkernel` dispatch to
    :mod:`repro.anf.nativekernel`, which partitions large slabs across a
    ``ThreadPoolExecutor`` (numpy releases the GIL inside each chunk) and
    recombines the pieces with deterministic ordered merges — so results
    stay bit-identical to the serial kernels at any thread count.
    """

    name = "threaded"

    def activate(self) -> None:
        from . import nativekernel

        sortkernel.set_parallel(nativekernel)

    def deactivate(self) -> None:
        sortkernel.set_parallel(None)


class NativeBackend(PackedBackend):
    """Packed kernels running on the compiled C extension (when built).

    Installs :mod:`repro.anf.cnative` at both ends of the kernel stack:
    as :mod:`repro.anf.sortkernel`'s parallel seam module (so every public
    whole-slab kernel dispatches to the chunking layer) and as
    :mod:`repro.anf.nativekernel`'s per-chunk serial core (so each chunk
    runs the cache-resident C primitives, which release the GIL).  On one
    configured thread that degenerates to straight serial C calls; with
    ``REPRO_KERNEL_THREADS`` > 1 the chunking is genuinely parallel.

    Without the compiled extension the same seam installs but every
    primitive falls back to the numpy kernels — one :class:`RuntimeWarning`
    says so at activation, and semantics are identical either way (the
    four-backend parity suite asserts it).
    """

    name = "native"

    def activate(self) -> None:
        from . import cnative, nativekernel

        cnative.warn_if_missing()
        nativekernel.set_serial(cnative)
        sortkernel.set_parallel(cnative)

    def deactivate(self) -> None:
        from . import nativekernel

        nativekernel.set_serial(None)
        sortkernel.set_parallel(None)


_BACKENDS: Dict[str, SetBackend] = {
    SetBackend.name: SetBackend(),
    PackedBackend.name: PackedBackend(),
    ThreadedBackend.name: ThreadedBackend(),
    NativeBackend.name: NativeBackend(),
}


def _initial_backend() -> SetBackend:
    name = os.environ.get(BACKEND_ENV, PackedBackend.name)
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown term backend {name!r} from ${BACKEND_ENV} "
            f"(expected one of: {', '.join(sorted(_BACKENDS))})"
        )
    return _BACKENDS[name]


_active = _initial_backend()
_active.activate()


def get_backend() -> SetBackend:
    """The currently active term-set backend."""
    return _active


def set_backend(name: str) -> SetBackend:
    """Activate a backend by name (``"set"``, ``"packed"``, ``"threaded"``
    or ``"native"``)."""
    global _active
    try:
        chosen = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown term backend {name!r} "
            f"(expected one of: {', '.join(sorted(_BACKENDS))})"
        ) from None
    if chosen is not _active:
        _active.deactivate()
        _active = chosen
        chosen.activate()
    return _active


@contextmanager
def using_backend(name: str) -> Iterator[SetBackend]:
    """Temporarily activate a backend (the parity suite runs both)."""
    previous = _active
    backend = set_backend(name)
    try:
        yield backend
    finally:
        set_backend(previous.name)
