"""GF(2) linear algebra lifted to Reed-Muller expressions.

A set of ANF expressions is linearly dependent exactly when one of them is the
XOR of a subset of the others (paper, section 4: "a set of Boolean expressions
is linearly dependent if one of these expressions can be written as the XOR of
a subset of the rest").  These helpers convert expressions into bitmask
vectors over their joint monomial space and reuse :mod:`repro.gf2.vectorspace`.
"""

from __future__ import annotations

from typing import Sequence

from ..anf.expression import Anf
from .vectorspace import XorSpan, find_linear_dependency


class MonomialIndexer:
    """Assigns consecutive indices to the distinct monomials it has seen."""

    __slots__ = ("_index_of",)

    def __init__(self) -> None:
        self._index_of: dict[int, int] = {}

    def vector_of(self, expr: Anf) -> int:
        """Bitmask vector of ``expr`` over the (growing) monomial basis."""
        index_of = self._index_of
        indices = []
        for monomial in expr.term_list():
            index = index_of.get(monomial)
            if index is None:
                index = len(index_of)
                index_of[monomial] = index
            indices.append(index)
        if not indices:
            return 0
        # Assemble the vector through a bytearray: OR-ing ``1 << index`` into
        # a growing bigint is quadratic in the monomial count, which bites on
        # the wide combined expressions of the basis-minimisation step.
        packed = bytearray((max(indices) >> 3) + 1)
        for index in indices:
            packed[index >> 3] |= 1 << (index & 7)
        return int.from_bytes(packed, "little")

    @property
    def num_monomials(self) -> int:
        return len(self._index_of)


def expressions_to_vectors(exprs: Sequence[Anf]) -> list[int]:
    """Encode expressions as GF(2) vectors over their joint monomial space."""
    indexer = MonomialIndexer()
    return [indexer.vector_of(expr) for expr in exprs]


def find_expression_dependency(exprs: Sequence[Anf]) -> tuple[int, list[int]] | None:
    """Find one linear dependency among expressions.

    Returns ``(index, others)`` meaning ``exprs[index]`` equals the XOR of
    ``exprs[j]`` for ``j`` in ``others`` (all ``j < index``), or ``None`` when
    the expressions are linearly independent.  A zero expression is reported
    as depending on the empty list.
    """
    vectors = expressions_to_vectors(exprs)
    dependency = find_linear_dependency(vectors)
    if dependency is None:
        return None
    index, combination = dependency
    others = [j for j in range(index) if combination >> j & 1]
    return index, others


def expression_in_span(target: Anf, exprs: Sequence[Anf]) -> list[int] | None:
    """Express ``target`` as an XOR of some of ``exprs``.

    Returns the list of participating indices, or ``None`` when ``target`` is
    not in the GF(2) span of ``exprs``.
    """
    indexer = MonomialIndexer()
    span = XorSpan()
    for expr in exprs:
        span.add(indexer.vector_of(expr))
    combination = span.combination_for(indexer.vector_of(target))
    if combination is None:
        return None
    # ``combination`` refers to insertion order, which matches ``exprs`` order,
    # but it may use reduced basis bookkeeping; recover participating indices.
    return [j for j in range(len(exprs)) if combination >> j & 1]


def expressions_rank(exprs: Sequence[Anf]) -> int:
    """Rank of the expression set viewed as GF(2) vectors."""
    indexer = MonomialIndexer()
    span = XorSpan()
    for expr in exprs:
        span.add(indexer.vector_of(expr))
    return span.dimension
