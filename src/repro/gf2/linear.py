"""GF(2) linear algebra lifted to Reed-Muller expressions.

A set of ANF expressions is linearly dependent exactly when one of them is the
XOR of a subset of the others (paper, section 4: "a set of Boolean expressions
is linearly dependent if one of these expressions can be written as the XOR of
a subset of the rest").  These helpers convert expressions into bitmask
vectors over their joint monomial space and reuse :mod:`repro.gf2.vectorspace`.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..anf import sortkernel
from ..anf.expression import Anf
from .vectorspace import XorSpan, find_linear_dependency


def _numpy():
    """The kernel layer's numpy handle (one availability flag for the repo)."""
    return sortkernel._np


class MonomialIndexer:
    """Assigns consecutive indices to the distinct monomials it has seen."""

    __slots__ = ("_index_of",)

    def __init__(self) -> None:
        self._index_of: dict[int, int] = {}

    def vector_of(self, expr: Anf) -> int:
        """Bitmask vector of ``expr`` over the (growing) monomial basis."""
        index_of = self._index_of
        indices = []
        for monomial in expr.term_list():
            index = index_of.get(monomial)
            if index is None:
                index = len(index_of)
                index_of[monomial] = index
            indices.append(index)
        if not indices:
            return 0
        # Assemble the vector through a bytearray: OR-ing ``1 << index`` into
        # a growing bigint is quadratic in the monomial count, which bites on
        # the wide combined expressions of the basis-minimisation step.
        packed = bytearray((max(indices) >> 3) + 1)
        for index in indices:
            packed[index >> 3] |= 1 << (index & 7)
        return int.from_bytes(packed, "little")

    @property
    def num_monomials(self) -> int:
        return len(self._index_of)


class MonomialVocabulary:
    """Monomial-coordinate assignment vectorised over shared matrix views.

    Same contract as :class:`MonomialIndexer` — every distinct monomial is
    assigned one stable coordinate for the vocabulary's lifetime — but a
    matrix-backed expression is encoded in a handful of vectorised passes
    over its sorted row slab (binary-search lookup against the sorted base
    vocabulary, bulk assignment of fresh coordinates, one scatter into the
    vector's byte buffer) instead of a dict lookup per term.

    Coordinates are assigned in a different order than a fresh
    :class:`MonomialIndexer` would choose, but linear (in)dependence and the
    unique combination over an independent prefix are basis-independent, so
    every consumer of the vectors computes identical results (the contract
    :class:`repro.core.optimize._DependencyFinder` already relies on for its
    cross-round cache).

    Works without numpy too: the scalar path alone is an indexer.
    """

    __slots__ = ("_base", "_base_ids", "_pending", "_wide", "_next")

    def __init__(self) -> None:
        self._base = None  # sorted uint64 vocabulary rows
        self._base_ids = None  # coordinate of each base row, aligned
        self._pending: Dict[int, int] = {}  # packable rows awaiting a merge
        self._wide: Dict[int, int] = {}  # rows that do not fit 64 bits
        self._next = 0

    # ------------------------------------------------------------------
    def _flush_pending(self) -> None:
        """Merge scalar-assigned packable rows into the sorted base."""
        if not self._pending:
            return
        np = _numpy()
        rows = np.fromiter(self._pending.keys(), dtype=np.uint64, count=len(self._pending))
        ids = np.fromiter(self._pending.values(), dtype=np.int64, count=len(self._pending))
        self._pending.clear()
        self._merge(rows, ids)

    def _merge(self, rows, ids) -> None:
        np = _numpy()
        if self._base is None or not len(self._base):
            order = np.argsort(rows, kind="stable")
            self._base, self._base_ids = rows[order], ids[order]
            return
        merged = np.concatenate((self._base, rows))
        merged_ids = np.concatenate((self._base_ids, ids))
        order = np.argsort(merged, kind="stable")
        self._base, self._base_ids = merged[order], merged_ids[order]

    def _scalar_id(self, monomial: int) -> int:
        if monomial > sortkernel.ROW_MASK:
            index = self._wide.get(monomial)
            if index is None:
                self._wide[monomial] = index = self._next
                self._next += 1
            return index
        index = self._pending.get(monomial)
        if index is not None:
            return index
        np = _numpy()
        if np is not None and self._base is not None and len(self._base):
            position = int(np.searchsorted(self._base, np.uint64(monomial)))
            if position < len(self._base) and int(self._base[position]) == monomial:
                return int(self._base_ids[position])
        self._pending[monomial] = index = self._next
        self._next += 1
        return index

    @staticmethod
    def _vector_from_ids(ids) -> int:
        if not len(ids):
            return 0
        np = _numpy()
        buffer = np.zeros((int(ids.max()) >> 3) + 1, dtype=np.uint8)
        bits = np.left_shift(
            np.uint8(1), (ids & 7).astype(np.uint8), dtype=np.uint8
        )
        np.bitwise_or.at(buffer, ids >> 3, bits)
        return int.from_bytes(buffer.tobytes(), "little")

    # ------------------------------------------------------------------
    #: Term count below which the dict path beats the vectorised one (the
    #: numpy call overhead is fixed per expression, not per term).
    BULK_MIN_TERMS = 256

    def vector_of(self, expr: Anf) -> int:
        """Bitmask vector of ``expr`` over the (growing) monomial basis."""
        np = _numpy()
        matrix = None
        if np is not None and expr.num_terms >= self.BULK_MIN_TERMS:
            matrix = expr.term_matrix(build=True)
        if matrix is None or matrix.count == 0:
            # Scalar path: unpackable expressions (or no numpy at all).
            indices = [self._scalar_id(monomial) for monomial in expr.term_list()]
            if not indices:
                return 0
            packed = bytearray((max(indices) >> 3) + 1)
            for index in indices:
                packed[index >> 3] |= 1 << (index & 7)
            return int.from_bytes(packed, "little")
        self._flush_pending()
        rows = np.frombuffer(matrix.words, dtype=np.uint64)
        ids = np.empty(len(rows), dtype=np.int64)
        if self._base is None or not len(self._base):
            found = np.zeros(len(rows), dtype=bool)
        else:
            positions = np.searchsorted(self._base, rows)
            positions[positions == len(self._base)] = 0
            found = self._base[positions] == rows
            ids[found] = self._base_ids[positions[found]]
        fresh = rows[~found]
        if len(fresh):
            fresh_ids = self._next + np.arange(len(fresh), dtype=np.int64)
            self._next += len(fresh)
            ids[~found] = fresh_ids
            self._merge(fresh, fresh_ids)
        return self._vector_from_ids(ids)

    @property
    def num_monomials(self) -> int:
        return self._next


def expressions_to_vectors(exprs: Sequence[Anf]) -> list[int]:
    """Encode expressions as GF(2) vectors over their joint monomial space."""
    indexer = MonomialIndexer()
    return [indexer.vector_of(expr) for expr in exprs]


def find_expression_dependency(exprs: Sequence[Anf]) -> tuple[int, list[int]] | None:
    """Find one linear dependency among expressions.

    Returns ``(index, others)`` meaning ``exprs[index]`` equals the XOR of
    ``exprs[j]`` for ``j`` in ``others`` (all ``j < index``), or ``None`` when
    the expressions are linearly independent.  A zero expression is reported
    as depending on the empty list.
    """
    vectors = expressions_to_vectors(exprs)
    dependency = find_linear_dependency(vectors)
    if dependency is None:
        return None
    index, combination = dependency
    others = [j for j in range(index) if combination >> j & 1]
    return index, others


def expression_in_span(target: Anf, exprs: Sequence[Anf]) -> list[int] | None:
    """Express ``target`` as an XOR of some of ``exprs``.

    Returns the list of participating indices, or ``None`` when ``target`` is
    not in the GF(2) span of ``exprs``.
    """
    indexer = MonomialIndexer()
    span = XorSpan()
    for expr in exprs:
        span.add(indexer.vector_of(expr))
    combination = span.combination_for(indexer.vector_of(target))
    if combination is None:
        return None
    # ``combination`` refers to insertion order, which matches ``exprs`` order,
    # but it may use reduced basis bookkeeping; recover participating indices.
    return [j for j in range(len(exprs)) if combination >> j & 1]


def expressions_rank(exprs: Sequence[Anf]) -> int:
    """Rank of the expression set viewed as GF(2) vectors."""
    indexer = MonomialIndexer()
    span = XorSpan()
    for expr in exprs:
        span.add(indexer.vector_of(expr))
    return span.dimension
