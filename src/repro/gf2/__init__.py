"""Exact linear algebra over GF(2) (bitmask vectors and matrices)."""

from .linear import (
    MonomialIndexer,
    expression_in_span,
    expressions_rank,
    expressions_to_vectors,
    find_expression_dependency,
)
from .matrix import GF2Matrix, solve_xor_combination
from .vectorspace import XorSpan, are_linearly_independent, find_linear_dependency, span_rank

__all__ = [
    "GF2Matrix",
    "MonomialIndexer",
    "XorSpan",
    "are_linearly_independent",
    "expression_in_span",
    "expressions_rank",
    "expressions_to_vectors",
    "find_expression_dependency",
    "find_linear_dependency",
    "solve_xor_combination",
    "span_rank",
]
