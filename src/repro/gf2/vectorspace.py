"""Incremental GF(2) spans and dependence detection on bitmask vectors."""

from __future__ import annotations

from typing import Iterable, Sequence


class XorSpan:
    """An incrementally built GF(2) vector space of integer bitmask vectors.

    Supports adding vectors one at a time, testing membership, and recovering
    which previously inserted vectors combine to a given one.
    """

    __slots__ = ("_basis", "_num_inserted")

    def __init__(self, vectors: Iterable[int] = ()) -> None:
        # Triangular basis keyed by the lowest set bit of each stored row:
        # low_bit -> (reduced_vector, combination_over_inserted_indices)
        self._basis: dict[int, tuple[int, int]] = {}
        self._num_inserted = 0
        for vector in vectors:
            self.add(vector)

    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        """Rank of the span."""
        return len(self._basis)

    @property
    def num_inserted(self) -> int:
        """How many vectors have been offered via :meth:`add`."""
        return self._num_inserted

    def _reduce(self, vector: int, combo: int) -> tuple[int, int]:
        basis = self._basis
        while vector:
            lead = vector & -vector
            entry = basis.get(lead)
            if entry is None:
                break
            reduced, reduced_combo = entry
            vector ^= reduced
            combo ^= reduced_combo
        return vector, combo

    def contains(self, vector: int) -> bool:
        """True when ``vector`` is an XOR of already-inserted vectors."""
        reduced, _ = self._reduce(vector, 0)
        return reduced == 0

    def combination_for(self, vector: int) -> int | None:
        """Bitmask over inserted indices whose XOR equals ``vector``.

        Returns ``None`` when ``vector`` is outside the span.  The returned
        combination refers to insertion order (bit *i* = the *i*-th vector
        given to :meth:`add`).
        """
        reduced, combo = self._reduce(vector, 0)
        if reduced:
            return None
        return combo

    def add(self, vector: int) -> bool:
        """Insert a vector.

        Returns ``True`` when the vector enlarged the span, ``False`` when it
        was already dependent on previous insertions.
        """
        index = self._num_inserted
        self._num_inserted += 1
        reduced, combo = self._reduce(vector, 1 << index)
        if reduced == 0:
            return False
        self._basis[reduced & -reduced] = (reduced, combo)
        return True

    def add_and_explain(self, vector: int) -> int | None:
        """Insert a vector; if dependent, return the combination explaining it.

        The combination is a bitmask over previously inserted indices (it does
        not include the vector just offered).  Returns ``None`` when the
        vector was independent (and is now part of the span).
        """
        index = self._num_inserted
        self._num_inserted += 1
        reduced, combo = self._reduce(vector, 1 << index)
        if reduced == 0:
            return combo ^ (1 << index)
        self._basis[reduced & -reduced] = (reduced, combo)
        return None


def find_linear_dependency(vectors: Sequence[int]) -> tuple[int, int] | None:
    """Find one linear dependency among the given vectors.

    Returns ``(index, combination)`` meaning ``vectors[index]`` equals the XOR
    of the vectors selected by ``combination`` (a bitmask over indices smaller
    than ``index``), or ``None`` when the vectors are linearly independent.
    The zero vector is reported as depending on the empty combination.
    """
    span = XorSpan()
    for index, vector in enumerate(vectors):
        combo = span.add_and_explain(vector)
        if combo is not None:
            return index, combo
    return None


def are_linearly_independent(vectors: Sequence[int]) -> bool:
    """True when no vector is an XOR of the others (and none is zero)."""
    return find_linear_dependency(vectors) is None


def span_rank(vectors: Iterable[int]) -> int:
    """Rank of the span of the given vectors."""
    return XorSpan(vectors).dimension
