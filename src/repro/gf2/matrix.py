"""Dense GF(2) matrices stored as integer bitmask rows.

The decomposition engine needs exact linear algebra over GF(2) (linear
dependence of basis elements, solving for XOR combinations).  Rows are Python
integers whose bit *j* is the entry in column *j*; this keeps elimination fast
even for a few thousand columns.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class GF2Matrix:
    """A matrix over GF(2) with bitmask rows."""

    __slots__ = ("_rows", "_num_cols")

    def __init__(self, rows: Iterable[int], num_cols: int) -> None:
        rows = list(rows)
        if num_cols < 0:
            raise ValueError("number of columns must be non-negative")
        # bit_length keeps validation O(1) per row; building ``1 << num_cols``
        # allocated a multi-thousand-bit integer for wide matrices.
        for row in rows:
            if row < 0 or row.bit_length() > num_cols:
                raise ValueError("row bitmask does not fit in the declared column count")
        self._rows = rows
        self._num_cols = num_cols

    # ------------------------------------------------------------------
    @property
    def rows(self) -> list[int]:
        return list(self._rows)

    @property
    def num_rows(self) -> int:
        return len(self._rows)

    @property
    def num_cols(self) -> int:
        return self._num_cols

    def entry(self, row: int, col: int) -> int:
        if not 0 <= col < self._num_cols:
            raise IndexError("column out of range")
        return (self._rows[row] >> col) & 1

    @classmethod
    def from_lists(cls, rows: Sequence[Sequence[int]]) -> "GF2Matrix":
        """Build from lists of 0/1 entries (row-major)."""
        if not rows:
            return cls([], 0)
        num_cols = len(rows[0])
        masks = []
        for row in rows:
            if len(row) != num_cols:
                raise ValueError("all rows must have the same length")
            mask = 0
            for j, value in enumerate(row):
                if value & 1:
                    mask |= 1 << j
            masks.append(mask)
        return cls(masks, num_cols)

    def to_lists(self) -> list[list[int]]:
        return [[(row >> j) & 1 for j in range(self._num_cols)] for row in self._rows]

    # ------------------------------------------------------------------
    # Elimination
    # ------------------------------------------------------------------
    def row_reduce(self) -> tuple[list[int], list[int], list[int]]:
        """Gaussian elimination.

        Returns ``(reduced_rows, pivot_cols, combos)`` where ``combos[i]`` is a
        bitmask over the *original* row indices describing which original rows
        were XORed to produce ``reduced_rows[i]``.  Zero rows are kept in place
        so the row count is preserved.
        """
        rows = list(self._rows)
        combos = [1 << i for i in range(len(rows))]
        pivot_cols: list[int] = []
        pivot_rows: list[int] = []
        current_row = 0
        for col in range(self._num_cols):
            bit = 1 << col
            pivot = None
            for r in range(current_row, len(rows)):
                if rows[r] & bit:
                    pivot = r
                    break
            if pivot is None:
                continue
            rows[current_row], rows[pivot] = rows[pivot], rows[current_row]
            combos[current_row], combos[pivot] = combos[pivot], combos[current_row]
            for r in range(len(rows)):
                if r != current_row and rows[r] & bit:
                    rows[r] ^= rows[current_row]
                    combos[r] ^= combos[current_row]
            pivot_cols.append(col)
            pivot_rows.append(current_row)
            current_row += 1
            if current_row == len(rows):
                break
        return rows, pivot_cols, combos

    def rank(self) -> int:
        """Rank over GF(2)."""
        _, pivots, _ = self.row_reduce()
        return len(pivots)

    def nullspace_basis(self) -> list[int]:
        """Basis of the right null space, as column bitmasks.

        Each returned mask ``m`` satisfies: XOR of the columns selected by
        ``m`` is the zero vector (equivalently ``A @ m == 0`` over GF(2)).
        """
        # Work on the transpose: a combination of columns is a combination of
        # rows of the transpose.
        transposed = self.transpose()
        rows, pivot_cols, combos = transposed.row_reduce()
        basis = []
        for i, row in enumerate(rows):
            if row == 0 and combos[i] != 0:
                basis.append(combos[i])
        return basis

    def transpose(self) -> "GF2Matrix":
        new_rows = []
        for col in range(self._num_cols):
            bit = 1 << col
            mask = 0
            for i, row in enumerate(self._rows):
                if row & bit:
                    mask |= 1 << i
            new_rows.append(mask)
        return GF2Matrix(new_rows, len(self._rows))

    def multiply_vector(self, vector: int) -> int:
        """Matrix-vector product over GF(2); ``vector`` selects columns."""
        result = 0
        for i, row in enumerate(self._rows):
            if (row & vector).bit_count() & 1:
                result |= 1 << i
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"GF2Matrix({self.num_rows}x{self.num_cols})"


def solve_xor_combination(targets: Sequence[int], goal: int, num_cols: int = 0) -> int | None:
    """Express ``goal`` as an XOR of some of ``targets`` (all column bitmasks).

    Returns a bitmask over the indices of ``targets`` describing one such
    combination, or ``None`` when ``goal`` is not in their span.  ``num_cols``
    is accepted for symmetry with :class:`GF2Matrix` but is not needed.
    """
    # Triangular basis keyed by the lowest set bit of each stored row.
    basis: dict[int, tuple[int, int]] = {}

    def reduce(row: int, combo: int) -> tuple[int, int]:
        while row:
            lead = row & -row
            entry = basis.get(lead)
            if entry is None:
                break
            brow, bcombo = entry
            row ^= brow
            combo ^= bcombo
        return row, combo

    for index, original in enumerate(targets):
        row, combo = reduce(original, 1 << index)
        if row:
            basis[row & -row] = (row, combo)

    residual, residual_combo = reduce(goal, 0)
    if residual:
        return None
    return residual_combo
