"""Benchmark circuit generators for every row of the paper's Table 1."""

from .adder import (
    AdderSpec,
    adder_spec,
    carry_lookahead_adder_netlist,
    prefix_adder_netlist,
    ripple_carry_adder_netlist,
)
from .comparator import (
    ComparatorSpec,
    comparator_spec,
    progressive_comparator_netlist,
    subtracter_carry_comparator_netlist,
)
from .counter import (
    CounterSpec,
    adder_chain_counter_netlist,
    compressor_tree_counter_netlist,
    counter_spec,
)
from .lod import LodSpec, lod_sop, lod_spec
from .lzd import LzdSpec, lzd_sop, lzd_spec, oklobdzija_lzd_netlist
from .majority import MajoritySpec, majority_sop, majority_spec
from .three_input_adder import (
    ThreeInputAdderSpec,
    cascaded_rca_netlist,
    csa_adder_netlist,
    three_input_adder_spec,
)

__all__ = [
    "AdderSpec",
    "ComparatorSpec",
    "CounterSpec",
    "LodSpec",
    "LzdSpec",
    "MajoritySpec",
    "ThreeInputAdderSpec",
    "adder_chain_counter_netlist",
    "adder_spec",
    "carry_lookahead_adder_netlist",
    "cascaded_rca_netlist",
    "comparator_spec",
    "compressor_tree_counter_netlist",
    "counter_spec",
    "csa_adder_netlist",
    "lod_sop",
    "lod_spec",
    "lzd_sop",
    "lzd_spec",
    "majority_sop",
    "majority_spec",
    "oklobdzija_lzd_netlist",
    "prefix_adder_netlist",
    "progressive_comparator_netlist",
    "ripple_carry_adder_netlist",
    "subtracter_carry_comparator_netlist",
    "three_input_adder_spec",
]
