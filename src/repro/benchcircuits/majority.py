"""Majority function benchmarks (the paper's 15-bit majority row).

The straightforward description is the SOP that ORs every combination of
``(n+1)/2`` inputs (6435 cubes of 8 literals for ``n = 15``).  The canonical
Reed-Muller form of the same function is what Progressive Decomposition
consumes; the algorithm is expected to rediscover parallel counters inside it
(Fig. 6 of the paper shows the 7-input case).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List

from ..anf.builders import majority, variables
from ..anf.context import Context
from ..anf.expression import Anf
from ..anf.sop import Cube, Sop


@dataclass
class MajoritySpec:
    """Specification bundle for one majority instance."""

    ctx: Context
    width: int
    inputs: List[str]
    outputs: Dict[str, Anf]
    input_words: List[List[str]]


def majority_spec(width: int = 15, ctx: Context | None = None, prefix: str = "a") -> MajoritySpec:
    """Majority of ``width`` inputs (true when at least ``(width+1)//2`` are one)."""
    if width < 1:
        raise ValueError("majority needs at least one input")
    ctx = ctx or Context()
    bits = ctx.bus(prefix, width)
    expr = majority(variables(ctx, bits), ctx)
    return MajoritySpec(ctx, width, bits, {"maj": expr}, [list(bits)])


def majority_sop(spec: MajoritySpec) -> Dict[str, Sop]:
    """The straightforward SOP: one cube per ``(width+1)//2``-subset of inputs."""
    ctx = spec.ctx
    threshold = (spec.width + 1) // 2
    sop = Sop(ctx)
    for subset in combinations(spec.inputs, threshold):
        sop.add_cube(Cube(ctx.mask_of(subset), 0))
    return {"maj": sop}
