"""Leading Zero Detector (LZD) benchmark circuits.

The LZD takes a ``width``-bit integer ``a[width-1] … a[0]`` (MSB first) and
reports the position of the leading one, i.e. the number of leading zeros.
Outputs:

* ``z0 … z{p-1}`` — the leading-zero count in binary (LSB first), valid when
  some input bit is one; it saturates at ``width-1`` for the all-zero input;
* ``v`` — the "valid" flag (OR of all inputs), as in Oklobdzija's design.

Three descriptions are provided, mirroring the paper's experiments:

* :func:`lzd_spec` — the flat Boolean specification (canonical Reed-Muller);
  this is the description fed both to the baseline flow and to Progressive
  Decomposition;
* :func:`lzd_sop` — the two-level SOP description of Figure 1 (one product
  term per leading-one position);
* :func:`oklobdzija_lzd_netlist` — the manual hierarchical design of Figure 2
  (4-bit blocks computing ``V``/``P1``/``P0``, combined by a second level),
  used for the structural comparison and as a quality reference.

The paper encodes the position 1-based; we use the equivalent 0-based
leading-zero count (the architectures and their costs are identical).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..anf.context import Context
from ..anf.expression import Anf, anf_product
from ..anf.sop import Cube, Sop
from ..circuit import gates
from ..circuit.netlist import Netlist


@dataclass
class LzdSpec:
    """Specification bundle for one LZD instance."""

    ctx: Context
    width: int
    inputs: List[str]
    outputs: Dict[str, Anf]
    input_words: List[List[str]]


def _position_indicators(ctx: Context, bits: List[str], detect_one: bool) -> List[Anf]:
    """``x[i]`` = the first *interesting* bit from the left is at offset ``i``.

    ``detect_one=True`` gives the LZD indicators (leading bits are zero, bit
    ``i`` from the left is one); ``detect_one=False`` gives the LOD/leading-
    zero-search variant used by the paper's LOD benchmark.
    """
    width = len(bits)
    indicators = []
    for i in range(width):
        factors = []
        for j in range(i):
            prefix = Anf.var(ctx, bits[width - 1 - j])
            factors.append(~prefix if detect_one else prefix)
        pivot = Anf.var(ctx, bits[width - 1 - i])
        factors.append(pivot if detect_one else ~pivot)
        indicators.append(anf_product(factors, ctx))
    return indicators


def lzd_spec(width: int = 16, ctx: Context | None = None, prefix: str = "a") -> LzdSpec:
    """Flat LZD specification in canonical Reed-Muller form."""
    if width < 2:
        raise ValueError("LZD needs at least 2 input bits")
    ctx = ctx or Context()
    bits = ctx.bus(prefix, width)
    indicators = _position_indicators(ctx, bits, detect_one=True)
    position_bits = max(1, (width - 1).bit_length())
    outputs: Dict[str, Anf] = {}
    for k in range(position_bits):
        acc = Anf.zero(ctx)
        for i, indicator in enumerate(indicators):
            count = i if i < width else width - 1
            if count >> k & 1:
                acc = acc ^ indicator
        # All-zero input saturates the count at width-1.
        all_zero = anf_product([~Anf.var(ctx, bit) for bit in bits], ctx)
        if (width - 1) >> k & 1:
            acc = acc ^ all_zero
        outputs[f"z{k}"] = acc
    valid = Anf.zero(ctx)
    for bit in bits:
        valid = valid | Anf.var(ctx, bit)
    outputs["v"] = valid
    return LzdSpec(ctx, width, bits, outputs, [list(bits)])


def lzd_sop(spec: LzdSpec) -> Dict[str, Sop]:
    """The Figure-1 style SOP description (one cube per leading-one position)."""
    ctx = spec.ctx
    width = spec.width
    bits = spec.inputs
    position_bits = max(1, (width - 1).bit_length())
    sops: Dict[str, Sop] = {name: Sop(ctx) for name in spec.outputs}

    def cube_for_position(i: int) -> Cube:
        positive = 1 << ctx.index(bits[width - 1 - i])
        negative = 0
        for j in range(i):
            negative |= 1 << ctx.index(bits[width - 1 - j])
        return Cube(positive, negative)

    all_zero_cube = Cube(0, ctx.mask_of(bits))
    for i in range(width):
        cube = cube_for_position(i)
        for k in range(position_bits):
            if i >> k & 1:
                sops[f"z{k}"].add_cube(cube)
        sops["v"].add_cube(cube)
    for k in range(position_bits):
        if (width - 1) >> k & 1:
            sops[f"z{k}"].add_cube(all_zero_cube)
    return sops


def oklobdzija_lzd_netlist(width: int = 16, prefix: str = "a", name: str = "lzd_oklobdzija") -> Netlist:
    """Oklobdzija's hierarchical LZD (Figure 2), generalised to width = 4·m.

    Each 4-bit block produces a valid flag ``V`` and a 2-bit local position
    ``⟨P1 P0⟩``; a second level selects the first valid block and assembles
    the global position (block index concatenated with the local position).
    """
    if width % 4 != 0 or width < 4:
        raise ValueError("the Oklobdzija construction needs a width that is a multiple of 4")
    netlist = Netlist(name)
    bits = [f"{prefix}{i}" for i in range(width)]
    netlist.add_inputs(bits)
    num_blocks = width // 4

    block_valid: List[str] = []
    block_p0: List[str] = []
    block_p1: List[str] = []
    # Block 0 holds the most significant nibble.
    for block in range(num_blocks):
        msb = width - 1 - 4 * block
        b3, b2, b1, b0 = (bits[msb], bits[msb - 1], bits[msb - 2], bits[msb - 3])
        valid = netlist.add_gate(gates.OR, [b3, b2, b1, b0])
        not_b3 = netlist.add_gate(gates.NOT, [b3])
        not_b2 = netlist.add_gate(gates.NOT, [b2])
        # Local position (number of leading zeros within the block, 0..3).
        # P1 = ~b3 & ~b2 ; P0 = ~b3 & (b2 | ~b1)
        p1 = netlist.add_gate(gates.AND, [not_b3, not_b2])
        not_b1 = netlist.add_gate(gates.NOT, [b1])
        b2_or_not_b1 = netlist.add_gate(gates.OR, [b2, not_b1])
        p0 = netlist.add_gate(gates.AND, [not_b3, b2_or_not_b1])
        block_valid.append(valid)
        block_p1.append(p1)
        block_p0.append(p0)

    # Second level: first valid block selects its local position; the block
    # index supplies the upper bits of the global count.
    not_valid: List[str] = [netlist.add_gate(gates.NOT, [v]) for v in block_valid]
    select: List[str] = []
    for block in range(num_blocks):
        terms = [block_valid[block]] + [not_valid[j] for j in range(block)]
        if len(terms) == 1:
            select.append(terms[0])
        else:
            select.append(netlist.add_gate(gates.AND, terms))

    position_bits = max(1, (width - 1).bit_length())
    all_invalid = netlist.add_gate(gates.AND, not_valid) if num_blocks > 1 else not_valid[0]
    for k in range(position_bits):
        contributors: List[str] = []
        for block in range(num_blocks):
            if k < 2:
                local = block_p0[block] if k == 0 else block_p1[block]
                contributors.append(netlist.add_gate(gates.AND, [select[block], local]))
            else:
                if (block >> (k - 2)) & 1:
                    contributors.append(select[block])
        if (width - 1) >> k & 1:
            contributors.append(all_invalid)
        if not contributors:
            out = netlist.constant(0)
        elif len(contributors) == 1:
            out = contributors[0]
        else:
            out = netlist.add_gate(gates.OR, contributors)
        netlist.set_output(f"z{k}", out)
    overall_valid = netlist.add_gate(gates.OR, block_valid) if num_blocks > 1 else block_valid[0]
    netlist.set_output("v", overall_valid)
    return netlist
