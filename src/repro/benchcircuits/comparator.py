"""Magnitude comparator benchmarks — Table 1, "15-bit Comparator".

The function is ``gt = (A > B)`` for two unsigned ``width``-bit operands.

* :func:`comparator_spec` — canonical Boolean specification (what PD
  consumes; PD is expected to rediscover the borrow/carry chain — "the
  comparator function is the same as the sign of the subtraction");
* :func:`progressive_comparator_netlist` — the unoptimised description: the
  MSB-first "compare, and on equality look at the next bit" chain;
* :func:`subtracter_carry_comparator_netlist` — the manual reference: the
  carry-out of ``A - B`` computed by a borrow-ripple subtracter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..anf.context import Context
from ..anf.expression import Anf
from ..anf.word import Word
from ..circuit import gates
from ..circuit.netlist import Netlist


@dataclass
class ComparatorSpec:
    """Specification bundle for one comparator instance."""

    ctx: Context
    width: int
    inputs: List[str]
    outputs: Dict[str, Anf]
    input_words: List[List[str]]


def comparator_spec(width: int = 15, ctx: Context | None = None,
                    prefix_a: str = "a", prefix_b: str = "b") -> ComparatorSpec:
    """Canonical specification of the unsigned comparison ``A > B``."""
    if width < 1:
        raise ValueError("comparator needs at least one bit")
    ctx = ctx or Context()
    a = Word.inputs(ctx, prefix_a, width)
    b = Word.inputs(ctx, prefix_b, width)
    gt = a.greater_than(b)
    a_bits = [f"{prefix_a}{i}" for i in range(width)]
    b_bits = [f"{prefix_b}{i}" for i in range(width)]
    return ComparatorSpec(ctx, width, a_bits + b_bits, {"gt": gt}, [a_bits, b_bits])


def progressive_comparator_netlist(width: int = 15, prefix_a: str = "a", prefix_b: str = "b",
                                   name: str = "comparator_msb_first") -> Netlist:
    """MSB-first comparator chain: compare a bit, fall through on equality."""
    netlist = Netlist(name)
    a = netlist.add_inputs([f"{prefix_a}{i}" for i in range(width)])
    b = netlist.add_inputs([f"{prefix_b}{i}" for i in range(width)])
    # Build the priority chain from the least significant bit upwards: at each
    # position the comparison of the more significant bit either decides the
    # result or, on equality, falls through to the lower bits' verdict.
    result: str | None = None
    for i in range(width):
        not_b = netlist.add_gate(gates.NOT, [b[i]])
        gt_here = netlist.add_gate(gates.AND, [a[i], not_b])
        if result is None:
            result = gt_here
        else:
            equal_here = netlist.add_gate(gates.XNOR, [a[i], b[i]])
            keep_lower = netlist.add_gate(gates.AND, [equal_here, result])
            result = netlist.add_gate(gates.OR, [gt_here, keep_lower])
    netlist.set_output("gt", result if result is not None else netlist.constant(0))
    return netlist


def subtracter_carry_comparator_netlist(width: int = 15, prefix_a: str = "a", prefix_b: str = "b",
                                        name: str = "comparator_subtract") -> Netlist:
    """``A > B`` as the borrow-out of ``B - A`` (ripple borrow chain).

    ``A > B`` holds exactly when computing ``B - A`` underflows, i.e. when the
    final borrow of the subtraction is raised.
    """
    netlist = Netlist(name)
    a = netlist.add_inputs([f"{prefix_a}{i}" for i in range(width)])
    b = netlist.add_inputs([f"{prefix_b}{i}" for i in range(width)])
    borrow: str | None = None
    for i in range(width):
        not_b = netlist.add_gate(gates.NOT, [b[i]])
        if borrow is None:
            borrow = netlist.add_gate(gates.AND, [a[i], not_b])
        else:
            # borrow' = a·~b  |  (a XNOR b)·borrow  == majority(a, ~b, borrow)
            borrow = netlist.add_gate(gates.FA_CARRY, [a[i], not_b, borrow])
    netlist.set_output("gt", borrow if borrow is not None else netlist.constant(0))
    return netlist
