"""Parallel counter (population count) benchmarks — Table 1, "16-bit Counter".

Three descriptions are provided:

* :func:`counter_spec` — the canonical Boolean specification of the
  population count (what PD consumes);
* :func:`adder_chain_counter_netlist` — the paper's "unoptimised" behavioural
  description: the input written as a sum of ``n`` zero-extended one-bit
  integers, implemented as a linear chain of ripple additions (which is what
  a synthesis tool produces from ``a0 + a1 + … + a15`` without
  restructuring);
* :func:`compressor_tree_counter_netlist` — the TGA-style implementation: a
  3:2 carry-save compressor tree followed by a small ripple adder, the manual
  reference the paper compares against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..anf.context import Context
from ..anf.expression import Anf
from ..anf.word import popcount_word
from ..circuit import gates
from ..circuit.netlist import Netlist


@dataclass
class CounterSpec:
    """Specification bundle for one parallel-counter instance."""

    ctx: Context
    width: int
    inputs: List[str]
    outputs: Dict[str, Anf]
    input_words: List[List[str]]


def counter_spec(width: int = 16, ctx: Context | None = None, prefix: str = "a") -> CounterSpec:
    """Population count of ``width`` input bits, as canonical Reed-Muller outputs."""
    if width < 1:
        raise ValueError("counter needs at least one input")
    ctx = ctx or Context()
    bits = ctx.bus(prefix, width)
    count = popcount_word(ctx, [Anf.var(ctx, bit) for bit in bits])
    outputs = count.as_outputs("s")
    return CounterSpec(ctx, width, bits, outputs, [list(bits)])


def _ripple_add(netlist: Netlist, a: List[str], b: List[str], width: int) -> List[str]:
    """Ripple-carry addition of two net vectors inside a netlist."""
    result: List[str] = []
    carry: str | None = None
    zero = None
    for i in range(width):
        bit_a = a[i] if i < len(a) else None
        bit_b = b[i] if i < len(b) else None
        if bit_a is None and bit_b is None:
            if carry is None:
                if zero is None:
                    zero = netlist.constant(0)
                result.append(zero)
            else:
                result.append(carry)
                carry = None
            continue
        if bit_a is None or bit_b is None:
            single = bit_a if bit_a is not None else bit_b
            if carry is None:
                result.append(single)
            else:
                result.append(netlist.add_gate(gates.HA_SUM, [single, carry]))
                carry = netlist.add_gate(gates.HA_CARRY, [single, carry])
            continue
        if carry is None:
            result.append(netlist.add_gate(gates.HA_SUM, [bit_a, bit_b]))
            carry = netlist.add_gate(gates.HA_CARRY, [bit_a, bit_b])
        else:
            result.append(netlist.add_gate(gates.FA_SUM, [bit_a, bit_b, carry]))
            carry = netlist.add_gate(gates.FA_CARRY, [bit_a, bit_b, carry])
    if carry is not None:
        result.append(carry)
    return result[:width] + result[width:]


def adder_chain_counter_netlist(width: int = 16, prefix: str = "a", name: str = "counter_chain") -> Netlist:
    """Linear chain of ripple additions summing the input bits one at a time."""
    netlist = Netlist(name)
    bits = netlist.add_inputs([f"{prefix}{i}" for i in range(width)])
    output_width = width.bit_length()
    accumulator: List[str] = [bits[0]]
    for bit in bits[1:]:
        accumulator = _ripple_add(netlist, accumulator, [bit], output_width)
    for k in range(output_width):
        if k < len(accumulator):
            netlist.set_output(f"s{k}", accumulator[k])
        else:
            netlist.set_output(f"s{k}", netlist.constant(0))
    return netlist


def compressor_tree_counter_netlist(width: int = 16, prefix: str = "a", name: str = "counter_tga") -> Netlist:
    """3:2 compressor tree (Wallace/Dadda style) followed by a ripple adder.

    This plays the role of the TGA reference design: the circuit is built out
    of 3:2 counter blocks with delay-conscious interconnection.
    """
    netlist = Netlist(name)
    bits = netlist.add_inputs([f"{prefix}{i}" for i in range(width)])
    output_width = width.bit_length()
    # columns[w] holds nets of weight 2^w awaiting reduction.
    columns: List[List[str]] = [[] for _ in range(output_width + 1)]
    columns[0] = list(bits)
    for weight in range(output_width + 1):
        column = columns[weight]
        while len(column) >= 2:
            if len(column) >= 3:
                a, b, c = column.pop(0), column.pop(0), column.pop(0)
                column.append(netlist.add_gate(gates.FA_SUM, [a, b, c]))
                carry = netlist.add_gate(gates.FA_CARRY, [a, b, c])
            else:
                a, b = column.pop(0), column.pop(0)
                column.append(netlist.add_gate(gates.HA_SUM, [a, b]))
                carry = netlist.add_gate(gates.HA_CARRY, [a, b])
            if weight + 1 < len(columns):
                columns[weight + 1].append(carry)
    for k in range(output_width):
        column = columns[k]
        if column:
            netlist.set_output(f"s{k}", column[0])
        else:
            netlist.set_output(f"s{k}", netlist.constant(0))
    return netlist
