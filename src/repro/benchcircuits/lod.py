"""Leading One Detector (LOD) benchmark circuits.

Following the paper's description, the LOD is the dual of the LZD: it scans
the input from the left looking for the first *zero* bit.  Its Reed-Muller
form is dramatically smaller than the LZD's (each position indicator is a
product of uncomplemented variables times one complemented variable, i.e.
two monomials), which is why the paper can optimise a 32-bit LOD but not a
32-bit LZD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..anf.context import Context
from ..anf.expression import Anf, anf_product
from ..anf.sop import Cube, Sop
from .lzd import _position_indicators


@dataclass
class LodSpec:
    """Specification bundle for one LOD instance."""

    ctx: Context
    width: int
    inputs: List[str]
    outputs: Dict[str, Anf]
    input_words: List[List[str]]


def lod_spec(width: int = 32, ctx: Context | None = None, prefix: str = "a") -> LodSpec:
    """Flat LOD specification in canonical Reed-Muller form.

    Outputs ``z*`` give the number of leading *ones* (the position of the
    first zero scanning from the MSB), saturating at ``width-1`` for the
    all-one input; ``v`` is true when the input contains at least one zero.
    """
    if width < 2:
        raise ValueError("LOD needs at least 2 input bits")
    ctx = ctx or Context()
    bits = ctx.bus(prefix, width)
    indicators = _position_indicators(ctx, bits, detect_one=False)
    position_bits = max(1, (width - 1).bit_length())
    outputs: Dict[str, Anf] = {}
    all_ones = anf_product([Anf.var(ctx, bit) for bit in bits], ctx)
    for k in range(position_bits):
        acc = Anf.zero(ctx)
        for i, indicator in enumerate(indicators):
            if i >> k & 1:
                acc = acc ^ indicator
        if (width - 1) >> k & 1:
            acc = acc ^ all_ones
        outputs[f"z{k}"] = acc
    valid = Anf.zero(ctx)
    for bit in bits:
        valid = valid | ~Anf.var(ctx, bit)
    outputs["v"] = valid
    return LodSpec(ctx, width, bits, outputs, [list(bits)])


def lod_sop(spec: LodSpec) -> Dict[str, Sop]:
    """The flat SOP description of the LOD (one cube per position)."""
    ctx = spec.ctx
    width = spec.width
    bits = spec.inputs
    position_bits = max(1, (width - 1).bit_length())
    sops: Dict[str, Sop] = {name: Sop(ctx) for name in spec.outputs}

    def cube_for_position(i: int) -> Cube:
        negative = 1 << ctx.index(bits[width - 1 - i])
        positive = 0
        for j in range(i):
            positive |= 1 << ctx.index(bits[width - 1 - j])
        return Cube(positive, negative)

    all_ones_cube = Cube(ctx.mask_of(bits), 0)
    for i in range(width):
        cube = cube_for_position(i)
        for k in range(position_bits):
            if i >> k & 1:
                sops[f"z{k}"].add_cube(cube)
        sops["v"].add_cube(cube)
    for k in range(position_bits):
        if (width - 1) >> k & 1:
            sops[f"z{k}"].add_cube(all_ones_cube)
    return sops
