"""Two-operand adder benchmarks — Table 1, "16-bit Adder".

* :func:`adder_spec` — the canonical Boolean specification of ``A + B``
  (what PD consumes; its Reed-Muller form is the fully expanded carry chain);
* :func:`ripple_carry_adder_netlist` — the unoptimised structural description
  (the paper feeds an RCA description to Design Compiler);
* :func:`carry_lookahead_adder_netlist` — a block carry-lookahead adder;
* :func:`prefix_adder_netlist` — a Kogge-Stone parallel-prefix adder.  The
  last two play the role of the DesignWare reference implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..anf.context import Context
from ..anf.expression import Anf
from ..anf.word import Word
from ..circuit import gates
from ..circuit.netlist import Netlist


@dataclass
class AdderSpec:
    """Specification bundle for one adder instance."""

    ctx: Context
    width: int
    inputs: List[str]
    outputs: Dict[str, Anf]
    input_words: List[List[str]]


def adder_spec(width: int = 16, ctx: Context | None = None,
               prefix_a: str = "a", prefix_b: str = "b") -> AdderSpec:
    """Canonical specification of the ``width``-bit unsigned addition ``A + B``."""
    if width < 1:
        raise ValueError("adder needs at least one bit")
    ctx = ctx or Context()
    a = Word.inputs(ctx, prefix_a, width)
    b = Word.inputs(ctx, prefix_b, width)
    total = a.add(b)
    outputs = total.as_outputs("s")
    a_bits = [f"{prefix_a}{i}" for i in range(width)]
    b_bits = [f"{prefix_b}{i}" for i in range(width)]
    return AdderSpec(ctx, width, a_bits + b_bits, outputs, [a_bits, b_bits])


def ripple_carry_adder_netlist(width: int = 16, prefix_a: str = "a", prefix_b: str = "b",
                               name: str = "adder_rca") -> Netlist:
    """Classic ripple-carry adder built from full-adder cells."""
    netlist = Netlist(name)
    a = netlist.add_inputs([f"{prefix_a}{i}" for i in range(width)])
    b = netlist.add_inputs([f"{prefix_b}{i}" for i in range(width)])
    carry: str | None = None
    for i in range(width):
        if carry is None:
            netlist.set_output(f"s{i}", netlist.add_gate(gates.HA_SUM, [a[i], b[i]]))
            carry = netlist.add_gate(gates.HA_CARRY, [a[i], b[i]])
        else:
            netlist.set_output(f"s{i}", netlist.add_gate(gates.FA_SUM, [a[i], b[i], carry]))
            carry = netlist.add_gate(gates.FA_CARRY, [a[i], b[i], carry])
    netlist.set_output(f"s{width}", carry)
    return netlist


def carry_lookahead_adder_netlist(width: int = 16, block_size: int = 4,
                                  prefix_a: str = "a", prefix_b: str = "b",
                                  name: str = "adder_cla") -> Netlist:
    """Block carry-lookahead adder (generate/propagate per block)."""
    netlist = Netlist(name)
    a = netlist.add_inputs([f"{prefix_a}{i}" for i in range(width)])
    b = netlist.add_inputs([f"{prefix_b}{i}" for i in range(width)])
    generate = [netlist.add_gate(gates.AND, [a[i], b[i]]) for i in range(width)]
    propagate = [netlist.add_gate(gates.XOR, [a[i], b[i]]) for i in range(width)]

    carries: List[str | None] = [None] * (width + 1)
    block_carry: str | None = None
    for start in range(0, width, block_size):
        end = min(start + block_size, width)
        carries[start] = block_carry
        # Carries inside the block, expanded in lookahead form from the block input.
        for i in range(start, end):
            terms: List[str] = [generate[i]]
            for j in range(start, i):
                factors = [generate[j]] + propagate[j + 1:i + 1]
                terms.append(netlist.add_gate(gates.AND, factors) if len(factors) > 1 else factors[0])
            if block_carry is not None:
                factors = [block_carry] + propagate[start:i + 1]
                terms.append(netlist.add_gate(gates.AND, factors) if len(factors) > 1 else factors[0])
            carries[i + 1] = netlist.add_gate(gates.OR, terms) if len(terms) > 1 else terms[0]
        block_carry = carries[end]

    for i in range(width):
        if carries[i] is None:
            netlist.set_output(f"s{i}", propagate[i])
        else:
            netlist.set_output(f"s{i}", netlist.add_gate(gates.XOR, [propagate[i], carries[i]]))
    netlist.set_output(f"s{width}", carries[width])
    return netlist


def prefix_adder_netlist(width: int = 16, prefix_a: str = "a", prefix_b: str = "b",
                         name: str = "adder_kogge_stone") -> Netlist:
    """Kogge-Stone parallel-prefix adder."""
    netlist = Netlist(name)
    a = netlist.add_inputs([f"{prefix_a}{i}" for i in range(width)])
    b = netlist.add_inputs([f"{prefix_b}{i}" for i in range(width)])
    generate = [netlist.add_gate(gates.AND, [a[i], b[i]]) for i in range(width)]
    propagate = [netlist.add_gate(gates.XOR, [a[i], b[i]]) for i in range(width)]
    group_g = list(generate)
    group_p = list(propagate)
    distance = 1
    while distance < width:
        new_g = list(group_g)
        new_p = list(group_p)
        for i in range(distance, width):
            carry_through = netlist.add_gate(gates.AND, [group_p[i], group_g[i - distance]])
            new_g[i] = netlist.add_gate(gates.OR, [group_g[i], carry_through])
            new_p[i] = netlist.add_gate(gates.AND, [group_p[i], group_p[i - distance]])
        group_g, group_p = new_g, new_p
        distance *= 2
    netlist.set_output("s0", propagate[0])
    for i in range(1, width):
        netlist.set_output(f"s{i}", netlist.add_gate(gates.XOR, [propagate[i], group_g[i - 1]]))
    netlist.set_output(f"s{width}", group_g[width - 1])
    return netlist
