"""Three-operand adder benchmarks — Table 1, "12-bit Three-Input Adder".

* :func:`three_input_adder_spec` — canonical specification of ``A + B + C``
  (the flat behavioural description the paper feeds to both tools);
* :func:`cascaded_rca_netlist` — ``RCA(RCA(A, B), C)``: two ripple-carry
  adders in sequence, the naive structural alternative from Table 1;
* :func:`csa_adder_netlist` — the manual reference: a carry-save adder (3:2
  compression per column) followed by a single ripple adder.

The flat Reed-Muller form of a three-operand adder grows very quickly with
the width (the paper's own caveat about Reed-Muller blow-up); the Table 1
harness therefore runs this row at a reduced default width while keeping the
architecture comparison intact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..anf.context import Context
from ..anf.expression import Anf
from ..anf.word import Word
from ..circuit import gates
from ..circuit.netlist import Netlist


@dataclass
class ThreeInputAdderSpec:
    """Specification bundle for one three-operand adder instance."""

    ctx: Context
    width: int
    inputs: List[str]
    outputs: Dict[str, Anf]
    input_words: List[List[str]]


def three_input_adder_spec(width: int = 8, ctx: Context | None = None,
                           prefix_a: str = "a", prefix_b: str = "b",
                           prefix_c: str = "c") -> ThreeInputAdderSpec:
    """Canonical specification of ``A + B + C`` for three ``width``-bit operands."""
    if width < 1:
        raise ValueError("three-input adder needs at least one bit")
    ctx = ctx or Context()
    a = Word.inputs(ctx, prefix_a, width)
    b = Word.inputs(ctx, prefix_b, width)
    c = Word.inputs(ctx, prefix_c, width)
    total = a.add(b).add(c)
    outputs = total.as_outputs("s")
    a_bits = [f"{prefix_a}{i}" for i in range(width)]
    b_bits = [f"{prefix_b}{i}" for i in range(width)]
    c_bits = [f"{prefix_c}{i}" for i in range(width)]
    return ThreeInputAdderSpec(
        ctx, width, a_bits + b_bits + c_bits, outputs, [a_bits, b_bits, c_bits]
    )


def _ripple_add_nets(netlist: Netlist, a: List[str], b: List[str]) -> List[str]:
    """Ripple addition of two net vectors (result one bit wider than the longest)."""
    width = max(len(a), len(b))
    result: List[str] = []
    carry: str | None = None
    for i in range(width):
        bit_a = a[i] if i < len(a) else None
        bit_b = b[i] if i < len(b) else None
        operands = [net for net in (bit_a, bit_b, carry) if net is not None]
        if not operands:
            result.append(netlist.constant(0))
            carry = None
        elif len(operands) == 1:
            result.append(operands[0])
            carry = None
        elif len(operands) == 2:
            result.append(netlist.add_gate(gates.HA_SUM, operands))
            carry = netlist.add_gate(gates.HA_CARRY, operands)
        else:
            result.append(netlist.add_gate(gates.FA_SUM, operands))
            carry = netlist.add_gate(gates.FA_CARRY, operands)
    if carry is not None:
        result.append(carry)
    return result


def cascaded_rca_netlist(width: int = 8, prefix_a: str = "a", prefix_b: str = "b",
                         prefix_c: str = "c", name: str = "three_adder_rca_rca") -> Netlist:
    """``RCA(RCA(A, B), C)``: two ripple-carry adders in sequence."""
    netlist = Netlist(name)
    a = netlist.add_inputs([f"{prefix_a}{i}" for i in range(width)])
    b = netlist.add_inputs([f"{prefix_b}{i}" for i in range(width)])
    c = netlist.add_inputs([f"{prefix_c}{i}" for i in range(width)])
    partial = _ripple_add_nets(netlist, a, b)
    total = _ripple_add_nets(netlist, partial, c)
    for i, net in enumerate(total):
        netlist.set_output(f"s{i}", net)
    return netlist


def csa_adder_netlist(width: int = 8, prefix_a: str = "a", prefix_b: str = "b",
                      prefix_c: str = "c", name: str = "three_adder_csa") -> Netlist:
    """Carry-save adder (one 3:2 compressor per column) followed by one RCA."""
    netlist = Netlist(name)
    a = netlist.add_inputs([f"{prefix_a}{i}" for i in range(width)])
    b = netlist.add_inputs([f"{prefix_b}{i}" for i in range(width)])
    c = netlist.add_inputs([f"{prefix_c}{i}" for i in range(width)])
    sums: List[str] = []
    carries: List[str] = []
    for i in range(width):
        sums.append(netlist.add_gate(gates.FA_SUM, [a[i], b[i], c[i]]))
        carries.append(netlist.add_gate(gates.FA_CARRY, [a[i], b[i], c[i]]))
    # The save vector has weight 2^i, the carry vector weight 2^(i+1): bit 0
    # of the result is the first sum bit; the rest is one ripple addition.
    netlist.set_output("s0", sums[0])
    result = _ripple_add_nets(netlist, sums[1:], carries)
    for offset, net in enumerate(result):
        netlist.set_output(f"s{offset + 1}", net)
    return netlist


__all__ = [
    "ThreeInputAdderSpec",
    "three_input_adder_spec",
    "cascaded_rca_netlist",
    "csa_adder_netlist",
]
