"""Reproduction of the paper's figures.

* Figures 1 vs 2 — interconnect / fan-in statistics of the flat LZD versus
  the hierarchical implementations (Oklobdzija's manual design and the one
  Progressive Decomposition produces);
* Figures 3/4 — the building-block / online-algorithm construction: the
  linear-depth serial realisation versus the log-depth hierarchical one;
* Figure 5 — the algorithm itself (its trace is exposed by
  :meth:`repro.core.Decomposition.trace`);
* Figure 6 — the execution of the algorithm on the 7-bit majority function,
  showing the hidden 4:3 / 3:2 counters and the identities that reduce the
  basis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..benchcircuits import lzd_spec, majority_spec, oklobdzija_lzd_netlist
from ..circuit.convert import sop_to_netlist
from ..circuit.stats import StructureStats, structure_stats
from ..core.decompose import Decomposition, DecompositionOptions, progressive_decomposition
from ..core.structure import decomposition_to_netlist, hierarchy_stats
from ..online.scan import online_adder_spec, online_to_hierarchy_netlist, online_to_serial_netlist
from ..synth.synthesize import synthesize_netlist


@dataclass
class Figure12Result:
    """Structural comparison between the flat and hierarchical 16-bit LZD."""

    flat: StructureStats
    oklobdzija: StructureStats
    progressive: StructureStats
    decomposition: Decomposition

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        return {
            "flat (Fig. 1)": self.flat.as_dict(),
            "Oklobdzija (Fig. 2)": self.oklobdzija.as_dict(),
            "Progressive Decomposition": self.progressive.as_dict(),
        }


def figure1_vs_figure2(width: int = 16) -> Figure12Result:
    """Quantify the motivation figures: interconnect of flat vs hierarchical LZD."""
    from ..benchcircuits.lzd import lzd_sop

    spec = lzd_spec(width)
    flat_netlist = sop_to_netlist(lzd_sop(spec), inputs=spec.inputs, name="lzd_flat_sop")
    manual = oklobdzija_lzd_netlist(width)
    decomposition = progressive_decomposition(
        spec.outputs, DecompositionOptions(), input_words=spec.input_words
    )
    pd_netlist = decomposition_to_netlist(decomposition, name="lzd_progressive")
    return Figure12Result(
        flat=structure_stats(flat_netlist),
        oklobdzija=structure_stats(manual),
        progressive=structure_stats(pd_netlist),
        decomposition=decomposition,
    )


@dataclass
class Figure4Result:
    """Serial vs hierarchical realisation of an online algorithm (Fig. 4)."""

    serial_depth: int
    hierarchical_depth: int
    serial_delay: float
    hierarchical_delay: float
    num_groups: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "num_groups": self.num_groups,
            "serial_depth": self.serial_depth,
            "hierarchical_depth": self.hierarchical_depth,
            "serial_delay_ns": round(self.serial_delay, 3),
            "hierarchical_delay_ns": round(self.hierarchical_delay, 3),
        }


def figure4_online_hierarchy(num_groups: int = 8, bits_per_group: int = 2) -> Figure4Result:
    """Build the Fig. 4 construction for the adder-carry online algorithm."""
    spec = online_adder_spec(bits_per_group)
    serial = online_to_serial_netlist(spec, num_groups)
    hierarchical = online_to_hierarchy_netlist(spec, num_groups)
    serial_synth = synthesize_netlist(serial)
    hierarchical_synth = synthesize_netlist(hierarchical)
    return Figure4Result(
        serial_depth=serial.depth(),
        hierarchical_depth=hierarchical.depth(),
        serial_delay=serial_synth.delay,
        hierarchical_delay=hierarchical_synth.delay,
        num_groups=num_groups,
    )


@dataclass
class Figure6Result:
    """The Fig. 6 execution trace on the 7-bit majority function."""

    decomposition: Decomposition
    counter_blocks_level1: List[str]
    identities: List[str]
    trace: str

    def as_dict(self) -> Dict[str, object]:
        stats = hierarchy_stats(self.decomposition)
        return {
            "blocks": stats.num_blocks,
            "levels": stats.num_levels,
            "level1_blocks": self.counter_blocks_level1,
            "identities": self.identities,
        }


def figure6_majority7_trace(width: int = 7) -> Figure6Result:
    """Run PD on the 7-bit majority and expose the counter discovery trace."""
    spec = majority_spec(width)
    decomposition = progressive_decomposition(
        spec.outputs, DecompositionOptions(), input_words=spec.input_words
    )
    level1 = [
        f"{block.name} = {block.definition.to_str()}"
        for block in decomposition.blocks_at_level(1)
    ]
    identities = []
    for record in decomposition.iterations:
        identities.extend(identity.description for identity in record.identities_found)
    return Figure6Result(
        decomposition=decomposition,
        counter_blocks_level1=level1,
        identities=identities,
        trace=decomposition.trace(),
    )
