"""Synthesis flows used by the evaluation harness.

Three flows mirror the paper's experimental setup:

* **baseline** ("Unoptimised" rows): the specification — behavioural
  expressions or a naive structural description — is synthesised directly.
  The synthesiser applies its local optimisations (cube sharing, factoring,
  Shannon structuring, balanced mapping) but never restructures the
  architecture, which is exactly the behaviour of Design Compiler that the
  paper describes.
* **progressive** ("Progressive Decomposition" rows): the specification is
  first structured by :func:`repro.core.progressive_decomposition`; each
  building block is then synthesised locally and the blocks are composed.
* **manual** (reference rows such as TGA, DesignWare, CSA+adder): a hand
  designed structural netlist is synthesised directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence

from ..anf.expression import Anf
from ..circuit.netlist import Netlist
from ..core.decompose import Decomposition, DecompositionOptions
from ..core.structure import decomposition_to_netlist
from ..engine.batch import decompose_cached
from ..engine.cache import DecompositionCache
from ..synth.library import Library, default_library
from ..synth.synthesize import SynthesisResult, synthesize_expressions, synthesize_netlist


@dataclass
class FlowResult:
    """One synthesised implementation of a benchmark."""

    label: str
    kind: str  # "unoptimised" | "progressive" | "manual"
    synthesis: SynthesisResult
    runtime_seconds: float
    decomposition: Optional[Decomposition] = None
    notes: Dict[str, object] = field(default_factory=dict)

    @property
    def area(self) -> float:
        return self.synthesis.area

    @property
    def delay(self) -> float:
        return self.synthesis.delay

    def summary(self) -> Dict[str, object]:
        data = {
            "label": self.label,
            "kind": self.kind,
            "area_um2": round(self.area, 1),
            "delay_ns": round(self.delay, 3),
            "cells": self.synthesis.num_cells,
            "runtime_s": round(self.runtime_seconds, 2),
        }
        data.update(self.notes)
        return data


def run_baseline_flow(
    outputs: Mapping[str, Anf],
    label: str = "Unoptimised",
    library: Library | None = None,
    strategy: str = "auto",
    shannon_order: Sequence[str] | None = None,
    objective: str = "balanced",
) -> FlowResult:
    """Synthesise a behavioural specification without restructuring it."""
    library = library or default_library()
    start = time.perf_counter()
    result = synthesize_expressions(
        outputs,
        strategy=strategy,
        library=library,
        name=label,
        shannon_order=shannon_order,
        objective=objective,
    )
    elapsed = time.perf_counter() - start
    return FlowResult(label, "unoptimised", result, elapsed)


def run_structural_flow(
    netlist: Netlist,
    label: str,
    library: Library | None = None,
    kind: str = "manual",
) -> FlowResult:
    """Synthesise a structural description (manual reference or naive structure)."""
    library = library or default_library()
    start = time.perf_counter()
    result = synthesize_netlist(netlist, library, name=label)
    elapsed = time.perf_counter() - start
    return FlowResult(label, kind, result, elapsed)


def run_progressive_flow(
    outputs: Mapping[str, Anf],
    input_words: Sequence[Sequence[str]] | None = None,
    label: str = "Progressive Decomposition",
    library: Library | None = None,
    options: DecompositionOptions | None = None,
    block_strategy: str = "auto",
    objective: str = "balanced",
    decomposition: Optional[Decomposition] = None,
    cache: DecompositionCache | None = None,
) -> FlowResult:
    """Structure the specification with Progressive Decomposition, then synthesise.

    The decomposition runs through the pass-pipeline engine.  A precomputed
    ``decomposition`` (e.g. from the batch orchestrator) skips the engine
    entirely; otherwise an optional on-disk ``cache`` is consulted first.
    """
    library = library or default_library()
    start = time.perf_counter()
    cache_hit = False
    if decomposition is None:
        decomposition, cache_hit = decompose_cached(
            outputs, options, input_words=input_words, cache=cache
        )
    netlist = decomposition_to_netlist(
        decomposition, strategy=block_strategy, library=library, objective=objective
    )
    result = synthesize_netlist(netlist, library, name=label)
    elapsed = time.perf_counter() - start
    notes = {
        "blocks": len(decomposition.blocks),
        "levels": decomposition.num_levels,
    }
    if cache_hit:
        notes["decomposition_cached"] = True
    return FlowResult(label, "progressive", result, elapsed, decomposition, notes)
