"""Synthesis flows used by the evaluation harness.

Three flows mirror the paper's experimental setup:

* **baseline** ("Unoptimised" rows): the specification — behavioural
  expressions or a naive structural description — is synthesised directly.
  The synthesiser applies its local optimisations (cube sharing, factoring,
  Shannon structuring, balanced mapping) but never restructures the
  architecture, which is exactly the behaviour of Design Compiler that the
  paper describes.
* **progressive** ("Progressive Decomposition" rows): the specification is
  first structured by :func:`repro.core.progressive_decomposition`; each
  building block is then synthesised locally and the blocks are composed.
* **manual** (reference rows such as TGA, DesignWare, CSA+adder): a hand
  designed structural netlist is synthesised directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Union

from ..anf.canonical import canonical_spec_digest
from ..anf.expression import Anf
from ..circuit.netlist import Netlist
from ..core.decompose import Decomposition, DecompositionOptions
from ..core.structure import decomposition_to_netlist
from ..engine.batch import decompose_cached
from ..engine.cache import (
    DecompositionCache,
    SynthesisCache,
    decomposition_digest,
    library_fingerprint,
    netlist_digest,
    synthesis_cache_key,
)
from ..synth.library import Library, default_library
from ..synth.synthesize import SynthesisResult, synthesize_expressions, synthesize_netlist


@dataclass
class CachedSynthesis:
    """A warm :class:`~repro.engine.cache.SynthesisCache` hit.

    Carries the metric surface of a :class:`SynthesisResult` — everything
    the tables and figures read — without the mapped netlist (which is what
    the cache deliberately does not store).  Consumers needing the netlist
    itself should run without a synthesis cache.
    """

    name: str
    area: float
    delay: float
    num_cells: int
    depth: int

    def summary(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "area_um2": round(self.area, 1),
            "delay_ns": round(self.delay, 3),
            "cells": self.num_cells,
            "depth": self.depth,
        }


AnySynthesis = Union[SynthesisResult, CachedSynthesis]


def _synthesis_metrics(result: SynthesisResult) -> Dict[str, object]:
    return {
        "name": result.name,
        "area": result.area,
        "delay": result.delay,
        "cells": result.num_cells,
        "depth": result.depth,
    }


def _load_cached_synthesis(
    cache: Optional[SynthesisCache], key: Optional[str]
) -> Optional[CachedSynthesis]:
    if cache is None or key is None:
        return None
    record = cache.load(key)
    if record is None:
        return None
    return CachedSynthesis(
        name=str(record.get("name", "")),
        area=float(record["area"]),
        delay=float(record["delay"]),
        num_cells=int(record["cells"]),
        depth=int(record["depth"]),
    )


@dataclass
class FlowResult:
    """One synthesised implementation of a benchmark.

    ``synthesis`` is a full :class:`SynthesisResult` on a cold run and a
    :class:`CachedSynthesis` (metrics only) on a synthesis-cache hit — the
    metric surface (``area``/``delay``/``num_cells``/``depth``/``summary``)
    is identical either way.
    """

    label: str
    kind: str  # "unoptimised" | "progressive" | "manual"
    synthesis: AnySynthesis
    runtime_seconds: float
    decomposition: Optional[Decomposition] = None
    notes: Dict[str, object] = field(default_factory=dict)

    @property
    def area(self) -> float:
        return self.synthesis.area

    @property
    def delay(self) -> float:
        return self.synthesis.delay

    def summary(self) -> Dict[str, object]:
        data = {
            "label": self.label,
            "kind": self.kind,
            "area_um2": round(self.area, 1),
            "delay_ns": round(self.delay, 3),
            "cells": self.synthesis.num_cells,
            "runtime_s": round(self.runtime_seconds, 2),
        }
        data.update(self.notes)
        return data


def run_baseline_flow(
    outputs: Mapping[str, Anf],
    label: str = "Unoptimised",
    library: Library | None = None,
    strategy: str = "auto",
    shannon_order: Sequence[str] | None = None,
    objective: str = "balanced",
    synthesis_cache: SynthesisCache | None = None,
) -> FlowResult:
    """Synthesise a behavioural specification without restructuring it.

    With a ``synthesis_cache``, the spec's canonical digest plus the
    structuring parameters key a metric record; a warm hit skips
    structuring, mapping and timing entirely.
    """
    library = library or default_library()
    start = time.perf_counter()
    key = None
    if synthesis_cache is not None:
        key = synthesis_cache_key(
            canonical_spec_digest(outputs, None),
            library_fingerprint(library),
            {
                "flow": "baseline",
                "strategy": strategy,
                "shannon_order": tuple(shannon_order) if shannon_order else None,
                "objective": objective,
            },
        )
    cached = _load_cached_synthesis(synthesis_cache, key)
    if cached is not None:
        flow = FlowResult(label, "unoptimised", cached, time.perf_counter() - start)
        flow.notes["synthesis_cached"] = True
        return flow
    result = synthesize_expressions(
        outputs,
        strategy=strategy,
        library=library,
        name=label,
        shannon_order=shannon_order,
        objective=objective,
    )
    if synthesis_cache is not None:
        synthesis_cache.store(key, _synthesis_metrics(result))
    elapsed = time.perf_counter() - start
    return FlowResult(label, "unoptimised", result, elapsed)


def run_structural_flow(
    netlist: Netlist,
    label: str,
    library: Library | None = None,
    kind: str = "manual",
    synthesis_cache: SynthesisCache | None = None,
) -> FlowResult:
    """Synthesise a structural description (manual reference or naive structure)."""
    library = library or default_library()
    start = time.perf_counter()
    key = None
    if synthesis_cache is not None:
        key = synthesis_cache_key(
            netlist_digest(netlist),
            library_fingerprint(library),
            {"flow": "structural"},
        )
    cached = _load_cached_synthesis(synthesis_cache, key)
    if cached is not None:
        flow = FlowResult(label, kind, cached, time.perf_counter() - start)
        flow.notes["synthesis_cached"] = True
        return flow
    result = synthesize_netlist(netlist, library, name=label)
    if synthesis_cache is not None:
        synthesis_cache.store(key, _synthesis_metrics(result))
    elapsed = time.perf_counter() - start
    return FlowResult(label, kind, result, elapsed)


def run_progressive_flow(
    outputs: Mapping[str, Anf],
    input_words: Sequence[Sequence[str]] | None = None,
    label: str = "Progressive Decomposition",
    library: Library | None = None,
    options: DecompositionOptions | None = None,
    block_strategy: str = "auto",
    objective: str = "balanced",
    decomposition: Optional[Decomposition] = None,
    cache: DecompositionCache | None = None,
    synthesis_cache: SynthesisCache | None = None,
) -> FlowResult:
    """Structure the specification with Progressive Decomposition, then synthesise.

    The decomposition runs through the pass-pipeline engine.  A precomputed
    ``decomposition`` (e.g. from the batch orchestrator) skips the engine
    entirely; otherwise an optional on-disk ``cache`` is consulted first.
    With a ``synthesis_cache``, the decomposition's structural digest plus
    the structuring parameters key a metric record, so a warm re-run skips
    netlist building, mapping and timing as well.
    """
    library = library or default_library()
    start = time.perf_counter()
    cache_hit = False
    if decomposition is None:
        decomposition, cache_hit = decompose_cached(
            outputs, options, input_words=input_words, cache=cache
        )
    notes: Dict[str, object] = {
        "blocks": len(decomposition.blocks),
        "levels": decomposition.num_levels,
    }
    if cache_hit:
        notes["decomposition_cached"] = True
    key = None
    if synthesis_cache is not None:
        key = synthesis_cache_key(
            decomposition_digest(decomposition),
            library_fingerprint(library),
            {
                "flow": "progressive",
                "block_strategy": block_strategy,
                "objective": objective,
            },
        )
    cached = _load_cached_synthesis(synthesis_cache, key)
    if cached is not None:
        notes["synthesis_cached"] = True
        return FlowResult(
            label, "progressive", cached, time.perf_counter() - start,
            decomposition, notes,
        )
    netlist = decomposition_to_netlist(
        decomposition, strategy=block_strategy, library=library, objective=objective
    )
    result = synthesize_netlist(netlist, library, name=label)
    if synthesis_cache is not None:
        synthesis_cache.store(key, _synthesis_metrics(result))
    elapsed = time.perf_counter() - start
    return FlowResult(label, "progressive", result, elapsed, decomposition, notes)
