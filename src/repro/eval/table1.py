"""Regeneration of the paper's Table 1 (every benchmark row).

Each ``row_*`` function builds the benchmark's specification and reference
implementations, runs the three flows of :mod:`repro.eval.flows`, and returns
a :class:`Table1Row` holding the measured area/delay next to the numbers the
paper reports (for EXPERIMENTS.md).  ``build_table1`` assembles the whole
table; ``format_table1`` prints it in the paper's layout.

Absolute numbers cannot match a commercial 0.13 µm flow; the claims under
test are the *relative* ones: where Progressive Decomposition wins, by
roughly what factor, and where it merely matches the reference design.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..benchcircuits import (
    adder_chain_counter_netlist,
    adder_spec,
    carry_lookahead_adder_netlist,
    cascaded_rca_netlist,
    comparator_spec,
    compressor_tree_counter_netlist,
    counter_spec,
    csa_adder_netlist,
    lod_spec,
    lzd_spec,
    majority_spec,
    oklobdzija_lzd_netlist,
    progressive_comparator_netlist,
    ripple_carry_adder_netlist,
    subtracter_carry_comparator_netlist,
    three_input_adder_spec,
)
from ..core.decompose import Decomposition
from ..engine.batch import BatchJob, BatchOrchestrator
from ..engine.cache import SynthesisCache
from ..synth.library import Library, default_library
from .flows import FlowResult, run_baseline_flow, run_progressive_flow, run_structural_flow


@dataclass
class PaperNumbers:
    """Area/delay the paper reports for one implementation variant."""

    area_um2: float
    delay_ns: float


@dataclass
class Table1Row:
    """One benchmark row: measured variants plus the paper's reference values."""

    circuit: str
    variants: List[FlowResult]
    paper: Dict[str, PaperNumbers] = field(default_factory=dict)
    notes: str = ""

    def variant(self, label_fragment: str) -> FlowResult:
        for variant in self.variants:
            if label_fragment.lower() in variant.label.lower():
                return variant
        raise KeyError(f"no variant matching {label_fragment!r} in row {self.circuit!r}")

    def unoptimised(self) -> FlowResult:
        return next(v for v in self.variants if v.kind == "unoptimised")

    def progressive(self) -> FlowResult:
        return next(v for v in self.variants if v.kind == "progressive")

    def speedup(self) -> float:
        """Delay improvement of PD over the unoptimised description."""
        baseline = self.unoptimised().delay
        improved = self.progressive().delay
        return baseline / improved if improved else float("inf")

    def area_ratio(self) -> float:
        """PD area relative to the unoptimised description (< 1 means smaller)."""
        baseline = self.unoptimised().area
        return self.progressive().area / baseline if baseline else float("inf")


# Reference values transcribed from Table 1 of the paper.
PAPER_TABLE1: Dict[str, Dict[str, PaperNumbers]] = {
    "16-bit LZD/LOD": {
        "Unoptimised (SOP)": PaperNumbers(426.8, 0.36),
        "Progressive Decomposition": PaperNumbers(392.3, 0.30),
    },
    "32-bit LOD": {
        "Unoptimised (SOP)": PaperNumbers(1691.7, 0.54),
        "Progressive Decomposition": PaperNumbers(1062.7, 0.43),
    },
    "15-bit Majority function": {
        "Unoptimised (SOP)": PaperNumbers(2353.5, 0.79),
        "Progressive Decomposition": PaperNumbers(765.5, 0.58),
    },
    "16-bit Counter": {
        "Unoptimised (using adder tree)": PaperNumbers(1251.1, 0.86),
        "Progressive Decomposition": PaperNumbers(1427.3, 0.74),
        "TGA": PaperNumbers(1066.2, 0.71),
    },
    "16-bit Adder": {
        "Unoptimised (Ripple Carry Adder)": PaperNumbers(1866.2, 0.56),
        "Progressive Decomposition": PaperNumbers(1836.9, 0.54),
        "DesignWare": PaperNumbers(1375.5, 0.58),
    },
    "15-bit Comparator": {
        "Unoptimised (progressive comparator)": PaperNumbers(514.9, 0.40),
        "Progressive Decomposition": PaperNumbers(466.6, 0.33),
        "Carry out of Subtracter": PaperNumbers(577.2, 0.40),
    },
    "12-bit Three-Input Adder": {
        "Unoptimised (A + B + C)": PaperNumbers(2058.0, 1.09),
        "RCA(RCA(A, B), C)": PaperNumbers(2426.1, 1.11),
        "Progressive Decomposition": PaperNumbers(1772.8, 0.75),
        "CSA + Adder": PaperNumbers(1646.8, 0.70),
    },
}


def _progressive_variant(
    spec_builder: Callable,
    width: int,
    library: Library,
    pd_decomposition: Optional[Decomposition],
    synthesis_cache: Optional[SynthesisCache] = None,
) -> FlowResult:
    """The Progressive Decomposition variant of a row whose spec feeds nothing else.

    With a precomputed decomposition (batch/orchestrated builds) the flat
    Reed-Muller specification is never needed, so it is not built — at full
    widths that construction is the expensive part of several rows.
    """
    if pd_decomposition is not None:
        return run_progressive_flow(
            {}, None, "Progressive Decomposition", library,
            decomposition=pd_decomposition, synthesis_cache=synthesis_cache,
        )
    spec = spec_builder(width)
    return run_progressive_flow(
        spec.outputs, spec.input_words, "Progressive Decomposition", library,
        synthesis_cache=synthesis_cache,
    )


def row_lzd(width: int = 16, library: Library | None = None,
            pd_decomposition: Optional[Decomposition] = None,
            synthesis_cache: Optional[SynthesisCache] = None) -> Table1Row:
    """Table 1 row "16-bit LZD/LOD"."""
    library = library or default_library()
    spec = lzd_spec(width)
    variants = [
        run_baseline_flow(spec.outputs, "Unoptimised (SOP)", library,
                          synthesis_cache=synthesis_cache),
        run_progressive_flow(spec.outputs, spec.input_words,
                             "Progressive Decomposition", library,
                             decomposition=pd_decomposition,
                             synthesis_cache=synthesis_cache),
        run_structural_flow(oklobdzija_lzd_netlist(width), "Oklobdzija (manual)", library,
                            synthesis_cache=synthesis_cache),
    ]
    return Table1Row(f"{width}-bit LZD/LOD", variants, PAPER_TABLE1.get("16-bit LZD/LOD", {}))


def row_lod(width: int = 32, library: Library | None = None,
            pd_decomposition: Optional[Decomposition] = None,
            synthesis_cache: Optional[SynthesisCache] = None) -> Table1Row:
    """Table 1 row "32-bit LOD"."""
    library = library or default_library()
    spec = lod_spec(width)
    variants = [
        run_baseline_flow(spec.outputs, "Unoptimised (SOP)", library,
                          synthesis_cache=synthesis_cache),
        run_progressive_flow(spec.outputs, spec.input_words,
                             "Progressive Decomposition", library,
                             decomposition=pd_decomposition,
                             synthesis_cache=synthesis_cache),
    ]
    return Table1Row(f"{width}-bit LOD", variants, PAPER_TABLE1.get("32-bit LOD", {}))


def row_majority(width: int = 15, library: Library | None = None,
                 pd_decomposition: Optional[Decomposition] = None,
                 synthesis_cache: Optional[SynthesisCache] = None) -> Table1Row:
    """Table 1 row "15-bit Majority function"."""
    library = library or default_library()
    spec = majority_spec(width)
    variants = [
        run_baseline_flow(spec.outputs, "Unoptimised (SOP)", library,
                          synthesis_cache=synthesis_cache),
        run_progressive_flow(spec.outputs, spec.input_words,
                             "Progressive Decomposition", library,
                             decomposition=pd_decomposition,
                             synthesis_cache=synthesis_cache),
    ]
    return Table1Row(
        f"{width}-bit Majority function", variants,
        PAPER_TABLE1.get("15-bit Majority function", {}),
    )


def row_counter(width: int = 16, library: Library | None = None,
                pd_decomposition: Optional[Decomposition] = None,
                synthesis_cache: Optional[SynthesisCache] = None) -> Table1Row:
    """Table 1 row "16-bit Counter"."""
    library = library or default_library()
    variants = [
        run_structural_flow(adder_chain_counter_netlist(width),
                            "Unoptimised (using adder tree)", library, kind="unoptimised",
                            synthesis_cache=synthesis_cache),
        _progressive_variant(counter_spec, width, library, pd_decomposition,
                             synthesis_cache=synthesis_cache),
        run_structural_flow(compressor_tree_counter_netlist(width), "TGA", library,
                            synthesis_cache=synthesis_cache),
    ]
    return Table1Row(f"{width}-bit Counter", variants, PAPER_TABLE1.get("16-bit Counter", {}))


def row_adder(width: int = 16, library: Library | None = None,
              pd_width: Optional[int] = None,
              pd_decomposition: Optional[Decomposition] = None,
              synthesis_cache: Optional[SynthesisCache] = None) -> Table1Row:
    """Table 1 row "16-bit Adder".

    ``pd_width`` lets callers run Progressive Decomposition at a narrower
    width (its flat Reed-Muller input grows as roughly ``2^width``) while the
    structural variants keep the paper's width.
    """
    library = library or default_library()
    pd_width = pd_width or width
    variants = [
        run_structural_flow(ripple_carry_adder_netlist(width),
                            "Unoptimised (Ripple Carry Adder)", library, kind="unoptimised",
                            synthesis_cache=synthesis_cache),
        _progressive_variant(adder_spec, pd_width, library, pd_decomposition,
                             synthesis_cache=synthesis_cache),
        run_structural_flow(carry_lookahead_adder_netlist(width), "DesignWare (CLA)", library,
                            synthesis_cache=synthesis_cache),
    ]
    notes = ""
    if pd_width != width:
        notes = f"Progressive Decomposition run at {pd_width} bits (Reed-Muller size)"
    return Table1Row(f"{width}-bit Adder", variants, PAPER_TABLE1.get("16-bit Adder", {}), notes)


def row_comparator(width: int = 15, library: Library | None = None,
                   pd_decomposition: Optional[Decomposition] = None,
                   synthesis_cache: Optional[SynthesisCache] = None) -> Table1Row:
    """Table 1 row "15-bit Comparator"."""
    library = library or default_library()
    variants = [
        run_structural_flow(progressive_comparator_netlist(width),
                            "Unoptimised (progressive comparator)", library, kind="unoptimised",
                            synthesis_cache=synthesis_cache),
        _progressive_variant(comparator_spec, width, library, pd_decomposition,
                             synthesis_cache=synthesis_cache),
        run_structural_flow(subtracter_carry_comparator_netlist(width),
                            "Carry out of Subtracter", library,
                            synthesis_cache=synthesis_cache),
    ]
    return Table1Row(f"{width}-bit Comparator", variants,
                     PAPER_TABLE1.get("15-bit Comparator", {}))


def row_three_input_adder(width: int = 8, library: Library | None = None,
                          pd_decomposition: Optional[Decomposition] = None,
                          synthesis_cache: Optional[SynthesisCache] = None) -> Table1Row:
    """Table 1 row "12-bit Three-Input Adder" (default width reduced, see DESIGN.md)."""
    library = library or default_library()
    spec = three_input_adder_spec(width)
    variants = [
        run_baseline_flow(spec.outputs, "Unoptimised (A + B + C)", library,
                          synthesis_cache=synthesis_cache),
        run_structural_flow(cascaded_rca_netlist(width), "RCA(RCA(A, B), C)",
                            library, kind="manual",
                            synthesis_cache=synthesis_cache),
        run_progressive_flow(spec.outputs, spec.input_words,
                             "Progressive Decomposition", library,
                             decomposition=pd_decomposition,
                             synthesis_cache=synthesis_cache),
        run_structural_flow(csa_adder_netlist(width), "CSA + Adder", library,
                            synthesis_cache=synthesis_cache),
    ]
    notes = ""
    if width != 12:
        notes = (
            f"run at {width} bits: the flat Reed-Muller form of a 12-bit three-input "
            "adder is impractically large (the paper's own caveat); the architecture "
            "comparison is width-independent"
        )
    return Table1Row(f"{width}-bit Three-Input Adder", variants,
                     PAPER_TABLE1.get("12-bit Three-Input Adder", {}), notes)


ROW_BUILDERS: Dict[str, Callable[..., Table1Row]] = {
    "lzd": row_lzd,
    "lod": row_lod,
    "majority": row_majority,
    "counter": row_counter,
    "adder": row_adder,
    "comparator": row_comparator,
    "three_input_adder": row_three_input_adder,
}


# Row widths used by ``build_table1``: per row, the structural (quick, full)
# widths and the Progressive Decomposition (quick, full) widths.  They only
# differ for the adder, whose flat Reed-Muller input grows as roughly
# ``2^width`` while the structural variants keep the paper's 16 bits.
ROW_WIDTHS: Dict[str, tuple[tuple[int, int], tuple[int, int]]] = {
    "lzd": ((8, 16), (8, 16)),
    "lod": ((16, 32), (16, 32)),
    "majority": ((7, 15), (7, 15)),
    "counter": ((8, 16), (8, 16)),
    "adder": ((16, 16), (8, 12)),
    "comparator": ((8, 15), (8, 15)),
    "three_input_adder": ((4, 8), (4, 8)),
}

# The specification builder whose outputs the Progressive Decomposition
# variant of each row decomposes (used by the batch orchestrator and the
# full-width sweep test).
PD_SPEC_BUILDERS: Dict[str, Callable] = {
    "lzd": lzd_spec,
    "lod": lod_spec,
    "majority": majority_spec,
    "counter": counter_spec,
    "adder": adder_spec,
    "comparator": comparator_spec,
    "three_input_adder": three_input_adder_spec,
}


def pd_width_for_row(name: str, quick: bool) -> int:
    """Width of the specification the row's PD variant decomposes."""
    return ROW_WIDTHS[name][1][0 if quick else 1]


def _build_row(
    name: str,
    library: Library,
    quick: bool,
    pd_decomposition: Optional[Decomposition] = None,
    synthesis_cache: Optional[SynthesisCache] = None,
) -> Table1Row:
    builder = ROW_BUILDERS[name]
    width = ROW_WIDTHS[name][0][0 if quick else 1]
    pd_width = pd_width_for_row(name, quick)
    if pd_width != width:
        return builder(
            width, library, pd_width=pd_width, pd_decomposition=pd_decomposition,
            synthesis_cache=synthesis_cache,
        )
    return builder(
        width, library, pd_decomposition=pd_decomposition,
        synthesis_cache=synthesis_cache,
    )


def build_table1(
    library: Library | None = None,
    quick: bool = False,
    rows: Sequence[str] | None = None,
    synthesis_cache: SynthesisCache | None = None,
) -> List[Table1Row]:
    """Build every requested row of Table 1 sequentially.

    ``quick`` selects reduced widths so the whole table regenerates in a few
    minutes of pure-Python runtime; the full widths follow the paper except
    where DESIGN.md documents a substitution.  A ``synthesis_cache`` lets
    warm re-runs skip the technology-mapping/timing stage of every variant.
    """
    library = library or default_library()
    selected = list(rows) if rows is not None else list(ROW_BUILDERS)
    return [
        _build_row(name, library, quick, synthesis_cache=synthesis_cache)
        for name in selected
    ]


def build_table1_batch(
    library: Library | None = None,
    quick: bool = False,
    rows: Sequence[str] | None = None,
    cache_dir: str | None = None,
    processes: int | None = None,
    orchestrator: BatchOrchestrator | None = None,
    synthesis_cache: SynthesisCache | None = None,
) -> List[Table1Row]:
    """Build Table 1 with the decompositions run by the batch orchestrator.

    The Progressive Decomposition variants — the expensive part of every row
    — run concurrently in worker processes, and with a ``cache_dir`` their
    results persist on disk so repeated table builds skip the engine
    entirely.  The rows themselves (structural variants, synthesis) are then
    assembled in-process exactly as :func:`build_table1` does; with a
    ``cache_dir`` the synthesis results are cached too (under
    ``<cache_dir>/synth`` unless an explicit ``synthesis_cache`` is given),
    so a fully warm table build skips both the engine and the synthesiser.
    """
    library = library or default_library()
    selected = list(rows) if rows is not None else list(ROW_BUILDERS)
    orchestrator = orchestrator or BatchOrchestrator(cache_dir, processes)
    if synthesis_cache is None and cache_dir is not None:
        synthesis_cache = SynthesisCache(os.path.join(cache_dir, "synth"))
    jobs = [
        BatchJob(name, PD_SPEC_BUILDERS[name], (pd_width_for_row(name, quick),))
        for name in selected
    ]
    results = orchestrator.run(jobs)
    table: List[Table1Row] = []
    for name in selected:
        outcome = results[name]
        row = _build_row(
            name, library, quick, pd_decomposition=outcome.decomposition,
            synthesis_cache=synthesis_cache,
        )
        # run_progressive_flow only timed netlist + synthesis (the engine ran
        # in the orchestrator); fold the worker-side seconds back into the
        # row so runtime_s stays comparable with sequential builds.
        progressive = row.progressive()
        progressive.runtime_seconds += outcome.seconds
        progressive.notes["decomposition_s"] = round(outcome.seconds, 3)
        if outcome.cache_hit:
            progressive.notes["decomposition_cached"] = True
        table.append(row)
    return table


def format_table1(rows: Sequence[Table1Row], include_paper: bool = True) -> str:
    """Render the table in the paper's layout (plus the paper's numbers)."""
    lines: List[str] = []
    header = f"{'implementation':<42} {'area':>10} {'delay':>8}"
    if include_paper:
        header += f"   {'paper area':>10} {'paper delay':>11}"
    for row in rows:
        lines.append(row.circuit)
        lines.append("-" * len(header))
        lines.append(header)
        for variant in row.variants:
            line = f"{variant.label:<42} {variant.area:>9.1f} {variant.delay:>7.3f}ns"
            if include_paper:
                reference = row.paper.get(variant.label) or row.paper.get(
                    _closest_paper_label(variant.label, row.paper)
                )
                if reference is not None:
                    line += f"   {reference.area_um2:>9.1f} {reference.delay_ns:>10.2f}ns"
                else:
                    line += f"   {'-':>9} {'-':>11}"
            lines.append(line)
        if row.notes:
            lines.append(f"  note: {row.notes}")
        lines.append("")
    return "\n".join(lines)


def _closest_paper_label(label: str, paper: Dict[str, PaperNumbers]) -> str:
    lowered = label.lower()
    for key in paper:
        key_low = key.lower()
        if key_low in lowered or lowered in key_low:
            return key
        if "unoptimised" in lowered and "unoptimised" in key_low:
            return key
        if "designware" in lowered and "designware" in key_low:
            return key
        if "tga" in lowered and "tga" in key_low:
            return key
        if "csa" in lowered and "csa" in key_low:
            return key
        if "subtracter" in lowered and "subtracter" in key_low:
            return key
        if "rca(rca" in lowered and "rca(rca" in key_low:
            return key
    return ""
