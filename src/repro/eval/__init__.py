"""Evaluation harness: flows, Table 1 regeneration, figure reproductions."""

from .figures import (
    Figure4Result,
    Figure6Result,
    Figure12Result,
    figure1_vs_figure2,
    figure4_online_hierarchy,
    figure6_majority7_trace,
)
from .flows import FlowResult, run_baseline_flow, run_progressive_flow, run_structural_flow
from .table1 import (
    PAPER_TABLE1,
    PaperNumbers,
    Table1Row,
    build_table1,
    build_table1_batch,
    format_table1,
    pd_width_for_row,
    row_adder,
    row_comparator,
    row_counter,
    row_lod,
    row_lzd,
    row_majority,
    row_three_input_adder,
)

__all__ = [
    "PAPER_TABLE1",
    "PaperNumbers",
    "Figure4Result",
    "Figure6Result",
    "Figure12Result",
    "FlowResult",
    "Table1Row",
    "build_table1",
    "build_table1_batch",
    "figure1_vs_figure2",
    "figure4_online_hierarchy",
    "figure6_majority7_trace",
    "format_table1",
    "pd_width_for_row",
    "row_adder",
    "row_comparator",
    "row_counter",
    "row_lod",
    "row_lzd",
    "row_majority",
    "row_three_input_adder",
    "run_baseline_flow",
    "run_progressive_flow",
    "run_structural_flow",
]
