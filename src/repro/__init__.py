"""Progressive Decomposition (DAC 2007) — full Python reproduction.

Public surface:

* :mod:`repro.anf` — Reed-Muller (Boolean ring) expression engine;
* :mod:`repro.gf2` — exact GF(2) linear algebra;
* :mod:`repro.circuit` — gate-level netlists, simulation, equivalence;
* :mod:`repro.synth` — cell library, structuring, mapping, timing (the
  Design Compiler substitute);
* :mod:`repro.factor` — classical algebraic factorisation baseline;
* :mod:`repro.core` — the Progressive Decomposition result model and entry
  point;
* :mod:`repro.engine` — the pass-pipeline engine behind it, plus the batch
  orchestrator and on-disk result cache;
* :mod:`repro.benchcircuits` — the paper's benchmark circuits;
* :mod:`repro.online` — hierarchies from online algorithms (Theorem 1);
* :mod:`repro.eval` — Table 1 and figure reproduction harness.
"""

from .anf import Anf, Context, Word
from .core import Decomposition, DecompositionOptions, progressive_decomposition
from .engine import BatchOrchestrator, DecompositionCache, Pipeline
from .synth import default_library, synthesize_expressions, synthesize_netlist

__version__ = "1.1.0"

__all__ = [
    "Anf",
    "BatchOrchestrator",
    "Context",
    "Decomposition",
    "DecompositionCache",
    "DecompositionOptions",
    "Pipeline",
    "Word",
    "__version__",
    "default_library",
    "progressive_decomposition",
    "synthesize_expressions",
    "synthesize_netlist",
]
