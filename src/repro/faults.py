"""Deterministic fault injection for the reliability/chaos test harness.

Production code is sprinkled with *named fault sites* — one-line calls that
are inert (a single environment lookup) unless ``REPRO_FAULT_SPEC`` is set.
A fault spec arms one or more sites with an action and a deterministic
trigger, so the chaos suite and ``run_loadgen.py --chaos`` can kill workers,
tear cache writes and delay I/O at exactly reproducible points instead of
hoping a race fires.

Grammar (semicolon-separated clauses)::

    REPRO_FAULT_SPEC = clause (';' clause)*
    clause           = site ['[' filter ']'] ':' action [':' arg] [trigger]
    trigger          = '@' N   fire on the Nth matching hit only
                     | '%' N   fire on every Nth matching hit (N, 2N, ...)
                     | 'x' N   fire on the first N matching hits
                     (default: 'x1' — fire once)

``filter`` is matched as a substring of the ``tag`` the site reports (a
leading ``!`` negates: fire only when the tag does *not* contain it), so a
clause can target one job ("``worker.job[lzd-9]:kill@1``") or everything but
it ("``worker.job[!lzd-9]:kill%7``").

Actions:

``kill``
    SIGKILL the current process (a worker crash, not an exception).
``exc``
    Raise :class:`InjectedFault` (a deterministic in-band failure).
``err``
    Raise :class:`OSError` (an I/O failure at a storage site).
``sleep``
    Sleep ``arg`` seconds (default 1.0) — a slow disk or a hung worker.
``truncate``
    Data sites only: keep the first ``arg`` bytes of the payload
    (default: half) — a torn write that a crashed renamer made visible.
``corrupt``
    Data sites only: overwrite the payload's tail with garbage bytes.
``skip``
    Skip-checked operations only (the rename of a tmp file): return
    without performing the operation, simulating a crash *between* the
    write and the rename — the record never lands, the tmp file remains.

Hit counters live on the parsed plan, which is cached per process keyed by
the exact spec string: counters are **per process**, so every fork-pool
worker counts its own hits (a ``%7`` kill clause kills each worker on *its*
seventh matching hit).  Forked children inherit the parent's counters as of
the fork, which is zero for the usual "server forks workers before any job
runs" topology.

Set ``REPRO_FAULT_STATE`` to a directory to make counters **global**
instead: every process counts hits through one flock-guarded file per
clause, so ``kill@1`` means "kill exactly one worker, ever" — the retry of
the killed job lands in a fresh worker whose trigger is already spent.
This is what gives the chaos suite a deterministic
"worker dies once, supervision recovers" scenario.

Known sites (see ``docs/RELIABILITY.md`` for the full table):

========================  =====================================================
``worker.job``            start of a service/pool job body (tag: circuit-width)
``cache.store``           before a cache record write begins
``cache.store.payload``   the record bytes about to be written (data site)
``cache.store.rename``    between tmp-file write and the atomic rename
``cache.index``           before a job-index write begins
``cache.index.payload``   the job-index bytes about to be written (data site)
``cache.index.rename``    between index tmp write and its rename
``cache.load``            before a cache record read
``admission.admit``       after an admit decision, before its queue cost is
                          booked (tag: client:circuit-width)
``admission.shed``        on a throttle/shed/brownout rejection, before the
                          429 is rendered (tag: client:circuit-width)
========================  =====================================================
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

ENV = "REPRO_FAULT_SPEC"

#: Directory for cross-process hit counters (one flock-guarded file per
#: clause).  Unset: counters are per process (plain attributes, no I/O).
STATE_ENV = "REPRO_FAULT_STATE"

#: Actions that affect control flow at any site.
_CONTROL_ACTIONS = ("kill", "exc", "err", "sleep")
#: Actions that transform a payload at data (``mutate``) sites.
_DATA_ACTIONS = ("truncate", "corrupt")
_ACTIONS = _CONTROL_ACTIONS + _DATA_ACTIONS + ("skip",)


class InjectedFault(RuntimeError):
    """The deterministic exception the ``exc`` action raises."""


class FaultSpecError(ValueError):
    """A malformed ``REPRO_FAULT_SPEC`` value."""


@dataclass
class FaultClause:
    """One armed site: action, optional argument, trigger, tag filter."""

    site: str
    action: str
    arg: Optional[str] = None
    filter: Optional[str] = None
    negate: bool = False
    mode: str = "first"  # 'at' (@N), 'every' (%N), 'first' (xN)
    n: int = 1
    hits: int = field(default=0, compare=False)

    def matches(self, site: str, tag: Optional[str]) -> bool:
        if site != self.site:
            return False
        if self.filter is None:
            return True
        contained = self.filter in (tag or "")
        return not contained if self.negate else contained

    def decide(self, count: int) -> bool:
        """True when the trigger says to act on the ``count``-th matching hit."""
        if self.mode == "at":
            return count == self.n
        if self.mode == "every":
            return count % self.n == 0
        return count <= self.n

    def fires(self) -> bool:
        """Count a matching hit locally; True when the trigger says to act."""
        self.hits += 1
        return self.decide(self.hits)

    def arg_float(self, default: float) -> float:
        if self.arg is None:
            return default
        try:
            return float(self.arg)
        except ValueError:
            raise FaultSpecError(
                f"fault clause {self.site}:{self.action} has non-numeric arg {self.arg!r}"
            )

    def arg_int(self, default: int) -> int:
        return int(self.arg_float(default))


def _parse_clause(text: str) -> FaultClause:
    head, sep, rest = text.partition(":")
    if not sep:
        raise FaultSpecError(f"fault clause {text!r} has no action (want site:action)")
    site = head.strip()
    filter_text: Optional[str] = None
    negate = False
    if "[" in site:
        site, _, filter_part = site.partition("[")
        if not filter_part.endswith("]"):
            raise FaultSpecError(f"unterminated filter in fault clause {text!r}")
        filter_text = filter_part[:-1]
        if filter_text.startswith("!"):
            negate = True
            filter_text = filter_text[1:]
        if not filter_text:
            raise FaultSpecError(f"empty filter in fault clause {text!r}")
    # Trailing trigger: @N / %N / xN.  Scan from the right so an action
    # argument (e.g. sleep:0.5) is never mistaken for a trigger.
    mode, n = "first", 1
    body = rest.strip()
    for marker, mode_name in (("@", "at"), ("%", "every"), ("x", "first")):
        pos = body.rfind(marker)
        if pos > 0 and body[pos + 1:].isdigit():
            # 'x' is only a trigger when it follows the action/arg, i.e. the
            # text before it ends the action token; all action names are
            # marker-free, so a digit suffix is unambiguous.
            mode, n = mode_name, int(body[pos + 1:])
            body = body[:pos]
            break
    if n < 1:
        raise FaultSpecError(f"fault trigger count must be >= 1 in {text!r}")
    action, _, arg = body.partition(":")
    action = action.strip()
    arg = arg.strip() or None
    if action not in _ACTIONS:
        raise FaultSpecError(
            f"unknown fault action {action!r} in {text!r} (want one of {sorted(_ACTIONS)})"
        )
    if not site:
        raise FaultSpecError(f"empty site in fault clause {text!r}")
    return FaultClause(site=site, action=action, arg=arg,
                       filter=filter_text, negate=negate, mode=mode, n=n)


def parse_spec(spec: str) -> List[FaultClause]:
    """Parse a full ``REPRO_FAULT_SPEC`` string into clauses."""
    clauses = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if chunk:
            clauses.append(_parse_clause(chunk))
    return clauses


# ----------------------------------------------------------------------
# Per-process active plan (counters live on the cached clauses)
# ----------------------------------------------------------------------
_plan_spec: Optional[str] = None
_plan_clauses: List[FaultClause] = []


def _active_clauses() -> List[FaultClause]:
    global _plan_spec, _plan_clauses
    spec = os.environ.get(ENV, "")
    if spec != _plan_spec:
        _plan_clauses = parse_spec(spec)
        _plan_spec = spec
    return _plan_clauses


def reset() -> None:
    """Forget the cached plan and all hit counters (test hygiene)."""
    global _plan_spec, _plan_clauses
    _plan_spec = None
    _plan_clauses = []


def _count_hit(index: int, clause: FaultClause) -> int:
    """Record one matching hit; returns the clause's total so far.

    With ``REPRO_FAULT_STATE`` set the count is global across processes
    (flock-guarded file per clause index); otherwise it is the plain
    per-process attribute.  Either way ``clause.hits`` mirrors the latest
    count for :func:`snapshot`.
    """
    state_dir = os.environ.get(STATE_ENV)
    if not state_dir:
        clause.hits += 1
        return clause.hits
    try:
        import fcntl
    except ImportError:  # non-POSIX: fall back to per-process counting
        clause.hits += 1
        return clause.hits
    path = os.path.join(state_dir, f"clause-{index}.count")
    with open(path, "a+", encoding="utf-8") as handle:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        handle.seek(0)
        raw = handle.read().strip()
        count = (int(raw) if raw else 0) + 1
        handle.seek(0)
        handle.truncate()
        handle.write(str(count))
        handle.flush()
    clause.hits = count
    return count


def _fired(site: str, tag: Optional[str]) -> List[FaultClause]:
    fired = []
    for index, clause in enumerate(_active_clauses()):
        if clause.matches(site, tag) and clause.decide(_count_hit(index, clause)):
            fired.append(clause)
    return fired


def _apply_control(clause: FaultClause, site: str) -> None:
    if clause.action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif clause.action == "exc":
        raise InjectedFault(f"injected fault at {site}")
    elif clause.action == "err":
        raise OSError(f"injected I/O fault at {site}")
    elif clause.action == "sleep":
        time.sleep(clause.arg_float(1.0))


def hit(site: str, tag: Optional[str] = None) -> None:
    """Control-flow fault site: may kill, raise, or delay.  Inert when unarmed."""
    if not os.environ.get(ENV):
        return
    for clause in _fired(site, tag):
        _apply_control(clause, site)


def mutate(site: str, data: bytes, tag: Optional[str] = None) -> bytes:
    """Data fault site: may also truncate or corrupt ``data`` before returning it."""
    if not os.environ.get(ENV):
        return data
    for clause in _fired(site, tag):
        if clause.action == "truncate":
            data = data[: clause.arg_int(max(0, len(data) // 2))]
        elif clause.action == "corrupt":
            keep = max(0, len(data) - 16)
            data = data[:keep] + b"\x00\xffGARBAGE\xfe\x00<<<<<"[: len(data) - keep]
        else:
            _apply_control(clause, site)
    return data


def should_skip(site: str, tag: Optional[str] = None) -> bool:
    """Skip-check fault site (e.g. the rename of a written tmp file).

    Returns True when an armed ``skip`` clause fires — the caller must
    abandon the operation exactly as a crash at that point would, leaving
    any partial state (the tmp file) behind.  Control actions also apply
    here, so ``cache.store.rename:kill`` dies *between* write and rename.
    """
    if not os.environ.get(ENV):
        return False
    skip = False
    for clause in _fired(site, tag):
        if clause.action == "skip":
            skip = True
        else:
            _apply_control(clause, site)
    return skip


def snapshot() -> List[Tuple[str, str, int]]:
    """(site, action, hits) per armed clause — observability for tests."""
    return [(c.site, c.action, c.hits) for c in _active_clauses()]
