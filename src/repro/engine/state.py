"""The mutable state threaded through the pass pipeline.

One :class:`EngineState` holds everything the Fig. 5 loop used to keep in
local variables: the evolving output expressions, the building blocks and
per-iteration trace records accumulated so far, the carried identities, and
the per-iteration scratch fields that the passes hand to one another
(current group, basis extraction, proposed names, identity analysis).

The state object is deliberately dumb: every algorithmic decision lives in a
:class:`~repro.engine.passes.Pass`, so a pipeline's behaviour is exactly the
list of passes it runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..anf.backend import get_backend
from ..anf.context import Context
from ..anf.expression import Anf
from ..core.basis import BasisExtraction
from ..core.decompose import Block, Decomposition, DecompositionOptions, IterationRecord
from ..core.grouping import support_of_outputs
from ..core.identities import Identity, IdentityAnalysis


def total_literals(outputs: Mapping[str, Anf]) -> int:
    """The paper's size metric summed over a set of outputs."""
    return sum(expr.literal_count for expr in outputs.values())


def is_terminal(expr: Anf) -> bool:
    """Outputs are terminal once they depend on at most one variable."""
    mask = expr.support_mask
    return mask == 0 or (mask & (mask - 1)) == 0


@dataclass
class EngineState:
    """Decomposition-in-progress: persistent results plus per-iteration scratch."""

    ctx: Context
    options: DecompositionOptions
    original: Dict[str, Anf]
    current: Dict[str, Anf]
    primary_inputs: List[str]
    input_words: List[List[str]]

    # Accumulated results (survive across iterations).
    blocks: List[Block] = field(default_factory=list)
    iterations: List[IterationRecord] = field(default_factory=list)
    identities: List[Anf] = field(default_factory=list)
    level: int = 0
    forced_full_group: bool = False

    # Per-iteration scratch, reset by :meth:`begin_iteration` and filled in
    # stages by the passes.
    active: Dict[str, Anf] = field(default_factory=dict)
    size_before: int = 0
    group: List[str] = field(default_factory=list)
    extraction: Optional[BasisExtraction] = None
    proposed_names: Optional[List[str]] = None
    identities_found: List[Identity] = field(default_factory=list)
    analysis: Optional[IdentityAnalysis] = None
    removed: Dict[str, Anf] = field(default_factory=dict)
    _tagged_combination: Optional[tuple] = field(
        default=None, init=False, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    @classmethod
    def from_outputs(
        cls,
        outputs: Mapping[str, Anf],
        options: DecompositionOptions,
        input_words: Sequence[Sequence[str]] | None = None,
    ) -> "EngineState":
        """Validate a specification and build the initial state for it."""
        if not outputs:
            raise ValueError("progressive_decomposition needs at least one output")
        first_expr = next(iter(outputs.values()))
        ctx = first_expr.ctx
        for expr in outputs.values():
            ctx.require_same(expr.ctx)
        current = dict(outputs)
        get_backend().prepare_outputs(current)
        primary_inputs = support_of_outputs(current, ctx)
        if input_words is None:
            words = [list(primary_inputs)]
        else:
            words = [list(word) for word in input_words]
        return cls(
            ctx=ctx,
            options=options,
            original=dict(outputs),
            current=current,
            primary_inputs=primary_inputs,
            input_words=words,
        )

    # ------------------------------------------------------------------
    def done(self) -> bool:
        """True when every output is reduced to (at most) a literal."""
        return all(is_terminal(expr) for expr in self.current.values())

    def begin_iteration(self) -> None:
        """Advance the level and reset the per-iteration scratch fields."""
        self.level += 1
        self.active = {
            port: expr for port, expr in self.current.items() if not is_terminal(expr)
        }
        self.size_before = total_literals(self.current)
        self.group = []
        self.extraction = None
        self.proposed_names = None
        self.identities_found = []
        self.analysis = None
        self.removed = {}
        self._tagged_combination = None

    def tagged_combination(self) -> tuple:
        """``(combined, tag_of_port)`` for the active outputs, cached per iteration.

        ``findGroup``'s exhaustive scoring and ``findBasis`` both combine
        the same active outputs with the same tags; building the giant
        tagged expression once per iteration (instead of once per consumer)
        removes a full word-parallel tag-multiply + concat-sort over the
        combined matrix from every exhaustive-group iteration.  Pure value
        reuse — the consumers receive exactly what they would have built.
        """
        if self._tagged_combination is None:
            from ..core.basis import combine_with_tags

            self._tagged_combination = combine_with_tags(self.active, self.ctx)
        return self._tagged_combination

    def tagged_split(self, group_mask: int) -> tuple:
        """``(buckets, remainder, tag_of_port)`` of the tagged combination.

        When the iteration already built the combined expression (the
        exhaustive-grouping path caches it for its candidate scoring), it is
        split directly — value reuse, same as :meth:`tagged_combination`.
        Otherwise the fused split→build kernel buckets the active outputs
        without ever materialising the combination (the primary-input
        grouping path, i.e. every iteration of the paper's benchmarks).
        """
        if self._tagged_combination is not None:
            combined, tag_of_port = self._tagged_combination
            buckets, remainder = combined.split_by_group(group_mask)
            return buckets, remainder, tag_of_port
        from ..core.basis import split_with_tags

        return split_with_tags(self.active, group_mask, self.ctx)

    def basis_definitions(self) -> List[Anf]:
        """The current candidate basis (pair firsts of the extraction)."""
        if self.extraction is None:
            raise RuntimeError("no basis extracted yet — run a BasisExtractionPass first")
        return self.extraction.pair_list.firsts()

    def propose_names(self, block_prefix: str) -> List[str]:
        """Name the candidate basis: literals keep their name, blocks get fresh ones.

        Idempotent — the first caller (IdentityAnalysisPass or RewritePass)
        fixes the names for the rest of the iteration.
        """
        if self.proposed_names is None:
            names: List[str] = []
            fresh_index = 0
            for definition in self.basis_definitions():
                if definition.is_literal:
                    names.append(definition.literal_name)
                else:
                    names.append(f"{block_prefix}{self.level}_{fresh_index}")
                    fresh_index += 1
            self.proposed_names = names
        return self.proposed_names

    def finish(self) -> Decomposition:
        """Package the accumulated results."""
        return Decomposition(
            ctx=self.ctx,
            original=self.original,
            outputs=self.current,
            blocks=self.blocks,
            iterations=self.iterations,
            options=self.options,
            primary_inputs=self.primary_inputs,
        )
