"""Per-pass timing collection for the pipeline.

The "Next levers" sections of the ROADMAP used to be written from ad-hoc
cProfile sessions; this module gives the benchmark harness a first-class
breakdown instead.  A collector is a plain dict installed with
:func:`collecting_pass_timings`; while one is active,
:meth:`~repro.engine.pipeline.Pipeline.run` records the wall-clock of every
pass execution (cumulative seconds + call count per pass name, plus the
state-preparation step).  With no collector installed the pipeline pays two
``perf_counter`` reads per iteration at most — nothing is recorded.

Collectors nest (the innermost benchmark wins is *not* the semantics:
every active collector receives every record, so a sweep-level and a
circuit-level breakdown can run simultaneously).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List

#: Stack of active collectors.  The engine is single-threaded per process
#: (parallelism is process-based), so a plain module list suffices.
_active: List[Dict[str, Dict[str, float]]] = []


def active() -> bool:
    """True when at least one collector is installed."""
    return bool(_active)


def record(name: str, seconds: float) -> None:
    """Add one timed execution of ``name`` to every active collector."""
    for sink in _active:
        entry = sink.get(name)
        if entry is None:
            sink[name] = {"seconds": seconds, "calls": 1}
        else:
            entry["seconds"] += seconds
            entry["calls"] += 1


@contextmanager
def timed(name: str) -> Iterator[None]:
    """Record the wall-clock of a block under ``name``.

    The hook for timings that happen *outside* the pass loop — the DAG
    verification engine reports under ``"verify"`` (and the per-iteration
    rewrite gate under ``"verify-steps"``) so ``run_bench.py --profile``
    shows verification next to the passes.  With no collector installed the
    overhead is two ``perf_counter`` reads.
    """
    start = time.perf_counter()
    try:
        yield
    finally:
        record(name, time.perf_counter() - start)


@contextmanager
def collecting_pass_timings(
    sink: Dict[str, Dict[str, float]] | None = None,
) -> Iterator[Dict[str, Dict[str, float]]]:
    """Install a collector for the duration of the block; yields it."""
    if sink is None:
        sink = {}
    _active.append(sink)
    try:
        yield sink
    finally:
        # Remove by identity: two nested collectors receive identical
        # records, so list.remove()'s equality match could drop the outer
        # dict and leave the inner one orphaned-but-active.
        for index, active in enumerate(_active):
            if active is sink:
                del _active[index]
                break


def rounded(sink: Dict[str, Dict[str, float]], digits: int = 4) -> Dict[str, Dict[str, object]]:
    """JSON-friendly copy with seconds rounded and calls as ints."""
    return {
        name: {"seconds": round(entry["seconds"], digits), "calls": int(entry["calls"])}
        for name, entry in sink.items()
    }
