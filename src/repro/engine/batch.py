"""Batch orchestrator: run many specifications through pipelines concurrently.

The evaluation harness, the benchmark sweeps and the online scanner all face
the same workload shape — dozens of independent ``(specification, pipeline
config)`` decomposition jobs — so this module gives them one engine-level
front door:

* :func:`decompose_cached` — decompose one spec, consulting an optional
  on-disk :class:`~repro.engine.cache.DecompositionCache` first;
* :func:`run_job` / :func:`job_fingerprint` — the job API surface: one
  builder-described job run end to end through both cache layers, returning
  a structured :class:`JobOutcome`.  This is the worker body shared by the
  orchestrator below and the HTTP front-end (``repro.service``);
* :class:`BatchOrchestrator` — fan a list of :class:`BatchJob` out over a
  ``multiprocessing`` pool, with every worker sharing the same cache
  directory (writes are atomic, no locking needed);
* :func:`map_parallel` — a generic fan-out helper for non-decomposition work
  (used by the online scanner's width sweeps).

Jobs carry a *spec builder* (an importable callable plus arguments) rather
than built expressions: ``Anf``/``Context`` objects are cheap to rebuild and
expensive to ship between processes.  Results come back as the cache's JSON
records and are rebuilt into full :class:`Decomposition` objects in the
parent, so a batch result is indistinguishable from an in-process run
(modulo context identity).
"""

from __future__ import annotations

import hashlib
import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

# Intra-decomposition pass sharding (REPRO_SHARD_PASSES) lives in
# ``repro.parallel`` — a layer below ``repro.core`` so the core procedures
# can use it without a core -> engine cycle; re-exported here because the
# orchestrator is the engine's parallelism front door.
from ..parallel import (  # noqa: F401  (re-exports)
    SHARD_ENV,
    in_pool_worker,
    mark_pool_worker,
    pool_context,
    shard_chunks,
    shard_map,
    shard_workers,
)
from ..anf.canonical import canonical_spec_digest
from ..anf.expression import Anf
from ..core.decompose import Decomposition, DecompositionOptions
from .cache import (
    ENGINE_CACHE_EPOCH,
    SCHEMA,
    DecompositionCache,
    cache_key,
    deserialize_decomposition,
    serialize_decomposition,
)
from .cost import estimate_batch_job
from .pipeline import Pipeline


# ----------------------------------------------------------------------
# Single-spec entry point (also the per-worker core)
# ----------------------------------------------------------------------
def decompose_cached(
    outputs: Mapping[str, Anf],
    options: DecompositionOptions | None = None,
    input_words: Sequence[Sequence[str]] | None = None,
    cache: DecompositionCache | None = None,
    pipeline: Pipeline | None = None,
) -> Tuple[Decomposition, bool]:
    """Decompose ``outputs``; returns ``(decomposition, cache_hit)``.

    With a ``cache``, the canonical spec digest plus the pipeline's config
    key is looked up first and the result is persisted after a miss.
    """
    pipeline = pipeline or Pipeline.from_options(options)
    if cache is None:
        return pipeline.run(outputs, input_words=input_words, options=options), False
    digest = canonical_spec_digest(outputs, input_words)
    key = cache_key(digest, pipeline.config_key())
    cached = cache.load(key)
    if cached is not None:
        return cached, True
    decomposition = pipeline.run(outputs, input_words=input_words, options=options)
    cache.store(key, decomposition)
    return decomposition, False


# ----------------------------------------------------------------------
# Batch jobs
# ----------------------------------------------------------------------
@dataclass
class BatchJob:
    """One decomposition job: a spec builder plus a pipeline configuration.

    ``builder(*args, **kwargs)`` must return either a mapping of output
    expressions or a spec bundle exposing ``outputs`` (and optionally
    ``input_words``), as every ``repro.benchcircuits`` builder does.  The
    builder must be picklable (any module-level function is).
    """

    name: str
    builder: Callable[..., object]
    args: tuple = ()
    kwargs: Dict[str, object] = field(default_factory=dict)
    options: Optional[DecompositionOptions] = None


@dataclass
class BatchResult:
    """One finished job: the decomposition plus orchestration metadata."""

    name: str
    decomposition: Decomposition
    seconds: float
    cache_hit: bool


def _spec_parts(spec: object) -> Tuple[Mapping[str, Anf], Optional[List[List[str]]]]:
    """Outputs and input words of whatever a spec builder returned."""
    if isinstance(spec, Mapping):
        return spec, None
    outputs = getattr(spec, "outputs", None)
    if outputs is None:
        raise TypeError(
            f"spec builder returned {type(spec).__name__}, which has no 'outputs'"
        )
    return outputs, getattr(spec, "input_words", None)


def job_fingerprint(builder: Callable, args: tuple, kwargs: Mapping[str, object],
                    config_key: str) -> str:
    """Stable fingerprint of a job's (builder identity, arguments, config).

    This is the *job-level* key: it identifies "run this builder with these
    arguments under this pipeline configuration" without building the spec.
    The content-addressed :func:`~repro.engine.cache.cache_key` stays the
    source of truth below it.  Public because the service front-end
    (``repro.service``) deduplicates in-flight submissions by exactly this
    fingerprint.
    """
    rendered = "|".join((
        SCHEMA,
        ENGINE_CACHE_EPOCH,
        f"{getattr(builder, '__module__', '?')}:{getattr(builder, '__qualname__', repr(builder))}",
        repr(args),
        repr(sorted(kwargs.items())),
        config_key,
    ))
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()


@dataclass
class JobOutcome:
    """The result of one decomposition job run through :func:`run_job`.

    ``record`` is the cache's JSON-serialisable decomposition record
    (rebuild with :func:`~repro.engine.cache.deserialize_decomposition`);
    ``cache_hit`` says whether the decomposition was loaded rather than
    computed; ``content_key``/``job_key`` are the cache coordinates it was
    stored (or found) under, when a cache was in play.
    """

    record: dict
    seconds: float
    cache_hit: bool
    content_key: Optional[str] = None
    job_key: Optional[str] = None


def run_job(
    builder: Callable[..., object],
    args: tuple = (),
    kwargs: Mapping[str, object] | None = None,
    options: DecompositionOptions | None = None,
    cache_dir: str | os.PathLike | None = None,
    use_job_index: bool = True,
) -> JobOutcome:
    """Run one decomposition job end to end; the engine's job API surface.

    This is the worker body shared by the batch orchestrator and the service
    front-end: with a cache, the job index is consulted first (a hit skips
    rebuilding and re-hashing the specification entirely and streams the
    stored record back); on an index miss the spec is built, content-keyed,
    decomposed (or loaded), and both cache layers are updated.
    """
    kwargs = dict(kwargs or {})
    cache = DecompositionCache(cache_dir) if cache_dir else None
    start = time.perf_counter()
    pipeline = Pipeline.from_options(options)
    job_key = None
    if cache is not None and use_job_index:
        job_key = job_fingerprint(builder, args, kwargs, pipeline.config_key())
        content_key = cache.load_index(job_key)
        if content_key is not None:
            record = cache.load_raw(content_key)
            if record is not None:
                return JobOutcome(record, time.perf_counter() - start, True,
                                  content_key, job_key)
    spec = builder(*args, **kwargs)
    outputs, input_words = _spec_parts(spec)
    if cache is None:
        decomposition = pipeline.run(outputs, input_words=input_words, options=options)
        return JobOutcome(serialize_decomposition(decomposition),
                          time.perf_counter() - start, False)
    digest = canonical_spec_digest(outputs, input_words)
    content_key = cache_key(digest, pipeline.config_key())
    record = cache.load_raw(content_key)
    hit = record is not None
    if record is None:
        decomposition = pipeline.run(outputs, input_words=input_words, options=options)
        record = cache.store(content_key, decomposition)
    if job_key is not None:
        cache.store_index(job_key, content_key)
    return JobOutcome(record, time.perf_counter() - start, hit, content_key, job_key)


def _execute_job(payload: tuple) -> Tuple[str, dict, float, bool]:
    """Pool-worker wrapper around :func:`run_job` (picklable payload tuple)."""
    name, builder, args, kwargs, options, cache_dir, use_job_index = payload
    outcome = run_job(builder, args, kwargs, options, cache_dir, use_job_index)
    return name, outcome.record, outcome.seconds, outcome.cache_hit


# ----------------------------------------------------------------------
# Generic parallel map
# ----------------------------------------------------------------------
def _pool_processes(requested: Optional[int], num_items: int) -> int:
    if requested is not None:
        return max(1, min(requested, num_items))
    return max(1, min(os.cpu_count() or 1, num_items))


def map_parallel(func: Callable, items: Sequence, processes: Optional[int] = None) -> list:
    """Apply a picklable function to every item, forking when it pays off.

    ``processes=1`` (or a single item) degrades to a plain in-process loop,
    which keeps the orchestrator usable in environments where forking is
    restricted (set ``processes=1`` there).

    The pool is a :class:`~concurrent.futures.ProcessPoolExecutor`, whose
    broken-pool detection is the supervision primitive: when any worker dies
    mid-batch (OOM kill, segfault, SIGKILL) every pending future raises
    :class:`BrokenProcessPool` instead of hanging.  The whole map then
    re-runs serially in-process with a ``RuntimeWarning`` — ``func`` is pure,
    so the rerun produces identical results.
    """
    items = list(items)
    if not items:
        return []
    if in_pool_worker():
        # A job body already running under a worker pool must not fork a
        # second level of workers.
        return [func(item) for item in items]
    workers = _pool_processes(processes, len(items))
    if workers == 1:
        return [func(item) for item in items]
    try:
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=pool_context(),
            initializer=mark_pool_worker,
        ) as pool:
            return list(pool.map(func, items, chunksize=1))
    except BrokenProcessPool:
        warnings.warn(
            "a batch worker died mid-run; re-running the batch serially "
            "in-process (results are unaffected)",
            RuntimeWarning,
            stacklevel=2,
        )
        return [func(item) for item in items]


# ----------------------------------------------------------------------
# The orchestrator
# ----------------------------------------------------------------------
class BatchOrchestrator:
    """Run decomposition jobs concurrently against a shared on-disk cache.

    The cache is content-addressed (canonical spec digest + pipeline config);
    on top of it a job index keyed by the builder's qualified name and
    arguments lets warm re-runs skip spec construction and hashing entirely.
    Pass ``use_job_index=False`` to force content-only keying (e.g. while
    iterating on a spec builder's implementation).
    """

    def __init__(
        self,
        cache_dir: str | os.PathLike | None = None,
        processes: Optional[int] = None,
        use_job_index: bool = True,
    ) -> None:
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.processes = processes
        self.use_job_index = use_job_index
        if self.cache_dir is not None:
            # Create the directory up front so concurrent workers never race
            # on mkdir, and so a bad path fails in the parent.
            DecompositionCache(self.cache_dir)

    def run(self, jobs: Sequence[BatchJob]) -> Dict[str, BatchResult]:
        """Execute every job; returns ``{job name: BatchResult}``.

        Job names must be unique — they key the result dict.
        """
        jobs = list(jobs)
        names = [job.name for job in jobs]
        if len(set(names)) != len(names):
            raise ValueError("batch job names must be unique")
        # Dispatch longest-first (LPT): the cost model prices each job
        # pre-execution so the pool never starts its heaviest job last and
        # idles N-1 workers behind one straggler.  The sort key is the
        # estimate, the tiebreaker is submission order (sorted() is stable).
        order = sorted(
            range(len(jobs)),
            key=lambda i: -estimate_batch_job(
                jobs[i].builder, jobs[i].args, jobs[i].kwargs
            ),
        )
        payloads = [
            (job.name, job.builder, job.args, dict(job.kwargs), job.options,
             self.cache_dir, self.use_job_index)
            for job in (jobs[i] for i in order)
        ]
        raw = map_parallel(_execute_job, payloads, processes=self.processes)
        by_name: Dict[str, BatchResult] = {}
        for name, record, seconds, hit in raw:
            by_name[name] = BatchResult(
                name=name,
                decomposition=deserialize_decomposition(record),
                seconds=seconds,
                cache_hit=hit,
            )
        # Callers iterate results in submission order; undo the LPT shuffle.
        return {name: by_name[name] for name in names}
