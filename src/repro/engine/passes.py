"""The composable passes of the Progressive Decomposition pipeline.

Each pass is one stage of the paper's Fig. 5 loop, lifted out of the former
monolithic ``while`` body in ``core/decompose.py``:

=======================  =========================================================
Pass                     Fig. 5 stage
=======================  =========================================================
GroupingPass             ``findGroup`` (plus the full-group stall fallback)
BasisExtractionPass      ``findBasis``: tag combination, initial pairs, equal-part
                         merge
NullspaceMergePass       the Boolean-division pair merge (``use_nullspaces``)
LinearDependencePass     GF(2) basis minimisation (``use_linear_dependence``)
SizeReductionPass        greedy local size reduction (``use_size_reduction``)
IdentityAnalysisPass     ``findIdentities`` + basis reduction (``use_identities``)
RewritePass              block creation, ``rewriteExpr``, identity carry, trace
=======================  =========================================================

A pass is an object with a ``name``, a ``params()`` mapping (for the cache
config key) and a ``run(state)`` method mutating an
:class:`~repro.engine.state.EngineState` in place.  Optional stages are
expressed as pass *presence*: an ablation is a pipeline with the pass left
out, not a flag threaded through a closed loop.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from ..anf.expression import Anf
from ..core.basis import extract_basis
from ..core.decompose import Block, IterationRecord
from ..core.grouping import find_group, support_of_outputs
from ..core.identities import find_identities, reduce_basis_using_identities
from ..core.optimize import improve_basis_by_size_reduction, minimize_basis_by_linear_dependence
from ..core.pairs import merge_with_nullspaces
from ..core.rewrite import rewrite_identities, rewrite_outputs
from ..core.verify import VerificationError, check_rewrite_invariant
from .state import EngineState, total_literals

#: Environment switch for the per-iteration rewrite gate: every rewrite step
#: is checked to exactly reconstruct its pre-rewrite expressions (one-level
#: DAG substitution), so a gated run's final decomposition verifies by
#: induction.  The DAG verification engine made this cheap enough to leave
#: on in production pipelines.
VERIFY_STEPS_ENV = "REPRO_VERIFY_STEPS"


def _verify_steps_default() -> bool:
    value = os.environ.get(VERIFY_STEPS_ENV, "").strip().lower()
    return bool(value) and value not in ("0", "false", "no", "off")


class Pass:
    """Base class: one composable stage of the decomposition pipeline."""

    name: str = "pass"

    def params(self) -> Dict[str, object]:
        """Configuration that distinguishes this pass instance (for cache keys)."""
        return {}

    def run(self, state: EngineState) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def __repr__(self) -> str:
        params = ", ".join(f"{key}={value!r}" for key, value in self.params().items())
        return f"{type(self).__name__}({params})"


class GroupingPass(Pass):
    """Choose the next group of (at most) ``k`` variables (``findGroup``)."""

    name = "grouping"

    def __init__(self, k: int = 4) -> None:
        self.k = k

    def params(self) -> Dict[str, object]:
        return {"k": self.k}

    def run(self, state: EngineState) -> None:
        if state.forced_full_group:
            group = support_of_outputs(state.active, state.ctx)
        else:
            group = find_group(
                state.active, self.k, state.ctx,
                state.primary_inputs, state.input_words, state.identities,
                tagged_combination=state.tagged_combination,
            )
        if not group:
            group = support_of_outputs(state.active, state.ctx)
        state.group = group


class BasisExtractionPass(Pass):
    """``findBasis``: combine the outputs with tags and merge equal parts.

    The null-space pair merge is NOT part of this pass — it belongs to
    :class:`NullspaceMergePass`, so ``use_nullspaces`` ablations are pass
    presence like every other flag.
    """

    name = "basis"

    def run(self, state: EngineState) -> None:
        # The fused split→build path: bucket the active outputs directly
        # (the tagged combination only materialises if this iteration's
        # grouping already built it for exhaustive candidate scoring).
        group_mask = state.ctx.mask_of(state.group)
        state.extraction = extract_basis(
            state.active, state.group, state.identities, state.ctx,
            use_nullspaces=False,
            pre_split=state.tagged_split(group_mask),
        )


class NullspaceMergePass(Pass):
    """The Boolean-division style pair merge driven by the null-space table."""

    name = "nullspace-merge"

    def run(self, state: EngineState) -> None:
        extraction = state.extraction
        extraction.pair_list = merge_with_nullspaces(extraction.pair_list)


class LinearDependencePass(Pass):
    """Remove pairs whose first (or second) is an XOR of the others (§5.3)."""

    name = "linear-dependence"

    def run(self, state: EngineState) -> None:
        extraction = state.extraction
        extraction.pair_list = minimize_basis_by_linear_dependence(extraction.pair_list)


class SizeReductionPass(Pass):
    """Greedy exact rewrites that shrink the pair list's literal count (§5.4)."""

    name = "size-reduction"

    def run(self, state: EngineState) -> None:
        extraction = state.extraction
        extraction.pair_list = improve_basis_by_size_reduction(extraction.pair_list)


class IdentityAnalysisPass(Pass):
    """``findIdentities`` over the prospective blocks, then basis reduction (§5.5)."""

    name = "identities"

    def __init__(self, max_products: int = 3, block_prefix: str = "t") -> None:
        self.max_products = max_products
        self.block_prefix = block_prefix

    def params(self) -> Dict[str, object]:
        return {"max_products": self.max_products, "block_prefix": self.block_prefix}

    def run(self, state: EngineState) -> None:
        definitions = state.basis_definitions()
        if not definitions:
            return
        names = state.propose_names(self.block_prefix)
        state.identities_found = find_identities(
            names, definitions, state.ctx, self.max_products
        )
        state.analysis = reduce_basis_using_identities(
            names, definitions, state.identities_found, state.ctx
        )
        state.removed = dict(state.analysis.replacements)


class RewritePass(Pass):
    """Create the blocks, rewrite the outputs, carry identities, record the trace.

    With ``verify_steps`` (default: the ``REPRO_VERIFY_STEPS`` environment
    switch) every rewrite is gated: substituting the iteration's new block
    definitions back into the rewritten outputs must reproduce the
    pre-rewrite expressions exactly, else :class:`VerificationError` is
    raised.  The gate cannot change any result — it is excluded from
    ``params()`` so cache keys are unaffected.
    """

    name = "rewrite"

    def __init__(
        self, block_prefix: str = "t", verify_steps: Optional[bool] = None
    ) -> None:
        self.block_prefix = block_prefix
        self.verify_steps = (
            _verify_steps_default() if verify_steps is None else verify_steps
        )

    def params(self) -> Dict[str, object]:
        return {"block_prefix": self.block_prefix}

    def run(self, state: EngineState) -> None:
        ctx = state.ctx
        basis_definitions = state.basis_definitions()
        proposed_names = state.propose_names(self.block_prefix)

        # Build the substitution for every pair and create the real blocks.
        substitutions: List[Anf] = []
        block_names: List[str] = []
        new_blocks: List[Block] = []
        for name, definition in zip(proposed_names, basis_definitions):
            if definition.is_literal:
                substitutions.append(definition)
                block_names.append(name)
                continue
            if name in state.removed:
                substitutions.append(state.removed[name])
                block_names.append(name)
                continue
            ctx.add_var(name)
            new_blocks.append(Block(name, state.level, definition, list(state.group)))
            substitutions.append(Anf.var(ctx, name))
            block_names.append(name)

        rewritten = rewrite_outputs(state.extraction, substitutions, ctx)
        if self.verify_steps:
            mismatch = check_rewrite_invariant(
                state.active, rewritten, new_blocks, ctx
            )
            if mismatch is not None:
                raise VerificationError(
                    f"rewrite step at level {state.level} does not reconstruct "
                    f"port {mismatch!r} exactly"
                )
        next_outputs = dict(state.current)
        next_outputs.update(rewritten)

        # Carry identities forward: drop those mentioning the consumed group,
        # add the product identities over the surviving new blocks.
        state.identities = rewrite_identities(state.identities, state.group, ctx)
        if state.analysis is not None:
            surviving = {block.name for block in new_blocks} | set(state.primary_inputs)
            for identity in state.analysis.identities:
                if identity.kind != "product":
                    continue
                if set(identity.expr.support) <= surviving:
                    state.identities.append(identity.expr)

        state.iterations.append(
            IterationRecord(
                index=state.level,
                group=list(state.group),
                basis_definitions=basis_definitions,
                block_names=block_names,
                substitutions=substitutions,
                identities_found=state.identities_found,
                removed_blocks=state.removed,
                size_before=state.size_before,
                size_after=total_literals(next_outputs),
            )
        )

        made_progress = bool(new_blocks) or any(
            next_outputs[port] != state.current[port] for port in state.current
        )
        state.blocks.extend(new_blocks)
        state.current = next_outputs

        if not made_progress:
            if state.forced_full_group:
                raise RuntimeError("progressive decomposition stalled even with a full group")
            state.forced_full_group = True
        else:
            state.forced_full_group = False
