"""The pass pipeline that replaces the monolithic Fig. 5 loop.

A :class:`Pipeline` is an ordered list of
:class:`~repro.engine.passes.Pass` objects run once per iteration until every
output is reduced to a literal.  ``Pipeline.from_options`` maps each
:class:`~repro.core.decompose.DecompositionOptions` flag to pass presence, so
the compatibility wrapper ``progressive_decomposition`` and every ablation
are just different pipelines over the same engine.

``config_key()`` renders the pipeline's exact configuration as a stable
string; together with the canonical spec digest
(:func:`repro.anf.canonical_spec_digest`) it keys the on-disk result cache of
:mod:`repro.engine.batch`.
"""

from __future__ import annotations

import time
from typing import List, Mapping, Optional, Sequence

from ..anf.expression import Anf
from ..core.decompose import Decomposition, DecompositionOptions
from . import profiling
from .passes import (
    BasisExtractionPass,
    GroupingPass,
    IdentityAnalysisPass,
    LinearDependencePass,
    NullspaceMergePass,
    Pass,
    RewritePass,
    SizeReductionPass,
)
from .state import EngineState


class Pipeline:
    """An ordered list of passes plus the iteration driver."""

    def __init__(self, passes: Sequence[Pass], max_iterations: int = 128) -> None:
        self.passes: List[Pass] = list(passes)
        self.max_iterations = max_iterations
        names = [p.name for p in self.passes]
        for required in (GroupingPass, BasisExtractionPass, RewritePass):
            if self._find(required) is None:
                raise ValueError(
                    f"a pipeline needs a {required.__name__} "
                    f"(got passes: {', '.join(names) or 'none'})"
                )
        if not isinstance(self.passes[-1], RewritePass):
            raise ValueError("the RewritePass must run last in each iteration")
        identity = self._find(IdentityAnalysisPass)
        rewrite = self._find(RewritePass)
        if identity is not None and identity.block_prefix != rewrite.block_prefix:
            # propose_names() is first-caller-wins, so a mismatch would
            # silently ignore one of the two prefixes.
            raise ValueError(
                "IdentityAnalysisPass and RewritePass must agree on block_prefix "
                f"({identity.block_prefix!r} != {rewrite.block_prefix!r})"
            )

    def _find(self, pass_type: type) -> Optional[Pass]:
        """The first pass that is an instance of ``pass_type`` (or ``None``)."""
        for p in self.passes:
            if isinstance(p, pass_type):
                return p
        return None

    # ------------------------------------------------------------------
    @classmethod
    def from_options(cls, options: DecompositionOptions | None = None) -> "Pipeline":
        """The pipeline equivalent of the seed loop for the given options.

        Every boolean option flag becomes the presence or absence of the
        corresponding pass; the numeric knobs parameterise the passes.
        """
        options = options or DecompositionOptions()
        passes: List[Pass] = [GroupingPass(options.k), BasisExtractionPass()]
        if options.use_nullspaces:
            passes.append(NullspaceMergePass())
        if options.use_linear_dependence:
            passes.append(LinearDependencePass())
        if options.use_size_reduction:
            passes.append(SizeReductionPass())
        if options.use_identities:
            passes.append(
                IdentityAnalysisPass(options.identity_products, options.block_prefix)
            )
        passes.append(RewritePass(options.block_prefix))
        return cls(passes, max_iterations=options.max_iterations)

    def to_options(self) -> DecompositionOptions:
        """The :class:`DecompositionOptions` this pipeline corresponds to.

        Used when a hand-assembled pipeline produces a
        :class:`~repro.core.decompose.Decomposition` (whose ``options`` field
        records how it was made).
        """
        grouping = self._find(GroupingPass)
        identity = self._find(IdentityAnalysisPass)
        rewrite = self._find(RewritePass)
        return DecompositionOptions(
            k=grouping.k,
            max_iterations=self.max_iterations,
            use_nullspaces=self._find(NullspaceMergePass) is not None,
            use_linear_dependence=self._find(LinearDependencePass) is not None,
            use_size_reduction=self._find(SizeReductionPass) is not None,
            use_identities=identity is not None,
            identity_products=identity.max_products if identity else 3,
            block_prefix=rewrite.block_prefix,
        )

    # ------------------------------------------------------------------
    def config_key(self) -> str:
        """Stable textual fingerprint of the pipeline configuration."""
        parts = []
        for p in self.passes:
            params = p.params()
            if params:
                rendered = ",".join(f"{k}={params[k]}" for k in sorted(params))
                parts.append(f"{p.name}({rendered})")
            else:
                parts.append(p.name)
        return f"max_iterations={self.max_iterations};" + ">".join(parts)

    def describe(self) -> str:
        """Human-readable pass listing."""
        return " -> ".join(p.name for p in self.passes)

    # ------------------------------------------------------------------
    def run(
        self,
        outputs: Mapping[str, Anf],
        input_words: Sequence[Sequence[str]] | None = None,
        options: DecompositionOptions | None = None,
    ) -> Decomposition:
        """Run the pipeline to a full :class:`Decomposition`.

        ``options`` only annotates the result (and is reconstructed from the
        pass list when omitted); the behaviour is determined by the passes.
        """
        # Timing is always read (two perf_counter calls per pass execution,
        # nanoseconds); profiling.record is a no-op with no collector, so
        # the profiled and unprofiled paths are one code path.
        start = time.perf_counter()
        state = EngineState.from_outputs(
            outputs, options or self.to_options(), input_words
        )
        profiling.record("prepare-state", time.perf_counter() - start)
        while not state.done():
            if state.level >= self.max_iterations:
                raise RuntimeError(
                    f"progressive decomposition did not converge in "
                    f"{self.max_iterations} iterations"
                )
            state.begin_iteration()
            for p in self.passes:
                start = time.perf_counter()
                p.run(state)
                profiling.record(p.name, time.perf_counter() - start)
        return state.finish()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Pipeline({self.describe()})"
