"""Pass-pipeline decomposition engine and batch orchestrator.

The engine splits the Fig. 5 loop into composable passes over an explicit
:class:`EngineState` (see :mod:`repro.engine.passes`), assembled by a
:class:`Pipeline`.  ``Pipeline.from_options`` reproduces
:func:`repro.core.progressive_decomposition` bit-for-bit; hand-assembled
pipelines express ablations and experiments as pass lists.

On top of the pipeline, :mod:`repro.engine.batch` runs many specifications
concurrently with an on-disk result cache keyed by the canonical spec digest
and the pipeline configuration.
"""

from .batch import (
    BatchJob,
    BatchOrchestrator,
    BatchResult,
    JobOutcome,
    decompose_cached,
    job_fingerprint,
    map_parallel,
    run_job,
    shard_map,
    shard_workers,
)
from .cache import (
    CacheTelemetry,
    DecompositionCache,
    SynthesisCache,
    cache_key,
    corrupt_record_count,
    decomposition_digest,
    deserialize_decomposition,
    netlist_digest,
    serialize_decomposition,
    synthesis_cache_key,
)
from .passes import (
    BasisExtractionPass,
    GroupingPass,
    IdentityAnalysisPass,
    LinearDependencePass,
    NullspaceMergePass,
    Pass,
    RewritePass,
    SizeReductionPass,
)
from .cost import (
    FamilyCalibration,
    SpecShape,
    estimate_batch_job,
    estimate_cost,
    estimate_from_shape,
    spec_shape,
)
from .pipeline import Pipeline
from .profiling import collecting_pass_timings
from .state import EngineState

__all__ = [
    "BasisExtractionPass",
    "BatchJob",
    "BatchOrchestrator",
    "BatchResult",
    "CacheTelemetry",
    "DecompositionCache",
    "EngineState",
    "FamilyCalibration",
    "JobOutcome",
    "GroupingPass",
    "IdentityAnalysisPass",
    "LinearDependencePass",
    "NullspaceMergePass",
    "Pass",
    "Pipeline",
    "RewritePass",
    "SizeReductionPass",
    "SpecShape",
    "SynthesisCache",
    "cache_key",
    "collecting_pass_timings",
    "corrupt_record_count",
    "decompose_cached",
    "decomposition_digest",
    "deserialize_decomposition",
    "estimate_batch_job",
    "estimate_cost",
    "estimate_from_shape",
    "job_fingerprint",
    "map_parallel",
    "netlist_digest",
    "run_job",
    "serialize_decomposition",
    "shard_map",
    "shard_workers",
    "spec_shape",
    "synthesis_cache_key",
]
