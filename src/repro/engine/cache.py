"""On-disk result caches for decomposition and synthesis runs.

Decomposition entries are keyed by ``sha256(spec digest + pipeline config)``
— the spec digest is the canonical, context-independent hash of the output
functions (:func:`repro.anf.canonical_spec_digest`) and the config key is the
pipeline's exact pass configuration.  The stored value is a full JSON
serialisation of the :class:`~repro.core.decompose.Decomposition`, including
the per-iteration trace, so a warm cache reproduces the cold result exactly
(modulo the identity of the ``Context`` object, which is rebuilt with the
same variable ordering so all monomial bitmasks survive round-tripping).

:class:`SynthesisCache` applies the same recipe to the synthesis stage of
the evaluation flows: records are keyed by a canonical digest of the
*design* being synthesised (a decomposition's structure, a specification's
canonical spec digest, or a structural netlist) plus the synthesis
parameters and a fingerprint of the cell library, and hold the metric
surface of a :class:`~repro.synth.synthesize.SynthesisResult` (area, delay,
cell and depth counts) — warm Table-1/figure re-runs skip technology mapping
and timing entirely.

Writes are atomic (tmp file + rename), so many orchestrator workers can
share one cache directory without locking.  For *shared storage* with
concurrent writers from several machines, two opt-in hardening knobs exist:
``REPRO_CACHE_LOCK=1`` takes an advisory ``fcntl`` lock on ``<root>/.lock``
around every write (tmp create → rename), so index updates and record
stores from different hosts serialise instead of interleaving, and
``REPRO_CACHE_FSYNC=1`` fsyncs the record file and its directory before the
rename is considered durable (crash-consistency on filesystems that reorder
metadata).  Readers never need either: a record is only visible complete.

Torn or corrupt records (a killed writer on a non-atomic filesystem, bad
blocks, a foreign file at a key path) are *quarantined*: the damaged file is
atomically renamed to ``<name>.corrupt`` next to where it lay, the lookup
reports a miss (so the caller recomputes), and the telemetry ``corrupt``
counter advances — silent recompute loops on a poisoned record are visible
instead of invisible.  Write/read paths carry named fault-injection sites
(``cache.store``, ``cache.store.payload``, ``cache.store.rename``,
``cache.index.*``, ``cache.load`` — see :mod:`repro.faults`), which the
crash-consistency property tests drive.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from contextlib import contextmanager
from dataclasses import asdict
from pathlib import Path
from typing import List, Optional

from .. import faults

from ..anf.context import Context
from ..anf.expression import Anf
from ..core.decompose import Block, Decomposition, DecompositionOptions, IterationRecord
from ..core.identities import Identity

SCHEMA = "repro-decomposition-v1"

#: Folded into every cache key (content and job index).  Cache keys carry no
#: automatic code fingerprint, so bump this whenever an engine change is
#: *allowed* to alter decomposition results — every existing cache entry is
#: invalidated at once.  (Behaviour-preserving changes need no bump; the
#: parity tests enforce that they really are behaviour-preserving.)
ENGINE_CACHE_EPOCH = "epoch-1"


# ----------------------------------------------------------------------
# Decomposition (de)serialisation
# ----------------------------------------------------------------------
def _anf_to_list(expr: Anf) -> List[int]:
    return sorted(expr.terms)


def _anf_from_list(ctx: Context, terms: List[int]) -> Anf:
    return Anf._raw(ctx, frozenset(terms))


def serialize_decomposition(decomposition: Decomposition) -> dict:
    """Full JSON-serialisable rendering of a decomposition result."""
    return {
        "schema": SCHEMA,
        "names": list(decomposition.ctx.names),
        "options": asdict(decomposition.options),
        "primary_inputs": list(decomposition.primary_inputs),
        "original": {
            port: _anf_to_list(expr) for port, expr in decomposition.original.items()
        },
        "outputs": {
            port: _anf_to_list(expr) for port, expr in decomposition.outputs.items()
        },
        "blocks": [
            {
                "name": block.name,
                "level": block.level,
                "definition": _anf_to_list(block.definition),
                "group": list(block.group),
            }
            for block in decomposition.blocks
        ],
        "iterations": [
            {
                "index": record.index,
                "group": list(record.group),
                "basis_definitions": [_anf_to_list(e) for e in record.basis_definitions],
                "block_names": list(record.block_names),
                "substitutions": [_anf_to_list(e) for e in record.substitutions],
                "identities_found": [
                    {
                        "expr": _anf_to_list(identity.expr),
                        "kind": identity.kind,
                        "description": identity.description,
                    }
                    for identity in record.identities_found
                ],
                "removed_blocks": {
                    name: _anf_to_list(expr)
                    for name, expr in record.removed_blocks.items()
                },
                "size_before": record.size_before,
                "size_after": record.size_after,
            }
            for record in decomposition.iterations
        ],
    }


def deserialize_decomposition(data: dict) -> Decomposition:
    """Rebuild a decomposition in a fresh :class:`Context`.

    The context declares the recorded variable names in their original order,
    so every stored monomial bitmask is valid as-is.
    """
    if data.get("schema") != SCHEMA:
        raise ValueError(f"unsupported decomposition record schema: {data.get('schema')!r}")
    ctx = Context(data["names"])
    options = DecompositionOptions(**data["options"])
    blocks = [
        Block(
            name=entry["name"],
            level=entry["level"],
            definition=_anf_from_list(ctx, entry["definition"]),
            group=list(entry["group"]),
        )
        for entry in data["blocks"]
    ]
    iterations = [
        IterationRecord(
            index=entry["index"],
            group=list(entry["group"]),
            basis_definitions=[_anf_from_list(ctx, e) for e in entry["basis_definitions"]],
            block_names=list(entry["block_names"]),
            substitutions=[_anf_from_list(ctx, e) for e in entry["substitutions"]],
            identities_found=[
                Identity(
                    expr=_anf_from_list(ctx, identity["expr"]),
                    kind=identity["kind"],
                    description=identity["description"],
                )
                for identity in entry["identities_found"]
            ],
            removed_blocks={
                name: _anf_from_list(ctx, e)
                for name, e in entry["removed_blocks"].items()
            },
            size_before=entry["size_before"],
            size_after=entry["size_after"],
        )
        for entry in data["iterations"]
    ]
    return Decomposition(
        ctx=ctx,
        original={port: _anf_from_list(ctx, e) for port, e in data["original"].items()},
        outputs={port: _anf_from_list(ctx, e) for port, e in data["outputs"].items()},
        blocks=blocks,
        iterations=iterations,
        options=options,
        primary_inputs=list(data["primary_inputs"]),
    )


#: Advisory-lock and durability knobs for shared-storage cache directories.
LOCK_ENV = "REPRO_CACHE_LOCK"
FSYNC_ENV = "REPRO_CACHE_FSYNC"


def _env_truthy(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() not in ("", "0", "false", "no", "off")


@contextmanager
def _cache_lock(root: Path):
    """Advisory exclusive lock on ``<root>/.lock`` when ``REPRO_CACHE_LOCK`` is set.

    A no-op by default (atomic renames already keep single-host writers
    safe), and degrades to a no-op where ``fcntl`` does not exist.
    """
    if not _env_truthy(LOCK_ENV):
        yield
        return
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX fallback
        yield
        return
    with open(root / ".lock", "a+b") as handle:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


def _fsync_dir(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - directory fsync is best-effort
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


def _atomic_write_bytes(root: Path, path: Path, payload: bytes, site: str) -> None:
    """Write ``payload`` via tmp-file + rename (crash-safe), with fault sites.

    ``site`` names the fault-injection point family: ``<site>`` fires before
    anything is written, ``<site>.payload`` may tear the bytes, and
    ``<site>.rename`` sits in the crash window between the tmp write and the
    atomic rename (a ``skip`` fault there abandons the rename exactly as a
    crash would, leaving the tmp file behind and the record absent).
    """
    tag = path.name
    faults.hit(site, tag=tag)
    payload = faults.mutate(f"{site}.payload", payload, tag=tag)
    directory = path.parent
    with _cache_lock(root):
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
                if _env_truthy(FSYNC_ENV):
                    handle.flush()
                    os.fsync(handle.fileno())
            if faults.should_skip(f"{site}.rename", tag=tag):
                return  # simulated crash: tmp file left, record never lands
            os.replace(tmp_path, path)
            if _env_truthy(FSYNC_ENV):
                _fsync_dir(directory)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise


def _atomic_json_dump(root: Path, path: Path, data: dict,
                      site: str = "cache.store") -> None:
    """Write ``data`` as compact JSON via tmp-file + rename (crash-safe)."""
    payload = json.dumps(data, separators=(",", ":")).encode("utf-8")
    _atomic_write_bytes(root, path, payload, site)


# ----------------------------------------------------------------------
# Hit/miss telemetry
# ----------------------------------------------------------------------
class CacheTelemetry:
    """Shared hit/miss/store counters a cache instance can report into.

    Both caches accept an optional ``telemetry`` object and record every
    *lookup* (a raw-record read counts once even when the caller also
    deserialises it) plus every store.  One telemetry object may be shared
    by several cache instances — e.g. a decomposition cache and the
    synthesis cache living under the same store — to aggregate a service's
    overall hit rate.  Counter bumps are single bytecode increments, so the
    object is safe to share across threads for monitoring purposes;
    cross-process aggregation is the caller's job (the service sums
    worker-reported outcomes instead).
    """

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Torn/invalid records quarantined to ``*.corrupt`` sidecars.
        self.corrupt = 0

    def record_lookup(self, hit: bool) -> None:
        if hit:
            self.hits += 1
        else:
            self.misses += 1

    def record_store(self) -> None:
        self.stores += 1

    def record_corrupt(self) -> None:
        self.corrupt += 1

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the store (0.0 with no lookups)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"CacheTelemetry(hits={self.hits}, misses={self.misses}, "
                f"stores={self.stores}, corrupt={self.corrupt})")


def corrupt_record_count(root: str | os.PathLike) -> int:
    """How many quarantined ``*.corrupt`` sidecars live under ``root``.

    Counts recursively (records, job index, synthesis sub-store), so a
    service can report shared-store damage even when the quarantining
    happened inside short-lived worker processes.
    """
    root_path = Path(root)
    if not root_path.is_dir():
        return 0
    return sum(1 for _ in root_path.rglob("*.corrupt"))


# ----------------------------------------------------------------------
# The cache itself
# ----------------------------------------------------------------------
def cache_key(spec_digest: str, config_key: str) -> str:
    """Combined cache key for (specification, pipeline configuration)."""
    combined = f"{SCHEMA}\n{ENGINE_CACHE_EPOCH}\n{spec_digest}\n{config_key}"
    return hashlib.sha256(combined.encode("utf-8")).hexdigest()


class DecompositionCache:
    """Directory of ``<key>.json`` decomposition records.

    ``telemetry`` (optional) receives a lookup event per ``load``/``load_raw``
    call and a store event per write — the hook the service's ``/metrics``
    endpoint and any shared-store monitoring hang off.
    """

    def __init__(self, root: str | os.PathLike,
                 telemetry: CacheTelemetry | None = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.telemetry = telemetry

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def load(self, key: str) -> Optional[Decomposition]:
        """The cached decomposition for ``key``, or ``None``.

        A corrupt, truncated, or structurally invalid record (e.g. from a
        killed writer on a filesystem without atomic rename, or a foreign
        file at the key path) is treated as a miss and quarantined to a
        ``*.corrupt`` sidecar so the damage is visible and never re-read.
        """
        raw = self.load_raw(key)
        if raw is None:
            return None
        try:
            return deserialize_decomposition(raw)
        except (KeyError, TypeError, ValueError):
            self._quarantine(self._path(key))
            return None

    def load_raw(self, key: str) -> Optional[dict]:
        """The cached serialised record for ``key``, or ``None``.

        Records that parse but do not look like decomposition records (wrong
        schema, missing sections — e.g. a foreign or truncated file at the
        key path) are treated as misses, so callers that ship raw records
        across processes don't crash on deserialisation.
        """
        record = self._read_record(key)
        if self.telemetry is not None:
            self.telemetry.record_lookup(record is not None)
        return record

    def _quarantine(self, path: Path) -> None:
        """Atomically move a damaged record aside as ``<name>.corrupt``."""
        try:
            os.replace(path, f"{path}.corrupt")
        except OSError:
            return  # a concurrent reader already moved it, or it vanished
        if self.telemetry is not None:
            self.telemetry.record_corrupt()

    def _read_record(self, key: str) -> Optional[dict]:
        path = self._path(key)
        try:
            faults.hit("cache.load", tag=path.name)
            with open(path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return None
        except OSError:
            return None  # transient I/O failure: miss, but nothing to blame
        try:
            record = json.loads(raw)
        except ValueError:
            self._quarantine(path)
            return None
        required = ("names", "options", "primary_inputs", "original",
                    "outputs", "blocks", "iterations")
        if (not isinstance(record, dict) or record.get("schema") != SCHEMA
                or any(field_name not in record for field_name in required)):
            self._quarantine(path)
            return None
        return record

    def store(self, key: str, decomposition: Decomposition) -> dict:
        """Serialise and persist a result; returns the stored record."""
        data = serialize_decomposition(decomposition)
        self.store_raw(key, data)
        return data

    def store_raw(self, key: str, data: dict) -> None:
        """Atomically persist an already-serialised record."""
        _atomic_json_dump(self.root, self._path(key), data)
        if self.telemetry is not None:
            self.telemetry.record_store()

    # ------------------------------------------------------------------
    # Job index: fingerprint of (builder, args, config) -> content key.
    #
    # The content-addressed records above are the source of truth; the index
    # is a shortcut that lets orchestrator workers skip rebuilding and
    # re-hashing a specification they have produced before.  It trusts spec
    # builders to be deterministic — delete the cache directory (or disable
    # the index) after changing a builder's semantics.
    # ------------------------------------------------------------------
    def _index_path(self, job_key: str) -> Path:
        return self.root / "index" / f"{job_key}.key"

    def load_index(self, job_key: str) -> Optional[str]:
        """The content key recorded for a job fingerprint, or ``None``."""
        try:
            content_key = self._index_path(job_key).read_text().strip()
        except OSError:
            return None
        return content_key or None

    def store_index(self, job_key: str, content_key: str) -> None:
        """Atomically record a job fingerprint -> content key association."""
        index_dir = self.root / "index"
        index_dir.mkdir(exist_ok=True)
        _atomic_write_bytes(
            self.root, self._index_path(job_key),
            content_key.encode("utf-8"), site="cache.index",
        )

    def clear(self) -> int:
        """Delete every record (and the job index); returns how many records."""
        removed = 0
        for path in self.root.glob("*.json"):
            path.unlink()
            removed += 1
        for pattern in ("index/*.key", "*.corrupt", "index/*.corrupt"):
            for path in self.root.glob(pattern):
                path.unlink()
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))


# ----------------------------------------------------------------------
# Synthesis-result cache (the evaluation flows' warm path)
# ----------------------------------------------------------------------
SYNTH_SCHEMA = "repro-synthesis-v1"

#: Metric fields every synthesis record must carry.
SYNTH_METRIC_FIELDS = ("area", "delay", "cells", "depth")


def decomposition_digest(decomposition) -> str:
    """Canonical digest of the *structure* a decomposition hands to synthesis.

    Hashes exactly what :func:`repro.core.structure.decomposition_to_netlist`
    consumes — blocks (name, level, group, definition), outputs and primary
    inputs — rendered through variable *names* (``to_str`` renders sorted
    canonical terms), so the digest is context- and process-independent and
    never touches the giant ``original`` expressions.
    """
    digest = hashlib.sha256()
    for block in decomposition.blocks:
        digest.update(
            f"{block.name}@{block.level}[{','.join(block.group)}]"
            f"={block.definition.to_str()}\n".encode("utf-8")
        )
    for port in sorted(decomposition.outputs):
        digest.update(f"{port}={decomposition.outputs[port].to_str()}\n".encode("utf-8"))
    digest.update("|".join(decomposition.primary_inputs).encode("utf-8"))
    return digest.hexdigest()


def netlist_digest(netlist) -> str:
    """Canonical digest of a structural netlist (inputs, gates, outputs)."""
    digest = hashlib.sha256()
    digest.update("|".join(netlist.inputs).encode("utf-8"))
    for gate in netlist.gates:
        digest.update(f"\n{gate.output}={gate.op}({','.join(gate.inputs)})".encode("utf-8"))
    for port in sorted(netlist.outputs):
        digest.update(f"\n{port}:{netlist.outputs[port]}".encode("utf-8"))
    return digest.hexdigest()


def library_fingerprint(library) -> str:
    """Stable fingerprint of a cell library's timing/area model."""
    cells = ";".join(
        f"{cell.name}:{cell.op}/{cell.arity}:{cell.area}:{cell.delay}:{cell.load_delay}"
        for _, cell in sorted(library.cells.items())
    )
    return hashlib.sha256(f"{library.name}|{cells}".encode("utf-8")).hexdigest()


def synthesis_cache_key(design_digest: str, library_fp: str, params: dict) -> str:
    """Combined cache key for (design, library, synthesis parameters)."""
    rendered = "|".join(f"{key}={params[key]!r}" for key in sorted(params))
    combined = (
        f"{SYNTH_SCHEMA}\n{ENGINE_CACHE_EPOCH}\n{design_digest}\n{library_fp}\n{rendered}"
    )
    return hashlib.sha256(combined.encode("utf-8")).hexdigest()


class SynthesisCache:
    """Directory of ``<key>.json`` synthesis metric records.

    Records hold the metric surface of a synthesis run (``area``, ``delay``,
    ``cells``, ``depth`` plus the design name), not the mapped netlist:
    everything the evaluation tables and figures read from a
    :class:`~repro.eval.flows.FlowResult`, at a fraction of the bytes.
    Corrupt or foreign records are treated as misses, exactly like
    :class:`DecompositionCache`; an optional ``telemetry`` object receives
    the same lookup/store events.
    """

    def __init__(self, root: str | os.PathLike,
                 telemetry: CacheTelemetry | None = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.telemetry = telemetry

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load(self, key: str) -> Optional[dict]:
        """The cached metric record for ``key``, or ``None``."""
        record = self._read_record(key)
        if self.telemetry is not None:
            self.telemetry.record_lookup(record is not None)
        return record

    def _quarantine(self, path: Path) -> None:
        try:
            os.replace(path, f"{path}.corrupt")
        except OSError:
            return
        if self.telemetry is not None:
            self.telemetry.record_corrupt()

    def _read_record(self, key: str) -> Optional[dict]:
        path = self._path(key)
        try:
            faults.hit("cache.load", tag=path.name)
            with open(path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return None
        except OSError:
            return None
        try:
            record = json.loads(raw)
        except ValueError:
            self._quarantine(path)
            return None
        if not isinstance(record, dict) or record.get("schema") != SYNTH_SCHEMA:
            self._quarantine(path)
            return None
        for field_name in SYNTH_METRIC_FIELDS:
            value = record.get(field_name)
            # bool is an int subclass; a true/false metric is still corrupt.
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                self._quarantine(path)
                return None
        return record

    def store(self, key: str, metrics: dict) -> dict:
        """Atomically persist a metric record; returns the stored record."""
        record = {"schema": SYNTH_SCHEMA, **metrics}
        _atomic_json_dump(self.root, self._path(key), record)
        if self.telemetry is not None:
            self.telemetry.record_store()
        return record

    def clear(self) -> int:
        """Delete every record; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*.json"):
            path.unlink()
            removed += 1
        for path in self.root.glob("*.corrupt"):
            path.unlink()
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))
