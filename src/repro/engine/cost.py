"""Width-weighted job cost model shared by the batch orchestrator and the
service admission layer.

Every consumer of the engine that has to make a scheduling decision *before*
running a job needs the same thing: a cheap, monotone estimate of how much
work a spec will demand.  This module provides it in **cost units** —
approximately milliseconds of single-core engine time on the machine the
committed benchmarks were recorded on (``benchmarks/BENCH_native.json``).

The estimate is anchored per circuit family: each family gets a reference
point ``(ref_width, ref_cost)`` taken from the committed quick-sweep timing
and a per-input-bit growth factor fitted from the quick→full width
trajectory (``BENCH_native_full.json``).  The growth factors track the ANF
term-count bounds of the benchcircuits — the comparator's ~3×/bit mirrors
its exact ``3^w`` product-of-XNORs term count, the LOD/counter families are
near-flat because their term counts grow polynomially while the dominant
slabs stay narrow.  Absolute numbers drift with hardware; *ratios and
orderings* are what the admission layer and the batch scheduler consume,
and those are stable properties of the algorithms.

Users:

- :meth:`repro.engine.batch.BatchOrchestrator.run` sorts job payloads by
  estimated cost (longest first) so a process pool is not left waiting on
  one straggler submitted last;
- :mod:`repro.service.admission` prices each HTTP job submission for
  per-client token-bucket quotas and load-shedding watermarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, Sequence

__all__ = [
    "CACHED_COST",
    "CALIBRATION",
    "DEFAULT_COST",
    "FamilyCalibration",
    "MIN_COST",
    "SpecShape",
    "estimate_batch_job",
    "estimate_cost",
    "estimate_from_shape",
    "spec_shape",
]

#: Floor for every estimate — even a trivial job costs request parsing, a
#: cache probe and a result round-trip.
MIN_COST = 1.0

#: Serving a job whose decomposition is already in the on-disk store costs a
#: job-index lookup plus record deserialisation, independent of width.
CACHED_COST = 2.0

#: Fallback for circuits the calibration table has never seen.
DEFAULT_COST = 100.0

#: ``delay_ms`` holds a worker for exactly its duration; one cost unit is
#: one millisecond, so it converts 1:1.
_DELAY_UNIT_PER_MS = 1.0

#: Synthesis continues through structuring + technology mapping: a small
#: fixed pass overhead plus per-output netlist work.
_SYNTH_BASE = 2.0
_SYNTH_PER_OUTPUT = 0.5

#: Verify ratio assumed for families without a calibrated measurement.
_DEFAULT_VERIFY_RATIO = 0.5


@dataclass(frozen=True)
class SpecShape:
    """Pre-execution shape of a specification: what the truth-table looks
    like before the engine touches it.  All three fields are monotone
    knobs — more inputs, more outputs or more ANF terms never make a job
    cheaper."""

    inputs: int
    outputs: int
    log2_terms: float


@dataclass(frozen=True)
class FamilyCalibration:
    """Per-circuit-family anchor: measured cost at a reference width and the
    fitted per-input-bit growth multiplier."""

    ref_width: int
    #: Cost units (~ms single-core) at ``ref_width``, from BENCH_native.json.
    ref_cost: float
    #: Multiplier per extra width bit, fitted from BENCH_native_full.json.
    growth: float
    #: Exact-verification cost as a fraction of build cost at ``ref_width``.
    verify_ratio: float


#: Anchors from ``benchmarks/BENCH_native.json`` (quick sweep, seconds×1000)
#: with growth and verify ratios fitted against ``BENCH_native_full.json``.
CALIBRATION: Mapping[str, FamilyCalibration] = {
    "adder": FamilyCalibration(11, 21.5, 1.42, 0.25),
    "comparator": FamilyCalibration(12, 20.6, 2.90, 2.40),
    "counter": FamilyCalibration(14, 23.3, 1.10, 0.25),
    "lod": FamilyCalibration(28, 22.6, 1.03, 0.11),
    "lzd": FamilyCalibration(14, 9.9, 1.15, 0.77),
    "majority": FamilyCalibration(13, 7.9, 1.32, 0.20),
    "three_input_adder": FamilyCalibration(6, 13.3, 1.90, 0.56),
}


def spec_shape(circuit: str, width: int) -> Optional[SpecShape]:
    """Closed-form :class:`SpecShape` for a known benchcircuit family.

    Input/output counts are exact; ``log2_terms`` is the fitted per-family
    ANF term-count trend (exact for the comparator, whose product of
    per-bit XNORs has precisely ``3^width`` terms).  Returns ``None`` for
    unknown families.
    """
    w = max(1, int(width))
    log_outputs = int(math.floor(math.log2(w))) + 1
    shapes: Mapping[str, SpecShape] = {
        "adder": SpecShape(2 * w, w + 1, 2.3 + 1.0 * w),
        "comparator": SpecShape(2 * w, 1, w * math.log2(3.0)),
        "counter": SpecShape(w, log_outputs, 2.0 + 0.85 * math.log2(w + 1) * 2),
        "lod": SpecShape(w, log_outputs, 1.5 + 1.2 * math.log2(w + 1)),
        "lzd": SpecShape(w, log_outputs, 2.5 + 0.95 * w),
        "majority": SpecShape(w, 1, 1.0 + 0.9 * w),
        "three_input_adder": SpecShape(3 * w, w + 2, 4.0 + 1.95 * w),
    }
    return shapes.get(circuit)


def estimate_from_shape(shape: SpecShape) -> float:
    """Generic estimate for a spec known only by shape.

    A coarse surrogate for the engine's slab work — per-output passes over
    a term population that widens with the input count.  Strictly monotone
    (non-decreasing) in each of ``inputs``, ``outputs`` and
    ``log2_terms``; used as the fallback when no family calibration
    exists, and as the subject of the monotonicity property tests.
    """
    inputs = max(0, shape.inputs)
    outputs = max(1, shape.outputs)
    terms = 2.0 ** max(0.0, float(shape.log2_terms))
    # Term-slab work dominates; the per-input factor models the widening of
    # each packed row, the per-output term the repeated grouping passes.
    slab = 0.004 * terms * (1.0 + inputs / 64.0)
    return max(MIN_COST, slab * (1.0 + 0.15 * (outputs - 1)))


def _base_cost(circuit: str, width: int) -> float:
    """Build cost (cost units) for a cold decomposition of ``circuit`` at
    ``width`` — calibrated anchor when known, shape fallback otherwise."""
    cal = CALIBRATION.get(circuit)
    if cal is not None:
        return max(MIN_COST, cal.ref_cost * cal.growth ** (width - cal.ref_width))
    shape = spec_shape(circuit, width)
    if shape is not None:
        return estimate_from_shape(shape)
    return DEFAULT_COST


def estimate_cost(
    circuit: str,
    width: int,
    *,
    kind: str = "decompose",
    verify: bool = False,
    delay_ms: int = 0,
    cached: bool = False,
) -> float:
    """Estimated cost units for one service job spec.

    ``cached=True`` means the decomposition is already in the on-disk store
    (the dominant work collapses to a record load); verification and
    synthesis still add their share on top, and ``delay_ms`` always counts
    1:1 since it holds a worker for its full duration.  Monotone in
    ``width`` and in every additive knob.
    """
    base = _base_cost(circuit, width)
    cost = CACHED_COST if cached else base
    if verify:
        cal = CALIBRATION.get(circuit)
        ratio = cal.verify_ratio if cal is not None else _DEFAULT_VERIFY_RATIO
        # Verification re-evaluates the full truth table even on a disk
        # hit, so it is priced off the *build* cost, not the served cost.
        cost += ratio * base
    if kind == "synthesize":
        shape = spec_shape(circuit, width)
        outputs = shape.outputs if shape is not None else max(1, width)
        cost += _SYNTH_BASE + _SYNTH_PER_OUTPUT * outputs
    cost += max(0, int(delay_ms)) * _DELAY_UNIT_PER_MS
    return max(MIN_COST, cost)


def _builder_family(builder: Callable[..., Any]) -> str:
    name = getattr(builder, "__name__", "") or ""
    return name[: -len("_spec")] if name.endswith("_spec") else name


def estimate_batch_job(
    builder: Callable[..., Any],
    args: Sequence[Any] = (),
    kwargs: Optional[Mapping[str, Any]] = None,
) -> float:
    """Estimated cost of one :class:`~repro.engine.batch.BatchJob`.

    Resolves the circuit family from the builder's name (``adder_spec`` →
    ``adder``) and the width from the first integer argument, mirroring the
    benchcircuit builder convention.  Jobs the model cannot price get
    :data:`DEFAULT_COST` so they sort mid-pack rather than last.
    """
    kwargs = kwargs or {}
    family = _builder_family(builder)
    width: Optional[int] = None
    for candidate in (*args, kwargs.get("width"), kwargs.get("n")):
        if isinstance(candidate, int) and not isinstance(candidate, bool):
            width = candidate
            break
    if width is None:
        return DEFAULT_COST
    if family not in CALIBRATION and spec_shape(family, width) is None:
        return DEFAULT_COST
    return _base_cost(family, width)
