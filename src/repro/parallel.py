"""Process-pool primitives shared by the engine and the core procedures.

This module sits *below* ``repro.core``: it imports nothing from the
package, so ``core`` procedures (``findGroup``'s sharded scoring) can use
the pass-shard pool at module level without creating an import cycle with
``repro.engine`` (which re-exports these names as part of its orchestration
API).

Two parallelism levels exist and deliberately never stack:

* the **batch orchestrator** (``repro.engine.batch``) fans whole
  specifications over a per-call pool;
* **pass sharding** (``REPRO_SHARD_PASSES``) fans the independent units
  *inside* one decomposition over the persistent pool kept here — and
  :func:`shard_workers` reports ``None`` inside daemonic pool workers, so a
  spec already running under the orchestrator stays serial.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import signal
import warnings
from typing import Callable, List, Optional, Sequence

#: Environment switch for sharding the independent units *inside* one
#: decomposition.  ``1``/``true`` uses one worker per CPU; an integer > 1
#: forces that worker count; unset/0 keeps the serial path, which is the
#: bit-identical default.
SHARD_ENV = "REPRO_SHARD_PASSES"

#: How often the in-flight shard map checks pool-worker liveness (seconds).
#: Purely a supervision cadence — results return the instant they are ready.
WORKER_POLL_SECONDS = 0.05

_shard_pool_instance = None
_shard_pool_size = 0

#: True inside any worker process this package forked (set by the pool
#: initializer).  ``multiprocessing.Pool`` workers are daemonic and already
#: self-identify; ``concurrent.futures`` process workers are not, so the
#: flag keeps the "two parallelism levels never stack" invariant across
#: both pool flavours.
_pool_worker = False


def mark_pool_worker() -> None:
    """Pool initializer: flag this process as a fork-pool worker.

    Also detaches inherited signal plumbing: a forked worker shares the
    parent's signal wakeup fd (asyncio's self-pipe) and Python-level
    handlers, so a SIGTERM delivered to the *worker* (e.g. by
    ``ProcessPoolExecutor`` tearing down a broken pool) would be echoed
    into the parent's event loop as if the parent itself were signalled —
    triggering a spurious graceful shutdown.  The worker must own its own
    signal fate.
    """
    global _pool_worker
    _pool_worker = True
    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # non-main thread or closed fd: nothing shared
        pass
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, signal.SIG_DFL)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass


def in_pool_worker() -> bool:
    """True in a process forked by any of this package's worker pools."""
    return _pool_worker or multiprocessing.current_process().daemon


def pool_context():
    """The fork context where available (workers inherit nothing they need,
    but fork is far cheaper than spawn for short-lived shard calls)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def shard_workers() -> Optional[int]:
    """Worker count for pass sharding, or ``None`` when disabled.

    Sharding is always disabled inside daemonic pool workers: a spec already
    running under the batch orchestrator cannot fork a nested pool, so the
    two parallelism levels compose by never stacking.
    """
    value = os.environ.get(SHARD_ENV, "").strip().lower()
    if not value or value in ("0", "false", "no", "off"):
        return None
    if in_pool_worker():
        return None
    try:
        count = int(value)
    except ValueError:
        count = 0
    if count > 1:
        return count
    return os.cpu_count() or 1


def _close_shard_pool() -> None:
    """Terminate the persistent pass-shard pool (atexit + test hygiene)."""
    global _shard_pool_instance, _shard_pool_size
    if _shard_pool_instance is not None:
        _shard_pool_instance.terminate()
        _shard_pool_instance.join()
        _shard_pool_instance = None
        _shard_pool_size = 0


def _shard_pool(workers: int):
    """A persistent fork pool reused across pass-shard calls.

    Workers receive everything they need in the payload, so an old pool is
    never stale; it is only rebuilt when the requested size changes.
    """
    global _shard_pool_instance, _shard_pool_size
    if _shard_pool_instance is None or _shard_pool_size != workers:
        _close_shard_pool()
        _shard_pool_instance = pool_context().Pool(
            workers, initializer=mark_pool_worker
        )
        _shard_pool_size = workers
        atexit.register(_close_shard_pool)
    return _shard_pool_instance


def _pool_worker_pids(pool) -> Optional[frozenset]:
    """The pool's current worker PIDs, or ``None`` if unobservable."""
    processes = getattr(pool, "_pool", None)
    if not processes:
        return None
    return frozenset(proc.pid for proc in processes)


def shard_map(func: Callable, items: Sequence) -> list:
    """Map ``func`` over ``items`` on the pass-shard pool (serial fallback).

    Results come back in item order, so callers that pick "the first best"
    are bit-identical to the serial loop.  With sharding disabled, one item,
    or a single worker this *is* the serial loop.

    The map is supervised: a pool worker that dies mid-map (OOM kill,
    segfault, SIGKILL) would otherwise lose its in-flight task and hang the
    ``map`` forever — ``multiprocessing.Pool`` respawns the worker but never
    completes the lost task.  The in-flight result is therefore polled
    against the worker PID set; on any death the broken pool is torn down
    and the whole map re-runs serially in-process (``func`` is pure, so the
    serial rerun is bit-identical), with a ``RuntimeWarning`` naming the
    fallback.
    """
    items = list(items)
    workers = shard_workers()
    if workers is None or workers <= 1 or len(items) <= 1:
        return [func(item) for item in items]
    pool = _shard_pool(workers)
    initial_pids = _pool_worker_pids(pool)
    async_result = pool.map_async(func, items, chunksize=1)
    while True:
        async_result.wait(WORKER_POLL_SECONDS)
        if async_result.ready():
            return async_result.get()
        current_pids = _pool_worker_pids(pool)
        if initial_pids is not None and current_pids != initial_pids:
            # A worker died and was respawned (or the pool lost workers):
            # its in-flight task is gone and the map would hang.
            _close_shard_pool()
            warnings.warn(
                "a pass-shard worker died mid-map; re-running this map "
                "serially in-process (results are unaffected)",
                RuntimeWarning,
                stacklevel=2,
            )
            return [func(item) for item in items]


def shard_chunks(items: Sequence, parts: int) -> List[list]:
    """Split ``items`` into at most ``parts`` contiguous, order-preserving runs."""
    items = list(items)
    if not items:
        return []
    parts = max(1, min(parts, len(items)))
    size = (len(items) + parts - 1) // parts
    return [items[i : i + size] for i in range(0, len(items), size)]
