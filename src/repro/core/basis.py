"""``findBasis``: extract the leader expressions of a variable group.

Multi-output handling follows the paper exactly: the expression list
``P1 … Pm`` is combined into ``X = K_{P1}·P1 ⊕ … ⊕ K_{Pm}·Pm`` using fresh tag
variables, the basis of ``X`` with respect to the group is computed, and the
individual outputs are later recovered by extracting each tag's component
from the pair seconds (see :mod:`repro.core.rewrite`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from ..anf.backend import get_backend
from ..anf.context import Context
from ..anf.expression import Anf
from .nullspace import NullSpaceTable
from .pairs import (
    PairList,
    initial_pairs,
    merge_equal_parts,
    merge_with_nullspaces,
    pairs_from_buckets,
)

TAG_PREFIX = "_K_"


@dataclass
class BasisExtraction:
    """The result of ``findBasis`` on a list of expressions."""

    group: List[str]
    group_mask: int
    ports: List[str]
    tag_of_port: Dict[str, str]
    pair_list: PairList
    nullspaces: NullSpaceTable

    @property
    def basis(self) -> List[Anf]:
        """The candidate basis: the first element of every pair."""
        return self.pair_list.firsts()

    def basis_literal_count(self) -> int:
        return sum(expr.literal_count for expr in self.basis)


def tag_name_for(port: str) -> str:
    """The tag variable name used for an output port."""
    return f"{TAG_PREFIX}{port}"


def _tag_items(
    outputs: Mapping[str, Anf], ctx: Context
) -> tuple[list[tuple[int, Anf]], Dict[str, str]]:
    """Allocate (or re-find) one fresh tag variable per output port.

    ``ctx.add_var`` is idempotent, so calling this again on the same outputs
    returns the same bits — the fused and two-step paths below evolve the
    context identically.
    """
    tag_of_port: Dict[str, str] = {}
    items: list[tuple[int, Anf]] = []
    for port, expr in outputs.items():
        ctx.require_same(expr.ctx)
        tag = tag_name_for(port)
        tag_of_port[port] = tag
        items.append((1 << ctx.add_var(tag), expr))
    return items, tag_of_port


def combine_with_tags(outputs: Mapping[str, Anf], ctx: Context) -> tuple[Anf, Dict[str, str]]:
    """Build ``X = XOR_port K_port · P_port`` with one fresh tag per port.

    The packed backend performs the whole combination word-parallel: each tag
    product ORs one fresh bit into every term of a port's matrix, and the
    per-port results are pairwise disjoint (each is marked by its own tag
    bit), so their XOR is a concatenation.
    """
    items, tag_of_port = _tag_items(outputs, ctx)
    fast = get_backend().combine_tagged(items, ctx)
    if fast is not None:
        return fast, tag_of_port
    combined = Anf.zero(ctx)
    for port, expr in outputs.items():
        # The tag products recur (findGroup and findBasis both combine the
        # same outputs each iteration); the context memo makes the repeat free.
        combined = combined ^ Anf.var(ctx, tag_of_port[port]).cached_and(expr)
    return combined, tag_of_port


def split_with_tags(
    outputs: Mapping[str, Anf], group_mask: int, ctx: Context
) -> tuple[Dict[int, Anf], Anf, Dict[str, str]]:
    """``split_by_group(combine_with_tags(outputs))`` without the middle man.

    On backends with a fused split→build kernel the tagged combination —
    the largest slab the old pipeline ever allocated — never materialises:
    each port's matrix is bucketed, group-stripped and tag-marked in one
    pass, and the buckets come out as the next iteration's sorted matrices.
    Backends without the kernel (or inputs violating its preconditions)
    fall back to the two-step combine-then-split, which is definitionally
    the same result.
    """
    items, tag_of_port = _tag_items(outputs, ctx)
    fused = get_backend().split_tagged(items, group_mask, ctx)
    if fused is not None:
        buckets, remainder = fused
        return buckets, remainder, tag_of_port
    combined, tag_of_port = combine_with_tags(outputs, ctx)
    buckets, remainder = combined.split_by_group(group_mask)
    return buckets, remainder, tag_of_port


def extract_basis(
    outputs: Mapping[str, Anf],
    group: Sequence[str],
    identities: Sequence[Anf],
    ctx: Context,
    use_nullspaces: bool = True,
    combined: tuple[Anf, Dict[str, str]] | None = None,
    pre_split: tuple[Dict[int, Anf], Anf, Dict[str, str]] | None = None,
) -> BasisExtraction:
    """Run ``findBasis`` for the given group over a list of output expressions.

    ``combined`` optionally supplies a precomputed ``(X, tag_of_port)``
    from :func:`combine_with_tags` on the same outputs — the engine shares
    one tagged combination per iteration between ``findGroup`` and
    ``findBasis`` instead of rebuilding the giant expression twice.
    ``pre_split`` goes one step further: a ``(buckets, remainder,
    tag_of_port)`` triple from :func:`split_with_tags`, letting the fused
    split→build kernel feed the pair list without the combination ever
    existing.
    """
    group = list(group)
    if not group:
        raise ValueError("findBasis needs a non-empty group")
    group_mask = ctx.mask_of(group)
    if pre_split is not None:
        buckets, remainder, tag_of_port = pre_split
        nullspaces = NullSpaceTable.from_identities(ctx, identities)
        pair_list = pairs_from_buckets(ctx, buckets, remainder, nullspaces)
        pair_list = merge_equal_parts(pair_list)
        if use_nullspaces:
            pair_list = merge_with_nullspaces(pair_list)
        return BasisExtraction(
            group=group,
            group_mask=group_mask,
            ports=list(outputs),
            tag_of_port=tag_of_port,
            pair_list=pair_list,
            nullspaces=nullspaces,
        )
    if combined is None:
        combined, tag_of_port = combine_with_tags(outputs, ctx)
    else:
        combined, tag_of_port = combined
    nullspaces = NullSpaceTable.from_identities(ctx, identities)
    pair_list = initial_pairs(combined, group_mask, nullspaces)
    pair_list = merge_equal_parts(pair_list)
    if use_nullspaces:
        pair_list = merge_with_nullspaces(pair_list)
    return BasisExtraction(
        group=group,
        group_mask=group_mask,
        ports=list(outputs),
        tag_of_port=tag_of_port,
        pair_list=pair_list,
        nullspaces=nullspaces,
    )
