"""Progressive Decomposition — the paper's primary contribution.

The public entry point is :func:`progressive_decomposition`; the submodules
expose the individual procedures of the algorithm (Fig. 5 of the paper) for
finer-grained use and for the ablation benchmarks.
"""

from .basis import BasisExtraction, combine_with_tags, extract_basis, tag_name_for
from .decompose import (
    Block,
    Decomposition,
    DecompositionOptions,
    IterationRecord,
    progressive_decomposition,
)
from .grouping import find_group, group_from_primary_inputs, score_group, support_of_outputs
from .identities import Identity, IdentityAnalysis, find_identities, reduce_basis_using_identities
from .nullspace import (
    NullSpaceTable,
    ideal_contains,
    ideal_product_generator,
    ideal_union_generator,
    split_over_ideals,
)
from .optimize import improve_basis_by_size_reduction, minimize_basis_by_linear_dependence
from .pairs import Pair, PairList, initial_pairs, merge_equal_parts, merge_with_nullspaces
from .rewrite import extract_tag_component, rewrite_identities, rewrite_outputs
from .structure import HierarchyStats, block_table, decomposition_to_netlist, hierarchy_stats
from .verify import (
    VerificationError,
    check_rewrite_invariant,
    flatten_port_via_dag,
    semantically_equal,
    substitute_bits,
    verify_decomposition,
    verify_ports,
)

__all__ = [
    "BasisExtraction",
    "Block",
    "VerificationError",
    "check_rewrite_invariant",
    "flatten_port_via_dag",
    "semantically_equal",
    "substitute_bits",
    "verify_decomposition",
    "verify_ports",
    "Decomposition",
    "DecompositionOptions",
    "HierarchyStats",
    "Identity",
    "IdentityAnalysis",
    "IterationRecord",
    "NullSpaceTable",
    "Pair",
    "PairList",
    "block_table",
    "combine_with_tags",
    "decomposition_to_netlist",
    "extract_basis",
    "extract_tag_component",
    "find_group",
    "find_identities",
    "group_from_primary_inputs",
    "hierarchy_stats",
    "ideal_contains",
    "ideal_product_generator",
    "ideal_union_generator",
    "improve_basis_by_size_reduction",
    "initial_pairs",
    "merge_equal_parts",
    "merge_with_nullspaces",
    "minimize_basis_by_linear_dependence",
    "progressive_decomposition",
    "reduce_basis_using_identities",
    "rewrite_identities",
    "rewrite_outputs",
    "score_group",
    "split_over_ideals",
    "support_of_outputs",
    "tag_name_for",
]
