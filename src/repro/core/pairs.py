"""Pair lists: the working representation of ``findBasis`` (paper section 5.2).

Every monomial of the expression under decomposition is split into its
group-variable part ``α`` and its remaining part ``γ``; the expression is the
XOR over pairs of ``α·γ`` (plus a remainder containing no group variable).
``findBasis`` repeatedly *merges* pairs — by equal parts, and, when null-space
information is available, by the Boolean-division style merge of section 4 —
until the set of first elements is the candidate basis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List

from ..anf.backend import get_backend
from ..anf.expression import Anf
from .nullspace import NullSpaceTable, ideal_product_generator, split_over_ideals


@dataclass
class Pair:
    """One ``(first, second)`` pair with the known null-space of ``first``.

    ``first`` only uses group variables; ``second`` only non-group variables
    (and, in multi-output mode, the output tag variables).  ``null_generator``
    generates a known sub-ideal of ``N(first)``.
    """

    first: Anf
    second: Anf
    null_generator: Anf

    @property
    def literal_count(self) -> int:
        return self.first.literal_count + self.second.literal_count

    def contribution(self) -> Anf:
        """The product ``first & second`` this pair contributes to the expression."""
        return self.first & self.second


@dataclass
class PairList:
    """A list of pairs plus the group-free remainder of the expression."""

    pairs: List[Pair] = field(default_factory=list)
    remainder: Anf | None = None

    def __iter__(self) -> Iterator[Pair]:
        return iter(self.pairs)

    def __len__(self) -> int:
        return len(self.pairs)

    @property
    def literal_count(self) -> int:
        total = sum(pair.literal_count for pair in self.pairs)
        if self.remainder is not None:
            total += self.remainder.literal_count
        return total

    def firsts(self) -> list[Anf]:
        return [pair.first for pair in self.pairs]

    def seconds(self) -> list[Anf]:
        return [pair.second for pair in self.pairs]

    def reconstruct(self) -> Anf:
        """XOR of all pair contributions plus the remainder (for verification)."""
        if self.remainder is not None:
            total = self.remainder
        elif self.pairs:
            total = Anf.zero(self.pairs[0].first.ctx)
        else:
            raise ValueError("cannot reconstruct an empty pair list without a remainder")
        for pair in self.pairs:
            total = total ^ pair.contribution()
        return total


def initial_pairs(expr: Anf, group_mask: int, nullspaces: NullSpaceTable) -> PairList:
    """Split an expression into its initial pair list for a variable group.

    Monomials are bucketed by their group part, which already performs the
    first family of merges (pairs with identical first elements).
    """
    buckets, remainder = expr.split_by_group(group_mask)
    pairs = []
    for group_part in sorted(buckets, key=lambda mask: (mask.bit_count(), mask)):
        first = Anf._raw(expr.ctx, frozenset({group_part}))
        second = buckets[group_part]
        pairs.append(Pair(first, second, nullspaces.generator_for_monomial(group_part)))
    return PairList(pairs, remainder)


def merge_equal_parts(pair_list: PairList) -> PairList:
    """Merge pairs sharing a first or a second element until a fixed point.

    ``(α, γ), (β, γ) → (α ⊕ β, γ)`` and ``(α, β), (α, γ) → (α, β ⊕ γ)``
    (paper section 5.2, the identity-free merge).
    """
    pairs = list(pair_list.pairs)
    # The seconds carry the giant term sets; the backend supplies an O(n/8)
    # canonical key (packed matrix bytes) instead of per-term frozenset
    # hashing.  Keys are equal exactly when the term sets are, so the merge
    # decisions — and hence the results — are backend-independent.
    second_key = get_backend().pair_key
    changed = True
    while changed:
        changed = False
        # Merge pairs with equal second elements.
        by_second: dict = {}
        merged: list[Pair] = []
        for pair in pairs:
            key = second_key(pair.second)
            existing = by_second.get(key)
            if existing is None:
                by_second[key] = pair
            else:
                combined = Pair(
                    existing.first ^ pair.first,
                    existing.second,
                    ideal_product_generator(existing.null_generator, pair.null_generator),
                )
                by_second[key] = combined
                changed = True
        merged = [pair for pair in by_second.values() if not pair.first.is_zero]
        # Merge pairs with equal first elements.
        by_first: dict[frozenset[int], Pair] = {}
        for pair in merged:
            key = pair.first.terms
            existing = by_first.get(key)
            if existing is None:
                by_first[key] = pair
            else:
                by_first[key] = Pair(
                    existing.first,
                    existing.second ^ pair.second,
                    existing.null_generator,
                )
                changed = True
        pairs = [pair for pair in by_first.values() if not pair.second.is_zero and not pair.first.is_zero]
    return PairList(pairs, pair_list.remainder)


def merge_with_nullspaces(pair_list: PairList) -> PairList:
    """Null-space driven merging (the Boolean-division style merge).

    Two pairs ``(α, γ1)`` and ``(β, γ2)`` merge into ``(α ⊕ β, γ1 ⊕ u)``
    whenever ``γ1 ⊕ γ2 ∈ N(α) ⊕ N(β)`` with witness ``u ∈ N(α)``; the merged
    pair's null-space generator is conservatively ``G_α · G_β``.
    """
    pairs = list(pair_list.pairs)
    changed = True
    while changed:
        changed = False
        merged_index: tuple[int, int] | None = None
        replacement: Pair | None = None
        for i in range(len(pairs)):
            gen_i = pairs[i].null_generator
            for j in range(i + 1, len(pairs)):
                gen_j = pairs[j].null_generator
                if gen_i.is_zero and gen_j.is_zero:
                    continue
                difference = pairs[i].second ^ pairs[j].second
                if difference.is_zero:
                    continue
                split = split_over_ideals(difference, gen_i, gen_j)
                if split is None:
                    continue
                u, _ = split
                new_first = pairs[i].first ^ pairs[j].first
                if new_first.is_zero:
                    continue
                replacement = Pair(
                    new_first,
                    pairs[i].second ^ u,
                    ideal_product_generator(gen_i, gen_j),
                )
                merged_index = (i, j)
                break
            if merged_index is not None:
                break
        if merged_index is not None and replacement is not None:
            i, j = merged_index
            pairs = [pairs[idx] for idx in range(len(pairs)) if idx not in (i, j)]
            pairs.append(replacement)
            changed = True
            # A null-space merge can enable further equal-part merges.
            pair_list = merge_equal_parts(PairList(pairs, pair_list.remainder))
            pairs = list(pair_list.pairs)
    return PairList(pairs, pair_list.remainder)
