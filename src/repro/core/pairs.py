"""Pair lists: the working representation of ``findBasis`` (paper section 5.2).

Every monomial of the expression under decomposition is split into its
group-variable part ``α`` and its remaining part ``γ``; the expression is the
XOR over pairs of ``α·γ`` (plus a remainder containing no group variable).
``findBasis`` repeatedly *merges* pairs — by equal parts, and, when null-space
information is available, by the Boolean-division style merge of section 4 —
until the set of first elements is the candidate basis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List

from ..anf.backend import get_backend
from ..anf.expression import Anf
from .nullspace import NullSpaceTable, ideal_product_generator, split_over_ideals


@dataclass
class Pair:
    """One ``(first, second)`` pair with the known null-space of ``first``.

    ``first`` only uses group variables; ``second`` only non-group variables
    (and, in multi-output mode, the output tag variables).  ``null_generator``
    generates a known sub-ideal of ``N(first)``.
    """

    first: Anf
    second: Anf
    null_generator: Anf

    @property
    def literal_count(self) -> int:
        return self.first.literal_count + self.second.literal_count

    def contribution(self) -> Anf:
        """The product ``first & second`` this pair contributes to the expression."""
        return self.first & self.second


@dataclass
class PairList:
    """A list of pairs plus the group-free remainder of the expression."""

    pairs: List[Pair] = field(default_factory=list)
    remainder: Anf | None = None

    def __iter__(self) -> Iterator[Pair]:
        return iter(self.pairs)

    def __len__(self) -> int:
        return len(self.pairs)

    @property
    def literal_count(self) -> int:
        total = sum(pair.literal_count for pair in self.pairs)
        if self.remainder is not None:
            total += self.remainder.literal_count
        return total

    def firsts(self) -> list[Anf]:
        return [pair.first for pair in self.pairs]

    def seconds(self) -> list[Anf]:
        return [pair.second for pair in self.pairs]

    def reconstruct(self) -> Anf:
        """XOR of all pair contributions plus the remainder (for verification)."""
        if self.remainder is not None:
            total = self.remainder
        elif self.pairs:
            total = Anf.zero(self.pairs[0].first.ctx)
        else:
            raise ValueError("cannot reconstruct an empty pair list without a remainder")
        for pair in self.pairs:
            total = total ^ pair.contribution()
        return total


def initial_pairs(expr: Anf, group_mask: int, nullspaces: NullSpaceTable) -> PairList:
    """Split an expression into its initial pair list for a variable group.

    Monomials are bucketed by their group part, which already performs the
    first family of merges (pairs with identical first elements).
    """
    buckets, remainder = expr.split_by_group(group_mask)
    return pairs_from_buckets(expr.ctx, buckets, remainder, nullspaces)


def pairs_from_buckets(ctx, buckets, remainder: Anf, nullspaces: NullSpaceTable) -> PairList:
    """Build the initial pair list from an already-bucketed split.

    ``buckets`` maps each non-zero group part to its second element — exactly
    what ``split_by_group`` produces, and what the fused split→build kernel
    emits directly without materialising the combined expression first.
    """
    pairs = []
    for group_part in sorted(buckets, key=lambda mask: (mask.bit_count(), mask)):
        first = Anf._raw(ctx, frozenset({group_part}))
        second = buckets[group_part]
        pairs.append(Pair(first, second, nullspaces.generator_for_monomial(group_part)))
    return PairList(pairs, remainder)


#: Smallest second (in terms) for which the fingerprint probe of
#: ``merge_equal_parts`` beats hashing the canonical key directly.
PROBE_MIN_TERMS = 1 << 14


def _second_fingerprint(expr: Anf) -> tuple:
    """Cheap exact invariant of a pair second's term set (probe mode only).

    Equal term sets always fingerprint equal, so distinct fingerprints need
    no canonical-key comparison.  The probe samples three rows of the
    (built-on-demand, cached) sorted matrix — equal sets have identical
    matrices, so sampled rows are set invariants.  Probing is enabled
    uniformly per ``merge_equal_parts`` call, so one representation never
    splits equal sets across fingerprint shapes; unpackable sets (which can
    never equal a packable one) use the term count alone and degrade to the
    full-key path on collision.
    """
    matrix = expr.term_matrix(build=True)
    if matrix is not None:
        words = matrix.words
        if not words:
            return (0,)
        return (len(words), words[0], words[len(words) // 2], words[-1])
    return (expr.num_terms,)


def merge_equal_parts(pair_list: PairList) -> PairList:
    """Merge pairs sharing a first or a second element until a fixed point.

    ``(α, γ), (β, γ) → (α ⊕ β, γ)`` and ``(α, β), (α, γ) → (α, β ⊕ γ)``
    (paper section 5.2, the identity-free merge).
    """
    pairs = list(pair_list.pairs)
    # The seconds carry the giant term sets; the backend supplies an O(n/8)
    # canonical key (packed matrix bytes) instead of per-term frozenset
    # hashing.  Keys are equal exactly when the term sets are, so the merge
    # decisions — and hence the results — are backend-independent.  Before
    # building (and hashing) a second's potentially megabytes-long
    # canonical bytes, an O(1) probe fingerprint — term count plus three
    # sampled rows of the sorted matrix — rules out non-equal sets: equal
    # sets always fingerprint equal, so the full key is only needed within
    # fingerprint collisions.
    backend = get_backend()
    second_key = backend.pair_key
    # Probing only pays when the seconds are big enough that building and
    # hashing their canonical bytes dominates; tiny pair lists keep the
    # direct-key path (same decisions either way).
    probe = backend.name == "packed" and any(
        pair.second.num_terms >= PROBE_MIN_TERMS for pair in pairs
    )
    changed = True
    while changed:
        changed = False
        # Merge pairs with equal second elements.
        fingerprint_count: dict[tuple, int] = {}
        fingerprints: list = []
        if probe:
            for pair in pairs:
                fingerprint = _second_fingerprint(pair.second)
                fingerprints.append(fingerprint)
                fingerprint_count[fingerprint] = fingerprint_count.get(fingerprint, 0) + 1
        else:
            fingerprints = [None] * len(pairs)
        by_second: dict = {}
        merged: list[Pair] = []
        for pair, fingerprint in zip(pairs, fingerprints):
            if fingerprint is None:
                key = second_key(pair.second)
            elif fingerprint_count[fingerprint] == 1:
                key = fingerprint
            else:
                key = (fingerprint, second_key(pair.second))
            existing = by_second.get(key)
            if existing is None:
                by_second[key] = pair
            else:
                combined = Pair(
                    existing.first ^ pair.first,
                    existing.second,
                    ideal_product_generator(existing.null_generator, pair.null_generator),
                )
                by_second[key] = combined
                changed = True
        merged = [pair for pair in by_second.values() if not pair.first.is_zero]
        # Merge pairs with equal first elements.
        by_first: dict[frozenset[int], Pair] = {}
        for pair in merged:
            key = pair.first.terms
            existing = by_first.get(key)
            if existing is None:
                by_first[key] = pair
            else:
                by_first[key] = Pair(
                    existing.first,
                    existing.second ^ pair.second,
                    existing.null_generator,
                )
                changed = True
        pairs = [pair for pair in by_first.values() if not pair.second.is_zero and not pair.first.is_zero]
    return PairList(pairs, pair_list.remainder)


def merge_with_nullspaces(pair_list: PairList) -> PairList:
    """Null-space driven merging (the Boolean-division style merge).

    Two pairs ``(α, γ1)`` and ``(β, γ2)`` merge into ``(α ⊕ β, γ1 ⊕ u)``
    whenever ``γ1 ⊕ γ2 ∈ N(α) ⊕ N(β)`` with witness ``u ∈ N(α)``; the merged
    pair's null-space generator is conservatively ``G_α · G_β``.
    """
    pairs = list(pair_list.pairs)
    changed = True
    while changed:
        changed = False
        merged_index: tuple[int, int] | None = None
        replacement: Pair | None = None
        for i in range(len(pairs)):
            gen_i = pairs[i].null_generator
            for j in range(i + 1, len(pairs)):
                gen_j = pairs[j].null_generator
                if gen_i.is_zero and gen_j.is_zero:
                    continue
                difference = pairs[i].second ^ pairs[j].second
                if difference.is_zero:
                    continue
                split = split_over_ideals(difference, gen_i, gen_j)
                if split is None:
                    continue
                u, _ = split
                new_first = pairs[i].first ^ pairs[j].first
                if new_first.is_zero:
                    continue
                replacement = Pair(
                    new_first,
                    pairs[i].second ^ u,
                    ideal_product_generator(gen_i, gen_j),
                )
                merged_index = (i, j)
                break
            if merged_index is not None:
                break
        if merged_index is not None and replacement is not None:
            i, j = merged_index
            pairs = [pairs[idx] for idx in range(len(pairs)) if idx not in (i, j)]
            pairs.append(replacement)
            changed = True
            # A null-space merge can enable further equal-part merges.
            pair_list = merge_equal_parts(PairList(pairs, pair_list.remainder))
            pairs = list(pair_list.pairs)
    return PairList(pairs, pair_list.remainder)
