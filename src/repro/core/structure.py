"""From a decomposition hierarchy to a gate-level netlist, plus reports.

Each building block is synthesised *locally* (this is where "logic synthesis
does an excellent job in optimising the circuit locally" applies) and the
blocks are stitched together following the hierarchy.  The resulting netlist
is what the Table 1 harness maps and times for the "Progressive
Decomposition" rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..anf.expression import Anf
from ..circuit.netlist import Netlist
from ..synth.library import Library, default_library
from ..synth.structuring import EmitContext, emit_auto, emit_with_strategy
from .decompose import Decomposition


def decomposition_to_netlist(
    decomposition: Decomposition,
    strategy: str = "auto",
    library: Library | None = None,
    objective: str = "delay",
    name: str = "progressive",
) -> Netlist:
    """Emit the block hierarchy as a netlist (one locally-optimised cone per block)."""
    library = library or default_library()
    netlist = Netlist(name)
    netlist.add_inputs(decomposition.primary_inputs)
    net_of: Dict[str, str] = {name_: name_ for name_ in decomposition.primary_inputs}
    emit = EmitContext(netlist, net_of)

    def emit_expression(expr: Anf) -> str:
        if expr.is_constant:
            return netlist.constant(0 if expr.is_zero else 1)
        if expr.is_literal:
            return emit.net_for_var(expr.literal_name)
        if strategy == "auto":
            return emit_auto(emit, expr, library, objective)
        return emit_with_strategy(emit, expr, strategy)

    for block in decomposition.blocks:
        net_of[block.name] = emit_expression(block.definition)
    for port, expr in decomposition.outputs.items():
        netlist.set_output(port, emit_expression(expr))
    return netlist


@dataclass
class HierarchyStats:
    """Quantitative description of the block hierarchy."""

    num_blocks: int
    num_levels: int
    max_block_support: int
    average_block_support: float
    max_block_literals: int
    total_block_literals: int
    blocks_per_level: Dict[int, int]

    def as_dict(self) -> Dict[str, object]:
        return {
            "num_blocks": self.num_blocks,
            "num_levels": self.num_levels,
            "max_block_support": self.max_block_support,
            "average_block_support": round(self.average_block_support, 2),
            "max_block_literals": self.max_block_literals,
            "total_block_literals": self.total_block_literals,
            "blocks_per_level": dict(sorted(self.blocks_per_level.items())),
        }


def hierarchy_stats(decomposition: Decomposition) -> HierarchyStats:
    """Summarise the hierarchy (used by the Figure 1/2 comparison)."""
    blocks = decomposition.blocks
    supports = [len(block.support) for block in blocks]
    literals = [block.definition.literal_count for block in blocks]
    per_level: Dict[int, int] = {}
    for block in blocks:
        per_level[block.level] = per_level.get(block.level, 0) + 1
    return HierarchyStats(
        num_blocks=len(blocks),
        num_levels=decomposition.num_levels,
        max_block_support=max(supports, default=0),
        average_block_support=(sum(supports) / len(supports)) if supports else 0.0,
        max_block_literals=max(literals, default=0),
        total_block_literals=sum(literals),
        blocks_per_level=per_level,
    )


def block_table(decomposition: Decomposition) -> List[Dict[str, object]]:
    """A tabular view of every block (name, level, group, definition, size)."""
    rows = []
    for block in decomposition.blocks:
        rows.append(
            {
                "name": block.name,
                "level": block.level,
                "group": ", ".join(block.group),
                "support": ", ".join(block.support),
                "literals": block.definition.literal_count,
                "definition": block.definition.to_str(),
            }
        )
    return rows
