"""``rewriteExpr``: rewrite the output list in terms of the new basis.

After the basis has been optimised, every pair's first element is replaced by
either a fresh block variable, an existing literal (when the basis element is
already a single variable), or an expression over other block variables (when
an identity eliminated the block).  The per-output expressions are recovered
from the tagged pair list by extracting each output's tag component.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from ..anf.context import Context
from ..anf.expression import Anf
from .basis import BasisExtraction


def extract_tag_component(expr: Anf, tag_name: str, ctx: Context) -> Anf:
    """Monomials of ``expr`` containing the tag variable, with the tag removed."""
    if tag_name not in ctx:
        return Anf.zero(ctx)
    bit = 1 << ctx.index(tag_name)
    terms = [term & ~bit for term in expr.terms if term & bit]
    return Anf(ctx, terms)


def rewrite_outputs(
    extraction: BasisExtraction,
    substitutions: Sequence[Anf],
    ctx: Context,
) -> Dict[str, Anf]:
    """Rewrite every output, substituting ``substitutions[i]`` for pair ``i``'s first.

    The invariant is exact: substituting each block variable by its definition
    in the result reproduces the original expression (verified by
    ``Decomposition.verify``).
    """
    if len(substitutions) != len(extraction.pair_list.pairs):
        raise ValueError("one substitution per pair is required")
    outputs: Dict[str, Anf] = {}
    remainder = extraction.pair_list.remainder
    for port in extraction.ports:
        tag = extraction.tag_of_port[port]
        if remainder is not None:
            acc = extract_tag_component(remainder, tag, ctx)
        else:
            acc = Anf.zero(ctx)
        for pair, replacement in zip(extraction.pair_list.pairs, substitutions):
            gamma = extract_tag_component(pair.second, tag, ctx)
            if gamma.is_zero:
                continue
            acc = acc ^ (replacement & gamma)
        outputs[port] = acc
    return outputs


def rewrite_identities(identities: Sequence[Anf], group: Sequence[str], ctx: Context) -> List[Anf]:
    """Carry forward the identities that do not mention the consumed group.

    Identities over variables that just left the expressions (the group) can
    no longer seed null-spaces of anything visible, so they are dropped;
    identities over surviving variables are kept unchanged.
    """
    group_mask = ctx.mask_of(group)
    kept = []
    for identity in identities:
        if identity.support_mask & group_mask:
            continue
        kept.append(identity)
    return kept
