"""``rewriteExpr``: rewrite the output list in terms of the new basis.

After the basis has been optimised, every pair's first element is replaced by
either a fresh block variable, an existing literal (when the basis element is
already a single variable), or an expression over other block variables (when
an identity eliminated the block).  The per-output expressions are recovered
from the tagged pair list by extracting each output's tag component.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Mapping, Sequence

from ..anf.context import Context
from ..anf.expression import Anf
from .basis import BasisExtraction


def extract_tag_component(expr: Anf, tag_name: str, ctx: Context) -> Anf:
    """Monomials of ``expr`` containing the tag variable, with the tag removed."""
    if tag_name not in ctx:
        return Anf.zero(ctx)
    bit = 1 << ctx.index(tag_name)
    # Distinct monomials sharing the tag bit stay distinct once it is
    # stripped, so the term set is already canonical.
    terms = frozenset(term & ~bit for term in expr.terms if term & bit)
    return Anf._raw(ctx, terms)


def _scatter_by_tags(expr: Anf, tags_mask: int) -> Dict[int, list]:
    """Split an expression into per-tag components in a single traversal.

    Returns ``{tag_bit: terms}`` where ``terms`` is the (canonical) monomial
    list of :func:`extract_tag_component` for that tag — each monomial is
    credited to every tag bit it contains, with that bit stripped.  Distinct
    terms stay distinct after stripping a shared bit, so no cancellation is
    possible and every bucket is non-empty.  One pass over the terms replaces
    one full scan per (port, pair) combination.
    """
    buckets: Dict[int, list] = defaultdict(list)
    for term in expr.terms:
        tags = term & tags_mask
        while tags:
            bit = tags & -tags
            buckets[bit].append(term & ~bit)
            tags ^= bit
    return buckets


def rewrite_outputs(
    extraction: BasisExtraction,
    substitutions: Sequence[Anf],
    ctx: Context,
) -> Dict[str, Anf]:
    """Rewrite every output, substituting ``substitutions[i]`` for pair ``i``'s first.

    The invariant is exact: substituting each block variable by its definition
    in the result reproduces the original expression (verified by
    ``Decomposition.verify``).  Each pair's second element is decomposed into
    all of its per-port tag components in one traversal, and the
    ``replacement · γ`` products go through the context's product memo.
    """
    if len(substitutions) != len(extraction.pair_list.pairs):
        raise ValueError("one substitution per pair is required")
    tag_bit_of_port: Dict[str, int] = {}
    tags_mask = 0
    for port in extraction.ports:
        tag = extraction.tag_of_port[port]
        if tag in ctx:
            bit = 1 << ctx.index(tag)
            tag_bit_of_port[port] = bit
            tags_mask |= bit
    outputs: Dict[str, Anf] = {
        port: Anf.zero(ctx) for port in extraction.ports
    }
    remainder = extraction.pair_list.remainder
    if remainder is not None:
        remainder_buckets = _scatter_by_tags(remainder, tags_mask)
        for port, bit in tag_bit_of_port.items():
            terms = remainder_buckets.get(bit)
            if terms:
                outputs[port] = Anf._raw(ctx, frozenset(terms))
    for pair, replacement in zip(extraction.pair_list.pairs, substitutions):
        buckets = _scatter_by_tags(pair.second, tags_mask)
        if not buckets:
            continue
        for port, bit in tag_bit_of_port.items():
            terms = buckets.get(bit)
            if not terms:
                continue
            gamma = Anf._raw(ctx, frozenset(terms))
            outputs[port] = outputs[port] ^ replacement.cached_and(gamma)
    return outputs


def rewrite_identities(identities: Sequence[Anf], group: Sequence[str], ctx: Context) -> List[Anf]:
    """Carry forward the identities that do not mention the consumed group.

    Identities over variables that just left the expressions (the group) can
    no longer seed null-spaces of anything visible, so they are dropped;
    identities over surviving variables are kept unchanged.
    """
    group_mask = ctx.mask_of(group)
    kept = []
    for identity in identities:
        if identity.support_mask & group_mask:
            continue
        kept.append(identity)
    return kept
