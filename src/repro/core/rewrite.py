"""``rewriteExpr``: rewrite the output list in terms of the new basis.

After the basis has been optimised, every pair's first element is replaced by
either a fresh block variable, an existing literal (when the basis element is
already a single variable), or an expression over other block variables (when
an identity eliminated the block).  The per-output expressions are recovered
from the tagged pair list by extracting each output's tag component.

The per-term work here — splitting every pair second into tag components and
accumulating ``replacement · γ`` products per port — runs through the active
term backend.  Under the packed backend the common shape (every replacement a
single variable) is fully word-parallel: tag components are bit-strips of the
term matrix, each product ORs one marker bit into a component, and the
accumulated XOR is a concatenation because every product is uniquely marked
by its replacement variable (the components themselves never mention any
replacement variable, so the marked term sets are pairwise disjoint).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..anf.backend import get_backend
from ..anf.context import Context
from ..anf.expression import Anf
from .basis import BasisExtraction


def extract_tag_component(expr: Anf, tag_name: str, ctx: Context) -> Anf:
    """Monomials of ``expr`` containing the tag variable, with the tag removed."""
    if tag_name not in ctx:
        return Anf.zero(ctx)
    bit = 1 << ctx.index(tag_name)
    component = get_backend().scatter_by_tags(expr, bit).get(bit)
    return component if component is not None else Anf.zero(ctx)


def rewrite_outputs(
    extraction: BasisExtraction,
    substitutions: Sequence[Anf],
    ctx: Context,
) -> Dict[str, Anf]:
    """Rewrite every output, substituting ``substitutions[i]`` for pair ``i``'s first.

    The invariant is exact: substituting each block variable by its definition
    in the result reproduces the original expression (verified by
    ``Decomposition.verify``).  Each pair's second element is decomposed into
    all of its per-port tag components in one traversal.
    """
    pairs = extraction.pair_list.pairs
    if len(substitutions) != len(pairs):
        raise ValueError("one substitution per pair is required")
    backend = get_backend()
    tag_bit_of_port: Dict[str, int] = {}
    tags_mask = 0
    for port in extraction.ports:
        tag = extraction.tag_of_port[port]
        if tag in ctx:
            bit = 1 << ctx.index(tag)
            tag_bit_of_port[port] = bit
            tags_mask |= bit

    remainder = extraction.pair_list.remainder
    remainder_parts = (
        backend.scatter_by_tags(remainder, tags_mask) if remainder is not None else {}
    )
    pair_parts = [backend.scatter_by_tags(pair.second, tags_mask) for pair in pairs]

    # The accumulated XOR per port degenerates to a disjoint union when every
    # replacement is a single variable that no component mentions: each
    # product's terms then all contain their own marker bit, the markers are
    # pairwise distinct, and the remainder component contains none of them.
    markers = 0
    disjoint = True
    for replacement, parts in zip(substitutions, pair_parts):
        if not parts:
            continue
        if not replacement.is_literal:
            disjoint = False
            break
        (marker,) = replacement.term_list()
        if marker & markers:
            disjoint = False
            break
        markers |= marker
    if disjoint and markers:
        for pair, parts in zip(pairs, pair_parts):
            if parts and pair.second.support_mask & markers:
                disjoint = False
                break
        if disjoint and remainder is not None and remainder.support_mask & markers:
            disjoint = False

    outputs: Dict[str, Anf] = {}
    for port, bit in tag_bit_of_port.items():
        if disjoint:
            pieces: List[Anf] = []
            component = remainder_parts.get(bit)
            if component is not None and not component.is_zero:
                pieces.append(component)
            for replacement, parts in zip(substitutions, pair_parts):
                component = parts.get(bit)
                if component is None or component.is_zero:
                    continue
                pieces.append(replacement.cached_and(component))
            outputs[port] = backend.disjoint_xor(pieces, ctx)
        else:
            total = remainder_parts.get(bit) or Anf.zero(ctx)
            for replacement, parts in zip(substitutions, pair_parts):
                component = parts.get(bit)
                if component is None or component.is_zero:
                    continue
                total = total ^ replacement.cached_and(component)
            outputs[port] = total
    for port in extraction.ports:
        if port not in outputs:
            outputs[port] = Anf.zero(ctx)
    return outputs


def rewrite_identities(identities: Sequence[Anf], group: Sequence[str], ctx: Context) -> List[Anf]:
    """Carry forward the identities that do not mention the consumed group.

    Identities over variables that just left the expressions (the group) can
    no longer seed null-spaces of anything visible, so they are dropped;
    identities over surviving variables are kept unchanged.
    """
    group_mask = ctx.mask_of(group)
    kept = []
    for identity in identities:
        if identity.support_mask & group_mask:
            continue
        kept.append(identity)
    return kept
