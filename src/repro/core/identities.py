"""``findIdentities`` / ``reduceBasisUsingIdentities`` (paper section 5.5).

Given the basis elements (their definitions over the current level's
variables) the procedure searches bounded-depth expression trees over the
prospective new variables that are identically zero.  Two families are used,
exactly as in the paper:

* *definitional* identities ``s_i ⊕ f(others) = 0`` — these shrink the basis
  (the block for ``s_i`` is never built; ``f`` is used instead), e.g. the
  hidden 4-bit counter in the majority function where ``s3 = s1·s2``;
* *product* identities ``s_i·s_j·… = 0`` — these seed the null-space table of
  the next iteration, enabling the Boolean-division style pair merges.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Sequence

from ..anf.context import Context
from ..anf.expression import Anf


@dataclass(frozen=True)
class Identity:
    """An expression over (prospective) basis variables that is identically zero."""

    expr: Anf          # over the new basis variable names
    kind: str          # "product" | "definition" | "xor"
    description: str


@dataclass
class IdentityAnalysis:
    """Identities found for a basis, and the basis reduction they allow."""

    identities: List[Identity]
    replacements: Dict[str, Anf]  # removed variable name -> expression over kept names
    kept: List[str]               # basis variable names that remain


def find_identities(
    names: Sequence[str],
    definitions: Sequence[Anf],
    ctx: Context,
    max_products: int = 3,
) -> List[Identity]:
    """Enumerate small identities among the basis definitions.

    ``names`` are the prospective variable names of the basis elements and
    ``definitions`` their expressions over the current level's variables.
    """
    if len(names) != len(definitions):
        raise ValueError("names and definitions must have the same length")
    identities: List[Identity] = []
    n = len(names)

    def var(i: int) -> Anf:
        return Anf.var(ctx, names[i])

    # --- product identities: s_i · s_j (· s_k) = 0 ------------------------
    zero_pairs: set[tuple[int, int]] = set()
    for i, j in combinations(range(n), 2):
        if (definitions[i] & definitions[j]).is_zero:
            zero_pairs.add((i, j))
            identities.append(
                Identity(var(i) & var(j), "product", f"{names[i]}*{names[j]} = 0")
            )
    if max_products >= 3:
        for i, j, k in combinations(range(n), 3):
            if (i, j) in zero_pairs or (i, k) in zero_pairs or (j, k) in zero_pairs:
                continue
            if (definitions[i] & definitions[j] & definitions[k]).is_zero:
                identities.append(
                    Identity(
                        var(i) & var(j) & var(k),
                        "product",
                        f"{names[i]}*{names[j]}*{names[k]} = 0",
                    )
                )

    # --- XOR identities: s_i ⊕ s_j ⊕ s_k = 0 ------------------------------
    for i, j in combinations(range(n), 2):
        if definitions[i] == definitions[j]:
            identities.append(
                Identity(var(i) ^ var(j), "definition", f"{names[i]} = {names[j]}")
            )
    for i, j, k in combinations(range(n), 3):
        if (definitions[i] ^ definitions[j] ^ definitions[k]).is_zero:
            identities.append(
                Identity(
                    var(i) ^ var(j) ^ var(k),
                    "definition",
                    f"{names[i]} = {names[j]} ^ {names[k]}",
                )
            )

    # --- definitional identities: s_i = s_j · s_k --------------------------
    for i in range(n):
        for j, k in combinations(range(n), 2):
            if i in (j, k):
                continue
            if definitions[i] == (definitions[j] & definitions[k]):
                identities.append(
                    Identity(
                        var(i) ^ (var(j) & var(k)),
                        "definition",
                        f"{names[i]} = {names[j]}*{names[k]}",
                    )
                )
    return identities


def reduce_basis_using_identities(
    names: Sequence[str],
    definitions: Sequence[Anf],
    identities: Sequence[Identity],
    ctx: Context,
) -> IdentityAnalysis:
    """Drop basis elements that definitional identities express via the others.

    Greedy: an element is removed when an identity rewrites it purely in terms
    of elements that are being kept.  Product identities are carried through
    (rewritten over the kept names when possible) so the next iteration can
    use them for null-space reasoning.
    """
    name_list = list(names)
    replacements: Dict[str, Anf] = {}

    for identity in identities:
        if identity.kind != "definition":
            continue
        # Try to solve the identity for one variable that appears linearly
        # (as a lone literal monomial) and is not yet removed.
        expr = identity.expr
        for name in name_list:
            if name in replacements:
                continue
            # Never remove a variable that an earlier replacement refers to,
            # otherwise replacements would chain onto removed blocks.
            if any(replacement.depends_on(name) for replacement in replacements.values()):
                continue
            bit = 1 << ctx.add_var(name)
            if frozenset({bit}) <= expr.terms and not any(
                term != bit and term & bit for term in expr.terms
            ):
                rest = expr ^ Anf.var(ctx, name)
                # The replacement may only use kept variables.
                rest_support = set(rest.support)
                if rest_support & set(replacements):
                    continue
                if name in rest_support:
                    continue
                replacements[name] = rest
                break

    kept = [name for name in name_list if name not in replacements]

    # Rewrite the surviving identities over kept names only.
    rewritten: List[Identity] = []
    substitution = dict(replacements)
    for identity in identities:
        expr = identity.expr.substitute(substitution) if substitution else identity.expr
        if expr.is_zero:
            continue
        rewritten.append(Identity(expr, identity.kind, identity.description))
    return IdentityAnalysis(identities=rewritten, replacements=replacements, kept=kept)
