"""``findIdentities`` / ``reduceBasisUsingIdentities`` (paper section 5.5).

Given the basis elements (their definitions over the current level's
variables) the procedure searches bounded-depth expression trees over the
prospective new variables that are identically zero.  Two families are used,
exactly as in the paper:

* *definitional* identities ``s_i ⊕ f(others) = 0`` — these shrink the basis
  (the block for ``s_i`` is never built; ``f`` is used instead), e.g. the
  hidden 4-bit counter in the majority function where ``s3 = s1·s2``;
* *product* identities ``s_i·s_j·… = 0`` — these seed the null-space table of
  the next iteration, enabling the Boolean-division style pair merges.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Sequence

from ..anf.bitset import kernel_for_exprs
from ..anf.context import Context
from ..anf.expression import Anf


@dataclass(frozen=True)
class Identity:
    """An expression over (prospective) basis variables that is identically zero."""

    expr: Anf          # over the new basis variable names
    kind: str          # "product" | "definition" | "xor"
    description: str


@dataclass
class IdentityAnalysis:
    """Identities found for a basis, and the basis reduction they allow."""

    identities: List[Identity]
    replacements: Dict[str, Anf]  # removed variable name -> expression over kept names
    kept: List[str]               # basis variable names that remain


def find_identities(
    names: Sequence[str],
    definitions: Sequence[Anf],
    ctx: Context,
    max_products: int = 3,
) -> List[Identity]:
    """Enumerate small identities among the basis definitions.

    ``names`` are the prospective variable names of the basis elements and
    ``definitions`` their expressions over the current level's variables.
    """
    if len(names) != len(definitions):
        raise ValueError("names and definitions must have the same length")
    identities: List[Identity] = []
    n = len(names)

    def var(i: int) -> Anf:
        return Anf.var(ctx, names[i])

    # Semantic queries go through the word-parallel truth-bitset kernel when
    # the joint support is narrow enough (it always is for the paper's k = 4
    # groups); every test below is an exact replacement for the symbolic one.
    kernel = kernel_for_exprs(definitions, ctx)
    truths = [kernel.truth(expr) for expr in definitions] if kernel else None
    supports = [expr.support_mask for expr in definitions]
    nonzero = [not expr.is_zero for expr in definitions]

    def pair_product_is_zero(i: int, j: int) -> bool:
        if supports[i] & supports[j] == 0:
            # Nonzero factors over disjoint supports multiply to a nonzero
            # product (the term-pair map is injective), so only a zero factor
            # can annihilate the pair.
            return not (nonzero[i] and nonzero[j])
        if truths is not None:
            return truths[i] & truths[j] == 0
        return (definitions[i] & definitions[j]).is_zero

    # --- product identities: s_i · s_j (· s_k) = 0 ------------------------
    zero_pairs: set[tuple[int, int]] = set()
    for i, j in combinations(range(n), 2):
        if pair_product_is_zero(i, j):
            zero_pairs.add((i, j))
            identities.append(
                Identity(var(i) & var(j), "product", f"{names[i]}*{names[j]} = 0")
            )
    if max_products >= 3:
        for i, j, k in combinations(range(n), 3):
            if (i, j) in zero_pairs or (i, k) in zero_pairs or (j, k) in zero_pairs:
                continue
            if (
                nonzero[i] and nonzero[j] and nonzero[k]
                and supports[i] & supports[j] == 0
                and (supports[i] | supports[j]) & supports[k] == 0
            ):
                continue  # pairwise-disjoint nonzero factors: product nonzero
            if truths is not None:
                triple_is_zero = truths[i] & truths[j] & truths[k] == 0
            else:
                triple_is_zero = (definitions[i] & definitions[j] & definitions[k]).is_zero
            if triple_is_zero:
                identities.append(
                    Identity(
                        var(i) & var(j) & var(k),
                        "product",
                        f"{names[i]}*{names[j]}*{names[k]} = 0",
                    )
                )

    # --- XOR identities: s_i ⊕ s_j ⊕ s_k = 0 ------------------------------
    for i, j in combinations(range(n), 2):
        if definitions[i] == definitions[j]:
            identities.append(
                Identity(var(i) ^ var(j), "definition", f"{names[i]} = {names[j]}")
            )
    lengths = [expr.num_terms for expr in definitions]
    for i, j, k in combinations(range(n), 3):
        # A zero XOR needs every monomial to cancel, so the term counts must
        # have an even sum — a cheap filter before any set work.
        if (lengths[i] + lengths[j] + lengths[k]) & 1:
            continue
        if truths is not None:
            xor_is_zero = truths[i] ^ truths[j] ^ truths[k] == 0
        else:
            xor_is_zero = (definitions[i] ^ definitions[j] ^ definitions[k]).is_zero
        if xor_is_zero:
            identities.append(
                Identity(
                    var(i) ^ var(j) ^ var(k),
                    "definition",
                    f"{names[i]} = {names[j]} ^ {names[k]}",
                )
            )

    # --- definitional identities: s_i = s_j · s_k --------------------------
    # The product s_j·s_k is hoisted out of the s_i scan (the seed recomputed
    # it once per candidate i); matches are re-sorted to the seed's (i, j, k)
    # emission order so downstream greedy reduction sees the same stream.
    matches: List[tuple[int, int, int]] = []
    if truths is not None:
        index_of_truth: Dict[int, List[int]] = {}
        for i, value in enumerate(truths):
            index_of_truth.setdefault(value, []).append(i)
        for j, k in combinations(range(n), 2):
            product = truths[j] & truths[k]
            for i in index_of_truth.get(product, ()):
                if i not in (j, k):
                    matches.append((i, j, k))
    else:
        index_of_terms: Dict[frozenset, List[int]] = {}
        for i, expr in enumerate(definitions):
            index_of_terms.setdefault(expr.terms, []).append(i)
        for j, k in combinations(range(n), 2):
            product = definitions[j] & definitions[k]
            for i in index_of_terms.get(product.terms, ()):
                if i not in (j, k):
                    matches.append((i, j, k))
    matches.sort()
    for i, j, k in matches:
        identities.append(
            Identity(
                var(i) ^ (var(j) & var(k)),
                "definition",
                f"{names[i]} = {names[j]}*{names[k]}",
            )
        )
    return identities


def reduce_basis_using_identities(
    names: Sequence[str],
    definitions: Sequence[Anf],
    identities: Sequence[Identity],
    ctx: Context,
) -> IdentityAnalysis:
    """Drop basis elements that definitional identities express via the others.

    Greedy: an element is removed when an identity rewrites it purely in terms
    of elements that are being kept.  Product identities are carried through
    (rewritten over the kept names when possible) so the next iteration can
    use them for null-space reasoning.
    """
    name_list = list(names)
    replacements: Dict[str, Anf] = {}

    for identity in identities:
        if identity.kind != "definition":
            continue
        # Try to solve the identity for one variable that appears linearly
        # (as a lone literal monomial) and is not yet removed.
        expr = identity.expr
        for name in name_list:
            if name in replacements:
                continue
            # Never remove a variable that an earlier replacement refers to,
            # otherwise replacements would chain onto removed blocks.
            if any(replacement.depends_on(name) for replacement in replacements.values()):
                continue
            bit = 1 << ctx.add_var(name)
            if frozenset({bit}) <= expr.terms and not any(
                term != bit and term & bit for term in expr.terms
            ):
                rest = expr ^ Anf.var(ctx, name)
                # The replacement may only use kept variables.
                rest_support = set(rest.support)
                if rest_support & set(replacements):
                    continue
                if name in rest_support:
                    continue
                replacements[name] = rest
                break

    kept = [name for name in name_list if name not in replacements]

    # Rewrite the surviving identities over kept names only.
    rewritten: List[Identity] = []
    substitution = dict(replacements)
    for identity in identities:
        expr = identity.expr.substitute(substitution) if substitution else identity.expr
        if expr.is_zero:
            continue
        rewritten.append(Identity(expr, identity.kind, identity.description))
    return IdentityAnalysis(identities=rewritten, replacements=replacements, kept=kept)
