"""``findIdentities`` / ``reduceBasisUsingIdentities`` (paper section 5.5).

Given the basis elements (their definitions over the current level's
variables) the procedure searches bounded-depth expression trees over the
prospective new variables that are identically zero.  Two families are used,
exactly as in the paper:

* *definitional* identities ``s_i ⊕ f(others) = 0`` — these shrink the basis
  (the block for ``s_i`` is never built; ``f`` is used instead), e.g. the
  hidden 4-bit counter in the majority function where ``s3 = s1·s2``;
* *product* identities ``s_i·s_j·… = 0`` — these seed the null-space table of
  the next iteration, enabling the Boolean-division style pair merges.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Sequence, Tuple

from ..anf.bitset import kernel_for_exprs
from ..anf.context import Context
from ..anf.expression import Anf
from ..parallel import shard_chunks, shard_map, shard_workers

#: Minimum number of candidate tests before a scan fans out over the
#: ``REPRO_SHARD_PASSES`` pool — below this the per-chunk pickling costs
#: more than the big-int tests it parallelises.
SHARD_MIN_IDENTITY_TESTS = 512


@dataclass(frozen=True)
class Identity:
    """An expression over (prospective) basis variables that is identically zero."""

    expr: Anf          # over the new basis variable names
    kind: str          # "product" | "definition" | "xor"
    description: str


@dataclass
class IdentityAnalysis:
    """Identities found for a basis, and the basis reduction they allow."""

    identities: List[Identity]
    replacements: Dict[str, Anf]  # removed variable name -> expression over kept names
    kept: List[str]               # basis variable names that remain


def _identity_scan(payload: tuple) -> list:
    """Evaluate one run of candidate identity tests (module-level: picklable).

    The payload ships plain integers only — truth bitsets, support masks and
    index tuples — never ``Anf``/``Context`` objects.  Modes returning hit
    positions keep them in chunk order, so concatenating the per-chunk
    results reproduces the serial scan's emission order exactly.
    """
    mode, data, chunk = payload
    if mode == "pair":
        truths, supports, nonzero = data
        hits = []
        for position, (i, j) in enumerate(chunk):
            if supports[i] & supports[j] == 0:
                # Nonzero factors over disjoint supports multiply to a
                # nonzero product, so only a zero factor can annihilate.
                if not (nonzero[i] and nonzero[j]):
                    hits.append(position)
            elif truths[i] & truths[j] == 0:
                hits.append(position)
        return hits
    if mode == "triple":
        truths, supports, nonzero = data
        hits = []
        for position, (i, j, k) in enumerate(chunk):
            if (
                nonzero[i] and nonzero[j] and nonzero[k]
                and supports[i] & supports[j] == 0
                and (supports[i] | supports[j]) & supports[k] == 0
            ):
                continue  # pairwise-disjoint nonzero factors: product nonzero
            if truths[i] & truths[j] & truths[k] == 0:
                hits.append(position)
        return hits
    if mode == "xor3":
        (truths,) = data
        return [
            position
            for position, (i, j, k) in enumerate(chunk)
            if truths[i] ^ truths[j] ^ truths[k] == 0
        ]
    if mode == "product":
        (truths,) = data
        return [truths[j] & truths[k] for j, k in chunk]
    raise ValueError(f"unknown identity scan mode {mode!r}")


def _sharded_scan(mode: str, data: tuple, items: List[tuple]) -> list:
    """Run ``_identity_scan`` over ``items``, fanned across the shard pool.

    Results concatenate in chunk order (hit positions are rebased to the
    full item list), so the output is bit-identical to the serial scan —
    which is literally this code run on a single chunk (and is called
    directly, with no chunk bookkeeping, when the pool is off or the scan
    is too small to be worth shipping).
    """
    workers = shard_workers() or 1
    if workers <= 1 or len(items) < SHARD_MIN_IDENTITY_TESTS:
        return _identity_scan((mode, data, items))
    chunks = shard_chunks(items, workers)
    merged: list = []
    offset = 0
    for chunk, result in zip(
        chunks, shard_map(_identity_scan, [(mode, data, chunk) for chunk in chunks])
    ):
        if mode == "product":
            merged.extend(result)
        else:
            merged.extend(offset + position for position in result)
        offset += len(chunk)
    return merged


def find_identities(
    names: Sequence[str],
    definitions: Sequence[Anf],
    ctx: Context,
    max_products: int = 3,
) -> List[Identity]:
    """Enumerate small identities among the basis definitions.

    ``names`` are the prospective variable names of the basis elements and
    ``definitions`` their expressions over the current level's variables.
    """
    if len(names) != len(definitions):
        raise ValueError("names and definitions must have the same length")
    identities: List[Identity] = []
    n = len(names)

    def var(i: int) -> Anf:
        return Anf.var(ctx, names[i])

    # Semantic queries go through the word-parallel truth-bitset kernel when
    # the joint support is narrow enough (it always is for the paper's k = 4
    # groups); every test below is an exact replacement for the symbolic one.
    kernel = kernel_for_exprs(definitions, ctx)
    truths = [kernel.truth(expr) for expr in definitions] if kernel else None
    supports = [expr.support_mask for expr in definitions]
    nonzero = [not expr.is_zero for expr in definitions]

    def pair_product_is_zero(i: int, j: int) -> bool:
        if supports[i] & supports[j] == 0:
            # Nonzero factors over disjoint supports multiply to a nonzero
            # product (the term-pair map is injective), so only a zero factor
            # can annihilate the pair.
            return not (nonzero[i] and nonzero[j])
        if truths is not None:
            return truths[i] & truths[j] == 0
        return (definitions[i] & definitions[j]).is_zero

    # --- product identities: s_i · s_j (· s_k) = 0 ------------------------
    # The per-candidate scans below are independent big-int tests, so with
    # truth bitsets available they fan out over the ``REPRO_SHARD_PASSES``
    # pool (payloads ship plain integers); the serial default runs the same
    # scanner on one chunk, and hit positions come back in enumeration
    # order, so both modes emit bit-identical identity streams.
    zero_pairs: set[tuple[int, int]] = set()
    pair_candidates = list(combinations(range(n), 2))
    if truths is not None:
        pair_hits: List[Tuple[int, int]] = [
            pair_candidates[position]
            for position in _sharded_scan(
                "pair", (truths, supports, nonzero), pair_candidates
            )
        ]
    else:
        pair_hits = [pair for pair in pair_candidates if pair_product_is_zero(*pair)]
    for i, j in pair_hits:
        zero_pairs.add((i, j))
        identities.append(
            Identity(var(i) & var(j), "product", f"{names[i]}*{names[j]} = 0")
        )
    if max_products >= 3:
        triple_candidates = [
            (i, j, k)
            for i, j, k in combinations(range(n), 3)
            if (i, j) not in zero_pairs
            and (i, k) not in zero_pairs
            and (j, k) not in zero_pairs
        ]
        if truths is not None:
            triple_hits = [
                triple_candidates[position]
                for position in _sharded_scan(
                    "triple", (truths, supports, nonzero), triple_candidates
                )
            ]
        else:
            triple_hits = []
            for i, j, k in triple_candidates:
                if (
                    nonzero[i] and nonzero[j] and nonzero[k]
                    and supports[i] & supports[j] == 0
                    and (supports[i] | supports[j]) & supports[k] == 0
                ):
                    continue  # pairwise-disjoint nonzero factors: product nonzero
                if (definitions[i] & definitions[j] & definitions[k]).is_zero:
                    triple_hits.append((i, j, k))
        for i, j, k in triple_hits:
            identities.append(
                Identity(
                    var(i) & var(j) & var(k),
                    "product",
                    f"{names[i]}*{names[j]}*{names[k]} = 0",
                )
            )

    # --- XOR identities: s_i ⊕ s_j ⊕ s_k = 0 ------------------------------
    for i, j in combinations(range(n), 2):
        if definitions[i] == definitions[j]:
            identities.append(
                Identity(var(i) ^ var(j), "definition", f"{names[i]} = {names[j]}")
            )
    lengths = [expr.num_terms for expr in definitions]
    # A zero XOR needs every monomial to cancel, so the term counts must
    # have an even sum — a cheap filter before any set (or sharded) work.
    xor_candidates = [
        (i, j, k)
        for i, j, k in combinations(range(n), 3)
        if (lengths[i] + lengths[j] + lengths[k]) & 1 == 0
    ]
    if truths is not None:
        xor_hits = [
            xor_candidates[position]
            for position in _sharded_scan("xor3", (truths,), xor_candidates)
        ]
    else:
        xor_hits = [
            (i, j, k)
            for i, j, k in xor_candidates
            if (definitions[i] ^ definitions[j] ^ definitions[k]).is_zero
        ]
    for i, j, k in xor_hits:
        identities.append(
            Identity(
                var(i) ^ var(j) ^ var(k),
                "definition",
                f"{names[i]} = {names[j]} ^ {names[k]}",
            )
        )

    # --- definitional identities: s_i = s_j · s_k --------------------------
    # The product s_j·s_k is hoisted out of the s_i scan (the seed recomputed
    # it once per candidate i); matches are re-sorted to the seed's (i, j, k)
    # emission order so downstream greedy reduction sees the same stream.
    matches: List[tuple[int, int, int]] = []
    if truths is not None:
        index_of_truth: Dict[int, List[int]] = {}
        for i, value in enumerate(truths):
            index_of_truth.setdefault(value, []).append(i)
        product_candidates = list(combinations(range(n), 2))
        products = _sharded_scan("product", (truths,), product_candidates)
        for (j, k), product in zip(product_candidates, products):
            for i in index_of_truth.get(product, ()):
                if i not in (j, k):
                    matches.append((i, j, k))
    else:
        index_of_terms: Dict[frozenset, List[int]] = {}
        for i, expr in enumerate(definitions):
            index_of_terms.setdefault(expr.terms, []).append(i)
        for j, k in combinations(range(n), 2):
            product = definitions[j] & definitions[k]
            for i in index_of_terms.get(product.terms, ()):
                if i not in (j, k):
                    matches.append((i, j, k))
    matches.sort()
    for i, j, k in matches:
        identities.append(
            Identity(
                var(i) ^ (var(j) & var(k)),
                "definition",
                f"{names[i]} = {names[j]}*{names[k]}",
            )
        )
    return identities


def reduce_basis_using_identities(
    names: Sequence[str],
    definitions: Sequence[Anf],
    identities: Sequence[Identity],
    ctx: Context,
) -> IdentityAnalysis:
    """Drop basis elements that definitional identities express via the others.

    Greedy: an element is removed when an identity rewrites it purely in terms
    of elements that are being kept.  Product identities are carried through
    (rewritten over the kept names when possible) so the next iteration can
    use them for null-space reasoning.
    """
    name_list = list(names)
    replacements: Dict[str, Anf] = {}

    for identity in identities:
        if identity.kind != "definition":
            continue
        # Try to solve the identity for one variable that appears linearly
        # (as a lone literal monomial) and is not yet removed.
        expr = identity.expr
        for name in name_list:
            if name in replacements:
                continue
            # Never remove a variable that an earlier replacement refers to,
            # otherwise replacements would chain onto removed blocks.
            if any(replacement.depends_on(name) for replacement in replacements.values()):
                continue
            bit = 1 << ctx.add_var(name)
            if frozenset({bit}) <= expr.terms and not any(
                term != bit and term & bit for term in expr.terms
            ):
                rest = expr ^ Anf.var(ctx, name)
                # The replacement may only use kept variables.
                rest_support = set(rest.support)
                if rest_support & set(replacements):
                    continue
                if name in rest_support:
                    continue
                replacements[name] = rest
                break

    kept = [name for name in name_list if name not in replacements]

    # Rewrite the surviving identities over kept names only.
    rewritten: List[Identity] = []
    substitution = dict(replacements)
    for identity in identities:
        expr = identity.expr.substitute(substitution) if substitution else identity.expr
        if expr.is_zero:
            continue
        rewritten.append(Identity(expr, identity.kind, identity.description))
    return IdentityAnalysis(identities=rewritten, replacements=replacements, kept=kept)
