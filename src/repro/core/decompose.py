"""The Progressive Decomposition main loop (paper Fig. 5).

``progressive_decomposition`` takes a multi-output Boolean specification in
Reed-Muller form and iteratively:

1. chooses a group of ``k`` variables (``findGroup``),
2. extracts the group's leader expressions (``findBasis``),
3. minimises the basis via GF(2) linear dependence and local size reduction,
4. finds identities among the basis elements, removes elements the identities
   define, and records product identities for the next iteration's
   null-spaces,
5. rewrites the outputs (and carried identities) over the new block variables,

until every output is reduced to (at most) a literal.  The result is a
hierarchy of building blocks — each a small expression over earlier-level
variables — plus a complete per-iteration trace (used to reproduce Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..anf.context import Context
from ..anf.expression import Anf
from .basis import BasisExtraction, extract_basis
from .grouping import find_group, support_of_outputs
from .identities import Identity, IdentityAnalysis, find_identities, reduce_basis_using_identities
from .optimize import improve_basis_by_size_reduction, minimize_basis_by_linear_dependence
from .rewrite import rewrite_identities, rewrite_outputs


@dataclass
class DecompositionOptions:
    """Tunable knobs of the algorithm (the paper uses ``k = 4`` throughout)."""

    k: int = 4
    max_iterations: int = 128
    use_nullspaces: bool = True
    use_linear_dependence: bool = True
    use_size_reduction: bool = True
    use_identities: bool = True
    identity_products: int = 3
    block_prefix: str = "t"


@dataclass
class Block:
    """One building block: a new variable and its defining expression."""

    name: str
    level: int
    definition: Anf
    group: List[str] = field(default_factory=list)

    @property
    def support(self) -> tuple[str, ...]:
        return self.definition.support

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Block({self.name} = {self.definition.to_str()})"


@dataclass
class IterationRecord:
    """Trace of one iteration (enough to reproduce the paper's Fig. 6)."""

    index: int
    group: List[str]
    basis_definitions: List[Anf]
    block_names: List[str]
    substitutions: List[Anf]
    identities_found: List[Identity]
    removed_blocks: Dict[str, Anf]
    size_before: int
    size_after: int

    def describe(self) -> str:
        lines = [f"iteration {self.index}: group = {{{', '.join(self.group)}}}"]
        for name, definition in zip(self.block_names, self.basis_definitions):
            lines.append(f"  {name} = {definition.to_str()}")
        for identity in self.identities_found:
            lines.append(f"  identity: {identity.description}")
        for name, replacement in self.removed_blocks.items():
            lines.append(f"  removed {name} (implemented as {replacement.to_str()})")
        lines.append(f"  expression size: {self.size_before} -> {self.size_after} literals")
        return "\n".join(lines)


@dataclass
class Decomposition:
    """The full result of Progressive Decomposition."""

    ctx: Context
    original: Dict[str, Anf]
    outputs: Dict[str, Anf]
    blocks: List[Block]
    iterations: List[IterationRecord]
    options: DecompositionOptions
    primary_inputs: List[str]

    # ------------------------------------------------------------------
    @property
    def num_levels(self) -> int:
        return max((block.level for block in self.blocks), default=0)

    def blocks_at_level(self, level: int) -> List[Block]:
        return [block for block in self.blocks if block.level == level]

    def block_by_name(self, name: str) -> Block:
        for block in self.blocks:
            if block.name == name:
                return block
        raise KeyError(f"no block named {name!r}")

    def definitions(self) -> Dict[str, Anf]:
        return {block.name: block.definition for block in self.blocks}

    # ------------------------------------------------------------------
    def flatten(self) -> Dict[str, Anf]:
        """Expand every output back to the primary inputs (exact)."""
        flattened: Dict[str, Anf] = {}
        cache: Dict[str, Anf] = {}

        def resolve(name: str) -> Anf:
            cached = cache.get(name)
            if cached is not None:
                return cached
            block = self.block_by_name(name)
            expr = block.definition
            mapping = {
                var: resolve(var)
                for var in expr.support
                if var not in self.primary_inputs and self._is_block(var)
            }
            result = expr.substitute(mapping) if mapping else expr
            cache[name] = result
            return result

        for port, expr in self.outputs.items():
            mapping = {
                var: resolve(var)
                for var in expr.support
                if self._is_block(var)
            }
            flattened[port] = expr.substitute(mapping) if mapping else expr
        return flattened

    def _is_block(self, name: str) -> bool:
        return any(block.name == name for block in self.blocks)

    def verify(self) -> bool:
        """True when the hierarchy reproduces the original specification exactly."""
        flattened = self.flatten()
        return all(flattened[port] == expr for port, expr in self.original.items())

    # ------------------------------------------------------------------
    def total_block_literals(self) -> int:
        return sum(block.definition.literal_count for block in self.blocks)

    def describe(self) -> str:
        """Human-readable rendering of the hierarchy (Fig. 6 style)."""
        lines = [
            f"Progressive decomposition: {len(self.blocks)} blocks over "
            f"{self.num_levels} levels (k = {self.options.k})"
        ]
        for level in range(1, self.num_levels + 1):
            lines.append(f"level {level}:")
            for block in self.blocks_at_level(level):
                lines.append(f"  {block.name} = {block.definition.to_str()}")
        lines.append("outputs:")
        for port, expr in self.outputs.items():
            lines.append(f"  {port} = {expr.to_str()}")
        return "\n".join(lines)

    def trace(self) -> str:
        """Per-iteration trace of the algorithm's decisions."""
        return "\n".join(record.describe() for record in self.iterations)


def _total_literals(outputs: Mapping[str, Anf]) -> int:
    return sum(expr.literal_count for expr in outputs.values())


def _is_terminal(expr: Anf) -> bool:
    """Outputs are terminal once they depend on at most one variable."""
    mask = expr.support_mask
    return mask == 0 or (mask & (mask - 1)) == 0


def progressive_decomposition(
    outputs: Mapping[str, Anf],
    options: DecompositionOptions | None = None,
    input_words: Sequence[Sequence[str]] | None = None,
) -> Decomposition:
    """Run Progressive Decomposition on a multi-output specification.

    ``input_words`` lists the primary-input buses (LSB first) so that
    ``findGroup`` can pick the least-significant available bits of each
    integer operand, as the paper prescribes; by default all primary inputs
    are treated as a single word in declaration order.
    """
    if not outputs:
        raise ValueError("progressive_decomposition needs at least one output")
    options = options or DecompositionOptions()
    first_expr = next(iter(outputs.values()))
    ctx = first_expr.ctx
    for expr in outputs.values():
        ctx.require_same(expr.ctx)

    original = dict(outputs)
    current: Dict[str, Anf] = dict(outputs)
    primary_inputs = support_of_outputs(current, ctx)
    if input_words is None:
        input_words = [list(primary_inputs)]

    blocks: List[Block] = []
    iterations: List[IterationRecord] = []
    identities: List[Anf] = []
    level = 0
    forced_full_group = False

    while not all(_is_terminal(expr) for expr in current.values()):
        if level >= options.max_iterations:
            raise RuntimeError(
                f"progressive decomposition did not converge in {options.max_iterations} iterations"
            )
        level += 1
        active = {port: expr for port, expr in current.items() if not _is_terminal(expr)}
        size_before = _total_literals(current)

        if forced_full_group:
            group = support_of_outputs(active, ctx)
        else:
            group = find_group(active, options.k, ctx, primary_inputs, input_words, identities)
        if not group:
            group = support_of_outputs(active, ctx)

        extraction = extract_basis(
            active, group, identities if options.use_identities else (), ctx,
            use_nullspaces=options.use_nullspaces,
        )
        pair_list = extraction.pair_list
        if options.use_linear_dependence:
            pair_list = minimize_basis_by_linear_dependence(pair_list)
        if options.use_size_reduction:
            pair_list = improve_basis_by_size_reduction(pair_list)
        extraction.pair_list = pair_list

        basis_definitions = pair_list.firsts()

        # Propose names: existing literals keep their own name, real blocks get
        # fresh names at this level.
        proposed_names: List[str] = []
        fresh_index = 0
        for definition in basis_definitions:
            if definition.is_literal:
                proposed_names.append(definition.literal_name)
            else:
                proposed_names.append(f"{options.block_prefix}{level}_{fresh_index}")
                fresh_index += 1

        # Identities among the prospective blocks.
        identities_found: List[Identity] = []
        analysis: Optional[IdentityAnalysis] = None
        if options.use_identities and basis_definitions:
            identities_found = find_identities(
                proposed_names, basis_definitions, ctx, options.identity_products
            )
            analysis = reduce_basis_using_identities(
                proposed_names, basis_definitions, identities_found, ctx
            )
        removed: Dict[str, Anf] = dict(analysis.replacements) if analysis else {}

        # Build the substitution for every pair and create the real blocks.
        substitutions: List[Anf] = []
        block_names: List[str] = []
        new_blocks: List[Block] = []
        for name, definition in zip(proposed_names, basis_definitions):
            if definition.is_literal:
                substitutions.append(definition)
                block_names.append(name)
                continue
            if name in removed:
                substitutions.append(removed[name])
                block_names.append(name)
                continue
            ctx.add_var(name)
            new_blocks.append(Block(name, level, definition, list(group)))
            substitutions.append(Anf.var(ctx, name))
            block_names.append(name)

        rewritten = rewrite_outputs(extraction, substitutions, ctx)
        next_outputs = dict(current)
        next_outputs.update(rewritten)

        # Carry identities forward: drop those mentioning the consumed group,
        # add the product identities over the surviving new blocks.
        identities = rewrite_identities(identities, group, ctx)
        if analysis is not None:
            surviving = {block.name for block in new_blocks} | set(primary_inputs)
            for identity in analysis.identities:
                if identity.kind != "product":
                    continue
                if set(identity.expr.support) <= surviving:
                    identities.append(identity.expr)

        size_after = _total_literals(next_outputs)
        iterations.append(
            IterationRecord(
                index=level,
                group=list(group),
                basis_definitions=basis_definitions,
                block_names=block_names,
                substitutions=substitutions,
                identities_found=identities_found,
                removed_blocks=removed,
                size_before=size_before,
                size_after=size_after,
            )
        )

        made_progress = bool(new_blocks) or any(
            next_outputs[port] != current[port] for port in current
        )
        blocks.extend(new_blocks)
        current = next_outputs

        if not made_progress:
            if forced_full_group:
                raise RuntimeError("progressive decomposition stalled even with a full group")
            forced_full_group = True
        else:
            forced_full_group = False

    return Decomposition(
        ctx=ctx,
        original=original,
        outputs=current,
        blocks=blocks,
        iterations=iterations,
        options=options,
        primary_inputs=primary_inputs,
    )
