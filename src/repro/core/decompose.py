"""Progressive Decomposition result types and the compatibility entry point.

The Fig. 5 loop itself lives in :mod:`repro.engine`: each stage (group →
basis → minimise → identities → rewrite) is a composable
:class:`~repro.engine.passes.Pass` run by a
:class:`~repro.engine.pipeline.Pipeline` over an explicit
:class:`~repro.engine.state.EngineState`.  ``progressive_decomposition``
below is a thin wrapper that assembles the pipeline matching its
:class:`DecompositionOptions` — its results are bit-identical to the
original monolithic loop (asserted by the parity property tests and the
benchmark ``--compare`` harness).

This module keeps the result model: a hierarchy of building
:class:`Block` objects — each a small expression over earlier-level
variables — plus a complete per-iteration trace (used to reproduce Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from ..anf.context import Context
from ..anf.expression import Anf
from .identities import Identity


@dataclass
class DecompositionOptions:
    """Tunable knobs of the algorithm (the paper uses ``k = 4`` throughout)."""

    k: int = 4
    max_iterations: int = 128
    use_nullspaces: bool = True
    use_linear_dependence: bool = True
    use_size_reduction: bool = True
    use_identities: bool = True
    identity_products: int = 3
    block_prefix: str = "t"


@dataclass
class Block:
    """One building block: a new variable and its defining expression."""

    name: str
    level: int
    definition: Anf
    group: List[str] = field(default_factory=list)

    @property
    def support(self) -> tuple[str, ...]:
        return self.definition.support

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Block({self.name} = {self.definition.to_str()})"


@dataclass
class IterationRecord:
    """Trace of one iteration (enough to reproduce the paper's Fig. 6)."""

    index: int
    group: List[str]
    basis_definitions: List[Anf]
    block_names: List[str]
    substitutions: List[Anf]
    identities_found: List[Identity]
    removed_blocks: Dict[str, Anf]
    size_before: int
    size_after: int

    def describe(self) -> str:
        lines = [f"iteration {self.index}: group = {{{', '.join(self.group)}}}"]
        for name, definition in zip(self.block_names, self.basis_definitions):
            lines.append(f"  {name} = {definition.to_str()}")
        for identity in self.identities_found:
            lines.append(f"  identity: {identity.description}")
        for name, replacement in self.removed_blocks.items():
            lines.append(f"  removed {name} (implemented as {replacement.to_str()})")
        lines.append(f"  expression size: {self.size_before} -> {self.size_after} literals")
        return "\n".join(lines)


@dataclass
class Decomposition:
    """The full result of Progressive Decomposition."""

    ctx: Context
    original: Dict[str, Anf]
    outputs: Dict[str, Anf]
    blocks: List[Block]
    iterations: List[IterationRecord]
    options: DecompositionOptions
    primary_inputs: List[str]
    # Lazily built name -> block index backing block_by_name/_is_block; the
    # linear scans they replaced were quadratic inside flatten().  The token
    # records which list object (and length) the index was built from.
    _blocks_by_name: Dict[str, Block] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    # The exact list object (kept alive, so its identity can never be
    # recycled) and length the index was built from.
    _blocks_indexed: List[Block] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _blocks_indexed_len: int = field(default=-1, init=False, repr=False, compare=False)

    # ------------------------------------------------------------------
    @property
    def num_levels(self) -> int:
        return max((block.level for block in self.blocks), default=0)

    def blocks_at_level(self, level: int) -> List[Block]:
        return [block for block in self.blocks if block.level == level]

    def _block_map(self) -> Dict[str, Block]:
        # The index is rebuilt whenever the list object or its length
        # changes; the supported mutations are appending and replacing the
        # whole list.  Staleness is detected by identity against a *live*
        # reference to the indexed list (a recycled id() could falsely
        # match, a kept reference cannot) plus its length.  In-place
        # replacement/renaming of existing entries keeps both stable, so
        # the debug assertion below spot-checks the list ends — O(1) per
        # lookup, so flatten()'s per-variable lookups stay linear — and
        # fails loudly instead of silently serving a stale index.
        index = self._blocks_by_name
        blocks = self.blocks
        if self._blocks_indexed is not blocks or self._blocks_indexed_len != len(blocks):
            index.clear()
            index.update((block.name, block) for block in blocks)
            self._blocks_indexed = blocks
            self._blocks_indexed_len = len(blocks)
        else:
            assert not blocks or (
                index.get(blocks[0].name) is blocks[0]
                and index.get(blocks[-1].name) is blocks[-1]
            ), "Decomposition.blocks was mutated in place (append-only contract)"
        return index

    def block_by_name(self, name: str) -> Block:
        block = self._block_map().get(name)
        if block is None:
            raise KeyError(f"no block named {name!r}")
        return block

    def definitions(self) -> Dict[str, Anf]:
        return {block.name: block.definition for block in self.blocks}

    # ------------------------------------------------------------------
    def flatten(self) -> Dict[str, Anf]:
        """Expand every output back to the primary inputs (exact)."""
        flattened: Dict[str, Anf] = {}
        cache: Dict[str, Anf] = {}

        def resolve(name: str) -> Anf:
            cached = cache.get(name)
            if cached is not None:
                return cached
            block = self.block_by_name(name)
            expr = block.definition
            mapping = {
                var: resolve(var)
                for var in expr.support
                if var not in self.primary_inputs and self._is_block(var)
            }
            result = expr.substitute(mapping) if mapping else expr
            cache[name] = result
            return result

        for port, expr in self.outputs.items():
            mapping = {
                var: resolve(var)
                for var in expr.support
                if self._is_block(var)
            }
            flattened[port] = expr.substitute(mapping) if mapping else expr
        return flattened

    def _is_block(self, name: str) -> bool:
        return name in self._block_map()

    def verify(self, method: str = "dag") -> bool:
        """True when the hierarchy reproduces the original specification exactly.

        ``method="dag"`` (the default) expands each port level-by-level
        along the block DAG with packed intermediates and short-circuits on
        the first mismatching port; ``method="flatten"`` is the original
        whole-spec re-expansion, kept as the exact reference (the two always
        return the same verdict — asserted by ``tests/test_verify.py``).
        """
        if method == "flatten":
            flattened = self.flatten()
            return all(flattened[port] == expr for port, expr in self.original.items())
        if method != "dag":
            raise ValueError(f"unknown verification method {method!r}")
        from .verify import verify_decomposition

        return verify_decomposition(self)

    # ------------------------------------------------------------------
    def total_block_literals(self) -> int:
        return sum(block.definition.literal_count for block in self.blocks)

    def describe(self) -> str:
        """Human-readable rendering of the hierarchy (Fig. 6 style)."""
        lines = [
            f"Progressive decomposition: {len(self.blocks)} blocks over "
            f"{self.num_levels} levels (k = {self.options.k})"
        ]
        for level in range(1, self.num_levels + 1):
            lines.append(f"level {level}:")
            for block in self.blocks_at_level(level):
                lines.append(f"  {block.name} = {block.definition.to_str()}")
        lines.append("outputs:")
        for port, expr in self.outputs.items():
            lines.append(f"  {port} = {expr.to_str()}")
        return "\n".join(lines)

    def trace(self) -> str:
        """Per-iteration trace of the algorithm's decisions."""
        return "\n".join(record.describe() for record in self.iterations)


def progressive_decomposition(
    outputs: Mapping[str, Anf],
    options: DecompositionOptions | None = None,
    input_words: Sequence[Sequence[str]] | None = None,
) -> Decomposition:
    """Run Progressive Decomposition on a multi-output specification.

    ``input_words`` lists the primary-input buses (LSB first) so that
    ``findGroup`` can pick the least-significant available bits of each
    integer operand, as the paper prescribes; by default all primary inputs
    are treated as a single word in declaration order.

    This is a compatibility wrapper over the pass-pipeline engine: it
    assembles the :class:`~repro.engine.pipeline.Pipeline` matching
    ``options`` and runs it.  Results are bit-identical to the original
    monolithic loop.
    """
    from ..engine.pipeline import Pipeline

    options = options or DecompositionOptions()
    pipeline = Pipeline.from_options(options)
    return pipeline.run(outputs, input_words=input_words, options=options)
