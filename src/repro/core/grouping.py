"""``findGroup``: choose the next group of k variables (paper section 5.1).

While primary input bits are still visible in the expressions, the group is
formed from the ``k/r`` least significant *available* bits of each of the
``r`` input integers.  Once the primary inputs are exhausted the groups are
chosen among the derived (block) variables: exhaustively for small supports
— scored by the size of the rewritten expression, as the paper prescribes —
and by a co-occurrence heuristic when exhaustive search would be too costly.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Mapping, Sequence

from ..anf.context import Context
from ..anf.expression import Anf
from .basis import combine_with_tags
from .nullspace import NullSpaceTable
from .pairs import initial_pairs, merge_equal_parts

MAX_EXHAUSTIVE_CANDIDATES = 300


def support_of_outputs(outputs: Mapping[str, Anf], ctx: Context) -> List[str]:
    """Union of the supports of all output expressions (context order)."""
    mask = 0
    for expr in outputs.values():
        mask |= expr.support_mask
    return list(ctx.names_of(mask))


def group_from_primary_inputs(
    available: Sequence[str],
    input_words: Sequence[Sequence[str]],
    k: int,
) -> List[str]:
    """The ``k/r`` least significant available bits of each input word."""
    available_set = set(available)
    words_with_bits = [
        [bit for bit in word if bit in available_set]
        for word in input_words
    ]
    words_with_bits = [word for word in words_with_bits if word]
    if not words_with_bits:
        return []
    per_word = max(1, k // len(words_with_bits))
    group: List[str] = []
    for word in words_with_bits:
        for bit in word[:per_word]:
            if len(group) >= k:
                break
            group.append(bit)
        if len(group) >= k:
            break
    return group


def score_group(
    outputs: Mapping[str, Anf],
    group: Sequence[str],
    ctx: Context,
    identities: Sequence[Anf] = (),
) -> int:
    """Estimated size (in literals) of the rewritten expressions for a group.

    Each basis element is replaced by a single new literal, so the estimate is
    ``#pairs + Σ |second_i| + |remainder|`` after the cheap equal-part merge.
    """
    combined, _ = combine_with_tags(outputs, ctx)
    nullspaces = NullSpaceTable.from_identities(ctx, identities)
    pair_list = merge_equal_parts(initial_pairs(combined, ctx.mask_of(group), nullspaces))
    total = len(pair_list.pairs)
    total += sum(pair.second.literal_count for pair in pair_list.pairs)
    if pair_list.remainder is not None:
        total += pair_list.remainder.literal_count
    return total


def _cooccurrence_group(outputs: Mapping[str, Anf], candidates: Sequence[str], ctx: Context, k: int) -> List[str]:
    """Greedy group construction by monomial co-occurrence."""
    indices = {name: ctx.index(name) for name in candidates}
    cooccur: Dict[tuple[str, str], int] = {}
    occurrence: Dict[str, int] = {name: 0 for name in candidates}
    for expr in outputs.values():
        for term in expr.terms:
            present = [name for name in candidates if term >> indices[name] & 1]
            for name in present:
                occurrence[name] += 1
            for left, right in combinations(present, 2):
                cooccur[(left, right)] = cooccur.get((left, right), 0) + 1
    if not candidates:
        return []
    # Seed with the most co-occurring pair (or the most frequent variable).
    if cooccur:
        seed = max(cooccur, key=cooccur.get)
        group = [seed[0], seed[1]]
    else:
        group = [max(occurrence, key=occurrence.get)]
    while len(group) < min(k, len(candidates)):
        best_name = None
        best_score = -1
        for name in candidates:
            if name in group:
                continue
            score = sum(
                cooccur.get((min(name, other), max(name, other)), 0)
                + cooccur.get((max(name, other), min(name, other)), 0)
                for other in group
            ) + occurrence[name]
            if score > best_score:
                best_score = score
                best_name = name
        if best_name is None:
            break
        group.append(best_name)
    return group


def find_group(
    outputs: Mapping[str, Anf],
    k: int,
    ctx: Context,
    primary_inputs: Sequence[str],
    input_words: Sequence[Sequence[str]],
    identities: Sequence[Anf] = (),
) -> List[str]:
    """Select the next group of (at most) ``k`` variables."""
    support = support_of_outputs(outputs, ctx)
    if not support:
        return []
    primary_available = [name for name in support if name in set(primary_inputs)]
    if primary_available:
        group = group_from_primary_inputs(primary_available, input_words, k)
        if group:
            return group
    # Derived-variable stage: exhaustive scoring when affordable.
    candidates = support
    size = min(k, len(candidates))
    from math import comb

    if comb(len(candidates), size) <= MAX_EXHAUSTIVE_CANDIDATES:
        best_group: List[str] | None = None
        best_score = None
        for subset in combinations(candidates, size):
            score = score_group(outputs, subset, ctx, identities)
            if best_score is None or score < best_score:
                best_score = score
                best_group = list(subset)
        return best_group or candidates[:size]
    return _cooccurrence_group(outputs, candidates, ctx, size)
