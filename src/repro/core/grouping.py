"""``findGroup``: choose the next group of k variables (paper section 5.1).

While primary input bits are still visible in the expressions, the group is
formed from the ``k/r`` least significant *available* bits of each of the
``r`` input integers.  Once the primary inputs are exhausted the groups are
chosen among the derived (block) variables: exhaustively for small supports
— scored by the size of the rewritten expression, as the paper prescribes —
and by a co-occurrence heuristic when exhaustive search would be too costly.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import combinations
from typing import Callable, Dict, List, Mapping, Sequence

from ..anf.context import Context
from ..anf.expression import Anf
from ..parallel import shard_chunks, shard_map, shard_workers
from .basis import combine_with_tags

MAX_EXHAUSTIVE_CANDIDATES = 300

#: Combined-expression size above which the exhaustive scoring stays serial
#: even with ``REPRO_SHARD_PASSES`` set: every shard chunk ships its own
#: copy of the term list through the pool pipes, so for giant expressions
#: the IPC would dwarf the scoring work it parallelises.
SHARD_SCORE_MAX_TERMS = 1 << 20


def support_of_outputs(outputs: Mapping[str, Anf], ctx: Context) -> List[str]:
    """Union of the supports of all output expressions (context order)."""
    mask = 0
    for expr in outputs.values():
        mask |= expr.support_mask
    return list(ctx.names_of(mask))


def group_from_primary_inputs(
    available: Sequence[str],
    input_words: Sequence[Sequence[str]],
    k: int,
) -> List[str]:
    """The ``k/r`` least significant available bits of each input word."""
    available_set = set(available)
    words_with_bits = [
        [bit for bit in word if bit in available_set]
        for word in input_words
    ]
    words_with_bits = [word for word in words_with_bits if word]
    if not words_with_bits:
        return []
    per_word = max(1, k // len(words_with_bits))
    group: List[str] = []
    for word in words_with_bits:
        for bit in word[:per_word]:
            if len(group) >= k:
                break
            group.append(bit)
        if len(group) >= k:
            break
    return group


def score_group(
    outputs: Mapping[str, Anf],
    group: Sequence[str],
    ctx: Context,
    identities: Sequence[Anf] = (),
) -> int:
    """Estimated size (in literals) of the rewritten expressions for a group.

    Each basis element is replaced by a single new literal, so the estimate is
    ``#pairs + Σ |second_i| + |remainder|`` after the cheap equal-part merge.
    ``identities`` is accepted for call-site compatibility but cannot change
    the estimate: null-space generators never steer the equal-part merge.
    """
    combined, _ = combine_with_tags(outputs, ctx)
    return _score_combined(combined.term_list(), ctx.mask_of(group))


def _score_combined(terms: Sequence[int], group_mask: int) -> int:
    """Score one candidate group against a pre-built tagged combination.

    This replays ``initial_pairs`` + ``merge_equal_parts`` on raw term sets
    — no Anf/Pair/null-space objects, since none of them influence the score:
    null generators never steer the equal-part merge, and the merge fixpoint
    is order-independent.  The combined expression only depends on the
    outputs, not on the candidate group, so exhaustive search tokenises it
    once and calls this for every subset (the seed rebuilt everything per
    candidate, which dominated the comparator benchmarks).
    """
    # Bucket each monomial by its group part.  Terms are distinct and the
    # (group, rest) split is injective, so no cancellation is possible here.
    buckets: defaultdict[int, list[int]] = defaultdict(list)
    remainder_literals = 0
    for term in terms:
        group_part = term & group_mask
        if group_part == 0:
            remainder_literals += term.bit_count()
        else:
            buckets[group_part].append(term ^ group_part)
    # merge_equal_parts on (first, second) frozenset pairs: XOR-merge equal
    # seconds, drop empty firsts, XOR-merge equal firsts, drop empty seconds.
    pairs: list[tuple[frozenset, frozenset]] = [
        (frozenset((group_part,)), frozenset(rest)) for group_part, rest in buckets.items()
    ]
    changed = True
    while changed:
        changed = False
        by_second: dict[frozenset, frozenset] = {}
        for first, second in pairs:
            existing = by_second.get(second)
            if existing is None:
                by_second[second] = first
            else:
                by_second[second] = existing ^ first
                changed = True
        merged = [(first, second) for second, first in by_second.items() if first]
        by_first: dict[frozenset, frozenset] = {}
        for first, second in merged:
            existing = by_first.get(first)
            if existing is None:
                by_first[first] = second
            else:
                by_first[first] = existing ^ second
                changed = True
        pairs = [(first, second) for first, second in by_first.items() if second]
    total = len(pairs) + remainder_literals
    for _, second in pairs:
        for term in second:
            total += term.bit_count()
    return total


def _score_chunk(payload: tuple) -> List[int]:
    """Score one run of candidate group masks (module-level: shard-picklable)."""
    terms, masks = payload
    return [_score_combined(terms, mask) for mask in masks]


def _cooccur_counts(
    payload: tuple,
) -> tuple[Dict[str, int], Dict[tuple[str, str], int]]:
    """Occurrence/co-occurrence counts over a run of output term lists.

    Module-level so pass sharding can pickle it; the payload carries plain
    integers and names, never ``Anf``/``Context`` objects.  Terms are walked
    in sorted order so tie-breaks are canonical regardless of storage.
    """
    term_lists, candidate_mask, name_of_bit = payload
    occurrence: Dict[str, int] = {}
    cooccur: Dict[tuple[str, str], int] = {}
    for terms in term_lists:
        for term in sorted(terms):
            present_mask = term & candidate_mask
            if not present_mask:
                continue
            # Iterating set bits walks ascending variable indices, which is
            # the candidates' own order (they come from ``names_of``).
            present = []
            while present_mask:
                bit = present_mask & -present_mask
                present.append(name_of_bit[bit])
                present_mask ^= bit
            for name in present:
                occurrence[name] = occurrence.get(name, 0) + 1
            for left, right in combinations(present, 2):
                cooccur[(left, right)] = cooccur.get((left, right), 0) + 1
    return occurrence, cooccur


def _cooccurrence_group(outputs: Mapping[str, Anf], candidates: Sequence[str], ctx: Context, k: int) -> List[str]:
    """Greedy group construction by monomial co-occurrence."""
    candidate_mask = 0
    name_of_bit: Dict[int, str] = {}
    for name in candidates:
        bit = 1 << ctx.index(name)
        candidate_mask |= bit
        name_of_bit[bit] = name
    # The per-output counts are independent and sum commutatively, so they
    # shard over the pass pool (REPRO_SHARD_PASSES=1) without changing any
    # result; the serial default runs the same code on one chunk.
    term_lists = [expr.term_list() for expr in outputs.values()]
    workers = shard_workers() or 1
    if sum(len(terms) for terms in term_lists) > SHARD_SCORE_MAX_TERMS:
        workers = 1  # shipping the terms would dwarf the counting work
    chunks = shard_chunks(term_lists, workers)
    partials = shard_map(
        _cooccur_counts,
        [(chunk, candidate_mask, name_of_bit) for chunk in chunks],
    )
    cooccur: Dict[tuple[str, str], int] = {}
    occurrence: Dict[str, int] = {name: 0 for name in candidates}
    for partial_occurrence, partial_cooccur in partials:
        for name, count in partial_occurrence.items():
            occurrence[name] += count
        for pair, count in partial_cooccur.items():
            cooccur[pair] = cooccur.get(pair, 0) + count
    if not candidates:
        return []
    # Seed with the most co-occurring pair (or the most frequent variable).
    if cooccur:
        seed = max(cooccur, key=cooccur.get)
        group = [seed[0], seed[1]]
    else:
        group = [max(occurrence, key=occurrence.get)]
    while len(group) < min(k, len(candidates)):
        best_name = None
        best_score = -1
        for name in candidates:
            if name in group:
                continue
            score = sum(
                cooccur.get((min(name, other), max(name, other)), 0)
                + cooccur.get((max(name, other), min(name, other)), 0)
                for other in group
            ) + occurrence[name]
            if score > best_score:
                best_score = score
                best_name = name
        if best_name is None:
            break
        group.append(best_name)
    return group


def find_group(
    outputs: Mapping[str, Anf],
    k: int,
    ctx: Context,
    primary_inputs: Sequence[str],
    input_words: Sequence[Sequence[str]],
    identities: Sequence[Anf] = (),
    tagged_combination: Callable[[], tuple] | None = None,
) -> List[str]:
    """Select the next group of (at most) ``k`` variables.

    ``tagged_combination`` optionally supplies a zero-argument callable
    returning ``(combined, tag_of_port)`` for ``outputs`` (the engine's
    per-iteration cache); it is only invoked when the exhaustive scoring
    branch actually needs the combined expression.
    """
    support = support_of_outputs(outputs, ctx)
    if not support:
        return []
    primary_available = [name for name in support if name in set(primary_inputs)]
    if primary_available:
        group = group_from_primary_inputs(primary_available, input_words, k)
        if group:
            return group
    # Derived-variable stage: exhaustive scoring when affordable.
    candidates = support
    size = min(k, len(candidates))
    from math import comb

    if comb(len(candidates), size) <= MAX_EXHAUSTIVE_CANDIDATES:
        # One shared term-matrix view of the combined expression scores every
        # candidate subset; the packed backend builds it word-parallel (tag
        # OR + concatenation) instead of symbolic products per call.  The
        # per-subset scores are independent, so they shard over the pass pool
        # (REPRO_SHARD_PASSES=1); picking the first minimum in enumeration
        # order keeps the choice bit-identical to the serial scan.
        if tagged_combination is not None:
            combined, _ = tagged_combination()
        else:
            combined, _ = combine_with_tags(outputs, ctx)
        combined_terms = combined.term_list()
        subsets = list(combinations(candidates, size))
        masks = [ctx.mask_of(subset) for subset in subsets]
        workers = shard_workers() or 1
        if len(combined_terms) > SHARD_SCORE_MAX_TERMS:
            workers = 1
        chunks = shard_chunks(masks, workers)
        scores: List[int] = []
        for chunk_scores in shard_map(
            _score_chunk, [(combined_terms, chunk) for chunk in chunks]
        ):
            scores.extend(chunk_scores)
        best_group: List[str] | None = None
        best_score = None
        for subset, score in zip(subsets, scores):
            if best_score is None or score < best_score:
                best_score = score
                best_group = list(subset)
        return best_group or candidates[:size]
    return _cooccurrence_group(outputs, candidates, ctx, size)
