"""DAG-structured verification of Progressive Decomposition results.

``Decomposition.verify`` used to re-expand every output back to the primary
inputs with :meth:`~repro.core.decompose.Decomposition.flatten` and compare
frozensets.  ``flatten`` resolves every block to its *full* expansion first,
so the final substitution multiplies giant expansions into giant expansions
— on the full-width 15-bit comparator those giant×giant products were a
~30 s floor that kept exact verification a nightly-only cost.

This module verifies along the block DAG instead.  The hierarchy is a
levelled DAG (a level-``L`` block's definition only mentions primary inputs
and blocks of level ``< L``), so each output is expanded *top-down*, one
level per sweep:

1. split the current expression by the bits of the level's block variables
   (the same counting/radix ``split_by_group`` kernel the engine's ``basis``
   pass runs — each bucket pattern is the set of level-``L`` blocks a
   monomial mentions);
2. replace each pattern by the product of its blocks' *definitions* (small
   expressions — the per-pattern products are memoised, and every product
   in the whole verification has at least one small operand, which is what
   eliminates the giant×giant case);
3. accumulate ``pattern_product & bucket_rest`` over all buckets plus the
   group-free remainder in one sorted parity sweep
   (:func:`repro.anf.expression.xor_accumulate`).

Substitution is a ring homomorphism, so each sweep is *exact*: the result
after the last sweep is the same canonical monomial set ``flatten`` would
have produced, and the final semantic equality check runs on packed
:class:`~repro.anf.termmatrix.TermMatrix` rows (one array compare) instead
of frozenset ``__eq__`` over re-expanded monsters.  Ports verify
independently and the engine short-circuits on the first mismatch.
``flatten`` remains the exact reference implementation —
``Decomposition.verify(method="flatten")`` — and the property suite in
``tests/test_verify.py`` asserts both engines return identical verdicts,
including on deliberately corrupted hierarchies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Mapping, Optional

from ..anf.context import Context
from ..anf.expression import Anf, anf_xor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core <- decompose)
    from .decompose import Block, Decomposition


class VerificationError(RuntimeError):
    """A decomposition (or one rewrite step) failed exact verification."""


def _iter_bits(mask: int) -> Iterator[int]:
    """The set bits of ``mask``, ascending."""
    while mask:
        bit = mask & -mask
        yield bit
        mask ^= bit


def _timed(name: str):
    """The engine's pass-timing hook (``repro.engine.profiling.timed``).

    Imported lazily: ``repro.core`` sits below ``repro.engine`` in the
    layering, and by the time anything verifies a decomposition the engine
    package is loaded anyway (no collector installed means no-op).
    """
    from ..engine import profiling

    return profiling.timed(name)


# ----------------------------------------------------------------------
# The level-substitution kernel
# ----------------------------------------------------------------------
def substitute_bits(
    expr: Anf,
    replacements: Mapping[int, Anf],
    ctx: Context,
    product_memo: Optional[Dict[int, Anf]] = None,
) -> Anf:
    """Simultaneously substitute single-variable bits by expressions.

    Exact equivalent of :meth:`Anf.substitute` restricted to single-variable
    keys, but vectorised: one ``split_by_group`` over the replaced bits, one
    (memoised) definition product per occurring bucket pattern, and one
    parity sweep over all ``product & rest`` contributions.  Per-term Python
    work is limited to the handful of distinct patterns instead of every
    monomial.
    """
    mask = 0
    for bit in replacements:
        mask |= bit
    if mask == 0 or expr.support_mask & mask == 0:
        return expr
    if product_memo is None:
        product_memo = {}
    buckets, remainder = expr.split_by_group(mask)
    pieces: List[Anf] = [remainder]
    for pattern in sorted(buckets):
        product = product_memo.get(pattern)
        if product is None:
            product = Anf.one(ctx)
            for bit in _iter_bits(pattern):
                product = product & replacements[bit]
                if product.is_zero:
                    break
            product_memo[pattern] = product
        if product.is_zero:
            continue
        pieces.append(product & buckets[pattern])
    return anf_xor(pieces, ctx)


# ----------------------------------------------------------------------
# Per-port DAG expansion
# ----------------------------------------------------------------------
def _block_layers(
    blocks: Iterable["Block"], ctx: Context
) -> tuple[int, Dict[int, int], Dict[int, Anf]]:
    """``(block_mask, level_of_bit, definition_of_bit)`` for the hierarchy."""
    block_mask = 0
    level_of_bit: Dict[int, int] = {}
    definition_of_bit: Dict[int, Anf] = {}
    for block in blocks:
        if block.name not in ctx:
            continue  # never referenced by any expression
        bit = 1 << ctx.index(block.name)
        block_mask |= bit
        level_of_bit[bit] = block.level
        definition_of_bit[bit] = block.definition
    return block_mask, level_of_bit, definition_of_bit


def flatten_port_via_dag(
    decomposition: "Decomposition",
    expr: Anf,
    product_memo: Optional[Dict[int, Anf]] = None,
) -> Optional[Anf]:
    """Expand one output expression to the primary inputs along the DAG.

    Returns the exact flattened expression (the same canonical monomial set
    ``flatten`` produces), or ``None`` when the hierarchy is not the
    levelled DAG the engine guarantees (a definition referencing its own or
    a higher level — only corrupted results do this) — callers fall back to
    the ``flatten`` reference so the verdict stays exact either way.
    """
    ctx = decomposition.ctx
    block_mask, level_of_bit, definition_of_bit = _block_layers(
        decomposition.blocks, ctx
    )
    current = expr
    sweeps_left = len(set(level_of_bit.values())) if level_of_bit else 0
    while current.support_mask & block_mask:
        if sweeps_left <= 0:
            return None
        sweeps_left -= 1
        present = current.support_mask & block_mask
        top = max(level_of_bit[bit] for bit in _iter_bits(present))
        layer = {
            bit: definition_of_bit[bit]
            for bit in _iter_bits(present)
            if level_of_bit[bit] == top
        }
        current = substitute_bits(current, layer, ctx, product_memo)
    return current


def semantically_equal(left: Anf, right: Anf) -> bool:
    """Exact term-set equality, routed through the packed matrix backend.

    Both sides are packed on demand (one vectorised sort for a set-backed
    operand) and compared row-for-row at C speed; expressions too wide to
    pack fall back to frozenset equality — the verdict is the same either
    way, the representation work is not.
    """
    if left.num_terms != right.num_terms:
        return False
    left_matrix = left.term_matrix(build=True)
    right_matrix = right.term_matrix(build=True)
    if left_matrix is not None and right_matrix is not None:
        return left_matrix.equal_rows(right_matrix)
    return left == right


# ----------------------------------------------------------------------
# Sharded per-port verification (REPRO_SHARD_PASSES)
# ----------------------------------------------------------------------
#: Payload for forked verification workers.  Set immediately before the pool
#: forks and cleared right after: workers inherit the decomposition via
#: copy-on-write instead of pickling the (potentially huge) hierarchy per
#: task.
_FORK_DECOMPOSITION: Optional["Decomposition"] = None


def _verify_chunk(ports: List[str]) -> List[bool]:
    """Worker: expand and check a contiguous run of ports.

    Each chunk carries its own per-pattern product memo, so the memoised
    per-node expansions are shared across every port *within* the chunk —
    the same reuse the serial generator gets across all ports.
    """
    decomposition = _FORK_DECOMPOSITION
    product_memo: Dict[int, Anf] = {}
    reference_flatten: Optional[Dict[str, Anf]] = None
    verdicts: List[bool] = []
    for port in ports:
        flattened = flatten_port_via_dag(
            decomposition, decomposition.outputs[port], product_memo
        )
        if flattened is None:
            if reference_flatten is None:
                reference_flatten = decomposition.flatten()
            flattened = reference_flatten[port]
        verdicts.append(
            semantically_equal(flattened, decomposition.original[port])
        )
    return verdicts


def _sharded_port_verdicts(
    decomposition: "Decomposition",
) -> Optional[List[tuple[str, bool]]]:
    """Per-port verdicts fanned over the pass-shard pool, or ``None``.

    ``None`` means "use the serial path": sharding disabled, a single port,
    or no fork start method (the workers rely on copy-on-write inheritance
    of the decomposition).  Each verdict is the same boolean the serial
    expansion computes, so enabling sharding can never change an outcome —
    only the short-circuit on the first mismatch is traded for parallelism.
    """
    import multiprocessing

    from ..parallel import pool_context, shard_chunks, shard_workers

    workers = shard_workers()
    ports = list(decomposition.original)
    if (
        workers is None
        or workers <= 1
        or len(ports) <= 1
        or "fork" not in multiprocessing.get_all_start_methods()
    ):
        return None
    global _FORK_DECOMPOSITION
    chunks = shard_chunks(ports, workers)
    _FORK_DECOMPOSITION = decomposition
    try:
        with pool_context().Pool(min(workers, len(chunks))) as pool:
            results = pool.map(_verify_chunk, chunks)
    finally:
        _FORK_DECOMPOSITION = None
    return [
        (port, verdict)
        for chunk, chunk_verdicts in zip(chunks, results)
        for port, verdict in zip(chunk, chunk_verdicts)
    ]


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def _expanded_ports(
    decomposition: "Decomposition",
) -> Iterator[tuple[str, Anf, Anf]]:
    """Yield ``(port, flattened, reference)`` for every original port.

    Expansion runs along the DAG with one shared per-pattern product memo;
    a non-levelled hierarchy (corrupted input) defers to the exact
    ``flatten`` reference, computed once — it expands every port anyway.
    """
    product_memo: Dict[int, Anf] = {}
    reference_flatten: Optional[Dict[str, Anf]] = None
    for port, reference in decomposition.original.items():
        flattened = flatten_port_via_dag(
            decomposition, decomposition.outputs[port], product_memo
        )
        if flattened is None:
            if reference_flatten is None:
                reference_flatten = decomposition.flatten()
            flattened = reference_flatten[port]
        yield port, flattened, reference


def verify_decomposition(decomposition: "Decomposition") -> bool:
    """True when the hierarchy reproduces the original specification exactly.

    Same verdict as the ``flatten``-based reference, computed along the
    block DAG with short-circuiting: ports are checked one at a time and the
    first mismatch returns immediately.  Wall-clock is reported to the
    engine's pass-timing collectors under ``"verify"``.
    """
    with _timed("verify"):
        sharded = _sharded_port_verdicts(decomposition)
        if sharded is not None:
            return all(verdict for _, verdict in sharded)
        return all(
            semantically_equal(flattened, reference)
            for _, flattened, reference in _expanded_ports(decomposition)
        )


def verify_ports(decomposition: "Decomposition") -> Dict[str, bool]:
    """Per-port verdicts (no short-circuit) for diagnostics and reports."""
    with _timed("verify"):
        sharded = _sharded_port_verdicts(decomposition)
        if sharded is not None:
            return dict(sharded)
        return {
            port: semantically_equal(flattened, reference)
            for port, flattened, reference in _expanded_ports(decomposition)
        }


def check_rewrite_invariant(
    active: Mapping[str, Anf],
    rewritten: Mapping[str, Anf],
    new_blocks: Iterable["Block"],
    ctx: Context,
) -> Optional[str]:
    """One-level DAG check of a single rewrite step.

    Substituting the iteration's new block definitions back into the
    rewritten outputs must reproduce the pre-rewrite expressions exactly
    (literal substitutions are already in place and removed-block
    replacements only mention kept blocks, so one level suffices).  Returns
    the first mismatching port name, or ``None`` when the step is exact.
    This is the per-iteration gate behind ``REPRO_VERIFY_STEPS``: because
    every step preserves semantics, the gated pipeline's final result
    verifies by induction.
    """
    layer = {1 << ctx.index(block.name): block.definition for block in new_blocks}
    product_memo: Dict[int, Anf] = {}
    with _timed("verify-steps"):
        for port, expr in rewritten.items():
            reconstructed = substitute_bits(expr, layer, ctx, product_memo)
            if not semantically_equal(reconstructed, active[port]):
                return port
        return None
