"""Basis optimisation: linear-dependence minimisation and size reduction.

Implements sections 5.3 and 5.4 of the paper.  Both procedures transform the
pair list while preserving the invariant ``expression = XOR_i first_i·second_i
⊕ remainder`` exactly (every rewrite used here is an identity of the Boolean
ring), which the test suite checks property-style.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..anf import sortkernel
from ..anf.expression import Anf
from ..gf2.linear import MonomialVocabulary
from ..gf2.vectorspace import find_linear_dependency
from .nullspace import ideal_product_generator
from .pairs import Pair, PairList


class _DependencyFinder:
    """``find_expression_dependency`` with vectorisation cached across calls.

    The minimisation loop re-examines mostly unchanged expression lists every
    round; a shared :class:`MonomialVocabulary` plus a per-expression vector
    memo makes each repeat O(changed expressions) instead of re-vectorising
    the whole list, and a matrix-backed expression vectorises in a few
    whole-slab passes instead of a dict lookup per term.  Coordinate
    assignment differs from a fresh indexer, but linear dependencies are
    basis-independent and the combination over an independent prefix is
    unique, so the result is bit-identical.
    """

    __slots__ = ("_indexer", "_vectors")

    def __init__(self) -> None:
        self._indexer = MonomialVocabulary()
        self._vectors: Dict[object, int] = {}

    def find(self, exprs: Sequence[Anf]) -> tuple[int, list[int]] | None:
        vectors = []
        memo = self._vectors
        for expr in exprs:
            # Keyed by the canonical term key rather than the Anf itself:
            # hashing a matrix-backed expression would materialise its
            # frozenset, while the packed key is O(terms/8) and equal exactly
            # when the term sets are.
            key = expr.term_key()
            vector = memo.get(key)
            if vector is None:
                vector = self._indexer.vector_of(expr)
                memo[key] = vector
            vectors.append(vector)
        dependency = find_linear_dependency(vectors)
        if dependency is None:
            return None
        index, combination = dependency
        others = [j for j in range(index) if combination >> j & 1]
        return index, others


def _shared_literals(left: Anf, right: Anf) -> int:
    """Literals on the monomials common to both expressions (exact)."""
    left_matrix = left.term_matrix(build=True)
    right_matrix = right.term_matrix(build=True)
    if left_matrix is not None and right_matrix is not None:
        return sortkernel.shared_literal_count(left_matrix.words, right_matrix.words)
    shared = left.terms & right.terms
    return sum(mask.bit_count() for mask in shared)


def minimize_basis_by_linear_dependence(pair_list: PairList, max_rounds: int = 64) -> PairList:
    """Remove pairs whose first (or second) element is an XOR of the others.

    If ``X1 = X2 ⊕ … ⊕ Xn`` then
    ``{(X1,Y1), (X2,Y2), …} → {(X2, Y1⊕Y2), (X3, Y1⊕Y3), …}`` and dually for
    the second elements (paper section 5.3).
    """
    pairs = list(pair_list.pairs)
    first_finder = _DependencyFinder()
    second_finder = _DependencyFinder()
    for _ in range(max_rounds):
        changed = False

        # Dependence among the first elements.
        dependency = first_finder.find([pair.first for pair in pairs])
        if dependency is not None:
            index, others = dependency
            victim = pairs[index]
            if others or victim.first.is_zero:
                new_pairs: List[Pair] = []
                for position, pair in enumerate(pairs):
                    if position == index:
                        continue
                    if position in others:
                        new_pairs.append(
                            Pair(pair.first, pair.second ^ victim.second, pair.null_generator)
                        )
                    else:
                        new_pairs.append(pair)
                pairs = [pair for pair in new_pairs if not pair.second.is_zero]
                changed = True

        if not changed:
            # Dependence among the second elements (the ROADMAP lever: the
            # seconds barely change between rounds, so their cached vectors
            # almost always survive).
            dependency = second_finder.find([pair.second for pair in pairs])
            if dependency is not None:
                index, others = dependency
                victim = pairs[index]
                if others or victim.second.is_zero:
                    new_pairs = []
                    for position, pair in enumerate(pairs):
                        if position == index:
                            continue
                        if position in others:
                            new_pairs.append(
                                Pair(
                                    pair.first ^ victim.first,
                                    pair.second,
                                    ideal_product_generator(
                                        pair.null_generator, victim.null_generator
                                    ),
                                )
                            )
                        else:
                            new_pairs.append(pair)
                    pairs = [pair for pair in new_pairs if not pair.first.is_zero]
                    changed = True

        if not changed:
            break
    return PairList(pairs, pair_list.remainder)


def improve_basis_by_size_reduction(pair_list: PairList, max_rounds: int = 200) -> PairList:
    """Local rewrites that shrink the pair list's literal count (section 5.4).

    The rewrite ``(X1,Y1), (X2,Y2) → (X1⊕X2, Y1), (X2, Y1⊕Y2)`` is an exact
    identity; it is applied greedily whenever it reduces the cumulative
    literal count of the two pairs involved.
    """
    pairs = list(pair_list.pairs)
    # Shared-literal counts are keyed by the pairs' canonical term keys and
    # survive across rounds: one rewrite touches two pairs, so every other
    # (i, j) combination hits this memo in the next round's scan (the same
    # cross-round pattern as _DependencyFinder above).
    shared_memo: Dict[frozenset, tuple[int, int]] = {}
    for _ in range(max_rounds):
        best_gain = 0
        best_action: tuple[int, int] | None = None
        # The rewrite leaves left.second and right.first untouched, so the
        # literal-count gain reduces to
        #   lit(X1) + lit(Y2) - lit(X1 ⊕ X2) - lit(Y1 ⊕ Y2)
        # and ``lit(A ⊕ B) = lit(A) + lit(B) - 2·lit(A ∩ B)`` on canonical
        # term sets; the candidate scan therefore needs two shared-literal
        # counts per (i, j) — computed on the sorted matrix slabs, so the
        # giant pair seconds never materialise frozensets — and no
        # Pair/Anf/null-generator objects.  Both counts are symmetric, so
        # each unordered pair is measured once.
        first_keys = [pair.first.term_key() for pair in pairs]
        second_keys = [pair.second.term_key() for pair in pairs]
        first_lits = [pair.first.literal_count for pair in pairs]
        second_lits = [pair.second.literal_count for pair in pairs]
        for i in range(len(pairs)):
            for j in range(len(pairs)):
                if i == j:
                    continue
                if first_keys[i] == first_keys[j] or second_keys[i] == second_keys[j]:
                    continue  # the rewrite would create a zero element
                # Unordered content key: both counts are symmetric in the
                # two pairs, and frozenset() sidesteps ordering the keys
                # (bytes and frozenset keys are hashable but not mutually
                # comparable).
                slot = frozenset(
                    (
                        (first_keys[i], second_keys[i]),
                        (first_keys[j], second_keys[j]),
                    )
                )
                shared = shared_memo.get(slot)
                if shared is None:
                    shared = (
                        _shared_literals(pairs[i].first, pairs[j].first),
                        _shared_literals(pairs[i].second, pairs[j].second),
                    )
                    shared_memo[slot] = shared
                shared_first, shared_second = shared
                gain = (
                    2 * (shared_first + shared_second)
                    - first_lits[j]
                    - second_lits[i]
                )
                if gain > best_gain:
                    best_gain = gain
                    best_action = (i, j)
        if best_action is None:
            break
        i, j = best_action
        left, right = pairs[i], pairs[j]
        pairs[i] = Pair(
            left.first ^ right.first,
            left.second,
            ideal_product_generator(left.null_generator, right.null_generator),
        )
        pairs[j] = Pair(right.first, left.second ^ right.second, right.null_generator)
    return PairList(pairs, pair_list.remainder)
