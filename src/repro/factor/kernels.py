"""Kernel / co-kernel extraction (Brayton-McMullen) over XOR-of-products.

A *kernel* of an expression is a cube-free quotient of the expression by a
cube (the *co-kernel*).  Kernels are the classical source of multi-cube
divisors in multi-level logic synthesis; the paper's section 2 positions them
as "similar in principle to the building blocks discussed here" but weaker on
XOR-dominated arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..anf.expression import Anf
from .division import divide_by_cube, literal_frequencies, make_cube_free


@dataclass(frozen=True)
class Kernel:
    """A kernel together with the co-kernel cube that produced it."""

    cokernel: int  # cube mask
    expr: Anf      # cube-free quotient with >= 2 monomials

    def render(self) -> str:
        ctx = self.expr.ctx
        cube = ctx.monomial_str(self.cokernel)
        return f"({cube}) * ({self.expr})"


def kernels(expr: Anf, max_kernels: int | None = None) -> list[Kernel]:
    """All kernels of ``expr`` (level-0 and above), including the expression
    itself when it is cube-free with at least two monomials."""
    found: dict[tuple[int, frozenset[int]], Kernel] = {}

    def record(cokernel: int, kernel_expr: Anf) -> None:
        if kernel_expr.num_terms < 2:
            return
        key = (cokernel, kernel_expr.terms)
        if key not in found:
            found[key] = Kernel(cokernel, kernel_expr)

    def recurse(current: Anf, cokernel: int, min_index: int) -> None:
        if max_kernels is not None and len(found) >= max_kernels:
            return
        counts = literal_frequencies(current)
        for index in sorted(counts):
            if index < min_index or counts[index] < 2:
                continue
            bit = 1 << index
            quotient, _ = divide_by_cube(current, bit)
            extra_cube, cube_free = make_cube_free(quotient)
            new_cokernel = cokernel | bit | extra_cube
            # Avoid re-deriving the same kernel through a different literal
            # order: only continue with literals of index >= the current one.
            record(new_cokernel, cube_free)
            recurse(cube_free, new_cokernel, index + 1)

    base_cube, base = make_cube_free(expr)
    record(base_cube, base)
    recurse(base, base_cube, 0)
    return list(found.values())


def level0_kernels(expr: Anf) -> list[Kernel]:
    """Kernels that themselves contain no further kernels (other than trivial)."""
    result = []
    for kernel in kernels(expr):
        inner = [k for k in kernels(kernel.expr) if k.expr.terms != kernel.expr.terms]
        if not inner:
            result.append(kernel)
    return result


def best_kernel(expr: Anf) -> Kernel | None:
    """Pick the kernel giving the best immediate literal saving.

    The value of extracting kernel ``K`` with co-kernel ``c`` from ``expr`` is
    estimated as ``(|terms using c| - 1) * literals(K)`` — the classical
    weighting used by greedy kernel extraction.
    """
    candidates = kernels(expr)
    best: Kernel | None = None
    best_value = 0
    for kernel in candidates:
        if kernel.expr.num_terms < 2:
            continue
        if kernel.cokernel == 0:
            # Dividing by the whole (cube-free) expression saves nothing.
            continue
        quotient, _ = divide_by_cube(expr, kernel.cokernel)
        uses = quotient.num_terms
        value = (uses - 1) * kernel.expr.literal_count
        if value > best_value:
            best_value = value
            best = kernel
    return best


def iter_kernel_expressions(expr: Anf) -> Iterator[Anf]:
    """The kernel expressions only (without their co-kernels)."""
    for kernel in kernels(expr):
        yield kernel.expr
