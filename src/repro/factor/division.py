"""Algebraic (weak) division over XOR-of-products expressions.

The paper contrasts its null-space based Boolean factorisation with classical
*algebraic* division (Brayton & McMullen).  Algebraic division treats the
expression as a polynomial: it never invents Boolean identities such as
``x·x = x`` across the divisor/quotient boundary, which is exactly why it
performs poorly on XOR-dominated arithmetic circuits.  We implement it over
the Reed-Muller form so that both the classical baseline and the paper's
algorithm operate on the same representation.
"""

from __future__ import annotations

from typing import Iterable

from ..anf.expression import Anf


def common_cube(expr: Anf) -> int:
    """Largest cube (variable mask) dividing every monomial of ``expr``.

    Returns 0 for constants and for expressions containing the constant-1
    monomial (nothing divides the empty monomial).
    """
    if expr.is_zero:
        return 0
    cube = None
    for term in expr.terms:
        cube = term if cube is None else cube & term
        if cube == 0:
            return 0
    return cube or 0


def divide_by_cube(expr: Anf, cube_mask: int) -> tuple[Anf, Anf]:
    """Divide by a single cube: ``expr = cube·quotient ⊕ remainder``.

    The quotient collects the monomials containing the cube (with the cube's
    variables removed); the remainder collects the rest.
    """
    if cube_mask == 0:
        return expr, Anf.zero(expr.ctx)
    quotient_terms = []
    remainder_terms = []
    for term in expr.terms:
        if term & cube_mask == cube_mask:
            quotient_terms.append(term & ~cube_mask)
        else:
            remainder_terms.append(term)
    # Distinct monomials stay distinct when a shared cube is stripped, so
    # both term lists are already canonical.
    return (
        Anf._raw(expr.ctx, frozenset(quotient_terms)),
        Anf._raw(expr.ctx, frozenset(remainder_terms)),
    )


def make_cube_free(expr: Anf) -> tuple[int, Anf]:
    """Strip the largest common cube: returns ``(cube_mask, cube_free_expr)``."""
    cube = common_cube(expr)
    if cube == 0:
        return 0, expr
    quotient, _ = divide_by_cube(expr, cube)
    return cube, quotient


def is_cube_free(expr: Anf) -> bool:
    """True when no single literal divides every monomial."""
    return common_cube(expr) == 0


def weak_divide(expr: Anf, divisor: Anf) -> tuple[Anf, Anf]:
    """Weak (algebraic) division: ``expr = divisor·quotient ⊕ remainder``.

    The quotient is the intersection, over the divisor's monomials ``d``, of
    ``{m \\ d : m ∈ expr, d ⊆ m, (m \\ d) ∩ d = ∅}``.  The identity always
    holds exactly in the Boolean ring because the remainder is computed as
    ``expr ⊕ divisor·quotient``.
    """
    ctx = expr.ctx
    ctx.require_same(divisor.ctx)
    if divisor.is_zero:
        raise ZeroDivisionError("algebraic division by the zero expression")
    if divisor.is_one:
        return expr, Anf.zero(ctx)
    quotient_set: set[int] | None = None
    for d_term in divisor.terms:
        candidates = set()
        for term in expr.terms:
            if term & d_term == d_term:
                rest = term & ~d_term
                candidates.add(rest)
        if quotient_set is None:
            quotient_set = candidates
        else:
            quotient_set &= candidates
        if not quotient_set:
            return Anf.zero(ctx), expr
    quotient = Anf._raw(ctx, frozenset(quotient_set or ()))
    remainder = expr ^ (quotient & divisor)
    return quotient, remainder


def literal_frequencies(expr: Anf) -> dict[int, int]:
    """How many monomials each variable (by index) appears in."""
    counts: dict[int, int] = {}
    for term in expr.terms:
        remaining = term
        while remaining:
            low = remaining & -remaining
            index = low.bit_length() - 1
            counts[index] = counts.get(index, 0) + 1
            remaining ^= low
    return counts


def most_frequent_literal(expr: Anf) -> int | None:
    """Variable index appearing in the most monomials (ties: lowest index).

    Returns ``None`` when no variable appears in two or more monomials.
    """
    counts = literal_frequencies(expr)
    best_index = None
    best_count = 1
    for index in sorted(counts):
        if counts[index] > best_count:
            best_count = counts[index]
            best_index = index
    return best_index


def cube_literals(mask: int) -> Iterable[int]:
    """Variable indices present in a cube mask."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low
