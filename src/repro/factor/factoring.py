"""Recursive algebraic factoring of XOR-of-products expressions.

Produces a factored form (an expression tree of XOR/AND nodes over literals)
whose literal count is usually much lower than the flat Reed-Muller form.
This is the classical multi-level synthesis baseline: everything it achieves
is achievable by algebraic division alone, without the Boolean (null-space)
reasoning that Progressive Decomposition adds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..anf.expression import Anf
from .division import divide_by_cube, make_cube_free, most_frequent_literal
from .kernels import best_kernel


@dataclass(frozen=True)
class FactorNode:
    """A node of a factored form.

    ``kind`` is one of ``"const"``, ``"literal"``, ``"and"``, ``"xor"``.
    ``children`` is empty for constants/literals; ``payload`` holds the
    constant value or the variable name.
    """

    kind: str
    children: tuple["FactorNode", ...] = ()
    payload: object = None

    # ------------------------------------------------------------------
    @property
    def literal_count(self) -> int:
        if self.kind == "literal":
            return 1
        if self.kind == "const":
            return 0
        return sum(child.literal_count for child in self.children)

    @property
    def depth(self) -> int:
        if not self.children:
            return 0
        return 1 + max(child.depth for child in self.children)

    def render(self) -> str:
        if self.kind == "const":
            return str(self.payload)
        if self.kind == "literal":
            return str(self.payload)
        symbol = " ^ " if self.kind == "xor" else "*"
        parts = []
        for child in self.children:
            text = child.render()
            if self.kind == "and" and child.kind == "xor":
                text = f"({text})"
            parts.append(text)
        return symbol.join(parts)

    def to_anf(self, ctx) -> Anf:
        """Expand the factored form back to canonical ANF (for verification)."""
        if self.kind == "const":
            return Anf.constant(ctx, int(self.payload))
        if self.kind == "literal":
            return Anf.var(ctx, str(self.payload))
        if self.kind == "and":
            result = Anf.one(ctx)
            for child in self.children:
                result = result & child.to_anf(ctx)
            return result
        if self.kind == "xor":
            result = Anf.zero(ctx)
            for child in self.children:
                result = result ^ child.to_anf(ctx)
            return result
        raise ValueError(f"unknown factor node kind {self.kind!r}")


def _const(value: int) -> FactorNode:
    return FactorNode("const", payload=value)


def _literal(name: str) -> FactorNode:
    return FactorNode("literal", payload=name)


def _and(children: Iterable[FactorNode]) -> FactorNode:
    children = tuple(c for c in children if not (c.kind == "const" and c.payload == 1))
    if any(c.kind == "const" and c.payload == 0 for c in children):
        return _const(0)
    if not children:
        return _const(1)
    if len(children) == 1:
        return children[0]
    flattened: list[FactorNode] = []
    for child in children:
        if child.kind == "and":
            flattened.extend(child.children)
        else:
            flattened.append(child)
    return FactorNode("and", tuple(flattened))


def _xor(children: Iterable[FactorNode]) -> FactorNode:
    flattened: list[FactorNode] = []
    for child in children:
        if child.kind == "const" and child.payload == 0:
            continue
        if child.kind == "xor":
            flattened.extend(child.children)
        else:
            flattened.append(child)
    if not flattened:
        return _const(0)
    if len(flattened) == 1:
        return flattened[0]
    return FactorNode("xor", tuple(flattened))


def _cube_node(ctx, mask: int) -> FactorNode:
    names = ctx.names_of(mask)
    if not names:
        return _const(1)
    return _and(_literal(name) for name in names)


def factor(expr: Anf, use_kernels: bool = True, _depth: int = 0) -> FactorNode:
    """Recursively factor an expression using algebraic division.

    ``use_kernels`` selects the divisor: the best kernel when available,
    otherwise (or when disabled) the most frequent literal — the classical
    "quick factor" fallback.  The result always expands back to ``expr``.
    """
    ctx = expr.ctx
    if expr.is_zero:
        return _const(0)
    if expr.is_one:
        return _const(1)
    if expr.num_terms == 1:
        (term,) = expr.terms
        return _cube_node(ctx, term)
    # Pull out the common cube first.
    cube, core = make_cube_free(expr)
    if cube:
        return _and([_cube_node(ctx, cube), factor(core, use_kernels, _depth + 1)])

    divisor_cube: int | None = None
    if use_kernels and core.num_terms <= 64 and _depth < 24:
        kernel = best_kernel(core)
        if kernel is not None and kernel.cokernel:
            divisor_cube = kernel.cokernel
    if divisor_cube is None:
        index = most_frequent_literal(core)
        if index is None:
            # No sharing opportunity: emit the flat XOR of cubes.
            return _xor(_cube_node(ctx, term) for term in core.sorted_terms())
        divisor_cube = 1 << index

    quotient, remainder = divide_by_cube(core, divisor_cube)
    quotient_node = factor(quotient, use_kernels, _depth + 1)
    remainder_node = factor(remainder, use_kernels, _depth + 1)
    product = _and([_cube_node(ctx, divisor_cube), quotient_node])
    return _xor([product, remainder_node])


def factored_literal_count(expr: Anf, use_kernels: bool = True) -> int:
    """Literal count of the factored form (a standard area estimate)."""
    return factor(expr, use_kernels).literal_count
