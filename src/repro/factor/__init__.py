"""Classical algebraic factorisation (kernels, weak division, factoring).

This is the baseline technique the paper argues is insufficient for
XOR-dominated arithmetic circuits; it is also reused by the block-level
synthesiser to produce compact structures for small expressions.
"""

from .division import (
    common_cube,
    divide_by_cube,
    is_cube_free,
    literal_frequencies,
    make_cube_free,
    most_frequent_literal,
    weak_divide,
)
from .factoring import FactorNode, factor, factored_literal_count
from .kernels import Kernel, best_kernel, iter_kernel_expressions, kernels, level0_kernels

__all__ = [
    "FactorNode",
    "Kernel",
    "best_kernel",
    "common_cube",
    "divide_by_cube",
    "factor",
    "factored_literal_count",
    "is_cube_free",
    "iter_kernel_expressions",
    "kernels",
    "level0_kernels",
    "literal_frequencies",
    "make_cube_free",
    "most_frequent_literal",
    "weak_divide",
]
