"""Hierarchies from effective online algorithms (paper Theorem 1 / Fig. 4)."""

from .scan import OnlineSpec, online_adder_spec, online_comparator_spec, online_to_hierarchy_netlist, online_to_serial_netlist

__all__ = [
    "OnlineSpec",
    "online_adder_spec",
    "online_comparator_spec",
    "online_to_hierarchy_netlist",
    "online_to_serial_netlist",
]
