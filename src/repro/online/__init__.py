"""Hierarchies from effective online algorithms (paper Theorem 1 / Fig. 4)."""

from .scan import (
    OnlineScanPoint,
    OnlineSpec,
    online_adder_spec,
    online_comparator_spec,
    online_to_hierarchy_netlist,
    online_to_serial_netlist,
    scan_online_specs,
)

__all__ = [
    "OnlineScanPoint",
    "OnlineSpec",
    "online_adder_spec",
    "online_comparator_spec",
    "online_to_hierarchy_netlist",
    "online_to_serial_netlist",
    "scan_online_specs",
]
