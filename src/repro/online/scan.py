"""Building hierarchies from effective online algorithms (Theorem 1, Fig. 4).

Section 3 of the paper argues that any circuit with an *effective online
algorithm* — one that consumes its input bits serially, keeping only a
constant amount of precomputed state — also admits a hierarchical (building
block) implementation.  The construction is the classic parallel-prefix /
conditional-scan trick sketched in Fig. 4: each block precomputes its outputs
for every possible incoming state, and blocks are combined pairwise so the
depth is logarithmic instead of linear.

This module implements that construction for single-state-bit online
algorithms (the case the paper walks through, ``c = 1``): an
:class:`OnlineSpec` describes how one input group updates the single state
bit, and :func:`online_to_hierarchy_netlist` builds the log-depth circuit,
while :func:`online_to_serial_netlist` builds the naive linear-depth version
for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..anf.context import Context
from ..anf.expression import Anf
from ..circuit import gates
from ..circuit.netlist import Netlist
from ..engine.batch import map_parallel
from ..synth.structuring import EmitContext, emit_with_strategy


@dataclass
class OnlineSpec:
    """An effective online algorithm with a single carried state bit.

    ``group_size`` input bits arrive per step.  ``update`` maps (state, group
    bits) to the next state; ``output`` maps the final state to the circuit's
    output.  Both are plain Python functions over 0/1 values; they are
    tabulated into Boolean expressions when the circuit is built.
    """

    name: str
    group_size: int
    update: Callable[[int, Sequence[int]], int]
    output: Callable[[int], int]
    initial_state: int = 0


def online_adder_spec(group_size: int = 1) -> OnlineSpec:
    """The carry chain of an adder as an online algorithm (state = carry).

    Each step consumes one (a, b) bit pair per position in the group; the
    state is the running carry and the output is the final carry.
    """

    def update(state: int, bits: Sequence[int]) -> int:
        carry = state
        for i in range(0, len(bits), 2):
            a, b = bits[i], bits[i + 1]
            carry = 1 if a + b + carry >= 2 else 0
        return carry

    return OnlineSpec("online_adder_carry", group_size * 2, update, lambda s: s, 0)


def online_comparator_spec(group_size: int = 1) -> OnlineSpec:
    """``A > B`` scanned from the least significant bit (state = "A bigger so far")."""

    def update(state: int, bits: Sequence[int]) -> int:
        result = state
        for i in range(0, len(bits), 2):
            a, b = bits[i], bits[i + 1]
            if a != b:
                result = 1 if a > b else 0
        return result

    return OnlineSpec("online_comparator", group_size * 2, update, lambda s: s, 0)


def _group_functions(spec: OnlineSpec, ctx: Context, bit_names: Sequence[str]) -> tuple[Anf, Anf]:
    """The conditioned next-state functions ``f`` (state=0) and ``g`` (state=1)."""
    from ..anf.expression import build_from_function

    names = list(bit_names)
    f = build_from_function(ctx, names, lambda bits: spec.update(0, bits))
    g = build_from_function(ctx, names, lambda bits: spec.update(1, bits))
    return f, g


def online_to_serial_netlist(spec: OnlineSpec, num_groups: int, prefix: str = "x",
                             name: str | None = None) -> Netlist:
    """The naive linear-depth implementation: one block per group, chained."""
    ctx = Context()
    netlist = Netlist(name or f"{spec.name}_serial")
    all_bits: List[str] = []
    for group in range(num_groups):
        for j in range(spec.group_size):
            all_bits.append(f"{prefix}{group}_{j}")
    netlist.add_inputs(all_bits)
    emit = EmitContext(netlist, {bit: bit for bit in all_bits})

    state_net = netlist.constant(spec.initial_state)
    for group in range(num_groups):
        bits = [f"{prefix}{group}_{j}" for j in range(spec.group_size)]
        f_expr, g_expr = _group_functions(spec, ctx, bits)
        f_net = emit_with_strategy(emit, f_expr, "sop")
        g_net = emit_with_strategy(emit, g_expr, "sop")
        state_net = netlist.add_gate(gates.MUX, [state_net, g_net, f_net])
    netlist.set_output("out", state_net)
    return netlist


def online_to_hierarchy_netlist(spec: OnlineSpec, num_groups: int, prefix: str = "x",
                                name: str | None = None) -> Netlist:
    """The Fig. 4 construction: conditioned values combined as a balanced tree.

    Every group computes its next state for both possible incoming states
    (the pair of "leader expressions"); pairs of adjacent segments are then
    combined by composing their conditioned values, giving logarithmic depth.
    """
    ctx = Context()
    netlist = Netlist(name or f"{spec.name}_hierarchical")
    all_bits: List[str] = []
    for group in range(num_groups):
        for j in range(spec.group_size):
            all_bits.append(f"{prefix}{group}_{j}")
    netlist.add_inputs(all_bits)
    emit = EmitContext(netlist, {bit: bit for bit in all_bits})

    # Leaf level: (value if incoming state 0, value if incoming state 1).
    segments: List[tuple[str, str]] = []
    for group in range(num_groups):
        bits = [f"{prefix}{group}_{j}" for j in range(spec.group_size)]
        f_expr, g_expr = _group_functions(spec, ctx, bits)
        f_net = emit_with_strategy(emit, f_expr, "sop")
        g_net = emit_with_strategy(emit, g_expr, "sop")
        segments.append((f_net, g_net))

    # Combine adjacent segments: the right segment selects between its two
    # conditioned values using the left segment's outcome.
    while len(segments) > 1:
        combined: List[tuple[str, str]] = []
        for i in range(0, len(segments) - 1, 2):
            left_f, left_g = segments[i]
            right_f, right_g = segments[i + 1]
            new_f = netlist.add_gate(gates.MUX, [left_f, right_g, right_f])
            new_g = netlist.add_gate(gates.MUX, [left_g, right_g, right_f])
            combined.append((new_f, new_g))
        if len(segments) % 2:
            combined.append(segments[-1])
        segments = combined

    final_f, final_g = segments[0]
    out = final_g if spec.initial_state else final_f
    netlist.set_output("out", out)
    return netlist


# ----------------------------------------------------------------------
# Orchestrated width sweeps
# ----------------------------------------------------------------------
@dataclass
class OnlineScanPoint:
    """Serial-vs-hierarchical comparison for one (spec, width) combination."""

    spec_name: str
    num_groups: int
    serial_depth: int
    hierarchical_depth: int
    serial_gates: int
    hierarchical_gates: int

    @property
    def depth_ratio(self) -> float:
        """Serial depth over hierarchical depth (> 1 means the tree wins)."""
        if not self.hierarchical_depth:
            return float("inf")
        return self.serial_depth / self.hierarchical_depth


def _scan_point(payload: Tuple[Callable[..., OnlineSpec], tuple, int]) -> OnlineScanPoint:
    """Worker body for one sweep point (module-level so it pickles)."""
    builder, args, num_groups = payload
    spec = builder(*args)
    serial = online_to_serial_netlist(spec, num_groups)
    hierarchical = online_to_hierarchy_netlist(spec, num_groups)
    return OnlineScanPoint(
        spec_name=spec.name,
        num_groups=num_groups,
        serial_depth=serial.depth(),
        hierarchical_depth=hierarchical.depth(),
        serial_gates=serial.num_gates,
        hierarchical_gates=hierarchical.num_gates,
    )


def scan_online_specs(
    spec_builders: Sequence[Callable[..., OnlineSpec] | Tuple[Callable[..., OnlineSpec], tuple]],
    group_counts: Sequence[int],
    processes: Optional[int] = None,
) -> List[OnlineScanPoint]:
    """Sweep serial-vs-hierarchical constructions across widths in parallel.

    ``spec_builders`` lists online-spec builders — bare callables or
    ``(builder, args)`` tuples — and every builder is crossed with every
    entry of ``group_counts``.  The sweep fans out over the engine's
    orchestrator pool (:func:`repro.engine.batch.map_parallel`); pass
    ``processes=1`` to stay in-process.
    """
    payloads = []
    for entry in spec_builders:
        builder, args = entry if isinstance(entry, tuple) else (entry, ())
        for num_groups in group_counts:
            payloads.append((builder, tuple(args), num_groups))
    return map_parallel(_scan_point, payloads, processes=processes)
