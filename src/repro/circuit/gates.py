"""Gate primitives understood by the netlist, simulator and mapper."""

from __future__ import annotations

from typing import Sequence

# Logic operators.  AND/OR/XOR/NAND/NOR/XNOR accept any arity >= 1;
# NOT and BUF are unary; MUX takes (select, when_true, when_false);
# CONST0/CONST1 take no inputs.
AND = "AND"
OR = "OR"
XOR = "XOR"
NAND = "NAND"
NOR = "NOR"
XNOR = "XNOR"
NOT = "NOT"
BUF = "BUF"
MUX = "MUX"
CONST0 = "CONST0"
CONST1 = "CONST1"
# Arithmetic macro-gates emitted by the structural generators; the technology
# mapper either maps them onto dedicated cells or expands them.
HA_SUM = "HA_SUM"      # (a, b) -> a ^ b
HA_CARRY = "HA_CARRY"  # (a, b) -> a & b
FA_SUM = "FA_SUM"      # (a, b, cin) -> a ^ b ^ cin
FA_CARRY = "FA_CARRY"  # (a, b, cin) -> majority(a, b, cin)

ALL_OPS = frozenset(
    {
        AND,
        OR,
        XOR,
        NAND,
        NOR,
        XNOR,
        NOT,
        BUF,
        MUX,
        CONST0,
        CONST1,
        HA_SUM,
        HA_CARRY,
        FA_SUM,
        FA_CARRY,
    }
)

_UNARY = {NOT, BUF}
_NO_INPUT = {CONST0, CONST1}
_FIXED_ARITY = {MUX: 3, HA_SUM: 2, HA_CARRY: 2, FA_SUM: 3, FA_CARRY: 3}


class GateError(ValueError):
    """Raised for malformed gates or netlists."""


def validate_gate(op: str, num_inputs: int) -> None:
    """Raise :class:`GateError` when the operator/arity combination is invalid."""
    if op not in ALL_OPS:
        raise GateError(f"unknown gate operator {op!r}")
    if op in _NO_INPUT:
        if num_inputs != 0:
            raise GateError(f"{op} takes no inputs, got {num_inputs}")
    elif op in _UNARY:
        if num_inputs != 1:
            raise GateError(f"{op} takes exactly one input, got {num_inputs}")
    elif op in _FIXED_ARITY:
        if num_inputs != _FIXED_ARITY[op]:
            raise GateError(f"{op} takes exactly {_FIXED_ARITY[op]} inputs, got {num_inputs}")
    else:
        if num_inputs < 1:
            raise GateError(f"{op} needs at least one input")


def evaluate_op(op: str, values: Sequence[int]) -> int:
    """Evaluate a gate operator on 0/1 input values."""
    if op == AND:
        return int(all(values))
    if op == OR:
        return int(any(values))
    if op == XOR:
        result = 0
        for value in values:
            result ^= value & 1
        return result
    if op == NAND:
        return int(not all(values))
    if op == NOR:
        return int(not any(values))
    if op == XNOR:
        result = 1
        for value in values:
            result ^= value & 1
        return result
    if op == NOT:
        return 1 - (values[0] & 1)
    if op == BUF:
        return values[0] & 1
    if op == MUX:
        select, when_true, when_false = values
        return (when_true if select else when_false) & 1
    if op == CONST0:
        return 0
    if op == CONST1:
        return 1
    if op == HA_SUM:
        return (values[0] ^ values[1]) & 1
    if op == HA_CARRY:
        return (values[0] & values[1]) & 1
    if op == FA_SUM:
        return (values[0] ^ values[1] ^ values[2]) & 1
    if op == FA_CARRY:
        a, b, c = values
        return ((a & b) | (a & c) | (b & c)) & 1
    raise GateError(f"unknown gate operator {op!r}")
