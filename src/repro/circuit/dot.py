"""Graphviz DOT export for netlists (handy for inspecting hierarchies)."""

from __future__ import annotations

from .netlist import Netlist

_OP_SHAPE = {
    "AND": "box",
    "NAND": "box",
    "OR": "ellipse",
    "NOR": "ellipse",
    "XOR": "diamond",
    "XNOR": "diamond",
    "NOT": "triangle",
    "BUF": "triangle",
    "MUX": "trapezium",
}


def to_dot(netlist: Netlist, graph_name: str | None = None) -> str:
    """Render a netlist as a Graphviz DOT digraph string."""
    lines = [f'digraph "{graph_name or netlist.name}" {{', "  rankdir=LR;"]
    for net in netlist.inputs:
        lines.append(f'  "{net}" [shape=plaintext, fontcolor=blue];')
    for index, gate in enumerate(netlist.gates):
        node = f"g{index}"
        shape = _OP_SHAPE.get(gate.op, "box")
        lines.append(f'  "{node}" [label="{gate.op}", shape={shape}];')
        for net in gate.inputs:
            source = _source_node(netlist, net)
            lines.append(f'  "{source}" -> "{node}";')
        lines.append(f'  "{node}" -> "{gate.output}" [style=dotted, arrowhead=none];')
        lines.append(f'  "{gate.output}" [shape=point];')
    for port, net in netlist.outputs.items():
        lines.append(f'  "out:{port}" [shape=plaintext, fontcolor=darkgreen];')
        source = _source_node(netlist, net)
        lines.append(f'  "{source}" -> "out:{port}";')
    lines.append("}")
    return "\n".join(lines)


def _source_node(netlist: Netlist, net: str) -> str:
    if netlist.is_input(net):
        return net
    for index, gate in enumerate(netlist.gates):
        if gate.output == net:
            return f"g{index}"
    return net
