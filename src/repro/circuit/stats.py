"""Structural statistics used to reproduce the paper's Figure 1 vs Figure 2.

The motivation section contrasts a flat LZD (huge number of interconnections,
high fan-in dependencies between inputs and outputs) with Oklobdzija's
hierarchical design (few interconnections, low fan-in blocks).  These metrics
quantify that comparison for arbitrary netlists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .netlist import Netlist


@dataclass
class StructureStats:
    """Interconnect / fan-in / fan-out statistics of a netlist."""

    name: str
    num_inputs: int
    num_outputs: int
    num_gates: int
    num_connections: int
    max_fanin: int
    average_fanin: float
    max_fanout: int
    average_fanout: float
    depth: int
    primary_input_fanout_total: int
    max_output_cone_inputs: int
    op_histogram: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "num_inputs": self.num_inputs,
            "num_outputs": self.num_outputs,
            "num_gates": self.num_gates,
            "num_connections": self.num_connections,
            "max_fanin": self.max_fanin,
            "average_fanin": round(self.average_fanin, 3),
            "max_fanout": self.max_fanout,
            "average_fanout": round(self.average_fanout, 3),
            "depth": self.depth,
            "primary_input_fanout_total": self.primary_input_fanout_total,
            "max_output_cone_inputs": self.max_output_cone_inputs,
            "op_histogram": dict(sorted(self.op_histogram.items())),
        }


def structure_stats(netlist: Netlist) -> StructureStats:
    """Compute structural statistics for a netlist."""
    gate_list = netlist.gates
    fanin_sizes = [len(gate.inputs) for gate in gate_list if gate.inputs]
    fanouts = netlist.fanout_counts()
    num_connections = sum(len(gate.inputs) for gate in gate_list)
    input_fanout_total = sum(fanouts.get(net, 0) for net in netlist.inputs)

    max_cone = 0
    input_set = set(netlist.inputs)
    for port, net in netlist.outputs.items():
        cone = netlist.cone_of([net])
        cone_inputs = len([n for n in cone.inputs if n in input_set])
        max_cone = max(max_cone, cone_inputs)

    nonzero_fanouts = [count for count in fanouts.values() if count > 0]
    return StructureStats(
        name=netlist.name,
        num_inputs=len(netlist.inputs),
        num_outputs=len(netlist.outputs),
        num_gates=netlist.num_gates,
        num_connections=num_connections,
        max_fanin=max(fanin_sizes, default=0),
        average_fanin=(sum(fanin_sizes) / len(fanin_sizes)) if fanin_sizes else 0.0,
        max_fanout=max(nonzero_fanouts, default=0),
        average_fanout=(sum(nonzero_fanouts) / len(nonzero_fanouts)) if nonzero_fanouts else 0.0,
        depth=netlist.depth(),
        primary_input_fanout_total=input_fanout_total,
        max_output_cone_inputs=max_cone,
        op_histogram=netlist.op_histogram(),
    )


def compare_structures(flat: Netlist, structured: Netlist) -> Dict[str, Dict[str, object]]:
    """Side-by-side structural comparison of two implementations."""
    return {
        flat.name: structure_stats(flat).as_dict(),
        structured.name: structure_stats(structured).as_dict(),
    }
