"""Combinational gate-level netlists.

A :class:`Netlist` is a DAG of :class:`Gate` objects connected by named nets.
It is the common structural representation shared by the benchmark
generators, the Progressive Decomposition back-end and the synthesis
substrate (technology mapping, timing, area).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Sequence

from . import gates
from .gates import GateError, evaluate_op, validate_gate


@dataclass(frozen=True)
class Gate:
    """One combinational gate: ``output = op(inputs...)``."""

    op: str
    inputs: tuple[str, ...]
    output: str

    def __post_init__(self) -> None:
        validate_gate(self.op, len(self.inputs))


class Netlist:
    """A combinational circuit as a DAG of gates over named nets."""

    def __init__(self, name: str = "netlist") -> None:
        self.name = name
        self._inputs: list[str] = []
        self._input_set: set[str] = set()
        self._gates: list[Gate] = []
        self._driver: dict[str, Gate] = {}
        self._outputs: dict[str, str] = {}
        self._net_counter = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> str:
        """Declare a primary input net."""
        if name in self._driver:
            raise GateError(f"net {name!r} is already driven by a gate")
        if name not in self._input_set:
            self._input_set.add(name)
            self._inputs.append(name)
        return name

    def add_inputs(self, names: Iterable[str]) -> list[str]:
        return [self.add_input(name) for name in names]

    def new_net(self, prefix: str = "n") -> str:
        """Return a fresh internal net name."""
        while True:
            name = f"{prefix}{self._net_counter}"
            self._net_counter += 1
            if name not in self._driver and name not in self._input_set:
                return name

    def add_gate(self, op: str, inputs: Sequence[str], output: str | None = None) -> str:
        """Add a gate; returns the output net name (generated when omitted)."""
        if output is None:
            output = self.new_net()
        if output in self._driver:
            raise GateError(f"net {output!r} already has a driver")
        if output in self._input_set:
            raise GateError(f"net {output!r} is a primary input and cannot be driven")
        gate = Gate(op, tuple(inputs), output)
        self._gates.append(gate)
        self._driver[output] = gate
        return output

    def set_output(self, port: str, net: str) -> None:
        """Declare that primary output ``port`` is driven by ``net``."""
        self._outputs[port] = net

    def constant(self, value: int | bool) -> str:
        """Net carrying a constant 0/1 (a new constant gate each call)."""
        return self.add_gate(gates.CONST1 if value else gates.CONST0, ())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> list[str]:
        return list(self._inputs)

    @property
    def outputs(self) -> dict[str, str]:
        """Mapping from output port name to the net driving it."""
        return dict(self._outputs)

    @property
    def gates(self) -> list[Gate]:
        return list(self._gates)

    @property
    def num_gates(self) -> int:
        return len(self._gates)

    def driver_of(self, net: str) -> Gate | None:
        """The gate driving ``net`` (``None`` for primary inputs)."""
        return self._driver.get(net)

    def is_input(self, net: str) -> bool:
        return net in self._input_set

    def nets(self) -> list[str]:
        """All nets: inputs first, then gate outputs in insertion order."""
        return self._inputs + [gate.output for gate in self._gates]

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def validate(self) -> None:
        """Check that every gate input is driven and outputs exist."""
        known = set(self._input_set)
        for gate in self.topological_gates():
            for net in gate.inputs:
                if net not in known and net not in self._driver:
                    raise GateError(f"gate {gate.op} input net {net!r} has no driver")
            known.add(gate.output)
        for port, net in self._outputs.items():
            if net not in known and net not in self._input_set:
                raise GateError(f"output port {port!r} references undriven net {net!r}")

    # ------------------------------------------------------------------
    # Graph algorithms
    # ------------------------------------------------------------------
    def topological_gates(self) -> list[Gate]:
        """Gates in topological order (inputs before users)."""
        order: list[Gate] = []
        visited: dict[str, int] = {}  # net -> 0 visiting, 1 done

        # Iterative DFS to avoid recursion limits on deep carry chains.
        for root in list(self._outputs.values()) + [g.output for g in self._gates]:
            if visited.get(root) == 1:
                continue
            stack: list[tuple[str, int]] = [(root, 0)]
            while stack:
                net, phase = stack.pop()
                if phase == 0:
                    state = visited.get(net)
                    if state == 1:
                        continue
                    if state == 0:
                        raise GateError(f"combinational cycle through net {net!r}")
                    gate = self._driver.get(net)
                    if gate is None:
                        visited[net] = 1
                        continue
                    visited[net] = 0
                    stack.append((net, 1))
                    for parent in gate.inputs:
                        if visited.get(parent) != 1:
                            stack.append((parent, 0))
                else:
                    if visited.get(net) == 1:
                        continue
                    gate = self._driver[net]
                    for parent in gate.inputs:
                        if visited.get(parent) != 1:
                            raise GateError(f"combinational cycle through net {net!r}")
                    visited[net] = 1
                    order.append(gate)
        return order

    def fanout_counts(self) -> Dict[str, int]:
        """Number of gate inputs (plus output ports) each net feeds."""
        counts: Dict[str, int] = {net: 0 for net in self.nets()}
        for gate in self._gates:
            for net in gate.inputs:
                counts[net] = counts.get(net, 0) + 1
        for net in self._outputs.values():
            counts[net] = counts.get(net, 0) + 1
        return counts

    def logic_levels(self) -> Dict[str, int]:
        """Unit-delay level of every net (inputs and constants are level 0)."""
        levels: Dict[str, int] = {net: 0 for net in self._inputs}
        for gate in self.topological_gates():
            if not gate.inputs:
                levels[gate.output] = 0
            else:
                levels[gate.output] = 1 + max(levels.get(net, 0) for net in gate.inputs)
        return levels

    def depth(self) -> int:
        """Unit-delay depth of the circuit (longest input→output path)."""
        levels = self.logic_levels()
        if not self._outputs:
            return max(levels.values(), default=0)
        return max(levels.get(net, 0) for net in self._outputs.values())

    def cone_of(self, nets: Iterable[str]) -> "Netlist":
        """The transitive fan-in cone of the given output nets, as a new netlist."""
        needed: set[str] = set()
        stack = list(nets)
        while stack:
            net = stack.pop()
            if net in needed:
                continue
            needed.add(net)
            gate = self._driver.get(net)
            if gate is not None:
                stack.extend(gate.inputs)
        cone = Netlist(f"{self.name}_cone")
        for net in self._inputs:
            if net in needed:
                cone.add_input(net)
        for gate in self.topological_gates():
            if gate.output in needed:
                cone.add_gate(gate.op, gate.inputs, gate.output)
        for port, net in self._outputs.items():
            if net in needed:
                cone.set_output(port, net)
        return cone

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(self, assignment: Mapping[str, int]) -> Dict[str, int]:
        """Evaluate every net under the given primary-input assignment."""
        values: Dict[str, int] = {}
        for net in self._inputs:
            if net not in assignment:
                raise GateError(f"missing value for primary input {net!r}")
            values[net] = 1 if assignment[net] else 0
        for gate in self.topological_gates():
            values[gate.output] = evaluate_op(gate.op, [values[n] for n in gate.inputs])
        return values

    def evaluate_outputs(self, assignment: Mapping[str, int]) -> Dict[str, int]:
        """Evaluate only the primary outputs under the given assignment."""
        values = self.simulate(assignment)
        return {port: values[net] for port, net in self._outputs.items()}

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def op_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for gate in self._gates:
            histogram[gate.op] = histogram.get(gate.op, 0) + 1
        return histogram

    def copy(self, name: str | None = None) -> "Netlist":
        clone = Netlist(name or self.name)
        clone.add_inputs(self._inputs)
        for gate in self._gates:
            clone.add_gate(gate.op, gate.inputs, gate.output)
        for port, net in self._outputs.items():
            clone.set_output(port, net)
        clone._net_counter = self._net_counter
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Netlist({self.name!r}, {len(self._inputs)} inputs, "
            f"{len(self._gates)} gates, {len(self._outputs)} outputs)"
        )
