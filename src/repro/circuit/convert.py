"""Conversions between symbolic expressions and gate-level netlists."""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from ..anf.context import Context
from ..anf.expression import Anf
from ..anf.sop import Sop
from . import gates
from .netlist import Netlist


def anf_to_netlist(
    outputs: Mapping[str, Anf],
    inputs: Sequence[str] | None = None,
    name: str = "anf",
) -> Netlist:
    """Direct structural translation of ANF outputs: AND per monomial, XOR tree.

    This is the *literal* Reed-Muller structure (useful for structural
    statistics); the synthesis flows use smarter structuring strategies.
    """
    if not outputs:
        raise ValueError("anf_to_netlist needs at least one output")
    ctx = next(iter(outputs.values())).ctx
    netlist = Netlist(name)
    if inputs is None:
        support_mask = 0
        for expr in outputs.values():
            support_mask |= expr.support_mask
        inputs = list(ctx.names_of(support_mask))
    netlist.add_inputs(inputs)
    known = set(inputs)

    monomial_net: Dict[int, str] = {}

    def net_for_monomial(mask: int) -> str:
        net = monomial_net.get(mask)
        if net is not None:
            return net
        names = ctx.names_of(mask)
        for var_name in names:
            if var_name not in known:
                raise ValueError(f"expression uses {var_name!r} which is not a primary input")
        if len(names) == 1:
            net = names[0]
        else:
            net = netlist.add_gate(gates.AND, list(names))
        monomial_net[mask] = net
        return net

    for port, expr in outputs.items():
        ctx.require_same(expr.ctx)
        if expr.is_zero:
            net = netlist.constant(0)
        elif expr.is_one:
            net = netlist.constant(1)
        else:
            product_nets = []
            has_const_one = False
            for mask in expr.sorted_terms():
                if mask == 0:
                    has_const_one = True
                else:
                    product_nets.append(net_for_monomial(mask))
            if len(product_nets) == 1:
                net = product_nets[0]
            else:
                net = netlist.add_gate(gates.XOR, product_nets)
            if has_const_one:
                net = netlist.add_gate(gates.NOT, [net])
        netlist.set_output(port, net)
    return netlist


def sop_to_netlist(
    outputs: Mapping[str, Sop],
    inputs: Sequence[str] | None = None,
    name: str = "sop",
) -> Netlist:
    """Direct two-level AND-OR translation of SOP outputs (with shared cubes)."""
    if not outputs:
        raise ValueError("sop_to_netlist needs at least one output")
    ctx = next(iter(outputs.values())).ctx
    netlist = Netlist(name)
    if inputs is None:
        mask = 0
        for sop in outputs.values():
            for cube in sop:
                mask |= cube.positive | cube.negative
        inputs = list(ctx.names_of(mask))
    netlist.add_inputs(inputs)

    inverted: Dict[str, str] = {}
    cube_nets: Dict[tuple[int, int], str] = {}

    def net_for_literal(var_name: str, positive: bool) -> str:
        if positive:
            return var_name
        net = inverted.get(var_name)
        if net is None:
            net = netlist.add_gate(gates.NOT, [var_name])
            inverted[var_name] = net
        return net

    def net_for_cube(positive: int, negative: int) -> str:
        key = (positive, negative)
        net = cube_nets.get(key)
        if net is not None:
            return net
        literal_nets = [net_for_literal(v, True) for v in ctx.names_of(positive)]
        literal_nets += [net_for_literal(v, False) for v in ctx.names_of(negative)]
        if not literal_nets:
            net = netlist.constant(1)
        elif len(literal_nets) == 1:
            net = literal_nets[0]
        else:
            net = netlist.add_gate(gates.AND, literal_nets)
        cube_nets[key] = net
        return net

    for port, sop in outputs.items():
        ctx.require_same(sop.ctx)
        if sop.num_cubes == 0:
            net = netlist.constant(0)
        else:
            nets = [net_for_cube(cube.positive, cube.negative) for cube in sop]
            net = nets[0] if len(nets) == 1 else netlist.add_gate(gates.OR, nets)
        netlist.set_output(port, net)
    return netlist


def netlist_to_anf(netlist: Netlist, ctx: Context | None = None) -> Dict[str, Anf]:
    """Compute the canonical ANF of every primary output of a netlist.

    Exact but potentially expensive for circuits whose Reed-Muller form is
    large (the paper's observation about 32-bit LZD applies here as well).
    """
    if ctx is None:
        ctx = Context(netlist.inputs)
    values: Dict[str, Anf] = {name: Anf.var(ctx, name) for name in netlist.inputs}
    for gate in netlist.topological_gates():
        operands = [values[net] for net in gate.inputs]
        values[gate.output] = _gate_anf(ctx, gate.op, operands)
    return {port: values[net] for port, net in netlist.outputs.items()}


def _gate_anf(ctx: Context, op: str, operands: list[Anf]) -> Anf:
    if op == gates.CONST0:
        return Anf.zero(ctx)
    if op == gates.CONST1:
        return Anf.one(ctx)
    if op in (gates.BUF,):
        return operands[0]
    if op == gates.NOT:
        return ~operands[0]
    if op in (gates.AND, gates.NAND):
        result = Anf.one(ctx)
        for operand in operands:
            result = result & operand
        return ~result if op == gates.NAND else result
    if op in (gates.OR, gates.NOR):
        result = Anf.zero(ctx)
        for operand in operands:
            result = result | operand
        return ~result if op == gates.NOR else result
    if op in (gates.XOR, gates.XNOR):
        result = Anf.zero(ctx)
        for operand in operands:
            result = result ^ operand
        return ~result if op == gates.XNOR else result
    if op == gates.MUX:
        select, when_true, when_false = operands
        return (select & when_true) ^ (~select & when_false)
    if op == gates.HA_SUM:
        return operands[0] ^ operands[1]
    if op == gates.HA_CARRY:
        return operands[0] & operands[1]
    if op == gates.FA_SUM:
        return operands[0] ^ operands[1] ^ operands[2]
    if op == gates.FA_CARRY:
        a, b, c = operands
        return (a & b) ^ (a & c) ^ (b & c)
    raise ValueError(f"unknown gate operator {op!r}")
