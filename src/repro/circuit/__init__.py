"""Gate-level netlist substrate: structure, simulation, equivalence, statistics."""

from . import gates
from .convert import anf_to_netlist, netlist_to_anf, sop_to_netlist
from .dot import to_dot
from .equivalence import (
    EquivalenceResult,
    check_anf_specs_equal,
    check_netlist_against_anf,
    check_netlist_anf_exact,
    check_netlists_equivalent,
)
from .gates import GateError
from .netlist import Gate, Netlist
from .stats import StructureStats, compare_structures, structure_stats

__all__ = [
    "EquivalenceResult",
    "Gate",
    "GateError",
    "Netlist",
    "StructureStats",
    "anf_to_netlist",
    "check_anf_specs_equal",
    "check_netlist_against_anf",
    "check_netlist_anf_exact",
    "check_netlists_equivalent",
    "compare_structures",
    "gates",
    "netlist_to_anf",
    "sop_to_netlist",
    "structure_stats",
    "to_dot",
]
