"""Equivalence checking between specifications and implementations.

Three complementary methods are provided:

* canonical Reed-Muller comparison (exact; cost follows the ANF size),
* exhaustive simulation (exact; cost ``2^n``),
* random simulation (probabilistic smoke check for wide circuits).

Every Progressive Decomposition result and every benchmark generator in this
repository is validated through at least one of these paths in the test
suite.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

from ..anf.context import Context
from ..anf.expression import Anf
from .convert import netlist_to_anf
from .netlist import Netlist


@dataclass
class EquivalenceResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    method: str
    counterexample: Dict[str, int] | None = None
    mismatched_output: str | None = None

    def __bool__(self) -> bool:
        return self.equivalent


def check_netlist_against_anf(
    netlist: Netlist,
    spec: Mapping[str, Anf],
    *,
    max_exhaustive_inputs: int = 14,
    random_vectors: int = 2000,
    seed: int = 2007,
) -> EquivalenceResult:
    """Check a netlist against an ANF specification.

    Uses exhaustive simulation up to ``max_exhaustive_inputs`` primary inputs
    and random simulation beyond that.
    """
    missing = [port for port in spec if port not in netlist.outputs]
    if missing:
        return EquivalenceResult(False, "ports", mismatched_output=missing[0])
    inputs = netlist.inputs
    if len(inputs) <= max_exhaustive_inputs:
        return _exhaustive_check(netlist, spec, inputs)
    return _random_check(netlist, spec, inputs, random_vectors, seed)


def check_netlists_equivalent(
    left: Netlist,
    right: Netlist,
    *,
    max_exhaustive_inputs: int = 14,
    random_vectors: int = 2000,
    seed: int = 2007,
) -> EquivalenceResult:
    """Check two netlists with identical interfaces against each other."""
    if set(left.outputs) != set(right.outputs):
        return EquivalenceResult(False, "ports")
    inputs = sorted(set(left.inputs) | set(right.inputs))
    if len(inputs) <= max_exhaustive_inputs:
        for point in range(1 << len(inputs)):
            assignment = {name: (point >> i) & 1 for i, name in enumerate(inputs)}
            left_values = left.evaluate_outputs({n: assignment.get(n, 0) for n in left.inputs})
            right_values = right.evaluate_outputs({n: assignment.get(n, 0) for n in right.inputs})
            for port in left_values:
                if left_values[port] != right_values[port]:
                    return EquivalenceResult(False, "exhaustive", assignment, port)
        return EquivalenceResult(True, "exhaustive")
    rng = random.Random(seed)
    for _ in range(random_vectors):
        assignment = {name: rng.randint(0, 1) for name in inputs}
        left_values = left.evaluate_outputs({n: assignment.get(n, 0) for n in left.inputs})
        right_values = right.evaluate_outputs({n: assignment.get(n, 0) for n in right.inputs})
        for port in left_values:
            if left_values[port] != right_values[port]:
                return EquivalenceResult(False, "random", assignment, port)
    return EquivalenceResult(True, "random")


def check_anf_specs_equal(left: Mapping[str, Anf], right: Mapping[str, Anf]) -> EquivalenceResult:
    """Compare two ANF specifications output by output (canonical, exact)."""
    if set(left) != set(right):
        return EquivalenceResult(False, "ports")
    for port in left:
        if left[port] != right[port]:
            return EquivalenceResult(False, "anf", mismatched_output=port)
    return EquivalenceResult(True, "anf")


def check_netlist_anf_exact(netlist: Netlist, spec: Mapping[str, Anf], ctx: Context) -> EquivalenceResult:
    """Exact check by flattening the netlist to canonical ANF.

    Only suitable when the flattened Reed-Muller form is of manageable size.
    """
    flattened = netlist_to_anf(netlist, ctx)
    for port, expr in spec.items():
        implementation = flattened.get(port)
        if implementation is None or implementation != expr:
            return EquivalenceResult(False, "anf-flatten", mismatched_output=port)
    return EquivalenceResult(True, "anf-flatten")


def _exhaustive_check(
    netlist: Netlist, spec: Mapping[str, Anf], inputs: Sequence[str]
) -> EquivalenceResult:
    for point in range(1 << len(inputs)):
        assignment = {name: (point >> i) & 1 for i, name in enumerate(inputs)}
        produced = netlist.evaluate_outputs(assignment)
        for port, expr in spec.items():
            expected = expr.evaluate(assignment)
            if produced[port] != expected:
                return EquivalenceResult(False, "exhaustive", assignment, port)
    return EquivalenceResult(True, "exhaustive")


def _random_check(
    netlist: Netlist,
    spec: Mapping[str, Anf],
    inputs: Sequence[str],
    vectors: int,
    seed: int,
) -> EquivalenceResult:
    rng = random.Random(seed)
    for _ in range(vectors):
        assignment = {name: rng.randint(0, 1) for name in inputs}
        produced = netlist.evaluate_outputs(assignment)
        for port, expr in spec.items():
            expected = expr.evaluate(assignment)
            if produced[port] != expected:
                return EquivalenceResult(False, "random", assignment, port)
    return EquivalenceResult(True, "random")
