"""Expression-to-gates structuring strategies.

These strategies realise a Boolean expression as gates *without changing its
architecture*: they are the "excellent local optimisation" a synthesis tool
applies once the structure is fixed.  The Progressive Decomposition flow uses
them per building block; the baseline flow uses them on whole outputs.

Strategies:

``anf``
    Literal Reed-Muller structure: one AND per monomial, one XOR tree.
``sop``
    Two-level AND-OR after Quine-McCluskey minimisation (small supports only).
``factored``
    Multi-level structure from algebraic factoring (kernels / weak division).
``shannon``
    Recursive Shannon (MUX) decomposition with cofactor sharing — a BDD-like
    multiplexer network; robust for any size, architecture-preserving.
``auto``
    Try all applicable strategies, map each candidate onto the target library
    and keep the best one under the requested objective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Sequence

from ..anf.expression import Anf
from ..circuit import gates
from ..circuit.netlist import Netlist
from ..factor.factoring import FactorNode, factor
from .library import Library, default_library
from .twolevel import minimize_anf_to_sop

# Practical guards: strategies that are exponential (or nearly so) in the
# expression size are skipped above these limits and the robust strategies
# take over.
MAX_SOP_SUPPORT = 10
MAX_FACTOR_TERMS = 192
MAX_ANF_TERMS = 512


class StructuringError(ValueError):
    """Raised when an expression cannot be structured with a given strategy."""


@dataclass
class EmitContext:
    """Where to emit gates and how expression variables map to nets."""

    netlist: Netlist
    net_of: Dict[str, str]

    def net_for_var(self, name: str) -> str:
        try:
            return self.net_of[name]
        except KeyError:
            raise StructuringError(f"no net bound for variable {name!r}") from None


# ----------------------------------------------------------------------
# Individual strategies
# ----------------------------------------------------------------------
def emit_constant(emit: EmitContext, value: int) -> str:
    return emit.netlist.constant(value)


def emit_anf(emit: EmitContext, expr: Anf) -> str:
    """One AND per monomial, one XOR tree (the literal Reed-Muller netlist)."""
    ctx = expr.ctx
    if expr.is_zero:
        return emit_constant(emit, 0)
    if expr.is_one:
        return emit_constant(emit, 1)
    monomial_nets: list[str] = []
    complement = False
    for mask in expr.sorted_terms():
        if mask == 0:
            complement = True
            continue
        names = ctx.names_of(mask)
        nets = [emit.net_for_var(name) for name in names]
        if len(nets) == 1:
            monomial_nets.append(nets[0])
        else:
            monomial_nets.append(emit.netlist.add_gate(gates.AND, nets))
    if not monomial_nets:
        return emit_constant(emit, 1)
    if len(monomial_nets) == 1:
        result = monomial_nets[0]
    else:
        result = emit.netlist.add_gate(gates.XOR, monomial_nets)
    if complement:
        result = emit.netlist.add_gate(gates.NOT, [result])
    return result


def emit_sop(emit: EmitContext, expr: Anf) -> str:
    """Minimised two-level AND-OR structure."""
    ctx = expr.ctx
    if expr.is_constant:
        return emit_constant(emit, 0 if expr.is_zero else 1)
    support = expr.support
    if len(support) > MAX_SOP_SUPPORT:
        raise StructuringError(
            f"SOP structuring limited to {MAX_SOP_SUPPORT} variables, got {len(support)}"
        )
    sop = minimize_anf_to_sop(expr, list(support))
    inverted: Dict[str, str] = {}

    def literal_net(name: str, positive: bool) -> str:
        base = emit.net_for_var(name)
        if positive:
            return base
        net = inverted.get(name)
        if net is None:
            net = emit.netlist.add_gate(gates.NOT, [base])
            inverted[name] = net
        return net

    cube_nets = []
    for cube in sop:
        nets = [literal_net(name, True) for name in ctx.names_of(cube.positive)]
        nets += [literal_net(name, False) for name in ctx.names_of(cube.negative)]
        if not nets:
            cube_nets.append(emit_constant(emit, 1))
        elif len(nets) == 1:
            cube_nets.append(nets[0])
        else:
            cube_nets.append(emit.netlist.add_gate(gates.AND, nets))
    if not cube_nets:
        return emit_constant(emit, 0)
    if len(cube_nets) == 1:
        return cube_nets[0]
    return emit.netlist.add_gate(gates.OR, cube_nets)


def _emit_factor_node(emit: EmitContext, node: FactorNode) -> str:
    if node.kind == "const":
        return emit_constant(emit, int(node.payload))
    if node.kind == "literal":
        return emit.net_for_var(str(node.payload))
    child_nets = [_emit_factor_node(emit, child) for child in node.children]
    if len(child_nets) == 1:
        return child_nets[0]
    op = gates.AND if node.kind == "and" else gates.XOR
    return emit.netlist.add_gate(op, child_nets)


def emit_factored(emit: EmitContext, expr: Anf) -> str:
    """Multi-level structure obtained by algebraic factoring."""
    if expr.is_constant:
        return emit_constant(emit, 0 if expr.is_zero else 1)
    if expr.num_terms > MAX_FACTOR_TERMS:
        raise StructuringError(
            f"factoring limited to {MAX_FACTOR_TERMS} monomials, got {expr.num_terms}"
        )
    tree = factor(expr)
    return _emit_factor_node(emit, tree)


def emit_shannon(
    emit: EmitContext,
    expr: Anf,
    order: Sequence[str] | None = None,
    _memo: Dict[Anf, str] | None = None,
) -> str:
    """Recursive Shannon (MUX) decomposition with shared cofactors.

    ``order`` fixes the splitting order (first entry split first); by default
    variables are split from the highest context index down, which matches the
    "most significant bit first" reading order of the benchmark descriptions.
    """
    memo: Dict[Anf, str] = {} if _memo is None else _memo
    ctx = expr.ctx
    dynamic_order = order is None
    if order is None:
        order = sorted(expr.support, key=lambda name: -ctx.index(name))

    def build(current: Anf, depth: int) -> str:
        if current.is_zero:
            return emit_constant(emit, 0)
        if current.is_one:
            return emit_constant(emit, 1)
        cached = memo.get(current)
        if cached is not None:
            return cached
        if current.is_literal:
            net = emit.net_for_var(current.literal_name)
            memo[current] = net
            return net
        # Cheap special cases that do not need a MUX: single monomial or
        # pure XOR of literals (degree 1).
        if current.num_terms == 1:
            net = emit_anf(EmitContext(emit.netlist, emit.net_of), current)
            memo[current] = net
            return net
        if current.degree == 1 and current.num_terms <= 8:
            net = emit_anf(EmitContext(emit.netlist, emit.net_of), current)
            memo[current] = net
            return net
        split_var = None
        if dynamic_order:
            # Split on the variable occurring in the most monomials: for
            # arithmetic functions this naturally interleaves the operands and
            # keeps the number of distinct cofactors (shared MUX nodes) small.
            from ..factor.division import most_frequent_literal

            index = most_frequent_literal(current)
            if index is not None:
                split_var = ctx.name(index)
        if split_var is None:
            for name in order[depth:]:
                if current.depends_on(name):
                    split_var = name
                    break
        if split_var is None:
            for name in current.support:
                split_var = name
                break
        assert split_var is not None
        high = build(current.cofactor(split_var, 1), depth + 1)
        low = build(current.cofactor(split_var, 0), depth + 1)
        select = emit.net_for_var(split_var)
        if high == low:
            net = high
        else:
            net = emit.netlist.add_gate(gates.MUX, [select, high, low])
        memo[current] = net
        return net

    return build(expr, 0)


# ----------------------------------------------------------------------
# Strategy selection
# ----------------------------------------------------------------------
StrategyFn = Callable[[EmitContext, Anf], str]

_STRATEGIES: Dict[str, StrategyFn] = {
    "anf": emit_anf,
    "sop": emit_sop,
    "factored": emit_factored,
    "shannon": emit_shannon,
}


def available_strategies(expr: Anf) -> list[str]:
    """Strategy names applicable to an expression of this size."""
    names = ["shannon"]
    if expr.num_terms <= MAX_ANF_TERMS:
        names.append("anf")
    if expr.num_terms <= MAX_FACTOR_TERMS:
        names.append("factored")
    if len(expr.support) <= MAX_SOP_SUPPORT:
        names.append("sop")
    return names


def emit_with_strategy(emit: EmitContext, expr: Anf, strategy: str) -> str:
    """Emit ``expr`` with an explicit strategy name."""
    try:
        function = _STRATEGIES[strategy]
    except KeyError:
        raise StructuringError(f"unknown structuring strategy {strategy!r}") from None
    return function(emit, expr)


def emit_auto(
    emit: EmitContext,
    expr: Anf,
    library: Library | None = None,
    objective: str = "delay",
) -> str:
    """Pick the best applicable strategy for this expression and emit it.

    Candidates are built in scratch netlists, technology mapped, and scored
    under ``objective`` (``"delay"``, ``"area"`` or ``"balanced"``).
    """
    from .synthesize import score_candidate  # local import to avoid a cycle

    if expr.is_constant:
        return emit_constant(emit, 0 if expr.is_zero else 1)
    if expr.is_literal:
        return emit.net_for_var(expr.literal_name)
    library = library or default_library()
    candidates = available_strategies(expr)
    best_name = None
    best_score: tuple[float, float] | None = None
    for name in candidates:
        try:
            score = score_candidate(expr, name, library, objective)
        except StructuringError:
            continue
        if best_score is None or score < best_score:
            best_score = score
            best_name = name
    if best_name is None:
        best_name = "shannon"
    return emit_with_strategy(emit, expr, best_name)


def build_netlist_from_expressions(
    outputs: Mapping[str, Anf],
    strategy: str = "auto",
    inputs: Sequence[str] | None = None,
    library: Library | None = None,
    objective: str = "delay",
    name: str = "design",
    shannon_order: Sequence[str] | None = None,
) -> Netlist:
    """Structure a multi-output specification into one netlist."""
    if not outputs:
        raise ValueError("need at least one output expression")
    ctx = next(iter(outputs.values())).ctx
    netlist = Netlist(name)
    if inputs is None:
        support_mask = 0
        for expr in outputs.values():
            support_mask |= expr.support_mask
        inputs = list(ctx.names_of(support_mask))
    netlist.add_inputs(inputs)
    net_of = {name_: name_ for name_ in inputs}
    emit = EmitContext(netlist, net_of)
    shannon_memo: Dict[Anf, str] = {}
    for port, expr in outputs.items():
        ctx.require_same(expr.ctx)
        if expr.is_constant:
            net = emit_constant(emit, 0 if expr.is_zero else 1)
        elif expr.is_literal:
            net = emit.net_for_var(expr.literal_name)
        elif strategy == "auto":
            net = emit_auto(emit, expr, library, objective)
        elif strategy == "shannon":
            net = emit_shannon(emit, expr, order=shannon_order, _memo=shannon_memo)
        else:
            net = emit_with_strategy(emit, expr, strategy)
        netlist.set_output(port, net)
    return netlist
